//! Quickstart: sketch a weighted stream, query point estimates with
//! certified bounds, and list the heavy hitters.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use streamfreq::{ErrorType, FreqSketch, ItemsSketch};

fn main() {
    // --- u64 items: track video watch time (seconds) per video id -------
    let mut sketch = FreqSketch::with_max_counters(64);

    // A popular video, a moderately popular one, and a long tail.
    for _ in 0..500 {
        sketch.update(1001, 240); // 500 views × 4 minutes
    }
    for _ in 0..120 {
        sketch.update(2002, 600); // 120 views × 10 minutes
    }
    for tail_video in 3000..3800u64 {
        sketch.update(tail_video, 30); // one 30-second view each
    }

    let n = sketch.stream_weight();
    println!(
        "stream: {} updates, total weight N = {n} seconds",
        sketch.num_updates()
    );
    println!(
        "state: {} counters, {} bytes, max error ±{}",
        sketch.num_counters(),
        sketch.memory_bytes(),
        sketch.maximum_error()
    );
    println!();

    // Point queries with certified bounds.
    for video in [1001u64, 2002, 3000, 999_999] {
        println!(
            "video {video:>6}: estimate {:>7}  (certified {} ..= {})",
            sketch.estimate(video),
            sketch.lower_bound(video),
            sketch.upper_bound(video),
        );
    }
    println!();

    // Heavy hitters: videos that may hold >5% of total watch time.
    println!("videos holding >5% of watch time (no false negatives):");
    for row in sketch.heavy_hitters(0.05, ErrorType::NoFalseNegatives) {
        println!(
            "  video {:>6}: ~{} s ({:.1}% of stream)",
            row.item,
            row.estimate,
            100.0 * row.estimate as f64 / n as f64
        );
    }
    println!();

    // --- arbitrary item types: the same API over strings ----------------
    let mut words: ItemsSketch<String> = ItemsSketch::with_max_counters(32);
    let text = "the quick brown fox jumps over the lazy dog the fox";
    for word in text.split_whitespace() {
        words.update(word.to_string(), 1);
    }
    println!("most frequent words of {text:?}:");
    for row in words.frequent_items(ErrorType::NoFalsePositives) {
        println!("  {:>6}: {}", row.item, row.estimate);
    }
}
