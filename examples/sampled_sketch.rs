//! Sampled feeding (§5) — the weighted Bhattacharyya et al. adaptation:
//! thin the stream to a fixed expected sample mass, sketch the sample,
//! and answer scaled queries. Useful when even O(1) per update is too
//! much and only φ-heavy hitters matter.
//!
//! ```text
//! cargo run --release --example sampled_sketch
//! ```

use std::time::Instant;

use streamfreq::apps::SampledSketch;
use streamfreq::workloads::{CaidaConfig, SyntheticCaida};
use streamfreq::FreqSketch;

fn main() {
    let config = CaidaConfig::scaled(4_000_000);
    println!("synthesizing {} packets ...", config.num_updates);
    let stream: Vec<(u64, u64)> = SyntheticCaida::materialize(&config);
    let n: u64 = stream.iter().map(|&(_, w)| w).sum();

    // Full sketch: every update touches the summary.
    let mut full = FreqSketch::with_max_counters(1024);
    let start = Instant::now();
    for &(ip, bits) in &stream {
        full.update(ip, bits);
    }
    let t_full = start.elapsed();

    // Sampled sketch: expected 2M mass units of sample over the stream.
    let mut sampled = SampledSketch::with_sample_target(1024, 2_000_000, n, 42);
    let start = Instant::now();
    for &(ip, bits) in &stream {
        sampled.update(ip, bits);
    }
    let t_sampled = start.elapsed();

    println!("full sketch:    {:>8.3} s, N = {n}", t_full.as_secs_f64());
    println!(
        "sampled sketch: {:>8.3} s, p = {:.2e}, sampled mass = {}",
        t_sampled.as_secs_f64(),
        sampled.sampling_probability(),
        sampled.sampled_weight()
    );
    println!();

    println!("top talkers, full vs sampled estimates:");
    println!(
        "{:>14} {:>16} {:>16} {:>8}",
        "source", "full est", "sampled est", "rel"
    );
    for row in full.top_k(8) {
        let s = sampled.estimate(&row.item);
        let rel = (s as f64 - row.estimate as f64).abs() / row.estimate as f64;
        println!(
            "{:>14} {:>16} {:>16} {:>7.2}%",
            row.item,
            row.estimate,
            s,
            rel * 100.0
        );
    }
    println!();
    println!(
        "the sampled sketch touches ~{:.1}% of the mass yet ranks the same heavy talkers",
        100.0 * sampled.sampled_weight() as f64 / n as f64
    );
}
