//! Network-measurement walkthrough — the paper's own evaluation scenario
//! (§4.1): find the source IPs sending the most **bits** through a packet
//! stream, with 1/70th of the memory of exact counting.
//!
//! Uses the synthetic CAIDA-like trace (weights = packet size in bits) and
//! compares the sketch's report against exact ground truth, demonstrating
//! the two reporting contracts.
//!
//! ```text
//! cargo run --release --example packet_heavy_hitters [-- --updates N]
//! ```

use streamfreq::baselines::ExactCounter;
use streamfreq::workloads::{CaidaConfig, SyntheticCaida};
use streamfreq::{ErrorType, FreqSketch, FrequencyEstimator, PurgePolicy};

fn main() {
    let updates: usize = std::env::args()
        .skip_while(|a| a != "--updates")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let config = CaidaConfig::scaled(updates);
    println!(
        "synthesizing packet trace: {} packets over ~{} source IPs ...",
        config.num_updates, config.num_flows
    );

    let mut sketch = FreqSketch::builder(1024)
        .policy(PurgePolicy::smed())
        .build()
        .expect("valid k");
    let mut exact = ExactCounter::new();

    for (src_ip, bits) in SyntheticCaida::new(&config) {
        sketch.update(src_ip, bits);
        exact.update(src_ip, bits);
    }

    let n = sketch.stream_weight();
    println!(
        "N = {:.2} Gbit total, {} distinct sources",
        n as f64 / 1e9,
        exact.num_distinct()
    );
    println!(
        "sketch: {} KiB vs exact table ~{} KiB ({}x smaller), max error ±{:.4}% of N",
        sketch.memory_bytes() / 1024,
        exact.memory_bytes() / 1024,
        exact.memory_bytes() / sketch.memory_bytes().max(1),
        100.0 * sketch.maximum_error() as f64 / n as f64
    );
    println!();

    let phi = 0.01;
    println!(
        "sources that may exceed {:.0}% of traffic (no false negatives):",
        phi * 100.0
    );
    let reported = sketch.heavy_hitters(phi, ErrorType::NoFalseNegatives);
    for row in &reported {
        let truth = exact.estimate(row.item);
        let verdict = if truth as f64 > phi * n as f64 {
            "true HH"
        } else {
            "borderline"
        };
        println!(
            "  {:>15}  est {:>13} bits  true {:>13} bits  [{verdict}]",
            format_ip(row.item),
            row.estimate,
            truth
        );
    }
    println!();

    // Verify the contracts against ground truth.
    let threshold = streamfreq::phi_threshold(phi, n);
    let true_hh: Vec<u64> = exact
        .iter()
        .filter(|&(_, f)| f > threshold)
        .map(|(ip, _)| ip)
        .collect();
    let missed = true_hh
        .iter()
        .filter(|ip| !reported.iter().any(|r| r.item == **ip))
        .count();
    println!(
        "ground truth: {} sources above the threshold; sketch missed {missed} (must be 0)",
        true_hh.len()
    );

    let strict = sketch.heavy_hitters(phi, ErrorType::NoFalsePositives);
    let false_pos = strict
        .iter()
        .filter(|r| exact.estimate(r.item) <= threshold)
        .count();
    println!(
        "no-false-positives mode reported {} sources, {false_pos} wrongly (must be 0)",
        strict.len()
    );
}

fn format_ip(ip: u64) -> String {
    let ip = ip as u32;
    format!(
        "{}.{}.{}.{}",
        ip >> 24,
        (ip >> 16) & 255,
        (ip >> 8) & 255,
        ip & 255
    )
}
