//! Hierarchical heavy hitters — the paper's flagship downstream
//! application (§1.2/§6, reference [18]): find not just heavy *hosts* but
//! heavy *subnets*, including attacks dispersed across a prefix where no
//! single source is heavy.
//!
//! ```text
//! cargo run --release --example hierarchical_hhh
//! ```

use streamfreq::apps::HhhSketch;
use streamfreq::workloads::{CaidaConfig, SyntheticCaida};
use streamfreq::ErrorType;

fn main() {
    let mut hhh = HhhSketch::new(1024);

    // Background: realistic dispersed traffic.
    let config = CaidaConfig::scaled(500_000);
    println!("feeding {} background packets ...", config.num_updates);
    for (ip, bits) in SyntheticCaida::new(&config) {
        hhh.update(ip as u32, bits);
    }
    let background = hhh.stream_weight();

    // Injected behaviour 1: one heavy host (a single busy server).
    let server = u32::from_be_bytes([203, 0, 113, 7]);
    // Injected behaviour 2: a botnet dispersed over 10.66.0.0/16 — every
    // bot individually light, the subnet jointly heavy.
    println!("injecting one heavy host and one dispersed /16 botnet ...");
    let per_host = background / 20 / 256; // subnet totals ~5% of background
    for _ in 0..20 {
        hhh.update(server, background / 80); // server totals ~25% of background
    }
    for bot in 0..=255u32 {
        let ip = u32::from_be_bytes([10, 66, (bot / 16) as u8, (bot % 16 * 13) as u8]);
        hhh.update(ip, per_host);
    }

    let n = hhh.stream_weight();
    println!(
        "total traffic {:.2} Gbit across {} sketch levels ({} KiB state)\n",
        n as f64 / 1e9,
        hhh.level_sketches().len(),
        hhh.memory_bytes() / 1024
    );

    let phi = 0.02;
    println!(
        "hierarchical heavy hitters above {:.0}% of traffic:",
        phi * 100.0
    );
    let rows = hhh.hierarchical_heavy_hitters(phi, ErrorType::NoFalseNegatives);
    for row in &rows {
        println!(
            "  {:>18}  conditioned {:>6.2}%  (raw estimate {:>6.2}%)",
            row.to_cidr(),
            100.0 * row.conditioned as f64 / n as f64,
            100.0 * row.estimate as f64 / n as f64,
        );
    }

    // The server must surface as a /32; the botnet as an aggregate (the
    // /16 or one of its parents), with no single /32 bot reported.
    assert!(
        rows.iter()
            .any(|r| r.prefix_len == 32 && r.prefix == server),
        "heavy server not detected"
    );
    assert!(
        rows.iter()
            .any(|r| r.prefix_len <= 16 && r.prefix >> 24 == 10),
        "dispersed botnet prefix not detected"
    );
    assert!(
        !rows
            .iter()
            .any(|r| r.prefix_len == 32 && r.prefix >> 24 == 10),
        "individual bots must stay below the radar"
    );
    println!("\nserver found at /32, botnet only as an aggregate prefix — as intended.");
}
