//! The batched, sharded ingestion pipeline end to end: build a bank of
//! hash-partitioned shards, ingest one stream from several threads,
//! query the live bank, then collapse it into a single exportable
//! sketch via Algorithm 5.
//!
//! ```text
//! cargo run --release --example sharded_pipeline
//! ```

use streamfreq::{ErrorType, FreqSketch, ShardedSketch};

fn main() {
    // A skewed synthetic stream: flow 7 carries ~30% of the bytes.
    let stream: Vec<(u64, u64)> = (0..2_000_000u64)
        .map(|i| {
            if i % 10 == 0 {
                (7, 1_500)
            } else {
                (1_000 + i % 50_000, i % 900 + 40)
            }
        })
        .collect();

    // 8 shards × 4096 counters, ingested with up to 4 threads. The
    // result is byte-identical for any thread count — routing is by
    // item hash, so each shard always sees exactly its items in stream
    // order.
    let mut bank = ShardedSketch::new(8, 4_096);
    bank.ingest_parallel(&stream, 4);
    println!(
        "ingested {} updates (N = {}) into {} shards, {} counters live",
        bank.num_updates(),
        bank.stream_weight(),
        bank.num_shards(),
        bank.num_counters()
    );

    // Queries against the live bank carry only the owning shard's error.
    println!(
        "flow 7: estimate {} in [{}, {}]",
        bank.estimate(&7),
        bank.lower_bound(&7),
        bank.upper_bound(&7)
    );
    for row in bank.heavy_hitters(0.2, ErrorType::NoFalsePositives) {
        println!("heavy hitter {} ≥ {}", row.item, row.lower_bound);
    }

    // Single-threaded batched ingestion hits the same prefetching fast
    // path through `update_batch` / `extend`.
    let mut single = FreqSketch::with_max_counters(4_096);
    single.update_batch(&stream);
    println!(
        "single sketch agrees on flow 7: estimate {}",
        single.estimate(7)
    );

    // Export one mergeable summary (Theorem 5 error accounting).
    let merged = bank.merged();
    println!(
        "merged export: {} counters, maximum_error {}",
        merged.num_counters(),
        merged.maximum_error()
    );
    let bytes = merged.serialize_to_bytes();
    println!("wire size: {} bytes", bytes.len());
}
