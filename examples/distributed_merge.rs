//! Distributed sketching — §3's motivating scenario: partition a stream
//! across workers, sketch each partition independently (in parallel
//! threads here, machines in production), then merge the summaries
//! through an arbitrary aggregation tree and serialize the result.
//!
//! Demonstrates that the merged summary answers queries over the *union*
//! of the partitions with Theorem 5's error bound, and that the wire
//! format round-trips.
//!
//! ```text
//! cargo run --release --example distributed_merge
//! ```

use std::thread;

use streamfreq::baselines::ExactCounter;
use streamfreq::workloads::{partition_round_robin, CaidaConfig, SyntheticCaida};
use streamfreq::{FreqSketch, FrequencyEstimator, PurgePolicy};

const WORKERS: usize = 8;
const K: usize = 2048;

fn main() {
    let config = CaidaConfig::scaled(2_000_000);
    println!("synthesizing {} packets ...", config.num_updates);
    let stream: Vec<(u64, u64)> = SyntheticCaida::materialize(&config);
    let mut exact = ExactCounter::new();
    for &(ip, bits) in &stream {
        exact.update(ip, bits);
    }

    // 1. Partition across workers (round-robin; any partition works).
    let parts = partition_round_robin(&stream, WORKERS);

    // 2. Each worker sketches its shard independently.
    println!("sketching {WORKERS} shards in parallel ...");
    let mut shard_sketches: Vec<FreqSketch> = thread::scope(|scope| {
        let handles: Vec<_> = parts
            .iter()
            .enumerate()
            .map(|(w, shard)| {
                scope.spawn(move || {
                    let mut s = FreqSketch::builder(K)
                        .policy(PurgePolicy::smed())
                        .seed(w as u64) // independent sampling per worker
                        .build()
                        .expect("valid k");
                    for &(ip, bits) in shard {
                        s.update(ip, bits);
                    }
                    s
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    // 3. Merge through a binary aggregation tree (any shape is valid).
    println!("merging through a binary tree ...");
    while shard_sketches.len() > 1 {
        let mut next = Vec::with_capacity(shard_sketches.len().div_ceil(2));
        let mut iter = shard_sketches.into_iter();
        while let Some(mut left) = iter.next() {
            if let Some(right) = iter.next() {
                left.merge(&right); // right is discarded after the merge
            }
            next.push(left);
        }
        shard_sketches = next;
    }
    let merged = shard_sketches.pop().expect("one sketch remains");

    // 4. The merged summary covers the whole stream.
    let n = merged.stream_weight();
    assert_eq!(n, exact.stream_weight(), "no mass lost in the tree");
    let max_err = exact.max_abs_error(|ip| merged.estimate(ip));
    println!(
        "merged sketch: N = {n}, max observed error {max_err} ({:.5}% of N, certified ±{})",
        100.0 * max_err as f64 / n as f64,
        merged.maximum_error()
    );
    assert!(
        max_err <= merged.maximum_error(),
        "certified bound violated"
    );

    // 5. Ship it: serialize, deserialize, and query the copy.
    let wire = merged.serialize_to_bytes();
    let restored = FreqSketch::deserialize_from_bytes(&wire).expect("valid encoding");
    println!(
        "wire format: {} bytes for {} counters; restored top talker:",
        wire.len(),
        restored.num_counters()
    );
    let top = restored.top_k(3);
    for row in top {
        println!(
            "  ip {:>12}  ~{} bits (true {})",
            row.item,
            row.estimate,
            exact.estimate(row.item)
        );
    }
}
