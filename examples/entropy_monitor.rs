//! Entropy-based anomaly detection — the paper's second downstream
//! application (§1.2/§6, reference [5]): track the empirical entropy of
//! source addresses in sliding windows and flag the collapse caused by a
//! traffic concentration (DDoS-like) event.
//!
//! ```text
//! cargo run --release --example entropy_monitor
//! ```

use streamfreq::apps::{exact_entropy, EntropyEstimator};
use streamfreq::workloads::{CaidaConfig, SyntheticCaida};

const WINDOW: usize = 200_000;

fn main() {
    let config = CaidaConfig::scaled(WINDOW * 4);
    let normal_traffic: Vec<(u64, u64)> = SyntheticCaida::materialize(&config);

    println!("window  packets   entropy(est)  entropy(exact)  verdict");
    let mut window_id = 0;
    let mut baseline: Option<f64> = None;

    for window_start in (0..normal_traffic.len()).step_by(WINDOW) {
        window_id += 1;
        let window =
            &normal_traffic[window_start..(window_start + WINDOW).min(normal_traffic.len())];
        // Window 3 simulates an attack: 85% of packets rewritten to one source.
        let attacked = window_id == 3;

        let mut est = EntropyEstimator::new(256, 2048, window_id as u64);
        let mut freqs = std::collections::HashMap::new();
        for (i, &(ip, _bits)) in window.iter().enumerate() {
            let src = if attacked && i % 100 < 85 {
                0xBAD_CAFE
            } else {
                ip
            };
            est.update(src, 1); // per-packet entropy of source addresses
            *freqs.entry(src).or_insert(0u64) += 1;
        }

        let h = est.estimate();
        let exact = exact_entropy(&freqs.values().copied().collect::<Vec<_>>());
        let verdict = match baseline {
            None => {
                baseline = Some(h);
                "baseline".to_string()
            }
            Some(b) if h < 0.6 * b => format!("ALERT: entropy collapsed ({:.1} → {h:.1} bits)", b),
            Some(_) => "ok".to_string(),
        };
        println!(
            "{window_id:>6}  {:>7}  {h:>12.3}  {exact:>14.3}  {verdict}",
            window.len()
        );
        if attacked {
            assert!(
                verdict.starts_with("ALERT"),
                "the attack window must trigger the alert"
            );
        }
    }
    println!(
        "\nsketch state per window: {} bytes (vs an exact per-source table)",
        256 * 24 + 2048 * 24
    );
}
