//! # streamfreq
//!
//! High-performance frequent-items sketches for data streams: a complete
//! Rust implementation of
//!
//! > Anderson, Bevin, Lang, Liberty, Rhodes, Thaler.
//! > *A High-Performance Algorithm for Identifying Frequent Items in Data
//! > Streams.* IMC 2017 (arXiv:1705.07001)
//!
//! — the algorithm behind Apache DataSketches' Frequent Items Sketch —
//! together with every baseline of its evaluation, the workload generators,
//! and the downstream applications it motivates.
//!
//! This facade crate re-exports the public APIs of the workspace:
//!
//! * [`streamfreq_core`] — [`FreqSketch`], [`ItemsSketch`], purge
//!   policies, error bounds, serialization.
//! * [`baselines`] — Misra-Gries, Space Saving (heap and Stream Summary),
//!   RBMC, RTUC, Count-Min, CountSketch, exact counting, prior merges.
//! * [`workloads`] — Zipf, synthetic CAIDA-like traces, adversarial
//!   streams.
//! * [`apps`] — hierarchical heavy hitters, entropy estimation, sampled
//!   feeding, and the temporal layer (time-fading `DecayedSketch`,
//!   generic retention-bounded `WindowedStore`).
//!
//! See the `examples/` directory for runnable walkthroughs, DESIGN.md for
//! the system inventory, and EXPERIMENTS.md for the reproduced evaluation.
//!
//! ## Quick start
//!
//! ```
//! use streamfreq::{FreqSketch, ErrorType};
//!
//! let mut sketch = FreqSketch::with_max_counters(256);
//! sketch.update(/* flow id */ 42, /* bytes */ 1500);
//! sketch.update(42, 9000);
//! sketch.update(7, 40);
//! assert_eq!(sketch.estimate(42), 10_500);
//! let heavy = sketch.heavy_hitters(0.5, ErrorType::NoFalsePositives);
//! assert_eq!(heavy[0].item, 42);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use streamfreq_apps as apps;
pub use streamfreq_baselines as baselines;
pub use streamfreq_core::{
    bounds, cluster, codec, concurrent, engine, hashing, item_codec, persist, phi_threshold, purge,
    result, rng, select, sharded, signed, sketch, table, traits, ConcurrentSketch,
    ConcurrentSketchBuilder, ConcurrentWriter, CounterSummary, DurabilityOptions, DurableSketch,
    EngineConfig, Error, ErrorType, FreqSketch, FreqSketchBuilder, FrequencyEstimator, FsyncPolicy,
    HashRing, ItemsSketch, ItemsSketchBuilder, NodeSpec, PersistError, PurgePolicy, Row,
    ShardedSketch, ShardedSketchBuilder, SignedFreqSketch, SignedSketch, SketchEngine,
    SketchEngineBuilder, SketchKey, Snapshot, SnapshotReader, Topology,
};
pub use streamfreq_workloads as workloads;
