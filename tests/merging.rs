//! Merge semantics across the workspace: Algorithm 5 under arbitrary
//! aggregation trees (Theorem 5), against the prior-work merges of §3.1,
//! and across summary types via the generic counter interface.

use streamfreq::baselines::{ach_merge_quickselect, ach_merge_sort, ExactCounter, MisraGries};
use streamfreq::workloads::{concat, fill_stream, partition_round_robin, MergeWorkloadConfig};
use streamfreq::{CounterSummary, FreqSketch, FrequencyEstimator, PurgePolicy};

fn truth_of(stream: &[(u64, u64)]) -> ExactCounter {
    let mut t = ExactCounter::new();
    for &(i, w) in stream {
        t.update(i, w);
    }
    t
}

fn sketch_of(stream: &[(u64, u64)], k: usize, seed: u64) -> FreqSketch {
    let mut s = FreqSketch::builder(k)
        .policy(PurgePolicy::smed())
        .seed(seed)
        .build()
        .unwrap();
    for &(i, w) in stream {
        s.update(i, w);
    }
    s
}

fn workload(parts: usize, per_part: usize) -> Vec<Vec<(u64, u64)>> {
    let cfg = MergeWorkloadConfig {
        updates_per_sketch: per_part,
        ..MergeWorkloadConfig::default()
    };
    (0..parts as u64).map(|i| fill_stream(&cfg, i)).collect()
}

/// Theorem 5 under every aggregation-tree shape: left-deep chain,
/// balanced binary tree, and star merges must all satisfy the certified
/// bound for the concatenated stream.
#[test]
fn arbitrary_aggregation_trees_stay_bounded() {
    let parts = workload(8, 30_000);
    let full = concat(&parts);
    let truth = truth_of(&full);
    let k = 256;

    // Left-deep chain: ((((s0+s1)+s2)+s3)...)
    let mut chain = sketch_of(&parts[0], k, 0);
    for (i, p) in parts.iter().enumerate().skip(1) {
        chain.merge(&sketch_of(p, k, i as u64));
    }

    // Balanced binary tree.
    let mut level: Vec<FreqSketch> = parts
        .iter()
        .enumerate()
        .map(|(i, p)| sketch_of(p, k, 100 + i as u64))
        .collect();
    while level.len() > 1 {
        let mut next = Vec::new();
        let mut iter = level.into_iter();
        while let Some(mut a) = iter.next() {
            if let Some(b) = iter.next() {
                a.merge(&b);
            }
            next.push(a);
        }
        level = next;
    }
    let tree = level.pop().unwrap();

    for merged in [&chain, &tree] {
        assert_eq!(merged.stream_weight(), truth.stream_weight());
        let err = truth.max_abs_error(|i| merged.estimate(i));
        assert!(
            err <= merged.maximum_error(),
            "observed error {err} exceeds certified {}",
            merged.maximum_error()
        );
        // Theorem 5 a-priori form (with the SMED effective k*).
        let bound = merged.a_priori_error(truth.stream_weight());
        assert!(
            merged.maximum_error() <= bound,
            "certified error {} exceeds Theorem 5 bound {bound}",
            merged.maximum_error()
        );
    }
}

/// Merging must be equivalent (up to certified error) to sketching the
/// concatenated stream directly.
#[test]
fn merge_approximates_concatenation() {
    let parts = workload(4, 50_000);
    let full = concat(&parts);
    let truth = truth_of(&full);
    let k = 512;

    let direct = sketch_of(&full, k, 42);
    let mut merged = sketch_of(&parts[0], k, 0);
    for (i, p) in parts.iter().enumerate().skip(1) {
        merged.merge(&sketch_of(p, k, i as u64));
    }
    let tolerance = direct.maximum_error() + merged.maximum_error();
    for (item, _) in truth.iter() {
        let d = direct.estimate(item);
        let m = merged.estimate(item);
        assert!(
            d.abs_diff(m) <= tolerance,
            "item {item}: direct {d} vs merged {m} beyond tolerance {tolerance}"
        );
    }
}

/// Our merge against the prior-work merges: error within a small factor
/// (the paper reports within 2.5%), and identical heavy-hitter sets for
/// clear heavy hitters.
#[test]
fn merge_error_competitive_with_prior_work() {
    let parts = workload(2, 100_000);
    let truth = truth_of(&concat(&parts));
    let k = 1024;
    let a = sketch_of(&parts[0], k, 0);
    let b = sketch_of(&parts[1], k, 1);
    let ca: Vec<(u64, u64)> = a.counters().collect();
    let cb: Vec<(u64, u64)> = b.counters().collect();

    let mut ours = a.clone();
    ours.merge(&b);
    let sort_merge = ach_merge_sort(&ca, &cb, k);
    let qs_merge = ach_merge_quickselect(&ca, &cb, k);

    let e_ours = truth.max_abs_error(|i| ours.estimate(i));
    let e_sort = truth.max_abs_error(|i| sort_merge.estimate(i));
    let e_qs = truth.max_abs_error(|i| qs_merge.estimate(i));
    assert!(
        e_ours as f64 <= e_sort as f64 * 1.5 + 1.0,
        "ours {e_ours} vs ACH {e_sort}: error blow-up"
    );
    assert_eq!(e_sort, e_qs, "the two ACH implementations are equivalent");
}

/// Algorithm 5 applies to any counter-based summary: absorb a Misra-Gries
/// summary into a FreqSketch with correct offset accounting.
#[test]
fn absorb_misra_gries_summary() {
    let mut mg = MisraGries::new(64);
    let mut rng_state = 5u64;
    let mut step = || {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        rng_state >> 33
    };
    let mut truth = ExactCounter::new();
    for _ in 0..30_000 {
        let item = step() % 400;
        mg.update_unit(item);
        truth.update(item, 1);
    }
    let mut sketch = FreqSketch::with_max_counters(64);
    sketch.absorb_counters(mg.counters(), mg.stream_weight(), mg.max_error());
    assert_eq!(sketch.stream_weight(), truth.stream_weight());
    for (item, f) in truth.iter() {
        assert!(sketch.lower_bound(item) <= f, "lb violated for {item}");
        assert!(sketch.upper_bound(item) >= f, "ub violated for {item}");
    }
}

/// The round-robin partition scenario end to end: partition, sketch,
/// merge, and verify the (φ, ε) contract on the union.
#[test]
fn partitioned_heavy_hitters_survive_merge() {
    let cfg = MergeWorkloadConfig {
        updates_per_sketch: 120_000,
        ..MergeWorkloadConfig::default()
    };
    let mut stream = fill_stream(&cfg, 9);
    // plant unmistakable heavy hitters
    for _ in 0..6_000 {
        stream.push((424242, 10_000));
        stream.push((434343, 5_000));
    }
    let truth = truth_of(&stream);
    let parts = partition_round_robin(&stream, 5);
    let mut merged = sketch_of(&parts[0], 256, 0);
    for (i, p) in parts.iter().enumerate().skip(1) {
        merged.merge(&sketch_of(p, 256, i as u64));
    }
    let n = truth.stream_weight();
    let hh = merged.heavy_hitters(0.02, streamfreq::ErrorType::NoFalseNegatives);
    let reported: Vec<u64> = hh.iter().map(|r| r.item).collect();
    for (item, f) in truth.iter() {
        if f as f64 > 0.02 * n as f64 {
            assert!(reported.contains(&item), "missed heavy hitter {item}");
        }
    }
    assert!(reported.contains(&424242));
    assert!(reported.contains(&434343));
}
