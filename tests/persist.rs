//! Crash-recovery integration tests: random kill points mid-stream,
//! including torn and truncated final WAL records, for both the
//! single-engine [`DurableSketch`] and the multi-shard
//! [`ConcurrentSketch`] durability path.
//!
//! The contract under test is exact: recovered state must be
//! **state-fingerprint-identical** to an uninterrupted run over the
//! records that survived the crash — same estimates, same table layout,
//! same sampler state, so every future purge decision matches too.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use streamfreq::persist::recover::{recover_engine_readonly, RecoverySource};
use streamfreq::persist::store::read_manifest;
use streamfreq::persist::wal;
use streamfreq::{
    ConcurrentSketch, DurabilityOptions, DurableSketch, EngineConfig, FsyncPolicy, SketchEngine,
};

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A unique, empty scratch directory per proptest case.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("streamfreq-persist-it")
        .join(format!(
            "{label}-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::SeqCst)
        ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts() -> DurabilityOptions {
    DurabilityOptions {
        fsync: FsyncPolicy::Off,
        // Small segments so kill points also land across rotations.
        segment_bytes: 1 << 14,
    }
}

/// Recursively copies a store directory — the "crash image" taken while
/// the original is still live.
fn copy_dir(from: &std::path::Path, to: &std::path::Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let target = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), &target).unwrap();
        }
    }
}

/// Truncates the newest WAL segment in `dir` to a byte length chosen by
/// `frac` of its tail past the segment header — the torn-write
/// signature of a crash. With `flip` set, additionally flips a bit just
/// before the cut so the last surviving frame may be corrupt rather
/// than short (CRC must catch both identically).
fn tear_newest_segment(dir: &std::path::Path, frac: f64, flip: bool) {
    let mut segments: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy().into_owned();
            name.starts_with("wal-") && name.ends_with(".seg")
        })
        .map(|e| e.path())
        .collect();
    segments.sort();
    let Some(newest) = segments.last() else {
        return;
    };
    let bytes = std::fs::read(newest).unwrap();
    const HEADER: usize = 8;
    if bytes.len() <= HEADER {
        return;
    }
    let keep = HEADER + ((bytes.len() - HEADER) as f64 * frac) as usize;
    let mut torn = bytes[..keep].to_vec();
    if flip && keep > HEADER {
        let at = HEADER + (keep - HEADER) / 2;
        torn[at] ^= 0x20;
    }
    std::fs::write(newest, torn).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// DurableSketch<u64>: ingest with checkpoints sprinkled through the
    /// stream, crash at a random byte of the active segment (torn or
    /// bit-flipped final record), recover, and require the recovered
    /// engine to be fingerprint-identical to an uninterrupted engine
    /// over the surviving batches — then keep ingesting on both and
    /// require they stay identical.
    #[test]
    fn kill_point_recovery_is_fingerprint_identical(
        stream in proptest::collection::vec((0u64..400, 1u64..120), 400..2400),
        k in 8usize..64,
        seed in any::<u64>(),
        ckpt_every in 3usize..9,
        kill_frac in 0.0f64..=1.0,
        flip in any::<bool>(),
    ) {
        let dir = scratch("sketch-kill");
        let config = EngineConfig::new(k).seed(seed);
        const BATCH: usize = 128;
        let batches: Vec<&[(u64, u64)]> = stream.chunks(BATCH).collect();

        let (mut store, _) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        let mut batches_at_checkpoint = 0usize;
        for (i, batch) in batches.iter().enumerate() {
            store.update_batch(batch).unwrap();
            if (i + 1) % ckpt_every == 0 && i + 1 < batches.len() {
                store.checkpoint().unwrap();
                batches_at_checkpoint = i + 1;
            }
        }
        drop(store); // crash: no drain, no final checkpoint

        tear_newest_segment(&dir, kill_frac, flip);

        let (recovered, _, report) = recover_engine_readonly::<u64>(&dir).unwrap();
        let survived = batches_at_checkpoint + report.records_replayed as usize;
        prop_assert!(survived <= batches.len());
        prop_assert!(
            survived >= batches_at_checkpoint,
            "recovery lost checkpointed batches"
        );

        // The uninterrupted reference over exactly the surviving prefix.
        let mut reference: SketchEngine<u64> = config.build_engine().unwrap();
        for batch in &batches[..survived] {
            reference.update_batch(batch);
        }
        prop_assert_eq!(
            recovered.state_fingerprint(),
            reference.state_fingerprint(),
            "recovered state diverged (survived {} of {} batches, {:?})",
            survived, batches.len(), report.source
        );

        // Resume the store and finish the stream on both sides: open()
        // truncates the torn tail, appending continues cleanly, and the
        // states never diverge.
        let (mut store, resume_report) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        prop_assert_eq!(resume_report.records_replayed, report.records_replayed,
            "resume saw a different surviving tail than readonly recovery");
        for batch in &batches[survived..] {
            store.update_batch(batch).unwrap();
            reference.update_batch(batch);
        }
        prop_assert_eq!(
            store.engine().state_fingerprint(),
            reference.state_fingerprint()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Multi-shard ConcurrentSketch: ingest deterministically, snapshot
    /// the store directory as a crash image, tear the bank's shared
    /// group-commit log at a random kill point, recover the bank, and
    /// require each shard — and the Algorithm-5 merged serving view —
    /// to be fingerprint-identical to uninterrupted engines over the
    /// per-shard records that survived.
    #[test]
    fn concurrent_crash_recovery_matches_reference(
        stream in proptest::collection::vec((0u64..3_000, 1u64..60), 600..3_000),
        num_shards in 1usize..5,
        writers in 1usize..4,
        seed in any::<u64>(),
        kill_frac in 0.0f64..=1.0,
        flip in any::<bool>(),
    ) {
        let live_dir = scratch("bank-live");
        let crash_dir = scratch("bank-crash");

        let (sketch, _) = ConcurrentSketch::<u64>::builder(num_shards, 48)
            .seed(seed)
            .build_durable(&live_dir, opts(), None)
            .unwrap();
        sketch.ingest_slice_parallel(&stream, writers);
        // FIFO barrier: once the probe round completes, every enqueued
        // batch has been applied — and therefore staged for the shared
        // log. Sync so the staged frames reach the crash image.
        sketch.publish_now();
        sketch.reader().sync().unwrap();

        // Crash image: copy the store while the bank is still live, then
        // tear the newest segment of the bank-level shared log. A single
        // torn write now clips every shard's tail at once.
        copy_dir(&live_dir, &crash_dir);
        tear_newest_segment(&crash_dir, kill_frac, flip);
        drop(sketch);

        // Per-shard reference: an uninterrupted engine over the records
        // that survived in the shared WAL for that shard's stream tag
        // (no checkpoints were taken, so the log is the full history).
        let mut references: Vec<SketchEngine<u64>> = Vec::new();
        for s in 0..num_shards {
            let sdir = crash_dir.join(format!("shard-{s:04}"));
            let manifest = read_manifest(&sdir).unwrap().unwrap();
            prop_assert!(manifest.checkpoint.is_none());
            prop_assert!(manifest.shared_log, "bank shards must share one log");
            prop_assert_eq!(manifest.stream, s as u32);
            let outcome = wal::read_from::<u64>(&crash_dir, manifest.wal_start).unwrap();
            let mut engine: SketchEngine<u64> = manifest.config.build_engine().unwrap();
            for record in &outcome.records {
                if record.stream == s as u32 && record.at >= manifest.wal_start {
                    engine.update_batch(&record.batch);
                }
            }
            references.push(engine);
        }

        // Recover the bank from the crash image.
        let (mut recovered, reports) = ConcurrentSketch::<u64>::builder(num_shards, 48)
            .seed(seed)
            .build_durable(&crash_dir, opts(), None)
            .unwrap();
        for report in &reports {
            prop_assert!(matches!(
                report.source,
                RecoverySource::WalOnly | RecoverySource::Fresh
            ));
        }
        let recovered_snapshot = recovered.snapshot();
        let shards = recovered.drain();
        prop_assert_eq!(shards.len(), num_shards);
        for (s, (shard, reference)) in shards.iter().zip(&references).enumerate() {
            prop_assert_eq!(
                shard.state_fingerprint(),
                reference.state_fingerprint(),
                "shard {} diverged from its uninterrupted reference", s
            );
        }

        // The initial recovered snapshot is the Algorithm-5 merge of the
        // references, exactly as a live publish would produce it.
        let mut merged_reference: SketchEngine<u64> = EngineConfig::new(48)
            .seed(seed)
            .build_engine()
            .unwrap();
        for reference in &references {
            merged_reference.merge(reference);
        }
        prop_assert_eq!(
            recovered_snapshot.engine().state_fingerprint(),
            merged_reference.state_fingerprint(),
            "recovered serving view diverged from the merged reference"
        );
        let _ = std::fs::remove_dir_all(&live_dir);
        let _ = std::fs::remove_dir_all(&crash_dir);
    }
}

/// The serve-equivalent sealed contract at the library level: a durable
/// bank drained cleanly and reopened restores the exact sealed N with no
/// WAL replay (the drain checkpointed), and keeps accepting writes.
#[test]
fn drained_bank_reopens_exactly_without_replay() {
    let dir = scratch("sealed-reopen");
    let stream: Vec<(u64, u64)> = (0..40_000u64).map(|i| (i % 900, i % 13 + 1)).collect();
    let total: u64 = stream.iter().map(|&(_, w)| w).sum();

    let (mut sketch, _) = ConcurrentSketch::<u64>::builder(3, 64)
        .seed(11)
        .build_durable(&dir, opts(), None)
        .unwrap();
    sketch.ingest_slice_parallel(&stream, 2);
    sketch.drain();
    let sealed = sketch.snapshot();
    assert!(sealed.is_sealed());
    assert_eq!(sealed.stream_weight(), total);
    let sealed_fp = sealed.engine().state_fingerprint();
    drop(sketch);

    let (mut sketch, reports) = ConcurrentSketch::<u64>::builder(3, 64)
        .seed(11)
        .build_durable(&dir, opts(), None)
        .unwrap();
    for report in &reports {
        assert!(matches!(report.source, RecoverySource::CheckpointOnly));
        assert_eq!(report.records_replayed, 0, "clean drain needs no replay");
    }
    assert_eq!(
        sketch.snapshot().engine().state_fingerprint(),
        sealed_fp,
        "reopened bank must serve the sealed state verbatim"
    );
    sketch.ingest_slice_parallel(&stream, 1);
    sketch.drain();
    assert_eq!(sketch.snapshot().stream_weight(), 2 * total);
    let _ = std::fs::remove_dir_all(&dir);
}
