//! Differential proptests pinning the batched ingest kernel to the
//! scalar reference path, state for state.
//!
//! The ingest kernel (in-batch aggregation, multi-lane probing, wide
//! slot scans, and the low-duplication direct bypass) is an
//! optimization, not a semantic change: for every update sequence it
//! must leave the engine in **exactly** the state the one-update-at-a-
//! time scalar path produces — same table layout slot by slot, same
//! sampler state, same purge clock. That contract is what
//! `state_fingerprint()` hashes, so each test here feeds the same
//! stream both ways and compares fingerprints.
//!
//! Batch *shapes* are adversarial by construction, because the kernel's
//! branches are shape-dependent:
//! - **all-distinct** keys drive the aggregation pass to zero
//!   duplicates and (once a pass clears the sizing floor) flip the
//!   engine into the direct-bypass kernel;
//! - **all-duplicate** batches collapse to a single aggregated upsert;
//! - **clustered** keys (a tiny id range) pile many probes onto few
//!   home slots, exercising lane-conflict fallback and long wide scans;
//! - small `k` forces purges mid-batch; `grow_from_small` (the builder
//!   default) forces table growth mid-batch.
//!
//! The AVX2 and portable wide-scan implementations are cross-checked by
//! running this same suite twice in CI — once natively and once under
//! `STREAMFREQ_FORCE_PORTABLE_SCAN=1` — so both codepaths must satisfy
//! every pin here.

use proptest::prelude::*;

use streamfreq::apps::DecayedSketch;
use streamfreq::{FreqSketch, PurgePolicy};

/// Batch shapes the kernel specializes on. `Mixed` is the honest
/// middle: Zipf-ish duplication around the aggregation break-even.
#[derive(Clone, Copy, Debug)]
enum Shape {
    AllDistinct,
    AllDuplicate,
    Clustered,
    Mixed,
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::AllDistinct),
        Just(Shape::AllDuplicate),
        Just(Shape::Clustered),
        Just(Shape::Mixed),
    ]
}

/// Materializes a stream of the given shape from proptest-drawn raw
/// material. Weights stay small so purge pressure comes from counter
/// occupancy, not stream weight.
fn build_stream(shape: Shape, raw: &[(u64, u64)], salt: u64) -> Vec<(u64, u64)> {
    match shape {
        // Distinct keys spread over the full hash range: near-zero
        // in-batch duplication, the bypass regime.
        Shape::AllDistinct => raw
            .iter()
            .enumerate()
            .map(|(i, &(_, w))| (salt.wrapping_add(i as u64), w.clamp(1, 16)))
            .collect(),
        // One hot key: the whole batch aggregates to a single pair.
        Shape::AllDuplicate => raw.iter().map(|&(_, w)| (salt, w.clamp(1, 16))).collect(),
        // Keys from a range of 8 ids: probe chains stack on a handful
        // of home slots and lanes collide constantly.
        Shape::Clustered => raw
            .iter()
            .map(|&(id, w)| (salt.wrapping_add(id % 8), w.clamp(1, 16)))
            .collect(),
        Shape::Mixed => raw
            .iter()
            .map(|&(id, w)| (salt.wrapping_add(id % 64), w.clamp(1, 16)))
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Kernel vs scalar across purge and grow: for every shape, split,
    /// and policy, `update_batch` is fingerprint-identical to `update`.
    #[test]
    fn kernel_batch_matches_scalar(
        raw in proptest::collection::vec((0u64..256, 1u64..16), 1..1_500),
        shape in arb_shape(),
        k in 8usize..96,
        split in 1usize..400,
        salt in any::<u64>(),
        policy in prop_oneof![
            Just(PurgePolicy::smed()),
            Just(PurgePolicy::smin()),
            Just(PurgePolicy::GlobalMin),
        ],
    ) {
        let stream = build_stream(shape, &raw, salt);
        let mut scalar = FreqSketch::builder(k).policy(policy).build().unwrap();
        for &(item, w) in &stream {
            scalar.update(item, w);
        }
        let mut batched = FreqSketch::builder(k).policy(policy).build().unwrap();
        for chunk in stream.chunks(split) {
            batched.update_batch(chunk);
        }
        prop_assert_eq!(batched.num_purges(), scalar.num_purges());
        prop_assert_eq!(
            batched.engine().state_fingerprint(),
            scalar.engine().state_fingerprint(),
            "shape {:?}", shape
        );
    }

    /// The low-duplication bypass: streams long enough to clear the
    /// dispatch floor (4096 applied updates per aggregation pass) with
    /// all-distinct keys flip the engine onto the direct weighted
    /// kernel, and the state must still match the scalar path exactly.
    /// A trailing hot-key burst then re-measures duplication and flips
    /// dispatch back, so both transitions are covered in one run.
    #[test]
    fn bypass_kernel_matches_scalar(
        n in 9_000usize..14_000,
        k in 256usize..1024,
        salt in any::<u64>(),
        burst in 512usize..2_048,
    ) {
        let mut stream: Vec<(u64, u64)> = (0..n)
            .map(|i| (salt.wrapping_add(i as u64), 1))
            .collect();
        stream.extend((0..burst).map(|i| (salt.wrapping_add((i % 16) as u64), 2)));
        let mut scalar = FreqSketch::builder(k).build().unwrap();
        for &(item, w) in &stream {
            scalar.update(item, w);
        }
        let mut batched = FreqSketch::builder(k).build().unwrap();
        batched.update_batch(&stream);
        prop_assert_eq!(
            batched.engine().state_fingerprint(),
            scalar.engine().state_fingerprint()
        );
    }

    /// Lazy decay vs eager decay: deferring the per-epoch scale to a
    /// forward-inflated ingest must not change a single answer. The two
    /// sketches see identical (timestamp, item, weight) sequences with
    /// decay materialization forced at arbitrary points, and every
    /// estimate, bound, and the decayed stream weight must agree.
    #[test]
    fn lazy_decay_matches_eager(
        ops in proptest::collection::vec(
            (0u64..40, 1u64..200, 0u8..12),
            1..600,
        ),
        k in 8usize..64,
        den in 2u64..10,
    ) {
        // 1/den factors are the ones the lazy path actually defers
        // (other shapes silently keep eager scaling, which would make
        // this test vacuous).
        let mut eager: DecayedSketch<u64> = DecayedSketch::new(k, 4, (1, den));
        let mut lazy: DecayedSketch<u64> = DecayedSketch::new(k, 4, (1, den)).lazy();
        prop_assert!(lazy.is_lazy());
        let mut now = 0u64;
        for (i, &(item, w, dt)) in ops.iter().enumerate() {
            now += dt as u64;
            eager.record(now, item, w);
            lazy.record(now, item, w);
            if i % 97 == 96 {
                // Forced materialization mid-stream must be a no-op
                // semantically.
                lazy.materialize();
            }
        }
        prop_assert_eq!(lazy.num_ticks(), eager.num_ticks());
        prop_assert_eq!(lazy.decayed_weight(), eager.decayed_weight());
        prop_assert_eq!(lazy.maximum_error(), eager.maximum_error());
        for item in 0..40u64 {
            prop_assert_eq!(lazy.estimate(&item), eager.estimate(&item), "item {}", item);
            prop_assert_eq!(lazy.lower_bound(&item), eager.lower_bound(&item));
            prop_assert_eq!(lazy.upper_bound(&item), eager.upper_bound(&item));
        }
        lazy.check_invariants();
        eager.check_invariants();
    }
}

/// A deterministic heavyweight case kept outside proptest: a stream
/// long enough to cross several bypass re-probe windows (64 direct
/// sub-chunks between duplication re-measurements) with a duplication
/// phase change in the middle. Catches dispatch-boundary bugs that the
/// smaller random cases may miss, at a fixed cost.
#[test]
fn bypass_reprobe_boundary_matches_scalar() {
    let mut stream: Vec<(u64, u64)> = Vec::new();
    // Phase 1: 300k distinct keys — bypass engages and stays on
    // through multiple re-probe windows.
    stream.extend((0..300_000u64).map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15), 1)));
    // Phase 2: heavy duplication — the next re-measurement must switch
    // aggregation back on without perturbing state.
    stream.extend((0..100_000u64).map(|i| (i % 512, 3)));
    let k = 4_096;
    let mut scalar = FreqSketch::builder(k).build().unwrap();
    for &(item, w) in &stream {
        scalar.update(item, w);
    }
    let mut batched = FreqSketch::builder(k).build().unwrap();
    batched.update_batch(&stream);
    assert_eq!(batched.num_purges(), scalar.num_purges());
    assert_eq!(
        batched.engine().state_fingerprint(),
        scalar.engine().state_fingerprint()
    );
}
