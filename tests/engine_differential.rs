//! Differential proptests for the unified engine core: `ItemsSketch<u64>`
//! and `FreqSketch` are two thin wrappers over the same
//! `SketchEngine<u64>`, so for any update sequence they must produce
//! **identical** estimates, purge counts, and engine state — the contract
//! that lets every later optimization land once, in the engine, for all
//! sketch variants.
//!
//! State identity is checked via the engine's `state_fingerprint()`: the
//! scalar bookkeeping, the sampler state, and the table layout slot by
//! slot. Matching fingerprints mean the two sketches will also process
//! any *future* stream identically.

use proptest::prelude::*;
use std::collections::HashMap;

use streamfreq::{FreqSketch, ItemsSketch, PurgePolicy, SignedFreqSketch, SignedSketch};

fn arb_policy() -> impl Strategy<Value = PurgePolicy> {
    prop_oneof![
        Just(PurgePolicy::smed()),
        Just(PurgePolicy::smin()),
        (0.0f64..=0.98).prop_map(PurgePolicy::sample_quantile),
        (0.05f64..=1.0).prop_map(|fraction| PurgePolicy::ExactKStar { fraction }),
        Just(PurgePolicy::GlobalMin),
    ]
}

fn arb_stream() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..200, 1u64..5_000), 1..2_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scalar updates: ItemsSketch<u64> is state-for-state FreqSketch.
    #[test]
    fn items_u64_matches_freq_sketch_scalar(
        stream in arb_stream(),
        policy in arb_policy(),
        k in 4usize..64,
        seed in any::<u64>(),
    ) {
        let mut freq = FreqSketch::builder(k)
            .policy(policy)
            .seed(seed)
            .build()
            .unwrap();
        let mut items: ItemsSketch<u64> = ItemsSketch::builder(k)
            .policy(policy)
            .seed(seed)
            .build()
            .unwrap();
        for &(item, w) in &stream {
            freq.update(item, w);
            items.update(item, w);
        }
        prop_assert_eq!(items.num_purges(), freq.num_purges());
        prop_assert_eq!(items.maximum_error(), freq.maximum_error());
        prop_assert_eq!(items.stream_weight(), freq.stream_weight());
        prop_assert_eq!(items.num_counters(), freq.num_counters());
        for item in 0..200u64 {
            prop_assert_eq!(items.estimate(&item), freq.estimate(item), "item {}", item);
            prop_assert_eq!(items.lower_bound(&item), freq.lower_bound(item));
            prop_assert_eq!(items.upper_bound(&item), freq.upper_bound(item));
        }
        // The full engine state — table layout, sampler, bookkeeping —
        // is identical, so all future behaviour is too.
        prop_assert_eq!(
            items.engine().state_fingerprint(),
            freq.engine().state_fingerprint()
        );
    }

    /// Batched updates under arbitrary splits: still identical, and the
    /// fingerprint also matches the scalar-fed FreqSketch (batch is
    /// state-identical to scalar across the whole engine family).
    #[test]
    fn items_u64_matches_freq_sketch_batched(
        stream in arb_stream(),
        policy in arb_policy(),
        k in 4usize..64,
        split in 1usize..500,
    ) {
        let mut freq = FreqSketch::builder(k).policy(policy).build().unwrap();
        for &(item, w) in &stream {
            freq.update(item, w);
        }
        let mut items: ItemsSketch<u64> = ItemsSketch::builder(k).policy(policy).build().unwrap();
        for chunk in stream.chunks(split) {
            items.update_batch(chunk);
        }
        prop_assert_eq!(items.num_purges(), freq.num_purges());
        prop_assert_eq!(
            items.engine().state_fingerprint(),
            freq.engine().state_fingerprint()
        );
    }

    /// Merging: two ItemsSketch<u64> merge exactly as two FreqSketch do
    /// (same Fisher-Yates draws, same replay, same offsets).
    #[test]
    fn items_u64_merge_matches_freq_sketch_merge(
        left in arb_stream(),
        right in arb_stream(),
        k in 8usize..48,
    ) {
        let mut fa = FreqSketch::builder(k).seed(1).build().unwrap();
        let mut fb = FreqSketch::builder(k).seed(2).build().unwrap();
        let mut ia: ItemsSketch<u64> = ItemsSketch::builder(k).seed(1).build().unwrap();
        let mut ib: ItemsSketch<u64> = ItemsSketch::builder(k).seed(2).build().unwrap();
        for &(item, w) in &left {
            fa.update(item, w);
            ia.update(item, w);
        }
        for &(item, w) in &right {
            fb.update(item, w);
            ib.update(item, w);
        }
        fa.merge(&fb);
        ia.merge(&ib);
        prop_assert_eq!(
            ia.engine().state_fingerprint(),
            fa.engine().state_fingerprint()
        );
    }

    /// Batched deletions on a *generic-key* signed sketch: a
    /// deletion-heavy mixed-sign stream over String items, re-chunked
    /// arbitrarily through `update_batch`, is pinned state-for-state
    /// (both engines' fingerprints) against scalar updates, and the net
    /// bounds bracket the truth. The deletion-heavy mix matters: the
    /// negative-side engine purges too, so its sampler state and purge
    /// clock must survive the per-sign batch split exactly.
    #[test]
    fn signed_string_batched_deletions_match_scalar(
        stream in proptest::collection::vec(
            (0u64..60, 1i64..400, 0u32..100),
            1..900,
        ),
        k in 8usize..40,
        split in 1usize..250,
        seed in any::<u64>(),
    ) {
        let updates: Vec<(String, i64)> = stream
            .iter()
            // 45% deletions: enough pressure to purge the negative side.
            .map(|&(id, mag, roll)| {
                (format!("sku-{id}"), if roll < 45 { -mag } else { mag })
            })
            .collect();
        let mut scalar: SignedSketch<String> =
            SignedSketch::try_new(k, PurgePolicy::smed(), seed).unwrap();
        let mut batched: SignedSketch<String> =
            SignedSketch::try_new(k, PurgePolicy::smed(), seed).unwrap();
        let mut truth: HashMap<String, i64> = HashMap::new();
        for (item, delta) in &updates {
            scalar.update(item.clone(), *delta);
            *truth.entry(item.clone()).or_insert(0) += delta;
        }
        for chunk in updates.chunks(split) {
            batched.update_batch(chunk);
        }
        prop_assert_eq!(
            batched.additions().state_fingerprint(),
            scalar.additions().state_fingerprint()
        );
        prop_assert_eq!(
            batched.deletions().state_fingerprint(),
            scalar.deletions().state_fingerprint()
        );
        for (item, &net) in &truth {
            let (lo, hi) = batched.bounds(item);
            prop_assert!(
                lo <= net && net <= hi,
                "item {}: net {} outside [{}, {}]", item, net, lo, hi
            );
        }
    }

    /// The signed sketch built on the generic engine brackets the net
    /// truth and its batch path is state-identical to scalar feeding.
    #[test]
    fn signed_generic_batch_matches_scalar(
        stream in proptest::collection::vec((0u64..80, -300i64..300), 1..800),
        k in 8usize..48,
        split in 1usize..300,
    ) {
        let mut scalar = SignedFreqSketch::with_max_counters(k);
        let mut batched: SignedSketch<u64> = SignedSketch::with_max_counters(k);
        let mut truth: HashMap<u64, i64> = HashMap::new();
        for &(item, delta) in &stream {
            scalar.update(item, delta);
            *truth.entry(item).or_insert(0) += delta;
        }
        for chunk in stream.chunks(split) {
            batched.update_batch(chunk);
        }
        prop_assert_eq!(
            batched.additions().state_fingerprint(),
            scalar.additions().state_fingerprint()
        );
        prop_assert_eq!(
            batched.deletions().state_fingerprint(),
            scalar.deletions().state_fingerprint()
        );
        for (&item, &f) in &truth {
            let (lo, hi) = batched.bounds(&item);
            prop_assert!(lo <= f && f <= hi, "item {}: {} outside [{}, {}]", item, f, lo, hi);
        }
    }
}
