//! Cross-crate accuracy tests: the paper's error guarantees, checked for
//! every algorithm on realistic workloads (synthetic packet trace and
//! Zipf streams).

use streamfreq::baselines::{ExactCounter, Rbmc, SpaceSavingHeap};
use streamfreq::workloads::{CaidaConfig, SyntheticCaida, Zipf};
use streamfreq::{ErrorType, FreqSketch, FrequencyEstimator, PurgePolicy};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn caida_stream(updates: usize) -> Vec<(u64, u64)> {
    SyntheticCaida::materialize(&CaidaConfig {
        num_updates: updates,
        num_flows: (updates / 40).max(500) as u64,
        alpha: 1.1,
        seed: 99,
    })
}

fn zipf_stream(updates: usize, alpha: f64, seed: u64) -> Vec<(u64, u64)> {
    let z = Zipf::new(1 << 22, alpha);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..updates)
        .map(|_| (z.sample(&mut rng), rng.gen_range(1..=1000)))
        .collect()
}

fn truth_of(stream: &[(u64, u64)]) -> ExactCounter {
    let mut t = ExactCounter::new();
    for &(i, w) in stream {
        t.update(i, w);
    }
    t
}

/// Lemma 4 / §2.3.1: the a-posteriori `maximum_error` (offset) brackets
/// every estimate, for every purge policy, on the packet workload.
#[test]
fn offset_bound_is_exact_for_all_policies() {
    let stream = caida_stream(300_000);
    let truth = truth_of(&stream);
    for policy in [
        PurgePolicy::smed(),
        PurgePolicy::smin(),
        PurgePolicy::sample_quantile(0.9),
        PurgePolicy::med(),
        PurgePolicy::GlobalMin,
    ] {
        let mut s = FreqSketch::builder(512).policy(policy).build().unwrap();
        for &(i, w) in &stream {
            s.update(i, w);
        }
        assert!(s.num_purges() > 0, "{policy:?}: workload must force purges");
        let offset = s.maximum_error();
        for (item, f) in truth.iter() {
            assert!(s.lower_bound(item) <= f, "{policy:?}: lb violated");
            assert!(s.upper_bound(item) >= f, "{policy:?}: ub violated");
            assert!(
                s.upper_bound(item) - s.lower_bound(item) <= offset,
                "{policy:?}: interval wider than offset"
            );
        }
    }
}

/// Theorem 4 with j = 0: max error ≤ N/(0.33·k) for SMED whp.
#[test]
fn smed_a_priori_bound_holds_on_zipf() {
    for (alpha, seed) in [(0.8, 1u64), (1.1, 2), (1.5, 3)] {
        let stream = zipf_stream(400_000, alpha, seed);
        let truth = truth_of(&stream);
        let k = 256;
        let mut s = FreqSketch::builder(k)
            .policy(PurgePolicy::smed())
            .build()
            .unwrap();
        for &(i, w) in &stream {
            s.update(i, w);
        }
        let bound = (truth.stream_weight() as f64 / (0.33 * k as f64)).ceil() as u64;
        let err = truth.max_abs_error(|i| s.estimate(i));
        assert!(
            err <= bound,
            "alpha {alpha}: error {err} exceeds N/(0.33k) = {bound}"
        );
    }
}

/// Theorem 2 tail guarantee: on a skewed stream the error is bounded by
/// the *residual* weight, far below N/k.
#[test]
fn tail_guarantee_exploits_skew() {
    // Extremely skewed: two items hold 90% of the mass.
    let mut stream: Vec<(u64, u64)> = Vec::new();
    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..10_000 {
        stream.push((1, 450));
        stream.push((2, 450));
        stream.push((rng.gen_range(100..10_000), 100));
    }
    let truth = truth_of(&stream);
    let k = 128;
    let mut s = FreqSketch::builder(k)
        .policy(PurgePolicy::smed())
        .build()
        .unwrap();
    for &(i, w) in &stream {
        s.update(i, w);
    }
    let n = truth.stream_weight();
    let freqs = truth.sorted_frequencies();
    let j = 2;
    let n_res: u64 = freqs.iter().skip(j).sum();
    let tail_bound = n_res / ((0.33 * k as f64) as u64 - j as u64);
    let naive_bound = n / ((0.33 * k as f64) as u64);
    let err = truth.max_abs_error(|i| s.estimate(i));
    assert!(err <= tail_bound, "error {err} > tail bound {tail_bound}");
    assert!(
        tail_bound * 5 < naive_bound,
        "test not meaningful: tail bound must be much tighter"
    );
}

/// §4.2: as k grows past the distinct count, every algorithm becomes
/// exact and their errors converge to zero.
#[test]
fn algorithms_converge_with_k() {
    let stream = zipf_stream(100_000, 1.2, 5);
    let truth = truth_of(&stream);
    let distinct = truth.num_distinct();
    let k = distinct + 10;
    let mut smed = FreqSketch::builder(k).build().unwrap();
    let mut rbmc = Rbmc::new(k);
    let mut mhe = SpaceSavingHeap::new(k);
    for &(i, w) in &stream {
        smed.update(i, w);
        rbmc.update(i, w);
        mhe.update(i, w);
    }
    for (item, f) in truth.iter() {
        assert_eq!(smed.estimate(item), f, "SMED must be exact at k > distinct");
        assert_eq!(rbmc.estimate(item), f, "RBMC must be exact at k > distinct");
        assert_eq!(mhe.estimate(item), f, "MHE must be exact at k > distinct");
    }
}

/// The reporting contracts against exact ground truth on the packet trace.
#[test]
fn heavy_hitter_contracts_on_packet_trace() {
    let stream = caida_stream(400_000);
    let truth = truth_of(&stream);
    let mut s = FreqSketch::builder(1024).build().unwrap();
    for &(i, w) in &stream {
        s.update(i, w);
    }
    let n = truth.stream_weight();
    for phi in [0.001, 0.01, 0.05] {
        // thresholds are clamped to the summary's error level by the query
        let threshold = streamfreq::phi_threshold(phi, n).max(s.maximum_error());
        let nfn: Vec<u64> = s
            .heavy_hitters(phi, ErrorType::NoFalseNegatives)
            .iter()
            .map(|r| r.item)
            .collect();
        for (item, f) in truth.iter() {
            if f > threshold {
                assert!(nfn.contains(&item), "phi={phi}: missed true HH {item}");
            }
        }
        for row in s.heavy_hitters(phi, ErrorType::NoFalsePositives) {
            assert!(
                truth.estimate(row.item) > threshold,
                "phi={phi}: false positive {}",
                row.item
            );
        }
    }
}

/// Figure 2's error ordering at equal counters: SMED's error may exceed
/// the isomorphic trio (SMIN ≈ RBMC ≈ MHE), but by a bounded factor, and
/// doubling SMED's counters closes the gap (§4.3).
#[test]
fn error_ordering_and_recovery_by_doubling() {
    let stream = caida_stream(500_000);
    let truth = truth_of(&stream);
    let k = 512;
    let run_sketch = |k: usize, policy: PurgePolicy| {
        let mut s = FreqSketch::builder(k).policy(policy).build().unwrap();
        for &(i, w) in &stream {
            s.update(i, w);
        }
        truth.max_abs_error(|i| s.estimate(i))
    };
    let smed = run_sketch(k, PurgePolicy::smed());
    let smin = run_sketch(k, PurgePolicy::smin());
    let smed_double = run_sketch(2 * k, PurgePolicy::smed());
    let mut rbmc = Rbmc::new(k);
    for &(i, w) in &stream {
        rbmc.update(i, w);
    }
    let rbmc_err = truth.max_abs_error(|i| rbmc.estimate(i));

    assert!(smin <= smed, "SMIN must not err more than SMED");
    assert!(
        smed <= rbmc_err.max(1) * 6,
        "SMED error {smed} implausibly above RBMC {rbmc_err}"
    );
    assert!(
        smed_double <= smin.max(1) * 2,
        "doubling k must bring SMED ({smed_double}) into SMIN's range ({smin})"
    );
}
