//! Differential and concurrency tests for the serving layer
//! (`ConcurrentSketch`): the channel-fed concurrent pipeline must leave
//! **exactly** the state a sequential ingest leaves — for every writer
//! count — and its snapshots must honour the bounded-staleness and
//! certified-bounds contracts while ingestion is running.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use streamfreq::{ConcurrentSketch, ErrorType, PurgePolicy, ShardedSketch};

fn arb_policy() -> impl Strategy<Value = PurgePolicy> {
    prop_oneof![
        Just(PurgePolicy::smed()),
        Just(PurgePolicy::smin()),
        (0.0f64..=0.98).prop_map(PurgePolicy::sample_quantile),
        Just(PurgePolicy::GlobalMin),
    ]
}

fn arb_stream() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..400, 1u64..2_000), 1..3_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The drain-equivalence contract: after a full drain, every shard
    /// engine is fingerprint-identical to a **sequential**
    /// `ShardedSketch::update_batch` ingest of the same bank
    /// configuration — independent of the writer thread count — and the
    /// sealed merged snapshot equals `ShardedSketch::merged()`.
    #[test]
    fn drained_state_is_writer_count_invariant(
        stream in arb_stream(),
        policy in arb_policy(),
        num_shards in 1usize..5,
        k in 8usize..48,
        seed in any::<u64>(),
    ) {
        let mut reference: ShardedSketch<u64> = ShardedSketch::builder(num_shards, k)
            .policy(policy)
            .seed(seed)
            .build()
            .unwrap();
        reference.update_batch(&stream);
        let reference_merged = reference.merged();

        for writers in [1usize, 2, 8] {
            let mut concurrent: ConcurrentSketch<u64> =
                ConcurrentSketch::builder(num_shards, k)
                    .policy(policy)
                    .seed(seed)
                    .build()
                    .unwrap();
            concurrent.ingest_slice_parallel(&stream, writers);
            let shards = concurrent.drain();
            prop_assert_eq!(shards.len(), num_shards);
            for (s, (concurrent_shard, sequential_shard)) in
                shards.iter().zip(reference.shards()).enumerate()
            {
                prop_assert_eq!(
                    concurrent_shard.state_fingerprint(),
                    sequential_shard.state_fingerprint(),
                    "shard {} diverged at {} writers", s, writers
                );
            }
            let sealed = concurrent.snapshot();
            prop_assert!(sealed.is_sealed());
            prop_assert_eq!(
                sealed.engine().state_fingerprint(),
                reference_merged.state_fingerprint(),
                "sealed merged snapshot diverged at {} writers", writers
            );
        }
    }

    /// Mid-stream snapshots cover a prefix of the logical stream, so
    /// their certified lower bounds can never exceed an item's final
    /// true frequency, and the snapshot stream weight never exceeds the
    /// true total.
    #[test]
    fn snapshot_bounds_are_prefix_certified(
        stream in arb_stream(),
        num_shards in 1usize..4,
    ) {
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(item, w) in &stream {
            *truth.entry(item).or_insert(0) += w;
        }
        let total: u64 = truth.values().sum();

        let mut sketch: ConcurrentSketch<u64> =
            ConcurrentSketch::builder(num_shards, 32).build().unwrap();
        // Ingest from a scoped writer while the main thread publishes
        // and queries snapshots.
        std::thread::scope(|scope| {
            let sketch_ref = &sketch;
            let done = scope.spawn(move || {
                sketch_ref.ingest_slice_parallel(&stream, 2);
            });
            for _ in 0..4 {
                let snap = sketch_ref.publish_now();
                assert!(snap.stream_weight() <= total);
                for row in snap.top_k(8) {
                    let f = truth.get(&row.item).copied().unwrap_or(0);
                    assert!(
                        row.lower_bound <= f,
                        "snapshot lower bound {} exceeds final truth {f}",
                        row.lower_bound
                    );
                }
            }
            done.join().unwrap();
        });
        let shards = sketch.drain();
        let drained_total: u64 = shards.iter().map(|s| s.stream_weight()).sum();
        prop_assert_eq!(drained_total, total);
        prop_assert_eq!(sketch.snapshot().stream_weight(), total);
    }
}

/// The bounded-staleness assertion: a snapshot published after a
/// writer's `flush` returned covers at least everything enqueued at
/// that point — even while another thread keeps writing.
#[test]
fn snapshots_cover_all_weight_enqueued_before_publish() {
    let sketch: ConcurrentSketch<u64> = ConcurrentSketch::builder(4, 128).build().unwrap();
    let reader = sketch.reader();
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let sketch_ref = &sketch;
        let stop_writer = Arc::clone(&stop);
        scope.spawn(move || {
            let mut writer = sketch_ref.writer();
            let mut i = 0u64;
            while !stop_writer.load(Ordering::SeqCst) {
                writer.write(i % 500, 3);
                i += 1;
                if i.is_multiple_of(257) {
                    writer.flush();
                }
            }
        });

        let mut last_epoch = 0;
        for _ in 0..20 {
            // `enqueued_weight` is sampled *before* the probe round, so
            // the resulting snapshot must dominate it.
            let enqueued = reader.enqueued_weight();
            let snap = sketch.publish_now();
            assert!(
                snap.stream_weight() >= enqueued,
                "snapshot N {} < weight {} enqueued before publish",
                snap.stream_weight(),
                enqueued
            );
            assert!(snap.epoch() > last_epoch, "epochs must advance");
            last_epoch = snap.epoch();
            std::thread::sleep(Duration::from_millis(1));
        }
        stop.store(true, Ordering::SeqCst);
    });
}

/// Free-form writers from many threads: no ordering contract, but the
/// drained totals and certified bounds must still hold against the
/// multiset of updates.
#[test]
fn racing_writers_keep_certified_bounds() {
    let mut sketch: ConcurrentSketch<u64> = ConcurrentSketch::builder(3, 64)
        .channel_capacity(2)
        .build()
        .unwrap();
    let writers = 4u64;
    let per_writer = 20_000u64;
    std::thread::scope(|scope| {
        for w in 0..writers {
            let mut writer = sketch.writer();
            scope.spawn(move || {
                for i in 0..per_writer {
                    // Each thread hammers a shared hot set plus its own
                    // cold tail, racing the same shards.
                    let item = if i % 3 == 0 {
                        w
                    } else {
                        100 + (i * writers + w) % 900
                    };
                    writer.write(item, 2);
                }
            });
        }
    });
    let shards = sketch.drain();
    let total: u64 = shards.iter().map(|s| s.stream_weight()).sum();
    assert_eq!(total, writers * per_writer * 2);
    let snap = sketch.snapshot();
    assert!(snap.is_sealed());
    assert_eq!(snap.stream_weight(), total);
    // Hot items (each w in 0..writers has ≥ per_writer/3 · 2 weight)
    // must be bracketed.
    for w in 0..writers {
        let f = per_writer.div_ceil(3) * 2;
        assert!(snap.upper_bound(&w) >= f, "ub for hot item {w}");
    }
    let hh = snap.heavy_hitters(0.05, ErrorType::NoFalseNegatives);
    for w in 0..writers {
        assert!(
            hh.iter().any(|r| r.item == w),
            "hot item {w} missing from snapshot heavy hitters"
        );
    }
}

/// Queries served from snapshots keep working (on the sealed view)
/// after a graceful drain, and writer creation is refused.
#[test]
#[should_panic(expected = "after drain")]
fn writer_after_drain_is_refused() {
    let mut sketch: ConcurrentSketch<u64> = ConcurrentSketch::builder(2, 16).build().unwrap();
    sketch.drain();
    let _ = sketch.writer();
}
