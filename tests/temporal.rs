//! Integration tests for the temporal layer: the engine's
//! counter-scaling hook, the time-fading `DecayedSketch`, and the
//! generic `WindowedStore<K>` — plus the workload generator that makes
//! recency observable (Zipf with a drifting hot set).

use proptest::prelude::*;
use std::collections::HashMap;

use streamfreq::apps::{DecayedSketch, WindowedStore};
use streamfreq::table::LpTable;
use streamfreq::workloads::{drifting_item_id, materialize_drifting_zipf, DriftConfig};
use streamfreq::{ErrorType, PurgePolicy, SketchEngine};

/// A random batch of upserts that keeps a 256-slot table within its 3/4
/// capacity discipline.
fn arb_fill() -> impl Strategy<Value = Vec<(u64, i64)>> {
    proptest::collection::vec((0u64..2_000, 1i64..50_000), 1..192)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The fused scaling compaction leaves the table **layout-canonical**:
    /// its slot-by-slot fingerprint equals a fresh FCFS build over the
    /// scaled counter set (inserted in the same ring scan order the
    /// compaction pass uses — from the first empty slot onward), and no
    /// zero counters survive.
    #[test]
    fn scale_values_is_layout_canonical(
        fill in arb_fill(),
        num in 0u64..8,
        den in 1u64..8,
    ) {
        // Only down-scaling is defined; clamp instead of discarding cases
        // (the shimmed proptest has no prop_assume).
        let num = num.min(den);
        let mut table: LpTable = LpTable::with_lg_len(8);
        let cap = table.len() * 3 / 4;
        for &(key, v) in &fill {
            if table.num_active() < cap || table.get(&key).is_some() {
                table.adjust_or_insert(key, v);
            }
        }
        // Capture the pre-scale layout: slot → (key, value).
        let len = table.len();
        let pre: HashMap<usize, (u64, i64)> = table
            .iter_with_slots()
            .map(|(slot, &key, value)| (slot, (key, value)))
            .collect();
        let first_empty = (0..len)
            .find(|slot| !pre.contains_key(slot))
            .expect("capacity discipline leaves empty slots");

        table.scale_values(num, den);
        table.check_invariants();
        for (_, value) in table.iter() {
            prop_assert!(value > 0, "zero counters must be dropped");
        }

        // Fresh rebuild from the scaled counter set, in the canonical
        // ring order (runs are processed exactly as the sweep saw them).
        let mut fresh: LpTable = LpTable::with_lg_len(8);
        for offset in 1..=len {
            let slot = (first_empty + offset) & (len - 1);
            if let Some(&(key, value)) = pre.get(&slot) {
                let scaled = (value as u128 * num as u128 / den as u128) as i64;
                if scaled > 0 {
                    fresh.adjust_or_insert(key, scaled);
                }
            }
        }
        prop_assert_eq!(
            table.layout_fingerprint(),
            fresh.layout_fingerprint(),
            "post-scale layout must equal a fresh rebuild"
        );
    }

    /// Engine-level scaling under real traffic (growth + purges): the
    /// invariants hold, estimates shrink by exactly λ (floored) for
    /// tracked items, and the certified bounds survive.
    #[test]
    fn engine_scale_counters_respects_bounds(
        stream in proptest::collection::vec((0u64..300, 1u64..2_000), 1..1_500),
        k in 8usize..64,
        num in 1u64..6,
        den in 1u64..6,
    ) {
        let num = num.min(den);
        let mut engine: SketchEngine<u64> = SketchEngine::builder(k).build().unwrap();
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(item, w) in &stream {
            engine.update(item, w);
            *truth.entry(item).or_insert(0) += w;
        }
        let before: Vec<(u64, u64)> = engine.counters().map(|(&i, c)| (i, c)).collect();
        engine.scale_counters(num, den);
        engine.check_invariants();
        for (item, count) in before {
            let scaled = (count as u128 * num as u128 / den as u128) as u64;
            prop_assert_eq!(engine.lower_bound(&item), scaled, "item {}", item);
        }
        for (&item, &f) in &truth {
            let decayed = f as f64 * num as f64 / den as f64;
            prop_assert!(engine.lower_bound(&item) as f64 <= decayed + 1e-9);
            prop_assert!(engine.upper_bound(&item) as f64 >= decayed - 1e-9);
        }
    }
}

/// The decayed sketch ranks a recently-hot item above a stale one whose
/// *exact global count* is higher: a stale burst rides a drifting-Zipf
/// background stream, against steady recent traffic worth far less in
/// total. Exact counting ranks the burst first; time fading must not.
#[test]
fn decayed_ranks_recent_over_stale_where_exact_disagrees() {
    let config = DriftConfig {
        updates: 120_000,
        universe: 1 << 16,
        alpha: 1.2,
        epochs: 8,
        epoch_len: 100,
        hot_shift: 5_000,
        max_weight: 10,
        seed: 41,
    };
    let mut stream = materialize_drifting_zipf(&config);
    // Two explicit contenders on top of the background traffic. Their
    // ids come from the generator's own mapping at extreme ranks, so
    // they collide with (essentially) no background mass.
    let stale = drifting_item_id(&config, 0, config.universe);
    let recent = drifting_item_id(&config, 0, config.universe - 1);
    stream.push((0, stale, 50_000)); // epoch-0 burst
    for epoch in [5u64, 6, 7] {
        stream.push((epoch * 100, recent, 3_000)); // steady late traffic
    }
    stream.sort_by_key(|&(t, _, _)| t); // stable: per-tick order kept

    let mut exact: HashMap<u64, u64> = HashMap::new();
    let mut sketch: DecayedSketch<u64> = DecayedSketch::new(256, 100, (1, 2));
    for &(t, item, w) in &stream {
        sketch.record(t, item, w);
        *exact.entry(item).or_insert(0) += w;
    }
    assert!(sketch.engine().num_purges() > 0, "must exercise purging");
    assert!(
        exact[&stale] > exact[&recent],
        "exact counting must rank the stale burst higher \
         (stale {} vs recent {})",
        exact[&stale],
        exact[&recent]
    );
    // Decayed view at epoch 7 (λ = 1/2): stale ≈ 50000/128 < 400, recent
    // ≈ 3000/4 + 3000/2 + 3000 = 5250.
    assert!(
        sketch.estimate(&recent) > sketch.estimate(&stale),
        "decayed sketch must rank the recent item higher \
         (recent {} vs stale {})",
        sketch.estimate(&recent),
        sketch.estimate(&stale)
    );
    // The reversal also shows up in the ranked report.
    let top = sketch.top_k(sketch.engine().num_counters());
    let rank_of = |item: u64| top.iter().position(|r| r.item == item);
    let recent_rank = rank_of(recent).expect("recent item tracked");
    // (If `stale` decayed out of the summary entirely, that's stronger
    // still — nothing to compare.)
    if let Some(stale_rank) = rank_of(stale) {
        assert!(recent_rank < stale_rank, "recent must outrank stale");
    }
}

/// Generic windowed store: u64 and String keys, retention-bounded, with
/// range-merge results bracketed by certified bounds.
#[test]
fn windowed_store_generic_keys_and_retention() {
    // u64 store with retention.
    let mut numeric: WindowedStore<u64> = WindowedStore::new(100, 64).with_retention(4);
    let mut truth: HashMap<u64, u64> = HashMap::new();
    for tick in 0..10u64 {
        let batch: Vec<(u64, u64)> = (0..800u64)
            .map(|i| ((i * 7 + tick) % 120, i % 9 + 1))
            .collect();
        numeric.record_batch(tick * 100, &batch);
        if tick >= 5 {
            // Only ticks surviving retention count toward the truth of
            // the retained-range query below.
            for &(item, w) in &batch {
                *truth.entry(item).or_insert(0) += w;
            }
        }
    }
    assert_eq!(numeric.num_closed_windows(), 4);
    assert_eq!(numeric.evicted_windows(), 5);
    let merged = numeric.query_range(500, 1_000).unwrap().expect("retained");
    for (&item, &f) in &truth {
        assert!(merged.lower_bound(&item) <= f, "item {item}");
        assert!(merged.upper_bound(&item) >= f, "item {item}");
    }
    assert!(numeric.query_range(0, 500).unwrap().is_none(), "evicted");

    // String store: same machinery, by-value keys, roundtrip to bytes.
    let mut routes: WindowedStore<String> =
        WindowedStore::with_policy(60, 32, PurgePolicy::smin()).with_retention(8);
    for minute in 0..6u64 {
        let batch: Vec<(String, u64)> = (0..500u64)
            .map(|i| (format!("route-{}", i % 25), i % 4 + 1))
            .collect();
        routes.record_batch(minute * 60, &batch);
    }
    let bytes = routes.serialize_to_bytes();
    let restored = WindowedStore::<String>::deserialize_from_bytes(&bytes).unwrap();
    let merged = restored.query_range(0, 360).unwrap().expect("data");
    let single = restored.query_range(120, 180).unwrap().expect("window 2");
    assert_eq!(merged.stream_weight(), 6 * single.stream_weight());
    let hh = merged.heavy_hitters(0.02, ErrorType::NoFalseNegatives);
    assert!(!hh.is_empty(), "heavy routes must be reported");
}
