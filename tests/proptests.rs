//! Property-based tests of the core invariants, over arbitrary streams
//! and arbitrary sketch configurations.

use proptest::prelude::*;
use std::collections::HashMap;

use streamfreq::baselines::ExactCounter;
use streamfreq::{FreqSketch, FrequencyEstimator, PurgePolicy, ShardedSketch};

fn arb_policy() -> impl Strategy<Value = PurgePolicy> {
    prop_oneof![
        Just(PurgePolicy::smed()),
        Just(PurgePolicy::smin()),
        (0.0f64..=0.98).prop_map(PurgePolicy::sample_quantile),
        (0.05f64..=1.0).prop_map(|fraction| PurgePolicy::ExactKStar { fraction }),
        Just(PurgePolicy::GlobalMin),
    ]
}

fn arb_stream() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..200, 1u64..5_000), 1..2_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fundamental contract: for any stream, any policy, any capacity,
    /// `lower_bound ≤ f ≤ upper_bound` and `ub − lb ≤ maximum_error`.
    #[test]
    fn bounds_always_bracket_truth(
        stream in arb_stream(),
        policy in arb_policy(),
        k in 4usize..64,
        seed in any::<u64>(),
    ) {
        let mut sketch = FreqSketch::builder(k).policy(policy).seed(seed).build().unwrap();
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(item, w) in &stream {
            sketch.update(item, w);
            *truth.entry(item).or_insert(0) += w;
        }
        sketch.check_invariants();
        let offset = sketch.maximum_error();
        for (&item, &f) in &truth {
            let lb = sketch.lower_bound(item);
            let ub = sketch.upper_bound(item);
            prop_assert!(lb <= f, "lb {lb} > f {f} for item {item}");
            prop_assert!(ub >= f, "ub {ub} < f {f} for item {item}");
            prop_assert!(ub - lb <= offset);
        }
        // Untracked items (estimate 0) must have true frequency ≤ offset.
        for (&item, &f) in &truth {
            if sketch.estimate(item) == 0 {
                prop_assert!(f <= offset, "evicted item {item} had f {f} > offset {offset}");
            }
        }
    }

    /// Stream-weight bookkeeping is exact under any update sequence.
    #[test]
    fn stream_weight_is_exact(stream in arb_stream(), k in 4usize..32) {
        let mut sketch = FreqSketch::builder(k).build().unwrap();
        let mut n = 0u64;
        for &(item, w) in &stream {
            sketch.update(item, w);
            n += w;
        }
        prop_assert_eq!(sketch.stream_weight(), n);
        prop_assert_eq!(sketch.num_updates(), stream.len() as u64);
    }

    /// Merging two sketches preserves the bracket contract on the union.
    #[test]
    fn merge_preserves_bounds(
        left in arb_stream(),
        right in arb_stream(),
        k in 8usize..48,
    ) {
        let mut a = FreqSketch::builder(k).seed(1).build().unwrap();
        let mut b = FreqSketch::builder(k).seed(2).build().unwrap();
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(item, w) in &left {
            a.update(item, w);
            *truth.entry(item).or_insert(0) += w;
        }
        for &(item, w) in &right {
            b.update(item, w);
            *truth.entry(item).or_insert(0) += w;
        }
        a.merge(&b);
        a.check_invariants();
        for (&item, &f) in &truth {
            prop_assert!(a.lower_bound(item) <= f);
            prop_assert!(a.upper_bound(item) >= f);
        }
        prop_assert_eq!(
            a.stream_weight(),
            truth.values().sum::<u64>()
        );
    }

    /// Codec roundtrip: any sketch state survives serialization exactly,
    /// including continued updating.
    #[test]
    fn codec_roundtrip_any_state(
        stream in arb_stream(),
        policy in arb_policy(),
        k in 4usize..64,
        extra in proptest::collection::vec((0u64..200, 1u64..100), 0..50),
    ) {
        let mut sketch = FreqSketch::builder(k).policy(policy).build().unwrap();
        for &(item, w) in &stream {
            sketch.update(item, w);
        }
        let bytes = sketch.serialize_to_bytes();
        let mut restored = FreqSketch::deserialize_from_bytes(&bytes).unwrap();
        prop_assert_eq!(restored.maximum_error(), sketch.maximum_error());
        prop_assert_eq!(restored.num_counters(), sketch.num_counters());
        for item in 0..200u64 {
            prop_assert_eq!(restored.estimate(item), sketch.estimate(item));
        }
        // continued updates stay bit-identical
        for &(item, w) in &extra {
            sketch.update(item, w);
            restored.update(item, w);
        }
        prop_assert_eq!(restored.maximum_error(), sketch.maximum_error());
        for item in 0..200u64 {
            prop_assert_eq!(restored.estimate(item), sketch.estimate(item));
        }
    }

    /// Corrupted or truncated encodings never panic — they error.
    #[test]
    fn codec_rejects_mutations_gracefully(
        stream in proptest::collection::vec((0u64..50, 1u64..100), 1..100),
        mutation_pos in any::<usize>(),
        mutation_val in any::<u8>(),
        truncate_to in any::<usize>(),
    ) {
        let mut sketch = FreqSketch::builder(16).build().unwrap();
        for &(item, w) in &stream {
            sketch.update(item, w);
        }
        let bytes = sketch.serialize_to_bytes();
        // mutate one byte
        let mut mutated = bytes.clone();
        let pos = mutation_pos % mutated.len();
        mutated[pos] ^= mutation_val | 1;
        let _ = FreqSketch::deserialize_from_bytes(&mutated); // must not panic
        // truncate
        let cut = truncate_to % bytes.len();
        let result = FreqSketch::deserialize_from_bytes(&bytes[..cut]);
        prop_assert!(result.is_err(), "truncated encoding accepted");
    }

    /// The update path is permutation-insensitive for the exact regime
    /// (no purges): any order of the same updates gives identical state.
    #[test]
    fn exact_regime_is_order_insensitive(
        mut stream in proptest::collection::vec((0u64..30, 1u64..100), 1..200),
    ) {
        let run = |updates: &[(u64, u64)]| {
            let mut s = FreqSketch::builder(64).build().unwrap();
            for &(item, w) in updates {
                s.update(item, w);
            }
            s
        };
        let a = run(&stream);
        stream.reverse();
        let b = run(&stream);
        prop_assert_eq!(a.maximum_error(), 0);
        for item in 0..30u64 {
            prop_assert_eq!(a.estimate(item), b.estimate(item));
        }
    }

    /// The batch update path is *state-identical* to scalar updates for
    /// any stream, any policy, any capacity, and any split of the stream
    /// into `update_batch` calls: same estimates, same offset, same
    /// bounds — in fact the entire wire encoding (counters, slot layout,
    /// sampler state) matches byte for byte.
    #[test]
    fn update_batch_any_split_matches_scalar(
        stream in arb_stream(),
        policy in arb_policy(),
        k in 4usize..64,
        split_seed in any::<u64>(),
    ) {
        let mut scalar = FreqSketch::builder(k).policy(policy).build().unwrap();
        for &(item, w) in &stream {
            scalar.update(item, w);
        }
        let mut batched = FreqSketch::builder(k).policy(policy).build().unwrap();
        let mut rest: &[(u64, u64)] = &stream;
        let mut x = split_seed | 1;
        while !rest.is_empty() {
            // xorshift-driven arbitrary split points, including size 0.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let take = (x as usize % (rest.len() + 1)).min(rest.len());
            let (chunk, tail) = rest.split_at(take.max(1).min(rest.len()));
            batched.update_batch(chunk);
            rest = tail;
        }
        batched.check_invariants();
        prop_assert_eq!(batched.maximum_error(), scalar.maximum_error());
        prop_assert_eq!(batched.stream_weight(), scalar.stream_weight());
        prop_assert_eq!(batched.num_updates(), scalar.num_updates());
        for item in 0..200u64 {
            prop_assert_eq!(batched.estimate(item), scalar.estimate(item));
            prop_assert_eq!(batched.lower_bound(item), scalar.lower_bound(item));
            prop_assert_eq!(batched.upper_bound(item), scalar.upper_bound(item));
        }
        prop_assert_eq!(batched.serialize_to_bytes(), scalar.serialize_to_bytes());
    }

    /// A sharded bank answers within the certified bounds for any stream
    /// and thread count, its state is thread-count-independent, and its
    /// Algorithm-5 merge stays within the Theorem 5 error budget.
    #[test]
    fn sharded_matches_merged_within_theorem5(
        stream in arb_stream(),
        shards in 1usize..6,
        k in 8usize..48,
        threads in 1usize..5,
    ) {
        let mut bank = ShardedSketch::builder(shards, k).seed(3).build().unwrap();
        bank.ingest_parallel(&stream, threads);
        bank.check_invariants();
        let mut reference = ShardedSketch::builder(shards, k).seed(3).build().unwrap();
        for &(item, w) in &stream {
            reference.update(item, w);
        }
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(item, w) in &stream {
            *truth.entry(item).or_insert(0) += w;
        }
        // Parallel ingestion is deterministic: identical to scalar routing.
        for (a, b) in bank.shards().iter().zip(reference.shards()) {
            prop_assert_eq!(a.serialize_to_bytes(), b.serialize_to_bytes());
        }
        // The live bank brackets the truth per item.
        for (&item, &f) in &truth {
            prop_assert!(bank.lower_bound(&item) <= f);
            prop_assert!(bank.upper_bound(&item) >= f);
        }
        // And the single merged export obeys Theorem 5.
        let merged = bank.merged();
        prop_assert_eq!(merged.stream_weight(), bank.stream_weight());
        for (&item, &f) in &truth {
            prop_assert!(merged.lower_bound(&item) <= f);
            prop_assert!(merged.upper_bound(&item) >= f);
        }
        prop_assert!(merged.maximum_error() <= merged.a_priori_error(merged.stream_weight()));
    }

    /// Heavy-hitter reporting contracts hold for arbitrary thresholds.
    #[test]
    fn reporting_contracts(
        stream in arb_stream(),
        k in 8usize..64,
        phi in 0.0f64..=1.0,
    ) {
        let mut sketch = FreqSketch::builder(k).build().unwrap();
        let mut exact = ExactCounter::new();
        for &(item, w) in &stream {
            sketch.update(item, w);
            exact.update(item, w);
        }
        let n = exact.stream_weight();
        // The query clamps thresholds to the summary's error level (the
        // summary cannot enumerate items inside its error band).
        let threshold = streamfreq::phi_threshold(phi, n).max(sketch.maximum_error());
        let nfn: Vec<u64> = sketch
            .heavy_hitters(phi, streamfreq::ErrorType::NoFalseNegatives)
            .iter().map(|r| r.item).collect();
        for (item, f) in exact.iter() {
            if f > threshold {
                prop_assert!(nfn.contains(&item), "missed item {item} with f {f}");
            }
        }
        for row in sketch.heavy_hitters(phi, streamfreq::ErrorType::NoFalsePositives) {
            prop_assert!(
                exact.estimate(row.item) > threshold,
                "false positive {} (f {} ≤ {threshold})",
                row.item, exact.estimate(row.item)
            );
        }
    }
}

/// Hostile-input hardening: corrupting an encoded sketch must never
/// panic the decoder, truncation must always be rejected, and the
/// CRC-framed checkpoint format (the WAL/persistence safety net) must
/// reject *every* corruption — a flipped byte cannot silently decode
/// into a plausible-but-wrong state.
mod corruption {
    use proptest::prelude::*;
    use streamfreq::persist::checkpoint::{decode_checkpoint, encode_checkpoint};
    use streamfreq::{FreqSketch, ItemsSketch, PurgePolicy};

    fn arb_policy() -> impl Strategy<Value = PurgePolicy> {
        prop_oneof![
            Just(PurgePolicy::smed()),
            Just(PurgePolicy::smin()),
            Just(PurgePolicy::GlobalMin),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        #[test]
        fn mutated_sketch_bytes_never_panic_and_tears_always_err(
            stream in proptest::collection::vec((0u64..300, 1u64..500), 1..800),
            policy in arb_policy(),
            k in 4usize..48,
            seed in any::<u64>(),
            cut_frac in 0.0f64..=1.0,
            flip_frac in 0.0f64..=1.0,
            flip_bit in 0u8..8,
        ) {
            let mut sketch = FreqSketch::builder(k).policy(policy).seed(seed).build().unwrap();
            sketch.update_batch(&stream);
            let bytes = sketch.serialize_to_bytes();

            // Truncation at any interior point is always an error.
            let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
            prop_assert!(
                FreqSketch::deserialize_from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes accepted", bytes.len()
            );

            // A bit flip anywhere must not panic; if it still decodes
            // (the bare format has no checksum), the result must be a
            // structurally sound sketch, never a broken one.
            let mut flipped = bytes.clone();
            let at = ((bytes.len() - 1) as f64 * flip_frac) as usize;
            flipped[at] ^= 1 << flip_bit;
            match FreqSketch::deserialize_from_bytes(&flipped) {
                Err(_) => {}
                Ok(decoded) => decoded.engine().check_invariants(),
            }

            // The CRC-framed checkpoint format rejects the same flip
            // outright — this is the WAL-frame decoder's safety net.
            let ckpt = encode_checkpoint(sketch.engine(), 7);
            let ckpt_cut = ((ckpt.len() - 1) as f64 * cut_frac) as usize;
            prop_assert!(decode_checkpoint::<u64>(&ckpt[..ckpt_cut]).is_err());
            let mut ckpt_flipped = ckpt.clone();
            let at = ((ckpt.len() - 1) as f64 * flip_frac) as usize;
            ckpt_flipped[at] ^= 1 << flip_bit;
            prop_assert!(
                decode_checkpoint::<u64>(&ckpt_flipped).is_err(),
                "checkpoint with byte {at} flipped decoded silently"
            );
            // Untouched bytes still decode, so the rejections above are
            // about the corruption, not the encoding.
            prop_assert!(decode_checkpoint::<u64>(&ckpt).is_ok());
        }

        #[test]
        fn mutated_items_sketch_bytes_never_panic(
            stream in proptest::collection::vec((".*", 1u64..200), 1..200),
            k in 4usize..32,
            cut_frac in 0.0f64..=1.0,
            flip_frac in 0.0f64..=1.0,
            flip_bit in 0u8..8,
        ) {
            let mut sketch: ItemsSketch<String> = ItemsSketch::with_max_counters(k);
            for (item, w) in &stream {
                sketch.update(item.clone(), *w);
            }
            let bytes = sketch.serialize_to_bytes();
            let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
            prop_assert!(ItemsSketch::<String>::deserialize_from_bytes(&bytes[..cut]).is_err());
            let mut flipped = bytes.clone();
            let at = ((bytes.len() - 1) as f64 * flip_frac) as usize;
            flipped[at] ^= 1 << flip_bit;
            match ItemsSketch::<String>::deserialize_from_bytes(&flipped) {
                Err(_) => {}
                Ok(decoded) => decoded.check_invariants(),
            }
        }
    }
}

/// The compact delta/varint WAL record codec introduced with the shared
/// group-commit log: every encoded stream of values must decode back
/// byte-exactly, every truncation must be rejected, and a full on-disk
/// log must survive a bit flip at *every* offset without ever yielding
/// a record that was not written (the CRC outer frame is the contract).
mod wal_codec {
    use proptest::prelude::*;
    use streamfreq::item_codec::{read_uvarint, write_uvarint, ItemCodec};
    use streamfreq::persist::store::read_manifest;
    use streamfreq::persist::wal;
    use streamfreq::{DurabilityOptions, DurableSketch, EngineConfig, FsyncPolicy};

    /// A unique, empty scratch directory per test case.
    fn scratch(label: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir()
            .join("streamfreq-wal-codec")
            .join(format!(
                "{label}-{}-{}",
                std::process::id(),
                CASE.fetch_add(1, Ordering::SeqCst)
            ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Writes `batches` through a fresh store's shared-log encoder and
    /// returns the log's records plus the path of its one segment.
    fn write_log(
        dir: &std::path::Path,
        batches: &[Vec<(u64, u64)>],
    ) -> (Vec<wal::WalRecord<u64>>, std::path::PathBuf) {
        let opts = DurabilityOptions {
            fsync: FsyncPolicy::Off,
            // One segment, so a bad frame always reads as the log tail.
            segment_bytes: 1 << 24,
        };
        let (mut store, _) =
            DurableSketch::<u64>::open(dir, EngineConfig::new(16).seed(3), opts).unwrap();
        for batch in batches {
            store.update_batch(batch).unwrap();
        }
        store.sync().unwrap();
        drop(store);
        let manifest = read_manifest(dir).unwrap().unwrap();
        let outcome = wal::read_from::<u64>(dir, manifest.wal_start).unwrap();
        assert_eq!(outcome.dropped_tail_bytes, 0);
        let segment = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| {
                let name = p
                    .file_name()
                    .unwrap_or_default()
                    .to_string_lossy()
                    .into_owned();
                name.starts_with("wal-") && name.ends_with(".seg")
            })
            .expect("log segment exists");
        (outcome.records, segment)
    }

    /// True if `records` is a per-record-equal prefix of `reference`.
    fn is_prefix(records: &[wal::WalRecord<u64>], reference: &[wal::WalRecord<u64>]) -> bool {
        records.len() <= reference.len()
            && records
                .iter()
                .zip(reference)
                .all(|(a, b)| a.stream == b.stream && a.epoch == b.epoch && a.batch == b.batch)
    }

    /// Exhaustive single-bit-flip and truncation sweep over a real log:
    /// at every byte offset, the reader must return a clean prefix of
    /// the original records or an error — never invent or skip one.
    #[test]
    fn log_survives_bitflip_and_truncation_at_every_offset() {
        let dir = scratch("flip-sweep");
        let batches: Vec<Vec<(u64, u64)>> = (0..6)
            .map(|b| (0..12).map(|i| (b * 100 + i, i * 7 + 1)).collect())
            .collect();
        let (reference, segment) = write_log(&dir, &batches);
        assert_eq!(reference.len(), batches.len());
        for (record, batch) in reference.iter().zip(&batches) {
            assert_eq!(record.stream, 0);
            assert_eq!(&record.batch, batch, "roundtrip must be value-exact");
        }
        let start = reference[0].at;
        let pristine = std::fs::read(&segment).unwrap();

        for offset in 0..pristine.len() {
            for bit in [0u8, 3, 7] {
                let mut mutated = pristine.clone();
                mutated[offset] ^= 1 << bit;
                std::fs::write(&segment, &mutated).unwrap();
                match wal::read_from::<u64>(&dir, start) {
                    Err(_) => {}
                    Ok(outcome) => assert!(
                        is_prefix(&outcome.records, &reference),
                        "bit {bit} flipped at {offset} yielded a non-prefix"
                    ),
                }
            }
            std::fs::write(&segment, &pristine[..offset]).unwrap();
            match wal::read_from::<u64>(&dir, start) {
                Err(_) => {}
                Ok(outcome) => assert!(
                    is_prefix(&outcome.records, &reference),
                    "truncation at {offset} yielded a non-prefix"
                ),
            }
        }
        std::fs::write(&segment, &pristine).unwrap();
        let outcome = wal::read_from::<u64>(&dir, start).unwrap();
        assert!(
            is_prefix(&outcome.records, &reference) && outcome.records.len() == reference.len(),
            "pristine log must still read in full after the sweep"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Varint sequences roundtrip byte-exactly and reject every
        /// truncation point without panicking or over-reading.
        #[test]
        fn uvarint_sequences_roundtrip_and_reject_truncation(
            values in proptest::collection::vec(any::<u64>(), 1..64),
            cut_frac in 0.0f64..1.0,
        ) {
            let mut bytes = Vec::new();
            for &v in &values {
                write_uvarint(&mut bytes, v);
            }
            let mut view = bytes.as_slice();
            for &v in &values {
                prop_assert_eq!(read_uvarint(&mut view).unwrap(), v);
            }
            prop_assert!(view.is_empty(), "decoder must consume exactly its bytes");

            // Any strict prefix decodes strictly fewer values, then errs.
            let cut = (bytes.len() as f64 * cut_frac) as usize;
            let mut view = &bytes[..cut.min(bytes.len() - 1)];
            let mut decoded = 0usize;
            while let Ok(v) = read_uvarint(&mut view) {
                prop_assert_eq!(v, values[decoded]);
                decoded += 1;
                prop_assert!(decoded < values.len(), "truncated buffer decoded fully");
            }
        }

        /// Compact item encodings roundtrip value-exactly back to back
        /// in a shared buffer (the WAL frame layout).
        #[test]
        fn compact_items_roundtrip_back_to_back(
            items in proptest::collection::vec(any::<u64>(), 1..128),
        ) {
            let mut bytes = Vec::new();
            for &item in &items {
                item.encode_compact(&mut bytes);
            }
            let mut view = bytes.as_slice();
            for &item in &items {
                prop_assert_eq!(u64::decode_compact(&mut view).unwrap(), item);
            }
            prop_assert!(view.is_empty());
        }

        /// Random logs roundtrip value-exactly through the delta/varint
        /// frame encoder and back off disk.
        #[test]
        fn random_logs_roundtrip_value_exactly(
            stream in proptest::collection::vec((any::<u64>(), 1u64..u64::MAX >> 20), 1..400),
            batch_size in 1usize..64,
        ) {
            let dir = scratch("roundtrip");
            let batches: Vec<Vec<(u64, u64)>> =
                stream.chunks(batch_size).map(<[(u64, u64)]>::to_vec).collect();
            let (records, _) = write_log(&dir, &batches);
            prop_assert_eq!(records.len(), batches.len());
            for (record, batch) in records.iter().zip(&batches) {
                prop_assert_eq!(&record.batch, batch);
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
