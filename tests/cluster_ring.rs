//! Property-based tests of the cluster hash ring and topology file:
//! the deterministic-rebalancing contract of DESIGN.md's cluster mode.
//!
//! The load-bearing properties: removing one of `N` nodes remaps *only*
//! the keys the removed node owned (≈ `1/N` of the keyspace) and no
//! others; topology epochs are strictly increasing under any mutation
//! sequence; and routing is a pure function of the topology *file*, so
//! a process restart (encode → parse) changes nothing.

use proptest::prelude::*;

use streamfreq::{HashRing, NodeSpec, Topology};

/// Distinct node-id sets, 2..=8 nodes.
fn arb_node_ids() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(1u64..10_000, 2..9).prop_map(|mut ids| {
        ids.sort_unstable();
        ids.dedup();
        if ids.len() < 2 {
            // Collapsed to one id: extend deterministically.
            let next = ids[0] + 1;
            ids.push(next);
        }
        ids
    })
}

fn topology_of(ids: &[u64], vnodes: u32) -> Topology {
    let nodes = ids
        .iter()
        .map(|&id| NodeSpec {
            id,
            addr: format!("127.0.0.1:{}", 10_000 + (id % 50_000)),
        })
        .collect();
    Topology::new(1, vnodes, nodes).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Consistent hashing's core promise, stated deterministically: a
    /// key owned by a surviving node keeps that owner when another
    /// node leaves. Only the removed node's keys move.
    #[test]
    fn removal_remaps_only_the_removed_nodes_keys(
        ids in arb_node_ids(),
        vnodes in 16u32..128,
        removed_idx in 0usize..8,
        keys in proptest::collection::vec(any::<u64>(), 200..800),
    ) {
        let removed = ids[removed_idx % ids.len()];
        let survivors: Vec<u64> = ids.iter().copied().filter(|&id| id != removed).collect();
        let before = HashRing::build(&ids, vnodes);
        let after = HashRing::build(&survivors, vnodes);
        let mut moved = 0usize;
        for key in &keys {
            let owner_before = ids[before.route(key)];
            let owner_after = survivors[after.route(key)];
            if owner_before == removed {
                moved += 1;
                prop_assert!(owner_after != removed);
            } else {
                prop_assert_eq!(
                    owner_before, owner_after,
                    "key {} jumped between surviving nodes", key
                );
            }
        }
        // The removed node's share is ≈ 1/N of sampled keys. Virtual
        // nodes keep the variance modest; allow a generous band rather
        // than a brittle exact fraction.
        let share = moved as f64 / keys.len() as f64;
        prop_assert!(
            share <= 3.5 / ids.len() as f64,
            "removing 1 of {} nodes remapped {:.1}% of keys",
            ids.len(),
            100.0 * share
        );
    }

    /// Epochs are strictly increasing across any sequence of topology
    /// mutations (the fencing token replica promotion relies on).
    #[test]
    fn topology_epochs_strictly_increase(
        ids in arb_node_ids(),
        vnodes in 1u32..64,
        ops in proptest::collection::vec(0u8..3, 1..12),
    ) {
        let mut topo = topology_of(&ids, vnodes);
        let mut fresh_id = 20_000u64;
        for op in ops {
            let epoch = topo.epoch();
            let next = match op {
                0 => {
                    fresh_id += 1;
                    topo.with_node_added(NodeSpec {
                        id: fresh_id,
                        addr: "127.0.0.1:19999".into(),
                    })
                }
                1 if topo.nodes().len() > 1 => {
                    let victim = topo.nodes()[0].id;
                    topo.with_node_removed(victim)
                }
                _ => {
                    let id = topo.nodes()[0].id;
                    topo.with_node_addr(id, "127.0.0.1:18888")
                }
            };
            topo = next.unwrap();
            prop_assert!(topo.epoch() > epoch, "epoch did not advance");
        }
    }

    /// Routing is stable across process restarts: the parsed topology
    /// file routes every key exactly like the original, and encoding
    /// is a fixed point.
    #[test]
    fn routing_survives_encode_parse_roundtrip(
        ids in arb_node_ids(),
        vnodes in 1u32..64,
        keys in proptest::collection::vec(any::<u64>(), 100..400),
    ) {
        let original = topology_of(&ids, vnodes);
        let encoded = original.encode();
        let reparsed = Topology::parse(&encoded).unwrap();
        prop_assert_eq!(&reparsed, &original);
        prop_assert_eq!(reparsed.encode(), encoded, "encode is not a fixed point");
        let (ra, rb) = (original.ring(), reparsed.ring());
        for key in &keys {
            prop_assert_eq!(ra.route(key), rb.route(key));
        }
    }

    /// Every node owns a non-trivial share of a large keyspace when it
    /// has enough virtual nodes — no starved member.
    #[test]
    fn no_node_is_starved(
        ids in arb_node_ids(),
        seed in any::<u64>(),
    ) {
        let ring = HashRing::build(&ids, 64);
        let mut owned = vec![0usize; ids.len()];
        let mut x = seed | 1;
        for _ in 0..4_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            owned[ring.route(&x)] += 1;
        }
        for (i, &count) in owned.iter().enumerate() {
            let share = count as f64 / 4_000.0;
            let fair = 1.0 / ids.len() as f64;
            prop_assert!(
                share > fair / 4.0,
                "node {} owns only {:.1}% (fair {:.1}%)",
                ids[i],
                100.0 * share,
                100.0 * fair
            );
        }
    }
}
