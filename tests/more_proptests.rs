//! Property tests for the extended surface: generic item sketches, signed
//! sketches, the Stream Summary baseline, the windowed store, and the
//! item codec.

use proptest::prelude::*;
use std::collections::HashMap;

use streamfreq::apps::WindowedStore;
use streamfreq::baselines::{RtucSs, StreamSummary};
use streamfreq::{FrequencyEstimator, ItemsSketch, SignedFreqSketch};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ItemsSketch over strings: identical bracket contract as FreqSketch.
    #[test]
    fn items_sketch_bounds_bracket_truth(
        stream in proptest::collection::vec((0u32..60, 1u64..500), 1..800),
        k in 4usize..48,
    ) {
        let mut sketch: ItemsSketch<String> = ItemsSketch::with_max_counters(k);
        let mut truth: HashMap<String, u64> = HashMap::new();
        for &(id, w) in &stream {
            let item = format!("item-{id}");
            sketch.update(item.clone(), w);
            *truth.entry(item).or_insert(0) += w;
        }
        for (item, &f) in &truth {
            prop_assert!(sketch.lower_bound(item) <= f);
            prop_assert!(sketch.upper_bound(item) >= f);
        }
        prop_assert_eq!(
            sketch.stream_weight(),
            truth.values().sum::<u64>()
        );
    }

    /// ItemsSketch wire format round-trips arbitrary states.
    #[test]
    fn items_codec_roundtrip(
        stream in proptest::collection::vec((0u32..60, 1u64..200), 1..500),
        k in 4usize..32,
    ) {
        let mut sketch: ItemsSketch<String> = ItemsSketch::with_max_counters(k);
        for &(id, w) in &stream {
            sketch.update(format!("item-{id}"), w);
        }
        let bytes = sketch.serialize_to_bytes();
        let restored = ItemsSketch::<String>::deserialize_from_bytes(&bytes).unwrap();
        prop_assert_eq!(restored.maximum_error(), sketch.maximum_error());
        prop_assert_eq!(restored.num_counters(), sketch.num_counters());
        for id in 0u32..60 {
            let item = format!("item-{id}");
            prop_assert_eq!(restored.estimate(&item), sketch.estimate(&item));
        }
    }

    /// Signed sketch: bounds bracket the signed truth for any mix of
    /// insertions and deletions.
    #[test]
    fn signed_sketch_brackets_net_truth(
        stream in proptest::collection::vec(
            (0u64..80, -300i64..300),
            1..800,
        ),
        k in 8usize..48,
    ) {
        let mut sketch = SignedFreqSketch::with_max_counters(k);
        let mut truth: HashMap<u64, i64> = HashMap::new();
        for &(item, delta) in &stream {
            sketch.update(item, delta);
            *truth.entry(item).or_insert(0) += delta;
        }
        for (&item, &f) in &truth {
            let (lo, hi) = sketch.bounds(&item);
            prop_assert!(lo <= f && f <= hi, "item {item}: {f} outside [{lo}, {hi}]");
            prop_assert!(
                sketch.estimate(&item).abs_diff(f) <= sketch.maximum_error(),
                "estimate outside certified error"
            );
        }
    }

    /// Stream Summary: model-checked against the RTUC reference (both are
    /// Space Saving; counter sums and error bounds must agree exactly, and
    /// the overestimate property must hold item by item).
    #[test]
    fn stream_summary_is_space_saving(
        stream in proptest::collection::vec(0u64..50, 1..1500),
        k in 2usize..24,
    ) {
        let mut ssl = StreamSummary::new(k);
        let mut reference = RtucSs::new(k);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &item in &stream {
            ssl.update_one(item);
            reference.update(item, 1);
            *truth.entry(item).or_insert(0) += 1;
        }
        ssl.check_invariants();
        prop_assert_eq!(ssl.min_counter(), reference.min_counter());
        use streamfreq::CounterSummary;
        let sum_ssl: u64 = ssl.counters().iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(sum_ssl, stream.len() as u64, "SS preserves mass");
        let err = ssl.min_counter();
        for (&item, &f) in &truth {
            let est = ssl.estimate(item);
            prop_assert!(est + err >= f, "item {item} underestimated beyond bound");
            prop_assert!(est <= f + err, "item {item} overestimated beyond bound");
        }
    }

    /// Windowed store: a full-range query is equivalent (within certified
    /// error) to one sketch over everything.
    #[test]
    fn windowed_store_full_range_is_bounded(
        stream in proptest::collection::vec((0u64..100, 1u64..100), 1..600),
        window in 1u64..50,
    ) {
        let mut store = WindowedStore::new(window, 64);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for (t, &(item, w)) in stream.iter().enumerate() {
            store.record(t as u64, item, w);
            *truth.entry(item).or_insert(0) += w;
        }
        let merged = store
            .query_range(0, stream.len() as u64)
            .unwrap()
            .expect("data present");
        prop_assert_eq!(merged.stream_weight(), truth.values().sum::<u64>());
        for (&item, &f) in &truth {
            prop_assert!(merged.lower_bound(&item) <= f);
            prop_assert!(merged.upper_bound(&item) >= f);
        }
    }

    /// Item codec primitives survive arbitrary values and reject all
    /// truncations.
    #[test]
    fn item_codec_strings(s in ".*", tail in proptest::collection::vec(any::<u8>(), 0..20)) {
        use streamfreq::item_codec::ItemCodec;
        let mut bytes = Vec::new();
        s.encode(&mut bytes);
        let full_len = bytes.len();
        bytes.extend_from_slice(&tail);
        let mut view = bytes.as_slice();
        let decoded = String::decode(&mut view).unwrap();
        prop_assert_eq!(&decoded, &s);
        prop_assert_eq!(view.len(), tail.len(), "must consume exactly the encoding");
        for cut in 0..full_len {
            let mut v = &bytes[..cut];
            // Prefixes shorter than the encoding must fail or leave the
            // string truncated-and-detected; they must never panic.
            let _ = String::decode(&mut v);
        }
    }
}
