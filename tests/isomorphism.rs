//! The isomorphism results of §1.4 and the counter-sum identities of the
//! paper's analyses, verified across implementations.

use streamfreq::baselines::{MisraGries, Rbmc, RtucMg, RtucSs, SpaceSavingHeap, StreamSummary};
use streamfreq::{FreqSketch, FrequencyEstimator, PurgePolicy};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn weighted_stream(n: usize, universe: u64, max_w: u64, seed: u64) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (rng.gen_range(0..universe), rng.gen_range(1..=max_w)))
        .collect()
}

/// RBMC (via the optimized table with GlobalMin purging) is estimate-for-
/// estimate identical to Misra-Gries run on the unit-expanded stream.
#[test]
fn rbmc_is_isomorphic_to_rtuc_mg() {
    for seed in [1u64, 2, 3] {
        let stream = weighted_stream(4_000, 60, 8, seed);
        let mut rbmc = Rbmc::new(8);
        let mut rtuc = RtucMg::new(8);
        for &(i, w) in &stream {
            rbmc.update(i, w);
            rtuc.update(i, w);
        }
        for item in 0..60u64 {
            assert_eq!(
                rbmc.estimate(item),
                rtuc.estimate(item),
                "seed {seed}: divergence at item {item}"
            );
        }
    }
}

/// MHE is estimate-for-estimate identical to Space Saving run on the
/// unit-expanded stream, when eviction minima are unique (tie-breaking is
/// the only freedom the isomorphism allows).
#[test]
fn mhe_is_isomorphic_to_rtuc_ss_without_ties() {
    // Distinct prime weights keep counter values distinct at evictions.
    let updates = [
        (1u64, 101u64),
        (2, 211),
        (3, 307),
        (4, 401),
        (5, 503),
        (6, 601),
        (1, 97),
        (7, 701),
        (2, 89),
        (8, 809),
    ];
    let mut mhe = SpaceSavingHeap::new(4);
    let mut rtuc = RtucSs::new(4);
    for &(i, w) in &updates {
        mhe.update(i, w);
        rtuc.update(i, w);
    }
    for item in 1..=8u64 {
        assert_eq!(mhe.estimate(item), rtuc.estimate(item), "item {item}");
    }
}

/// Agarwal et al.'s structural identity behind the MG/SS isomorphism: for
/// a unit stream, `N − C = d·(k+1)` for MG with k counters, and the SS
/// (k+1)-counter summary keeps `ΣC = N` exactly.
#[test]
fn counter_sum_identities() {
    let mut rng = StdRng::seed_from_u64(7);
    let stream: Vec<u64> = (0..30_000).map(|_| rng.gen_range(0..500)).collect();
    let k = 31;
    let mut mg = MisraGries::new(k);
    let mut ss = SpaceSavingHeap::new(k + 1);
    let mut ssl = StreamSummary::new(k + 1);
    for &i in &stream {
        mg.update_unit(i);
        ss.update_one(i);
        ssl.update_one(i);
    }
    let n = stream.len() as u64;
    assert_eq!(
        n - mg.counter_sum(),
        mg.num_decrement_ops() * (k as u64 + 1),
        "MG mass identity violated"
    );
    assert_eq!(ss.counter_sum(), n, "SS preserves all mass");
    let ssl_sum: u64 = {
        use streamfreq::CounterSummary;
        ssl.counters().iter().map(|&(_, c)| c).sum()
    };
    assert_eq!(ssl_sum, n, "Stream Summary preserves all mass");
}

/// The two Space Saving implementations (heap and Stream Summary) agree
/// on the error bound and on estimates of clearly-heavy items.
#[test]
fn ssh_and_ssl_agree_on_heavy_items() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut ssh = SpaceSavingHeap::new(32);
    let mut ssl = StreamSummary::new(32);
    for _ in 0..50_000 {
        // items 0..5 heavy, long tail beyond
        let item = if rng.gen_bool(0.6) {
            rng.gen_range(0..5)
        } else {
            rng.gen_range(5..2_000)
        };
        ssh.update_one(item);
        ssl.update_one(item);
    }
    assert_eq!(ssh.min_counter(), ssl.min_counter());
    for item in 0..5u64 {
        let a = ssh.estimate(item);
        let b = ssl.estimate(item);
        // same algorithm, but tie-broken evictions may differ slightly
        let err = ssh.min_counter();
        assert!(
            a.abs_diff(b) <= err,
            "item {item}: SSH {a} vs SSL {b} differ beyond the error bound {err}"
        );
    }
}

/// The GlobalMin policy inside FreqSketch and the Rbmc wrapper expose the
/// same counters (the wrapper only changes the estimate convention).
#[test]
fn rbmc_wrapper_matches_global_min_policy() {
    let stream = weighted_stream(20_000, 300, 50, 13);
    let mut wrapper = Rbmc::new(64);
    let mut raw = FreqSketch::builder(64)
        .policy(PurgePolicy::GlobalMin)
        .grow_from_small(false)
        .build()
        .unwrap();
    for &(i, w) in &stream {
        wrapper.update(i, w);
        raw.update(i, w);
    }
    for item in 0..300u64 {
        assert_eq!(wrapper.estimate(item), raw.lower_bound(item));
    }
    assert_eq!(wrapper.max_error(), raw.maximum_error());
}

/// Misra-Gries and Space Saving bracket the truth from opposite sides —
/// the §2.3.1 motivation for the hybrid estimator.
#[test]
fn mg_underestimates_ss_overestimates() {
    let mut rng = StdRng::seed_from_u64(23);
    let stream: Vec<u64> = (0..40_000).map(|_| rng.gen_range(0..1_000)).collect();
    let mut truth = std::collections::HashMap::new();
    let mut mg = MisraGries::new(20);
    let mut ss = SpaceSavingHeap::new(20);
    for &i in &stream {
        mg.update_unit(i);
        ss.update_one(i);
        *truth.entry(i).or_insert(0u64) += 1;
    }
    for (&item, &f) in &truth {
        assert!(mg.estimate(item) <= f, "MG overestimated {item}");
        if ss.is_tracked(item) {
            assert!(ss.estimate(item) >= f, "SS underestimated tracked {item}");
        }
    }
    // And the FreqSketch hybrid does both: lb like MG, ub like SS.
    let mut hybrid = FreqSketch::builder(20).build().unwrap();
    for &i in &stream {
        hybrid.update(i, 1);
    }
    for (&item, &f) in &truth {
        assert!(hybrid.lower_bound(item) <= f);
        assert!(hybrid.upper_bound(item) >= f);
    }
}
