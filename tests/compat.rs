//! Backward-compatibility tests against store directories written by
//! the PR-5 on-disk format (per-shard WAL segments, fixed-width v1
//! frames), checked into `tests/data/`.
//!
//! The fixtures were produced by the `generate_*` tests below, run
//! against the PR-5 tree (`cargo test --test compat -- --ignored
//! generate`). They must never be regenerated with newer code: their
//! whole point is that newer readers keep recovering them
//! **bit-identically** — the pinned fingerprints in this file are the
//! values the PR-5 code itself recovered.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use streamfreq::persist::crc32c;
use streamfreq::persist::recover::recover_engine_readonly;
use streamfreq::{
    ConcurrentSketch, DurabilityOptions, DurableSketch, EngineConfig, FsyncPolicy, SketchEngine,
};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn data_dir(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name)
}

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("streamfreq-compat-it")
        .join(format!(
            "{label}-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::SeqCst)
        ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let target = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), &target).unwrap();
        }
    }
}

/// 32-bit digest of an engine's full state fingerprint — compact
/// enough to pin as a constant while still detecting any divergence.
fn fp(engine: &SketchEngine<u64>) -> u32 {
    crc32c(&engine.state_fingerprint())
}

/// The deterministic stream both fixtures were fed.
fn fixture_stream() -> Vec<(u64, u64)> {
    (0..30_000u64)
        .map(|i| (i * i % 1_117, i % 17 + 1))
        .collect()
}

fn fixture_opts() -> DurabilityOptions {
    DurabilityOptions {
        fsync: FsyncPolicy::Off,
        segment_bytes: 1 << 14,
    }
}

const SINGLE_K: usize = 96;
const SINGLE_SEED: u64 = 20170601;
const BANK_SHARDS: usize = 3;
const BANK_K: usize = 64;
const BANK_SEED: u64 = 20170602;

/// Writes `tests/data/pr5-single/`: a single-engine [`DurableSketch`]
/// with a mid-stream checkpoint and a live WAL tail (no final
/// checkpoint), then prints the fingerprint the PR-5 code recovers.
#[test]
#[ignore = "fixture generator: run once against the PR-5 tree only"]
fn generate_pr5_single_fixture() {
    let dir = data_dir("pr5-single");
    let _ = std::fs::remove_dir_all(&dir);
    let config = EngineConfig::new(SINGLE_K).seed(SINGLE_SEED);
    let (mut store, _) = DurableSketch::<u64>::open(&dir, config, fixture_opts()).unwrap();
    let stream = fixture_stream();
    for (i, batch) in stream.chunks(512).enumerate() {
        store.update_batch(batch).unwrap();
        if i == 29 {
            store.checkpoint().unwrap();
        }
    }
    drop(store); // crash image: WAL tail past the checkpoint survives
    let (engine, _, report) = recover_engine_readonly::<u64>(&dir).unwrap();
    println!(
        "pr5-single fingerprint=0x{:08x} source={:?} replayed={}",
        fp(&engine),
        report.source,
        report.records_replayed
    );
}

/// Writes `tests/data/pr5-bank/`: a 3-shard durable bank with one
/// coordinated checkpoint round and per-shard WAL tails, captured as a
/// crash image while live. Prints per-shard and merged fingerprints.
#[test]
#[ignore = "fixture generator: run once against the PR-5 tree only"]
fn generate_pr5_bank_fixture() {
    let fixture = data_dir("pr5-bank");
    let _ = std::fs::remove_dir_all(&fixture);
    let live = scratch("pr5-bank-live");
    let (sketch, _) = ConcurrentSketch::<u64>::builder(BANK_SHARDS, BANK_K)
        .seed(BANK_SEED)
        .build_durable(&live, fixture_opts(), None)
        .unwrap();
    let stream = fixture_stream();
    let half = stream.len() / 2;
    sketch.ingest_slice_parallel(&stream[..half], 1);
    sketch.publish_now();
    sketch.checkpoint_now().expect("checkpoint round");
    sketch.ingest_slice_parallel(&stream[half..], 1);
    sketch.publish_now(); // FIFO barrier: everything enqueued is logged
    copy_dir(&live, &fixture);
    drop(sketch);
    let _ = std::fs::remove_dir_all(&live);

    // Recover a scratch copy the way a restart would and print the
    // fingerprints to pin.
    let work = scratch("pr5-bank-work");
    copy_dir(&fixture, &work);
    let (mut recovered, _) = ConcurrentSketch::<u64>::builder(BANK_SHARDS, BANK_K)
        .seed(BANK_SEED)
        .build_durable(&work, fixture_opts(), None)
        .unwrap();
    let merged = fp(recovered.snapshot().engine());
    let shards: Vec<u32> = recovered.drain().iter().map(fp).collect();
    println!("pr5-bank merged fingerprint=0x{merged:08x}");
    for (s, digest) in shards.iter().enumerate() {
        println!("pr5-bank shard {s} fingerprint=0x{digest:08x}");
    }
    let _ = std::fs::remove_dir_all(&work);
}

/// Pinned by the PR-5 generator run; see the module docs.
const PR5_SINGLE_FINGERPRINT: u32 = 0xf86b_b166;
const PR5_BANK_MERGED_FINGERPRINT: u32 = 0x03e5_7a79;
const PR5_BANK_SHARD_FINGERPRINTS: [u32; BANK_SHARDS] = [0x1e20_5e4f, 0xf9c1_d16a, 0xfa7f_4f8c];

/// A PR-5-format single store recovers bit-identically: read-only
/// recovery reproduces the pinned fingerprint, and a full reopen (which
/// may migrate the on-disk layout forward) serves the same state and
/// keeps accepting writes.
#[test]
fn pr5_single_store_recovers_bit_identically() {
    let work = scratch("single-ro");
    copy_dir(&data_dir("pr5-single"), &work);
    let (engine, _, _) = recover_engine_readonly::<u64>(&work).unwrap();
    assert_eq!(
        fp(&engine),
        PR5_SINGLE_FINGERPRINT,
        "read-only recovery diverged from the PR-5 reader"
    );

    let config = EngineConfig::new(SINGLE_K).seed(SINGLE_SEED);
    let (mut store, _) = DurableSketch::<u64>::open(&work, config, fixture_opts()).unwrap();
    assert_eq!(fp(store.engine()), PR5_SINGLE_FINGERPRINT);
    // The store must remain writable and durable after the format bump:
    // append, crash, recover, and the tail replays on top.
    store.update_batch(&[(7u64, 3u64), (9, 1)]).unwrap();
    let expected = fp(store.engine());
    drop(store);
    let (engine, _, _) = recover_engine_readonly::<u64>(&work).unwrap();
    assert_eq!(fp(&engine), expected);
    let _ = std::fs::remove_dir_all(&work);
}

/// A PR-5-format bank (per-shard WAL segments) recovers
/// fingerprint-identically shard by shard and in the merged serving
/// view, then reopens again after the first recovery rewrote the store
/// in the current layout.
#[test]
fn pr5_bank_recovers_bit_identically() {
    let work = scratch("bank-ro");
    copy_dir(&data_dir("pr5-bank"), &work);

    for round in 0..2 {
        let (mut recovered, _) = ConcurrentSketch::<u64>::builder(BANK_SHARDS, BANK_K)
            .seed(BANK_SEED)
            .build_durable(&work, fixture_opts(), None)
            .unwrap();
        assert_eq!(
            fp(recovered.snapshot().engine()),
            PR5_BANK_MERGED_FINGERPRINT,
            "merged serving view diverged on round {round}"
        );
        let shards = recovered.drain();
        // Drain checkpoints every shard, so round 1 reopens a store the
        // current code wrote — the migrated layout must roundtrip too.
        for (s, shard) in shards.iter().enumerate() {
            assert_eq!(
                fp(shard),
                PR5_BANK_SHARD_FINGERPRINTS[s],
                "shard {s} diverged on round {round}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&work);
}

/// The drained PR-5 fixture keeps working as a live store: reopen,
/// ingest more, drain, reopen again — state stays exact.
#[test]
fn pr5_bank_accepts_writes_after_migration() {
    let work = scratch("bank-rw");
    copy_dir(&data_dir("pr5-bank"), &work);
    let (mut sketch, _) = ConcurrentSketch::<u64>::builder(BANK_SHARDS, BANK_K)
        .seed(BANK_SEED)
        .build_durable(&work, fixture_opts(), None)
        .unwrap();
    let extra: Vec<(u64, u64)> = (0..4_000u64).map(|i| (i % 333, i % 7 + 1)).collect();
    sketch.ingest_slice_parallel(&extra, 1);
    sketch.drain();
    let sealed = fp(sketch.snapshot().engine());
    drop(sketch);

    let (mut sketch, _) = ConcurrentSketch::<u64>::builder(BANK_SHARDS, BANK_K)
        .seed(BANK_SEED)
        .build_durable(&work, fixture_opts(), None)
        .unwrap();
    assert_eq!(fp(sketch.snapshot().engine()), sealed);
    sketch.drain();
    let _ = std::fs::remove_dir_all(&work);
}

/// Reference engine over the fixture stream — documents what the
/// fixtures contain without depending on any persisted bytes.
#[test]
fn fixture_stream_is_deterministic() {
    let stream = fixture_stream();
    assert_eq!(stream.len(), 30_000);
    let mut engine: SketchEngine<u64> = EngineConfig::new(SINGLE_K)
        .seed(SINGLE_SEED)
        .build_engine()
        .unwrap();
    engine.update_batch(&stream);
    assert_eq!(engine.stream_weight(), stream.iter().map(|&(_, w)| w).sum());
}
