//! Integration tests of the application layer against exact computations
//! on realistic workloads.

use std::collections::HashMap;

use streamfreq::apps::{exact_entropy, EntropyEstimator, HhhSketch, SampledSketch};
use streamfreq::workloads::{CaidaConfig, SyntheticCaida};
use streamfreq::ErrorType;

fn trace(updates: usize, seed: u64) -> Vec<(u64, u64)> {
    SyntheticCaida::materialize(&CaidaConfig {
        num_updates: updates,
        num_flows: (updates / 50).max(200) as u64,
        alpha: 1.1,
        seed,
    })
}

/// HHH against a brute-force hierarchical computation: every truly heavy
/// prefix (by conditioned count computed exactly) must be reported in
/// no-false-negatives mode.
#[test]
fn hhh_finds_every_truly_heavy_prefix() {
    let stream = trace(300_000, 5);
    let mut hhh = HhhSketch::new(2048);
    let mut exact_by_level: Vec<HashMap<u32, u64>> = vec![HashMap::new(); 4];
    let levels = [8u8, 16, 24, 32];
    let mut n = 0u64;
    for &(ip, bits) in &stream {
        let ip = ip as u32;
        hhh.update(ip, bits);
        n += bits;
        for (li, &len) in levels.iter().enumerate() {
            let prefix = ip & (u32::MAX << (32 - len));
            *exact_by_level[li].entry(prefix).or_insert(0) += bits;
        }
    }
    let phi = 0.01;
    let threshold = streamfreq::phi_threshold(phi, n);
    let reported = hhh.hierarchical_heavy_hitters(phi, ErrorType::NoFalseNegatives);

    // Exact HHH, most specific level first (same semantics as the app):
    // a prefix is heavy when its exact count minus the exact counts of
    // already-reported descendants clears the threshold.
    let mut discounted: HashMap<u32, u64> = HashMap::new();
    for (li, &len) in levels.iter().enumerate().rev() {
        let mut reported_here: Vec<(u32, u64)> = Vec::new();
        for (&prefix, &f) in &exact_by_level[li] {
            let below = discounted.get(&prefix).copied().unwrap_or(0);
            if f.saturating_sub(below) > threshold {
                reported_here.push((prefix, f));
                assert!(
                    reported
                        .iter()
                        .any(|r| r.prefix_len == len && r.prefix == prefix),
                    "missed exact HHH {prefix:#x}/{len}"
                );
            }
        }
        if li > 0 {
            let parent_len = levels[li - 1];
            let parent_of = |p: u32| p & (u32::MAX << (32 - parent_len));
            let reported_set: std::collections::HashSet<u32> =
                reported_here.iter().map(|&(p, _)| p).collect();
            let mut up: HashMap<u32, u64> = HashMap::new();
            // A reported prefix discounts its parent by its full count
            // (which already subsumes its own descendants' counts).
            for &(prefix, f) in &reported_here {
                *up.entry(parent_of(prefix)).or_insert(0) += f;
            }
            // Unreported prefixes pass their accumulated descendant
            // discounts upward unchanged.
            for (prefix, below) in discounted {
                if !reported_set.contains(&prefix) {
                    *up.entry(parent_of(prefix)).or_insert(0) += below;
                }
            }
            discounted = up;
        }
    }
}

/// Entropy estimator vs exact entropy on packet traces of different
/// skews.
#[test]
fn entropy_tracks_exact_on_traces() {
    for (alpha, seed) in [(0.9f64, 1u64), (1.1, 2), (1.4, 3)] {
        let stream = SyntheticCaida::materialize(&CaidaConfig {
            num_updates: 150_000,
            num_flows: 5_000,
            alpha,
            seed,
        });
        let mut est = EntropyEstimator::new(128, 2048, seed);
        let mut freqs: HashMap<u64, u64> = HashMap::new();
        for &(ip, _) in &stream {
            est.update(ip, 1);
            *freqs.entry(ip).or_insert(0) += 1;
        }
        let truth = exact_entropy(&freqs.values().copied().collect::<Vec<_>>());
        let got = est.estimate();
        let rel = (got - truth).abs() / truth.max(1e-9);
        assert!(
            rel < 0.15,
            "alpha {alpha}: entropy {got:.3} vs exact {truth:.3} (rel {rel:.3})"
        );
    }
}

/// Sampled sketch recovers the same top-5 as exact counting on a skewed
/// trace, at a 1% sampling rate.
#[test]
fn sampled_sketch_recovers_top_talkers() {
    let stream = trace(400_000, 7);
    let n: u64 = stream.iter().map(|&(_, w)| w).sum();
    let mut sampled = SampledSketch::with_sample_target(512, n / 100, n, 11);
    let mut exact: HashMap<u64, u64> = HashMap::new();
    for &(ip, bits) in &stream {
        sampled.update(ip, bits);
        *exact.entry(ip).or_insert(0) += bits;
    }
    let mut true_top: Vec<(u64, u64)> = exact.iter().map(|(&i, &f)| (i, f)).collect();
    true_top.sort_unstable_by_key(|&(_, f)| std::cmp::Reverse(f));
    true_top.truncate(5);
    let reported: Vec<u64> = sampled.top_k(8).iter().map(|&(i, _)| i).collect();
    for (item, f) in true_top {
        assert!(
            reported.contains(&item),
            "top talker {item} (f {f}) missing from sampled top-8"
        );
    }
}

/// Sampled estimates concentrate near truth for heavy items across seeds.
#[test]
fn sampled_estimates_concentrate() {
    let stream = trace(200_000, 9);
    let mut exact: HashMap<u64, u64> = HashMap::new();
    for &(ip, bits) in &stream {
        *exact.entry(ip).or_insert(0) += bits;
    }
    let n: u64 = stream.iter().map(|&(_, w)| w).sum();
    let (&top_item, &top_f) = exact.iter().max_by_key(|&(_, &f)| f).unwrap();
    let mut rels = Vec::new();
    for seed in 0..5u64 {
        let mut s = SampledSketch::with_sample_target(512, n / 50, n, seed);
        for &(ip, bits) in &stream {
            s.update(ip, bits);
        }
        let est = s.estimate(&top_item);
        rels.push(est.abs_diff(top_f) as f64 / top_f as f64);
    }
    let mean_rel = rels.iter().sum::<f64>() / rels.len() as f64;
    assert!(
        mean_rel < 0.05,
        "mean relative error {mean_rel:.3} too large for the top talker"
    );
}
