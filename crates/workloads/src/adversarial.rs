//! Adversarial streams that separate the algorithms' worst cases.
//!
//! §1.3.4 exhibits a stream on which RBMC performs a Θ(k) decrement sweep
//! on **every** update: `k` huge-weight updates to distinct items, then `M`
//! unit updates to fresh items. Each unit update finds the table full of
//! counters far above 1, sweeps everyone down by 1, and discards the new
//! item — forever. SMED, by contrast, purges at most once every ~k/2
//! updates regardless of the input. The `adversarial_ablation` harness
//! measures exactly this separation.

use crate::stream::WeightedUpdate;

/// Configuration for the §1.3.4 RBMC worst-case stream.
#[derive(Clone, Copy, Debug)]
pub struct AdversarialConfig {
    /// Number of counters `k` of the algorithm under attack.
    pub k: usize,
    /// The large weight `M` given to the first `k` items; also the number
    /// of trailing unit updates.
    pub m: u64,
}

/// Generates the stream: `k` updates of weight `m` to items `0..k`,
/// followed by `m` unit updates to the fresh items `k, k+1, …, k+m-1`.
pub fn rbmc_killer(config: AdversarialConfig) -> Vec<WeightedUpdate> {
    assert!(config.k > 0, "k must be positive");
    assert!(config.m > 0, "m must be positive");
    let mut stream = Vec::with_capacity(config.k + config.m as usize);
    for item in 0..config.k as u64 {
        stream.push((item, config.m));
    }
    for i in 0..config.m {
        stream.push((config.k as u64 + i, 1));
    }
    stream
}

/// A milder adversary: alternating heavy and unit updates, keeping the
/// table permanently full of large counters while a trickle of unit
/// updates probes the purge path. Stresses purge-frequency accounting
/// without the pure-phase structure of [`rbmc_killer`].
pub fn heavy_light_interleave(k: usize, rounds: usize, heavy: u64) -> Vec<WeightedUpdate> {
    assert!(k > 0 && rounds > 0 && heavy > 0);
    let mut stream = Vec::with_capacity(2 * rounds);
    for r in 0..rounds as u64 {
        stream.push((r % k as u64, heavy));
        stream.push((1_000_000 + r, 1));
    }
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::total_weight;

    #[test]
    fn killer_stream_shape() {
        let s = rbmc_killer(AdversarialConfig { k: 4, m: 10 });
        assert_eq!(s.len(), 14);
        assert_eq!(&s[..4], &[(0, 10), (1, 10), (2, 10), (3, 10)]);
        assert_eq!(s[4], (4, 1));
        assert_eq!(s[13], (13, 1));
        assert_eq!(total_weight(&s), 4 * 10 + 10);
    }

    #[test]
    fn killer_items_are_all_distinct() {
        let s = rbmc_killer(AdversarialConfig { k: 8, m: 100 });
        let mut items: Vec<u64> = s.iter().map(|&(i, _)| i).collect();
        items.sort_unstable();
        items.dedup();
        assert_eq!(items.len(), s.len());
    }

    #[test]
    fn interleave_alternates() {
        let s = heavy_light_interleave(4, 10, 1000);
        assert_eq!(s.len(), 20);
        assert_eq!(s[0].1, 1000);
        assert_eq!(s[1].1, 1);
    }

    #[test]
    #[should_panic(expected = "m must be positive")]
    fn zero_m_panics() {
        rbmc_killer(AdversarialConfig { k: 1, m: 0 });
    }
}
