//! Timestamped streams with a drifting hot set — the workload where
//! *recency* matters.
//!
//! The paper's §3 motivating scenario is temporal (per-period summaries,
//! merged at query time), and the time-fading model of Cafaro et al.
//! (FDCMSS, arXiv:1601.03892) privileges recent items. Neither can be
//! exercised by a stationary Zipf stream: if the hot set never moves, a
//! plain frequency sketch and a decayed one rank items identically. This
//! module generates Zipf-distributed traffic whose *identity* of the hot
//! items rotates from epoch to epoch, so time-aware summaries
//! (`streamfreq-apps`' `DecayedSketch` and `WindowedStore`) have
//! something real to be right about and exact global counting is
//! genuinely misleading about the present.
//!
//! Timestamps advance monotonically: update `i` of `n` lands in epoch
//! `⌊i · epochs / n⌋` and carries the timestamp of that epoch's window,
//! so per-epoch batches arrive as contiguous runs — the shape a
//! telemetry pipeline delivers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// One timestamped weighted update `(timestamp, item, Δ)`.
pub type TimedUpdate = (u64, u64, u64);

/// Configuration for [`materialize_drifting_zipf`].
#[derive(Clone, Debug)]
pub struct DriftConfig {
    /// Total updates to generate.
    pub updates: usize,
    /// Universe size `m` of the per-epoch Zipf distribution.
    pub universe: u64,
    /// Zipf exponent α (> 0).
    pub alpha: f64,
    /// Number of epochs the stream spans (≥ 1).
    pub epochs: u64,
    /// Time units per epoch; update timestamps are
    /// `epoch · epoch_len + offset` with `offset < epoch_len`.
    pub epoch_len: u64,
    /// How many ranks the hot set shifts per epoch. With a shift of `s`,
    /// epoch `e` maps Zipf rank `r` to scrambled id `(r + e·s) mod m` —
    /// a shift larger than the number of meaningful heavy ranks makes
    /// consecutive epochs' hot sets disjoint.
    pub hot_shift: u64,
    /// Maximum per-update weight (weights are uniform in `1..=max_weight`).
    pub max_weight: u64,
    /// Generator seed; equal configs produce equal streams.
    pub seed: u64,
}

impl Default for DriftConfig {
    /// One million updates over 16 epochs of width 1000, Zipf(1.0) on a
    /// 2²⁰ universe, hot set fully displaced each epoch.
    fn default() -> Self {
        Self {
            updates: 1_000_000,
            universe: 1 << 20,
            alpha: 1.0,
            epochs: 16,
            epoch_len: 1_000,
            hot_shift: 10_000,
            max_weight: 100,
            seed: 0x7E4D_012A,
        }
    }
}

/// Materializes a timestamped Zipf stream whose hot set drifts across
/// epochs (see the [module docs](self)). Timestamps are non-decreasing:
/// every update carries its epoch's base timestamp
/// (`epoch · epoch_len`), so one epoch's updates form one contiguous
/// equal-timestamp run — ready for batched per-tick ingestion.
///
/// # Panics
/// Panics on a zero `updates`, `epochs`, `epoch_len`, or `max_weight`,
/// or an invalid Zipf configuration.
pub fn materialize_drifting_zipf(config: &DriftConfig) -> Vec<TimedUpdate> {
    assert!(config.updates > 0, "updates must be positive");
    assert!(config.epochs > 0, "epochs must be positive");
    assert!(config.epoch_len > 0, "epoch_len must be positive");
    assert!(config.max_weight > 0, "max_weight must be positive");
    let zipf = Zipf::new(config.universe, config.alpha);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.updates;
    (0..n)
        .map(|i| {
            let epoch = (i as u64 * config.epochs) / n as u64;
            let timestamp = epoch * config.epoch_len;
            let rank = zipf.sample(&mut rng);
            // Rotate the rank→item mapping by the epoch's drift, then
            // scramble bijectively so hot items are not small integers.
            let rotated = (rank - 1 + epoch * config.hot_shift) % config.universe;
            let item = (rotated + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let w = rng.gen_range(1..=config.max_weight);
            (timestamp, item, w)
        })
        .collect()
}

/// Splits a timestamp-ordered stream into its contiguous
/// equal-timestamp runs, as `(timestamp, index range)` — the per-tick
/// batches temporal consumers (`DecayedSketch::record_batch`,
/// `WindowedStore::record_batch`) ingest. Shared by the CLI's
/// `window build` and the `fig_temporal` bench.
pub fn tick_runs(stream: &[TimedUpdate]) -> Vec<(u64, core::ops::Range<usize>)> {
    let mut runs = Vec::new();
    let mut i = 0usize;
    while i < stream.len() {
        let t = stream[i].0;
        let start = i;
        while i < stream.len() && stream[i].0 == t {
            i += 1;
        }
        runs.push((t, start..i));
    }
    runs
}

/// The scrambled item id the generator assigns to Zipf rank `rank`
/// (1-based) in `epoch` — lets tests and benches ask "what was epoch e's
/// hottest item?" without re-deriving the mapping.
pub fn drifting_item_id(config: &DriftConfig, epoch: u64, rank: u64) -> u64 {
    assert!(rank >= 1 && rank <= config.universe, "rank out of range");
    let rotated = (rank - 1 + epoch * config.hot_shift) % config.universe;
    (rotated + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small_config() -> DriftConfig {
        DriftConfig {
            updates: 60_000,
            universe: 1 << 16,
            alpha: 1.1,
            epochs: 6,
            epoch_len: 100,
            hot_shift: 5_000,
            max_weight: 10,
            seed: 9,
        }
    }

    #[test]
    fn timestamps_are_monotone_and_span_epochs() {
        let config = small_config();
        let stream = materialize_drifting_zipf(&config);
        assert_eq!(stream.len(), config.updates);
        let mut last = 0u64;
        let mut seen = std::collections::HashSet::new();
        for &(t, _, w) in &stream {
            assert!(t >= last, "timestamps must be non-decreasing");
            assert_eq!(t % config.epoch_len, 0, "epoch-aligned timestamps");
            assert!((1..=config.max_weight).contains(&w));
            last = t;
            seen.insert(t / config.epoch_len);
        }
        assert_eq!(seen.len() as u64, config.epochs, "every epoch populated");
    }

    #[test]
    fn hot_set_actually_drifts() {
        // The heaviest item of the first epoch must not be the heaviest
        // item of the last epoch — otherwise recency experiments are
        // meaningless.
        let config = small_config();
        let stream = materialize_drifting_zipf(&config);
        let top_of = |epoch: u64| -> u64 {
            let mut counts: HashMap<u64, u64> = HashMap::new();
            for &(t, item, w) in &stream {
                if t / config.epoch_len == epoch {
                    *counts.entry(item).or_insert(0) += w;
                }
            }
            counts
                .into_iter()
                .max_by_key(|&(_, w)| w)
                .expect("epoch has traffic")
                .0
        };
        let first = top_of(0);
        let last = top_of(config.epochs - 1);
        assert_ne!(first, last, "hot set failed to drift");
        assert_eq!(first, drifting_item_id(&config, 0, 1));
        assert_eq!(last, drifting_item_id(&config, config.epochs - 1, 1));
    }

    #[test]
    fn tick_runs_cover_the_stream_contiguously() {
        let stream: Vec<TimedUpdate> = vec![
            (0, 1, 1),
            (0, 2, 1),
            (5, 3, 1),
            (7, 4, 1),
            (7, 5, 1),
            (7, 6, 1),
        ];
        let runs = tick_runs(&stream);
        assert_eq!(runs, vec![(0, 0..2), (5, 2..3), (7, 3..6)]);
        assert_eq!(tick_runs(&[]), vec![]);
    }

    #[test]
    fn deterministic_per_seed() {
        let config = small_config();
        assert_eq!(
            materialize_drifting_zipf(&config),
            materialize_drifting_zipf(&config)
        );
        let reseeded = DriftConfig { seed: 10, ..config };
        assert_ne!(
            materialize_drifting_zipf(&reseeded),
            materialize_drifting_zipf(&small_config())
        );
    }

    #[test]
    #[should_panic(expected = "epochs")]
    fn zero_epochs_panics() {
        materialize_drifting_zipf(&DriftConfig {
            epochs: 0,
            ..small_config()
        });
    }
}
