//! Zipf-distributed item sampling by rejection-inversion.
//!
//! §4.1 and §4.5 of the paper use Zipfian synthetic streams ("a Zipfian
//! distribution with various skewness parameters", α = 1.05 for the merge
//! experiment). A table-based inverse-CDF sampler needs O(m) memory — fine
//! for small universes, useless for m = 2³². We implement W. Hörmann &
//! G. Derflinger's *rejection-inversion* sampler ("Rejection-inversion to
//! generate variates from monotone discrete distributions", ACM TOMACS
//! 1996), which samples Zipf(α, m) in O(1) expected time and O(1) memory
//! for any exponent α > 0 — the same algorithm Apache Commons RNG ships.

use rand::Rng;

/// Zipf(α) sampler over ranks `{1, …, num_elements}`:
/// `P(X = r) ∝ r^{−α}`.
#[derive(Clone, Debug)]
pub struct Zipf {
    num_elements: u64,
    exponent: f64,
    h_integral_x1: f64,
    h_integral_num_elements: f64,
    s: f64,
}

impl Zipf {
    /// Creates a sampler over `{1, …, num_elements}` with exponent
    /// `alpha > 0`.
    ///
    /// # Panics
    /// Panics if `num_elements` is zero or `alpha` is not finite and
    /// positive.
    pub fn new(num_elements: u64, alpha: f64) -> Self {
        assert!(num_elements > 0, "num_elements must be positive");
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "alpha {alpha} must be finite and positive"
        );
        let h_integral_x1 = h_integral(1.5, alpha) - 1.0;
        let h_integral_num_elements = h_integral(num_elements as f64 + 0.5, alpha);
        let s = 2.0 - h_integral_inverse(h_integral(2.5, alpha) - h(2.0, alpha), alpha);
        Self {
            num_elements,
            exponent: alpha,
            h_integral_x1,
            h_integral_num_elements,
            s,
        }
    }

    /// Number of elements in the support.
    pub fn num_elements(&self) -> u64 {
        self.num_elements
    }

    /// The exponent α.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Draws one rank in `{1, …, num_elements}`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u: f64 = self.h_integral_num_elements
                + rng.gen::<f64>() * (self.h_integral_x1 - self.h_integral_num_elements);
            let x = h_integral_inverse(u, self.exponent);
            // Clamp to the support; floating error can push x slightly out.
            let k64 = x.round().clamp(1.0, self.num_elements as f64);
            let k = k64 as u64;
            // Acceptance tests from Hörmann & Derflinger: the first is a
            // cheap squeeze, the second the exact rejection test.
            if k64 - x <= self.s
                || u >= h_integral(k64 + 0.5, self.exponent) - h(k64, self.exponent)
            {
                return k;
            }
        }
    }

    /// The exact probability of rank `r` (for tests and analytics):
    /// `r^{−α} / H_{m,α}` where `H` is the generalized harmonic number.
    pub fn probability(&self, rank: u64) -> f64 {
        assert!(rank >= 1 && rank <= self.num_elements, "rank out of range");
        (rank as f64).powf(-self.exponent) / self.harmonic()
    }

    /// The generalized harmonic number `H_{m,α}` (exact summation; only
    /// sensible for small supports — tests use it, production code does
    /// not need it).
    pub fn harmonic(&self) -> f64 {
        (1..=self.num_elements)
            .map(|r| (r as f64).powf(-self.exponent))
            .sum()
    }
}

/// Materializes a weighted Zipf stream: `updates` draws of
/// `Zipf(alpha, universe)` ranks, each mixed through a bijective scramble
/// (so hot items are not simply the small integers) and carrying a
/// uniform weight in `1..=max_weight`. Deterministic given `seed`.
pub fn materialize_zipf(
    updates: usize,
    universe: u64,
    alpha: f64,
    max_weight: u64,
    seed: u64,
) -> Vec<crate::stream::WeightedUpdate> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    assert!(max_weight > 0, "max_weight must be positive");
    let zipf = Zipf::new(universe, alpha);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..updates)
        .map(|_| {
            let rank = zipf.sample(&mut rng);
            // Fibonacci-hash scramble: bijective on u64, so rank
            // frequencies are preserved but item ids are spread.
            let item = rank.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let w = rng.gen_range(1..=max_weight);
            (item, w)
        })
        .collect()
}

/// `H(x)`: the integral of `h(x) = x^{−α}`, shifted so the formulas stay
/// stable near α = 1 (where the antiderivative switches to `ln`).
fn h_integral(x: f64, alpha: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - alpha) * log_x) * log_x
}

/// `h(x) = x^{−α}`.
fn h(x: f64, alpha: f64) -> f64 {
    (-alpha * x.ln()).exp()
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(x: f64, alpha: f64) -> f64 {
    let mut t = x * (1.0 - alpha);
    if t < -1.0 {
        // Numerical guard from the reference implementation.
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// `helper1(x) = ln(1+x)/x`, stable near zero.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `helper2(x) = (e^x − 1)/x`, stable near zero.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_support() {
        let z = Zipf::new(100, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let r = z.sample(&mut rng);
            assert!((1..=100).contains(&r));
        }
    }

    #[test]
    fn single_element_support() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn empirical_matches_theoretical_small_support() {
        // Chi-square-style check on m = 10, α = 1.0 with 200k samples:
        // every bucket within 5% relative of its expectation.
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut counts = [0u64; 10];
        for _ in 0..n {
            counts[(z.sample(&mut rng) - 1) as usize] += 1;
        }
        for rank in 1..=10u64 {
            let expected = z.probability(rank) * n as f64;
            let got = counts[(rank - 1) as usize] as f64;
            let rel = (got - expected).abs() / expected;
            assert!(
                rel < 0.05,
                "rank {rank}: got {got}, expected {expected:.0} (rel {rel:.3})"
            );
        }
    }

    #[test]
    fn higher_alpha_concentrates_mass() {
        let mut rng = StdRng::seed_from_u64(7);
        let mild = Zipf::new(1000, 0.8);
        let steep = Zipf::new(1000, 2.0);
        let n = 50_000;
        let top_share = |z: &Zipf, rng: &mut StdRng| {
            let mut top = 0u64;
            for _ in 0..n {
                if z.sample(rng) == 1 {
                    top += 1;
                }
            }
            top as f64 / n as f64
        };
        let mild_share = top_share(&mild, &mut rng);
        let steep_share = top_share(&steep, &mut rng);
        assert!(
            steep_share > 2.0 * mild_share,
            "steep {steep_share:.3} vs mild {mild_share:.3}"
        );
    }

    #[test]
    fn works_at_alpha_one_boundary() {
        // α exactly 1 exercises the ln-form antiderivative.
        let z = Zipf::new(1 << 20, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut max_seen = 0;
        for _ in 0..10_000 {
            max_seen = max_seen.max(z.sample(&mut rng));
        }
        assert!(max_seen > 1000, "deep tail never sampled: {max_seen}");
    }

    #[test]
    fn huge_universe_is_cheap() {
        // m = 2^32 — the paper's IPv4 universe. Must not allocate tables.
        let z = Zipf::new(1 << 32, 1.05);
        let mut rng = StdRng::seed_from_u64(4);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..10_000 {
            distinct.insert(z.sample(&mut rng));
        }
        assert!(distinct.len() > 2_000, "skew should still allow diversity");
    }

    #[test]
    fn deterministic_with_seed() {
        let z = Zipf::new(10_000, 1.2);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_nonpositive_alpha() {
        Zipf::new(10, 0.0);
    }
}
