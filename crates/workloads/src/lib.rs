//! # streamfreq-workloads
//!
//! Deterministic workload generators for the evaluation of Anderson et
//! al. (IMC 2017), replacing the access-restricted datasets with
//! statistically equivalent synthetics (substitutions documented in
//! DESIGN.md §4):
//!
//! | module | provides | paper use |
//! |---|---|---|
//! | [`zipf`] | rejection-inversion Zipf(α) sampler, O(1) per draw for any universe | §4.1/§4.5 synthetic streams |
//! | [`caida`] | synthetic packet trace (skewed IPs × IMIX packet sizes in bits) | the CAIDA 2016 trace of §4.1 (Figs 1–3) |
//! | [`merge_workload`] | Zipf(1.05) ids × uniform [1, 10 000] weights | the §4.5 merge-fill streams (Fig 4) |
//! | [`adversarial`] | the §1.3.4 RBMC worst-case stream | adversarial ablation |
//! | [`temporal`] | timestamped Zipf with a drifting hot set | the temporal layer (decayed/windowed sketches) |
//! | [`stream`] | update type, composition helpers, binary persistence | everywhere |
//!
//! Every generator is seeded and fully reproducible: the same config
//! yields the same bytes on every platform.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod adversarial;
pub mod caida;
pub mod merge_workload;
pub mod stream;
pub mod temporal;
pub mod zipf;

pub use adversarial::{heavy_light_interleave, rbmc_killer, AdversarialConfig};
pub use caida::{CaidaConfig, SyntheticCaida};
pub use merge_workload::{fill_stream, MergeWorkloadConfig};
pub use stream::{
    concat, load_binary, load_timed_binary, num_distinct, partition_round_robin, save_binary,
    save_timed_binary, shuffle, total_weight, WeightedUpdate,
};
pub use temporal::{
    drifting_item_id, materialize_drifting_zipf, tick_runs, DriftConfig, TimedUpdate,
};
pub use zipf::{materialize_zipf, Zipf};
