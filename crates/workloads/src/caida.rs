//! Synthetic packet-trace generator — the documented stand-in for the
//! CAIDA Anonymized Internet Traces 2016 dataset of §4.1.
//!
//! ## What the paper used
//!
//! Four random pcap files, preprocessed to `(source IP, packet size in
//! bits)` updates and concatenated: n ≈ 126.2 M updates, N ≈ 72.2·10⁹
//! weighted, ≈ 1.75 M distinct IPs, universe m = 2³². The raw traces are
//! access-restricted (CAIDA data agreement), so this module generates a
//! stream with the same statistical features the algorithms are sensitive
//! to:
//!
//! * **Key skew** — flow popularity follows Zipf(α); internet traffic
//!   per-source packet counts are famously heavy-tailed. α defaults to
//!   1.1, which at the default scale reproduces the paper's ≈1.4%
//!   distinct-to-update ratio.
//! * **Weight structure** — packet sizes drawn from an IMIX-style
//!   trimodal mixture (small ACK-sized / medium / MTU-sized packets, with
//!   jitter), reported in **bits** as the paper does. Weights are large,
//!   variable, and item-correlated — exactly the regime where RTUC blows
//!   up and RBMC's sweeps hurt.
//! * **Universe** — ids are spread over `[0, 2³²)` by a deterministic
//!   permutation-ish mix of the Zipf rank, so hash-table behaviour matches
//!   real IPs rather than small dense integers.
//!
//! The paper notes (§4.1) that results on Zipf-synthetic data were
//! "entirely similar" to the packet traces, so this substitution preserves
//! the evaluation's conclusions; EXPERIMENTS.md re-verifies the shapes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stream::WeightedUpdate;
use crate::zipf::Zipf;

/// Configuration for the synthetic trace.
#[derive(Clone, Debug)]
pub struct CaidaConfig {
    /// Number of updates (packets) to generate.
    pub num_updates: usize,
    /// Number of distinct flows (the Zipf support size).
    pub num_flows: u64,
    /// Zipf exponent for flow popularity.
    pub alpha: f64,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl Default for CaidaConfig {
    /// Laptop-scale default: 10 M packets over 175 k flows — the paper's
    /// distinct/update ratio (≈1.4%) at 1/12.6 of its length. Use
    /// [`CaidaConfig::paper_scale`] for the full-size run.
    fn default() -> Self {
        Self {
            num_updates: 10_000_000,
            num_flows: 175_000,
            alpha: 1.1,
            seed: 0xCA1DA,
        }
    }
}

impl CaidaConfig {
    /// The paper's scale: 126.2 M updates over 1.75 M flows. Needs ~2 GB
    /// to materialize; prefer streaming via [`SyntheticCaida`] directly.
    pub fn paper_scale() -> Self {
        Self {
            num_updates: 126_200_000,
            num_flows: 1_750_000,
            alpha: 1.1,
            seed: 0xCA1DA,
        }
    }

    /// Same shape scaled to `updates` packets (flow count scales
    /// proportionally, minimum 1000 flows).
    pub fn scaled(updates: usize) -> Self {
        let flows = ((updates as f64 * 0.014) as u64).max(1000);
        Self {
            num_updates: updates,
            num_flows: flows,
            alpha: 1.1,
            seed: 0xCA1DA,
        }
    }
}

/// Iterator producing the synthetic packet stream.
#[derive(Clone, Debug)]
pub struct SyntheticCaida {
    zipf: Zipf,
    rng: StdRng,
    remaining: usize,
}

impl SyntheticCaida {
    /// Creates the generator for a configuration.
    pub fn new(config: &CaidaConfig) -> Self {
        Self {
            zipf: Zipf::new(config.num_flows, config.alpha),
            rng: StdRng::seed_from_u64(config.seed),
            remaining: config.num_updates,
        }
    }

    /// Generates and materializes the whole stream.
    pub fn materialize(config: &CaidaConfig) -> Vec<WeightedUpdate> {
        Self::new(config).collect()
    }

    /// Maps a Zipf rank to a pseudo-IPv4 identifier in `[0, 2³²)`. The mix
    /// is a fixed bijection on 32 bits (two rounds of a xorshift-multiply
    /// permutation), so distinct ranks give distinct "IPs".
    fn rank_to_ip(rank: u64) -> u64 {
        let mut x = (rank as u32).wrapping_mul(0x9E37_79B9);
        x ^= x >> 16;
        x = x.wrapping_mul(0x85EB_CA6B);
        x ^= x >> 13;
        x as u64
    }

    /// Draws a packet size in bytes from the IMIX-style mixture:
    /// 58% small (40–100 B), 33% medium (200–600 B), 9% MTU (1400–1500 B).
    fn packet_bytes(rng: &mut StdRng) -> u64 {
        let roll: f64 = rng.gen();
        if roll < 0.58 {
            rng.gen_range(40..=100)
        } else if roll < 0.91 {
            rng.gen_range(200..=600)
        } else {
            rng.gen_range(1400..=1500)
        }
    }
}

impl Iterator for SyntheticCaida {
    type Item = WeightedUpdate;

    fn next(&mut self) -> Option<WeightedUpdate> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let rank = self.zipf.sample(&mut self.rng);
        let ip = Self::rank_to_ip(rank);
        let bits = Self::packet_bytes(&mut self.rng) * 8;
        Some((ip, bits))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for SyntheticCaida {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{num_distinct, total_weight};

    fn small() -> CaidaConfig {
        CaidaConfig {
            num_updates: 200_000,
            num_flows: 3_000,
            alpha: 1.1,
            seed: 7,
        }
    }

    #[test]
    fn generates_requested_length() {
        let s = SyntheticCaida::materialize(&small());
        assert_eq!(s.len(), 200_000);
    }

    #[test]
    fn weights_are_valid_packet_bit_sizes() {
        for (_, w) in SyntheticCaida::new(&small()).take(10_000) {
            assert!(w % 8 == 0, "weights are whole bytes in bits");
            let bytes = w / 8;
            assert!(
                (40..=1500).contains(&bytes),
                "implausible packet: {bytes} B"
            );
        }
    }

    #[test]
    fn mean_packet_size_is_imix_like() {
        let s = SyntheticCaida::materialize(&small());
        let mean_bytes = total_weight(&s) as f64 / 8.0 / s.len() as f64;
        // 0.58·~70 + 0.33·~400 + 0.09·~1450 ≈ 300 B
        assert!(
            (200.0..420.0).contains(&mean_bytes),
            "mean packet {mean_bytes:.0} B outside IMIX band"
        );
    }

    #[test]
    fn key_distribution_is_skewed() {
        let s = SyntheticCaida::materialize(&small());
        let mut counts = std::collections::HashMap::new();
        for &(ip, _) in &s {
            *counts.entry(ip).or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = freqs.iter().take(10).sum();
        let share = top10 as f64 / s.len() as f64;
        assert!(
            share > 0.25,
            "top-10 flows carry only {share:.2} of packets — not heavy-tailed"
        );
    }

    #[test]
    fn distinct_ratio_near_paper() {
        let cfg = CaidaConfig::scaled(500_000);
        let s = SyntheticCaida::materialize(&cfg);
        let ratio = num_distinct(&s) as f64 / s.len() as f64;
        assert!(
            (0.005..0.03).contains(&ratio),
            "distinct/update ratio {ratio:.4} far from the paper's ≈0.014"
        );
    }

    #[test]
    fn ips_spread_over_32_bit_universe() {
        let s = SyntheticCaida::materialize(&small());
        let max_ip = s.iter().map(|&(ip, _)| ip).max().unwrap();
        assert!(max_ip < 1 << 32);
        assert!(max_ip > 1 << 30, "ids should use the upper id space too");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SyntheticCaida::materialize(&small());
        let b = SyntheticCaida::materialize(&small());
        assert_eq!(a, b);
    }

    #[test]
    fn rank_to_ip_is_injective_on_flows() {
        let mut seen = std::collections::HashSet::new();
        for rank in 1..=100_000u64 {
            assert!(
                seen.insert(SyntheticCaida::rank_to_ip(rank)),
                "collision at rank {rank}"
            );
        }
    }
}
