//! The §4.5 merge-experiment workload: item identifiers from Zipf(α=1.05)
//! and weights uniform on `[1, 10 000]`, used to "fill up" sketches before
//! merge benchmarking.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stream::WeightedUpdate;
use crate::zipf::Zipf;

/// Configuration of the merge-fill workload.
#[derive(Clone, Debug)]
pub struct MergeWorkloadConfig {
    /// Updates per sketch fill.
    pub updates_per_sketch: usize,
    /// Zipf support size for item identifiers.
    pub universe: u64,
    /// Zipf exponent (the paper uses 1.05).
    pub alpha: f64,
    /// Maximum uniform weight (the paper uses 10 000).
    pub max_weight: u64,
    /// Base RNG seed; sketch `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for MergeWorkloadConfig {
    fn default() -> Self {
        Self {
            updates_per_sketch: 100_000,
            universe: 1 << 22,
            alpha: 1.05,
            max_weight: 10_000,
            seed: 0x4D45_5247, // "MERG"
        }
    }
}

/// Generates the fill stream for the `index`-th sketch of the experiment.
pub fn fill_stream(config: &MergeWorkloadConfig, index: u64) -> Vec<WeightedUpdate> {
    let zipf = Zipf::new(config.universe, config.alpha);
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(index));
    (0..config.updates_per_sketch)
        .map(|_| {
            let item = zipf.sample(&mut rng);
            let weight = rng.gen_range(1..=config.max_weight);
            (item, weight)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_parameters() {
        let cfg = MergeWorkloadConfig {
            updates_per_sketch: 5_000,
            universe: 1000,
            alpha: 1.05,
            max_weight: 10_000,
            seed: 1,
        };
        let s = fill_stream(&cfg, 0);
        assert_eq!(s.len(), 5_000);
        for &(item, w) in &s {
            assert!((1..=1000).contains(&item));
            assert!((1..=10_000).contains(&w));
        }
    }

    #[test]
    fn different_indices_differ() {
        let cfg = MergeWorkloadConfig::default();
        let a = fill_stream(
            &MergeWorkloadConfig {
                updates_per_sketch: 1000,
                ..cfg.clone()
            },
            0,
        );
        let b = fill_stream(
            &MergeWorkloadConfig {
                updates_per_sketch: 1000,
                ..cfg
            },
            1,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn weights_cover_the_range() {
        let cfg = MergeWorkloadConfig {
            updates_per_sketch: 50_000,
            ..MergeWorkloadConfig::default()
        };
        let s = fill_stream(&cfg, 3);
        let lo = s.iter().map(|&(_, w)| w).min().unwrap();
        let hi = s.iter().map(|&(_, w)| w).max().unwrap();
        assert!(lo < 100, "low weights missing (min {lo})");
        assert!(hi > 9_900, "high weights missing (max {hi})");
    }
}
