//! Weighted-stream plumbing: the update type, composition helpers, and a
//! binary on-disk format so experiment runs are replayable byte-for-byte.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One weighted stream update `(item, Δ)` — §1.2's update model. Items are
/// 64-bit identifiers (IPv4 fits with room to spare, §4.1); weights are
/// positive integers (packet size in bits, bytes transferred, …).
pub type WeightedUpdate = (u64, u64);

/// Total weighted length `N = Σ Δⱼ` of a materialized stream.
pub fn total_weight(stream: &[WeightedUpdate]) -> u64 {
    stream.iter().map(|&(_, w)| w).sum()
}

/// Number of distinct items in a materialized stream.
pub fn num_distinct(stream: &[WeightedUpdate]) -> usize {
    let mut items: Vec<u64> = stream.iter().map(|&(i, _)| i).collect();
    items.sort_unstable();
    items.dedup();
    items.len()
}

/// Concatenates streams in order (the `σ = σ₁ ∘ σ₂` of §3's merge
/// analyses).
pub fn concat(parts: &[Vec<WeightedUpdate>]) -> Vec<WeightedUpdate> {
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for p in parts {
        out.extend_from_slice(p);
    }
    out
}

/// Deterministically shuffles a stream (Fisher-Yates under a seeded
/// generator) — used to destroy adversarial orderings in ablations.
pub fn shuffle(stream: &mut [WeightedUpdate], seed: u64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    stream.shuffle(&mut rng);
}

/// Splits a stream round-robin into `n` partitions — the "partitioned
/// across machines" merge scenario of §3.
pub fn partition_round_robin(stream: &[WeightedUpdate], n: usize) -> Vec<Vec<WeightedUpdate>> {
    assert!(n > 0, "need at least one partition");
    let mut parts = vec![Vec::with_capacity(stream.len() / n + 1); n];
    for (i, &u) in stream.iter().enumerate() {
        parts[i % n].push(u);
    }
    parts
}

/// Writes a timestamped stream as little-endian
/// `(timestamp u64, item u64, weight u64)` records — the 24-byte format
/// the CLI's `window build` ingests.
///
/// # Errors
/// Propagates I/O errors from the filesystem.
pub fn save_timed_binary(stream: &[crate::temporal::TimedUpdate], path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for &(timestamp, item, weight) in stream {
        w.write_all(&timestamp.to_le_bytes())?;
        w.write_all(&item.to_le_bytes())?;
        w.write_all(&weight.to_le_bytes())?;
    }
    w.flush()
}

/// Reads a timestamped stream written by [`save_timed_binary`].
///
/// # Errors
/// Fails on I/O errors or if the file length is not a multiple of 24.
pub fn load_timed_binary(path: &Path) -> io::Result<Vec<crate::temporal::TimedUpdate>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    if bytes.len() % 24 != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("file length {} is not a multiple of 24", bytes.len()),
        ));
    }
    Ok(bytes
        .chunks_exact(24)
        .map(|c| {
            let timestamp = u64::from_le_bytes(c[..8].try_into().expect("8-byte chunk"));
            let item = u64::from_le_bytes(c[8..16].try_into().expect("8-byte chunk"));
            let weight = u64::from_le_bytes(c[16..].try_into().expect("8-byte chunk"));
            (timestamp, item, weight)
        })
        .collect())
}

/// Writes a stream as little-endian `(u64, u64)` records.
///
/// # Errors
/// Propagates I/O errors from the filesystem.
pub fn save_binary(stream: &[WeightedUpdate], path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for &(item, weight) in stream {
        w.write_all(&item.to_le_bytes())?;
        w.write_all(&weight.to_le_bytes())?;
    }
    w.flush()
}

/// Reads a stream written by [`save_binary`].
///
/// # Errors
/// Fails on I/O errors or if the file length is not a multiple of 16.
pub fn load_binary(path: &Path) -> io::Result<Vec<WeightedUpdate>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    if bytes.len() % 16 != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("file length {} is not a multiple of 16", bytes.len()),
        ));
    }
    Ok(bytes
        .chunks_exact(16)
        .map(|c| {
            let item = u64::from_le_bytes(c[..8].try_into().expect("8-byte chunk"));
            let weight = u64::from_le_bytes(c[8..].try_into().expect("8-byte chunk"));
            (item, weight)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream() -> Vec<WeightedUpdate> {
        vec![(1, 10), (2, 20), (1, 5), (3, 1)]
    }

    #[test]
    fn totals_and_distinct() {
        let s = sample_stream();
        assert_eq!(total_weight(&s), 36);
        assert_eq!(num_distinct(&s), 3);
    }

    #[test]
    fn concat_preserves_order() {
        let joined = concat(&[vec![(1, 1), (2, 2)], vec![(3, 3)]]);
        assert_eq!(joined, vec![(1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn shuffle_is_deterministic_permutation() {
        let mut a: Vec<WeightedUpdate> = (0..100).map(|i| (i, i + 1)).collect();
        let mut b = a.clone();
        let original = a.clone();
        shuffle(&mut a, 5);
        shuffle(&mut b, 5);
        assert_eq!(a, b, "same seed, same order");
        assert_ne!(a, original, "shuffle must move something");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original, "shuffle must be a permutation");
    }

    #[test]
    fn partition_covers_everything() {
        let s: Vec<WeightedUpdate> = (0..10).map(|i| (i, 1)).collect();
        let parts = partition_round_robin(&s, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 10);
        assert_eq!(parts[0], vec![(0, 1), (3, 1), (6, 1), (9, 1)]);
    }

    #[test]
    fn binary_roundtrip() {
        let dir = std::env::temp_dir().join("streamfreq-test-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.bin");
        let s = sample_stream();
        save_binary(&s, &path).unwrap();
        let loaded = load_binary(&path).unwrap();
        assert_eq!(loaded, s);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn timed_binary_roundtrip() {
        let dir = std::env::temp_dir().join("streamfreq-test-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("timed.tbin");
        let s: Vec<(u64, u64, u64)> = vec![(0, 1, 10), (100, 2, 20), (100, 1, 5)];
        save_timed_binary(&s, &path).unwrap();
        assert_eq!(load_timed_binary(&path).unwrap(), s);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn timed_load_rejects_torn_file() {
        let dir = std::env::temp_dir().join("streamfreq-test-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.tbin");
        std::fs::write(&path, [0u8; 25]).unwrap();
        assert!(load_timed_binary(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_torn_file() {
        let dir = std::env::temp_dir().join("streamfreq-test-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.bin");
        std::fs::write(&path, [0u8; 15]).unwrap();
        assert!(load_binary(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn zero_partitions_panics() {
        partition_round_robin(&[], 0);
    }
}
