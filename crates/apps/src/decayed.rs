//! Time-fading frequent items: the exponential-decay model of Cafaro,
//! Pulimeno & Epicoco (FDCMSS, arXiv:1601.03892) on the unified sketch
//! engine.
//!
//! In the time-fading model an update of weight `w` made `e` epochs ago
//! contributes `w · λᵉ` (0 < λ ≤ 1) to an item's *decayed frequency*, so
//! recent traffic outweighs stale traffic and a "heavy hitter" means
//! *heavy now*. [`DecayedSketch`] implements it with the one hook the
//! engine grew for the purpose:
//! [`SketchEngine::scale_counters`] multiplies
//! every counter by λ in one fused compaction pass (dropping the
//! counters that decay to nothing) each time the epoch clock ticks.
//! Between ticks it is an ordinary engine: the scalar and batched
//! ingestion paths, the purge machinery, and the reporting surface are
//! the same code every other variant runs.
//!
//! ## Guarantees (adjusted for decay)
//!
//! Let `fᵢ(t)` be the real-valued decayed frequency of item `i` at the
//! current epoch. The engine's certified bounds survive scaling:
//!
//! * `lower_bound(i) ≤ fᵢ(t) ≤ upper_bound(i)` for tracked items, and
//! * `fᵢ(t) ≤ maximum_error()` for untracked items.
//!
//! The price of decaying integer counters is one extra unit of error
//! band per tick (counters floor; the offset rounds up and adds 1 —
//! see [`SketchEngine::scale_counters`]), on
//! top of the λ-scaled purge error. Both are folded into
//! [`DecayedSketch::maximum_error`], so every reported bound remains
//! certified.
//!
//! The decayed stream weight `N(t) = Σⱼ Δⱼ·λ^{eⱼ}` (within the same
//! flooring slack) backs the φ-heavy-hitters threshold: a query asks for
//! items above `φ · N(t)`, i.e. a fraction of *recent* mass, which is
//! exactly what the time-fading model is for.

use streamfreq_core::engine::{SketchEngine, SketchEngineBuilder, SketchKey};
use streamfreq_core::{Error, ErrorType, PurgePolicy, Row};

/// A frequent-items sketch under exponential time fading: counters decay
/// by a factor λ = `decay_num / decay_den` every `epoch_len` time units.
///
/// # Example
///
/// ```
/// use streamfreq_apps::DecayedSketch;
///
/// // Hourly epochs, λ = 1/2: last hour counts full, the hour before
/// // half, and so on.
/// let mut sketch: DecayedSketch<u64> = DecayedSketch::new(64, 3600, (1, 2));
/// sketch.record(0, 7, 1000);        // stale burst
/// sketch.record(4 * 3600, 9, 200);  // recent traffic
/// // After 4 epochs, item 7's decayed mass is 1000/16 = 62; item 9's is
/// // 200 — the recent item now dominates.
/// assert!(sketch.estimate(&9) > sketch.estimate(&7));
/// ```
#[derive(Clone, Debug)]
pub struct DecayedSketch<K: SketchKey> {
    engine: SketchEngine<K>,
    decay_num: u64,
    decay_den: u64,
    epoch_len: u64,
    /// Epoch index of the open epoch (`None` until the first record).
    epoch: Option<u64>,
    num_ticks: u64,
    /// Lazy decay mode: ticks fold into the engine's pending global
    /// scale factor (O(1) per tick) instead of sweeping the table.
    lazy: bool,
}

impl<K: SketchKey> DecayedSketch<K> {
    /// Creates a decayed sketch with `max_counters` counters, epochs of
    /// `epoch_len` time units, and decay factor `λ = decay.0 / decay.1`
    /// applied at every epoch boundary.
    ///
    /// # Panics
    /// Panics on invalid configuration; use [`Self::try_new`] to handle
    /// errors.
    pub fn new(max_counters: usize, epoch_len: u64, decay: (u64, u64)) -> Self {
        Self::try_new(
            max_counters,
            epoch_len,
            decay,
            PurgePolicy::default(),
            streamfreq_core::sketch::DEFAULT_SEED,
        )
        .expect("invalid decayed-sketch configuration")
    }

    /// [`Self::new`] with an explicit purge policy and sampler seed.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if `epoch_len` is zero, the decay
    /// factor is not in `(0, 1]` (`0 < num ≤ den`), or the engine
    /// configuration is invalid.
    pub fn try_new(
        max_counters: usize,
        epoch_len: u64,
        decay: (u64, u64),
        policy: PurgePolicy,
        seed: u64,
    ) -> Result<Self, Error> {
        let (decay_num, decay_den) = decay;
        if epoch_len == 0 {
            return Err(Error::InvalidConfig("epoch_len must be positive".into()));
        }
        if decay_den == 0 || decay_num == 0 || decay_num > decay_den {
            return Err(Error::InvalidConfig(format!(
                "decay factor {decay_num}/{decay_den} outside (0, 1]"
            )));
        }
        Ok(Self {
            engine: SketchEngineBuilder::new(max_counters)
                .policy(policy)
                .seed(seed)
                .build()?,
            decay_num,
            decay_den,
            epoch_len,
            epoch: None,
            num_ticks: 0,
            lazy: false,
        })
    }

    /// Switches the sketch to **lazy decay**: each epoch tick folds λ
    /// into a pending global scale factor in O(1) instead of sweeping
    /// every counter, and the sweep is deferred until a boundary needs
    /// true counter values (capacity pressure, an explicit
    /// [`Self::materialize`], a merge, or an eager `scale_counters`).
    /// Incoming updates join forward-inflated by the pending factor and
    /// all integer arithmetic composes exactly (`⌊⌊c/d⌋/d⌋ = ⌊c/d²⌋`), so
    /// every query answer matches eager per-tick scaling counter for
    /// counter.
    ///
    /// Only decay factors of the form `1/den` defer (`λ = num/den` with
    /// `num > 1` does not compose under deferred flooring); other
    /// configurations silently keep the eager path, so this is always
    /// safe to request.
    pub fn lazy(mut self) -> Self {
        self.lazy = true;
        self
    }

    /// True if lazy decay was requested *and* the decay factor supports
    /// deferral (λ = 1/den, den > 1).
    pub fn is_lazy(&self) -> bool {
        self.lazy && self.decay_num == 1 && self.decay_den > 1
    }

    /// Settles any pending lazy-decay scale into true counter values.
    /// No-op in eager mode or when nothing is pending.
    pub fn materialize(&mut self) {
        self.engine.materialize_decay();
    }

    /// The decay factor `(num, den)` applied per epoch tick.
    pub fn decay(&self) -> (u64, u64) {
        (self.decay_num, self.decay_den)
    }

    /// Time units per epoch.
    pub fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    /// Number of decay ticks applied so far.
    pub fn num_ticks(&self) -> u64 {
        self.num_ticks
    }

    /// The epoch index the sketch currently sits in (`None` before the
    /// first record).
    pub fn current_epoch(&self) -> Option<u64> {
        self.epoch
    }

    /// Read access to the underlying engine (estimates there are decayed
    /// values as of the current epoch).
    ///
    /// **Lazy-mode caveat:** while a lazy scale is pending
    /// ([`SketchEngine::pending_decay_pow`] > 1) the engine's raw
    /// counters are forward-inflated by that factor. This sketch's own
    /// query surface divides it back out; raw engine reads should call
    /// [`Self::materialize`] first.
    pub fn engine(&self) -> &SketchEngine<K> {
        &self.engine
    }

    /// Applies one decay tick by hand: λ folds into the pending lazy
    /// scale (lazy mode) or every counter scales through the fused
    /// compaction path (eager), and the clock advances one epoch.
    pub fn tick(&mut self) {
        if self.is_lazy() {
            self.engine.lazy_scale_counters(self.decay_den);
        } else {
            self.engine.scale_counters(self.decay_num, self.decay_den);
        }
        self.epoch = Some(self.epoch.map_or(0, |e| e + 1));
        self.num_ticks += 1;
    }

    /// Advances the epoch clock to `timestamp`, applying one decay tick
    /// per crossed epoch boundary. Ticking stops early once a tick
    /// leaves the whole observable state unchanged — the drained steady
    /// state (no counters, no stream weight, error band at its floor),
    /// or any λ = 1 configuration — since every further tick would be
    /// the same no-op.
    ///
    /// # Panics
    /// Panics if `timestamp` precedes the current epoch (the stream must
    /// be delivered in non-decreasing time order, same as
    /// [`crate::WindowedStore`]).
    pub fn advance_to(&mut self, timestamp: u64) {
        let target = timestamp / self.epoch_len;
        let current = match self.epoch {
            None => {
                self.epoch = Some(target);
                return;
            }
            Some(e) => e,
        };
        assert!(
            target >= current,
            "timestamp {timestamp} (epoch {target}) precedes the open epoch {current}"
        );
        if self.is_lazy() {
            for _ in current..target {
                let drained = self.engine.lazy_scale_counters(self.decay_den);
                self.num_ticks += 1;
                if drained {
                    // Fixed point: no remaining mass can change, so all
                    // further ticks are no-ops.
                    break;
                }
            }
            self.epoch = Some(target);
            return;
        }
        for _ in current..target {
            let before = (
                self.engine.num_counters(),
                self.engine.stream_weight(),
                self.engine.maximum_error(),
            );
            self.engine.scale_counters(self.decay_num, self.decay_den);
            self.num_ticks += 1;
            let after = (
                self.engine.num_counters(),
                self.engine.stream_weight(),
                self.engine.maximum_error(),
            );
            if before == after {
                // Fixed point: scaling changed nothing (drained engine,
                // or λ = 1), so all remaining ticks are no-ops. With
                // λ < 1 a non-empty table always strictly shrinks, so
                // this can only fire when it is correct to.
                break;
            }
        }
        self.epoch = Some(target);
    }

    /// Records `(item, weight)` at `timestamp`: decays across any crossed
    /// epoch boundaries, then updates through the engine's scalar path.
    ///
    /// # Panics
    /// Panics if `timestamp` precedes the current epoch, or `weight`
    /// exceeds `i64::MAX`.
    pub fn record(&mut self, timestamp: u64, item: K, weight: u64) {
        self.advance_to(timestamp);
        self.engine.update(item, weight);
    }

    /// Records a slice of `(item, weight)` updates sharing one
    /// `timestamp` through the engine's batched, prefetching ingestion
    /// path — state-identical to calling [`Self::record`] per pair.
    ///
    /// # Panics
    /// Panics if `timestamp` precedes the current epoch.
    pub fn record_batch(&mut self, timestamp: u64, batch: &[(K, u64)]) {
        if batch.is_empty() {
            return;
        }
        self.advance_to(timestamp);
        self.engine.update_batch(batch);
    }

    /// The item's counter value as of the current epoch: the raw stored
    /// counter deflated by any pending lazy scale (flooring — exactly
    /// what materializing would store). `None` for untracked items and
    /// for counters that have faded below one (eager scaling would have
    /// dropped those).
    fn scaled_count(&self, item: &K) -> Option<u64> {
        let v = self.engine.lower_bound(item) / self.engine.pending_decay_pow();
        (v > 0).then_some(v)
    }

    /// Estimate of the item's decayed frequency as of the current epoch.
    pub fn estimate(&self, item: &K) -> u64 {
        self.scaled_count(item)
            .map_or(0, |v| v.saturating_add(self.engine.maximum_error()))
    }

    /// Certified lower bound on the decayed frequency.
    pub fn lower_bound(&self, item: &K) -> u64 {
        self.scaled_count(item).unwrap_or(0)
    }

    /// Certified upper bound on the decayed frequency.
    pub fn upper_bound(&self, item: &K) -> u64 {
        let offset = self.engine.maximum_error();
        self.scaled_count(item)
            .map_or(offset, |v| v.saturating_add(offset))
    }

    /// Maximum estimation error against the real-valued decayed
    /// frequencies: λ-scaled purge error plus one unit per tick of
    /// flooring slack (see the [module docs](self)).
    pub fn maximum_error(&self) -> u64 {
        self.engine.maximum_error()
    }

    /// The decayed stream weight `N(t) ≈ Σⱼ Δⱼ·λ^{eⱼ}` — total *recent*
    /// mass, the denominator of [`Self::heavy_hitters`].
    pub fn decayed_weight(&self) -> u64 {
        self.engine.stream_weight()
    }

    /// Items whose decayed frequency may exceed `phi · N(t)` under the
    /// chosen reporting contract, sorted by descending estimate — the
    /// time-fading heavy hitters.
    ///
    /// # Panics
    /// Panics if `phi` is outside `[0, 1]`.
    pub fn heavy_hitters(&self, phi: f64, error_type: ErrorType) -> Vec<Row<K>>
    where
        K: Ord,
    {
        if self.engine.pending_decay_pow() == 1 {
            return self.engine.heavy_hitters(phi, error_type);
        }
        let threshold = streamfreq_core::phi_threshold(phi, self.engine.stream_weight())
            .max(self.engine.maximum_error());
        let mut rows: Vec<Row<K>> = self
            .scaled_rows()
            .into_iter()
            .filter(|row| match error_type {
                ErrorType::NoFalsePositives => row.lower_bound > threshold,
                ErrorType::NoFalseNegatives => row.upper_bound > threshold,
            })
            .collect();
        streamfreq_core::result::sort_rows_descending(&mut rows);
        rows
    }

    /// The `k` items with the largest decayed estimates.
    pub fn top_k(&self, k: usize) -> Vec<Row<K>>
    where
        K: Ord,
    {
        if self.engine.pending_decay_pow() == 1 {
            return self.engine.top_k(k);
        }
        let mut rows = self.scaled_rows();
        streamfreq_core::result::sort_rows_descending(&mut rows);
        rows.truncate(k);
        rows
    }

    /// All tracked rows with counters deflated by the pending lazy scale
    /// (counters that fade below one are dropped, like materialization
    /// drops them).
    fn scaled_rows(&self) -> Vec<Row<K>> {
        let pow = self.engine.pending_decay_pow();
        let offset = self.engine.maximum_error();
        self.engine
            .counters()
            .filter_map(|(item, raw)| {
                let v = raw / pow;
                (v > 0).then(|| Row {
                    item: item.clone(),
                    estimate: v.saturating_add(offset),
                    lower_bound: v,
                    upper_bound: v.saturating_add(offset),
                })
            })
            .collect()
    }

    /// Test/debug aid: verifies the internal table invariants.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.engine.check_invariants();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_halves_counters_per_epoch() {
        let mut s: DecayedSketch<u64> = DecayedSketch::new(32, 100, (1, 2));
        s.record(0, 1, 800);
        s.record(350, 2, 10); // three epoch boundaries crossed
        assert_eq!(s.num_ticks(), 3);
        assert_eq!(s.lower_bound(&1), 100, "800 / 2³");
        assert_eq!(s.lower_bound(&2), 10);
        s.check_invariants();
    }

    #[test]
    fn recent_item_outranks_stale_heavyweight() {
        // Exact counting ranks the stale item higher; the decayed sketch
        // must rank the recent one higher.
        let mut s: DecayedSketch<u64> = DecayedSketch::new(64, 10, (1, 2));
        s.record(0, 111, 1_000); // epoch 0: one big stale burst
        for epoch in 8..11u64 {
            s.record(epoch * 10, 222, 150); // recent steady traffic
        }
        // Exact totals: 111 → 1000, 222 → 450. Decayed (λ = 1/2 at epoch
        // 10): 111 ≈ 1000/1024 < 1, 222 ≈ 150 + 75 + 37.
        let top = s.top_k(2);
        assert_eq!(top[0].item, 222, "recent item must rank first");
        assert!(s.estimate(&222) > s.estimate(&111));
    }

    #[test]
    fn batch_matches_scalar_records() {
        let per_tick: Vec<(u64, u64)> = (0..4_000u64).map(|i| (i % 250, i % 7 + 1)).collect();
        let mut scalar: DecayedSketch<u64> = DecayedSketch::new(64, 100, (3, 4));
        let mut batched: DecayedSketch<u64> = DecayedSketch::new(64, 100, (3, 4));
        for tick in 0..6u64 {
            for &(item, w) in &per_tick {
                scalar.record(tick * 100, item, w);
            }
            batched.record_batch(tick * 100, &per_tick);
        }
        assert!(scalar.engine().num_purges() > 0, "must exercise purging");
        assert_eq!(
            scalar.engine().state_fingerprint(),
            batched.engine().state_fingerprint()
        );
    }

    #[test]
    fn bounds_bracket_real_valued_decayed_truth() {
        let mut s: DecayedSketch<u64> = DecayedSketch::new(48, 10, (9, 10));
        let mut truth = vec![0.0f64; 150];
        let mut x = 3u64;
        let mut now = 0u64;
        for round in 0..40u64 {
            now = round * 10;
            let mut batch = Vec::new();
            for _ in 0..1_500 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                batch.push(((x >> 33) % 150, x % 25 + 1));
            }
            s.record_batch(now, &batch);
            // Decay the truth for the *next* round's boundary crossing.
            for &(item, w) in &batch {
                truth[item as usize] += w as f64;
            }
            for t in &mut truth {
                *t *= 0.9;
            }
        }
        // Align: truth was decayed one step beyond the sketch's clock.
        s.advance_to(now + 10);
        assert!(s.engine().num_purges() > 0, "must exercise purging");
        for item in 0..150u64 {
            let f = truth[item as usize];
            assert!(
                s.lower_bound(&item) as f64 <= f + 1e-6,
                "item {item}: lb {} above decayed truth {f:.2}",
                s.lower_bound(&item)
            );
            assert!(
                s.upper_bound(&item) as f64 >= f - 1e-6,
                "item {item}: ub {} below decayed truth {f:.2}",
                s.upper_bound(&item)
            );
        }
    }

    #[test]
    fn heavy_hitters_reflect_recent_mass() {
        let mut s: DecayedSketch<u64> = DecayedSketch::new(32, 10, (1, 10));
        // Stale epoch-0 flood, then a recent modest item.
        s.record(0, 1, 100_000);
        s.record(50, 2, 500);
        let hh = s.heavy_hitters(0.3, ErrorType::NoFalseNegatives);
        assert!(
            hh.iter().any(|r| r.item == 2),
            "recent item above 30% of decayed N must be reported"
        );
        assert!(
            hh.iter().all(|r| r.item != 1),
            "stale flood decayed to {} of N {} and must not dominate",
            s.estimate(&1),
            s.decayed_weight()
        );
    }

    #[test]
    fn generic_string_items() {
        let mut s: DecayedSketch<String> = DecayedSketch::new(16, 100, (1, 2));
        s.record(0, "old".into(), 600);
        s.record(250, "new".into(), 200);
        assert_eq!(s.lower_bound(&"old".to_string()), 150);
        assert_eq!(s.lower_bound(&"new".to_string()), 200);
        let top = s.top_k(1);
        assert_eq!(top[0].item, "new");
    }

    #[test]
    fn drained_sketch_fast_forwards() {
        let mut s: DecayedSketch<u64> = DecayedSketch::new(8, 1, (1, 2));
        s.record(0, 1, 100);
        // A huge time jump must terminate quickly (steady-state break)
        // and leave a drained engine.
        s.advance_to(u64::MAX);
        assert_eq!(s.engine().num_counters(), 0);
        assert_eq!(s.decayed_weight(), 0);
        assert!(s.maximum_error() <= 1, "error band settles at ≤ 1");
        // The clock really is at the far epoch: recording "now" works.
        s.record(u64::MAX, 2, 7);
        assert_eq!(s.estimate(&2), 7 + s.maximum_error());
    }

    #[test]
    fn identity_decay_fast_forwards() {
        // λ = 1 is a legal "no fading" configuration; huge time jumps
        // must not iterate once per crossed epoch.
        let mut s = DecayedSketch::<u64>::try_new(8, 1, (1, 1), PurgePolicy::default(), 0).unwrap();
        s.record(0, 1, 5);
        s.record(u64::MAX, 2, 3);
        assert_eq!(s.estimate(&1), 5, "identity decay preserves counters");
        assert_eq!(s.estimate(&2), 3);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(DecayedSketch::<u64>::try_new(8, 0, (1, 2), PurgePolicy::default(), 0).is_err());
        assert!(DecayedSketch::<u64>::try_new(8, 10, (0, 2), PurgePolicy::default(), 0).is_err());
        assert!(DecayedSketch::<u64>::try_new(8, 10, (3, 2), PurgePolicy::default(), 0).is_err());
        assert!(DecayedSketch::<u64>::try_new(8, 10, (1, 0), PurgePolicy::default(), 0).is_err());
        assert!(DecayedSketch::<u64>::try_new(8, 10, (1, 1), PurgePolicy::default(), 0).is_ok());
    }

    /// Value-level state of a decayed sketch: sorted (item, deflated
    /// counter) pairs plus the scalar bookkeeping — everything queries
    /// can observe. Lazy and eager sketches must agree on this at every
    /// boundary (slot layout may differ across purge/materialize
    /// orderings, so raw fingerprints are compared only by the purge-free
    /// proptests).
    fn value_state(s: &DecayedSketch<u64>) -> (Vec<(u64, u64)>, u64, u64) {
        let pow = s.engine().pending_decay_pow();
        let mut counters: Vec<(u64, u64)> = s
            .engine()
            .counters()
            .filter_map(|(k, v)| {
                let v = v / pow;
                (v > 0).then_some((*k, v))
            })
            .collect();
        counters.sort_unstable();
        (counters, s.maximum_error(), s.decayed_weight())
    }

    #[test]
    fn lazy_matches_eager_queries_purge_free() {
        // Small enough stream that no purge fires: lazy must match eager
        // on every query at every epoch boundary, and the engines must
        // agree fingerprint-for-fingerprint after materialization.
        let mut eager: DecayedSketch<u64> = DecayedSketch::new(512, 10, (1, 2));
        let mut lazy: DecayedSketch<u64> = DecayedSketch::new(512, 10, (1, 2)).lazy();
        assert!(lazy.is_lazy());
        for epoch in 0..12u64 {
            let batch: Vec<(u64, u64)> = (0..200u64).map(|i| (i % 97, i % 13 + 1)).collect();
            eager.record_batch(epoch * 10, &batch);
            lazy.record_batch(epoch * 10, &batch);
            for item in 0..97u64 {
                assert_eq!(eager.estimate(&item), lazy.estimate(&item), "item {item}");
                assert_eq!(eager.lower_bound(&item), lazy.lower_bound(&item));
                assert_eq!(eager.upper_bound(&item), lazy.upper_bound(&item));
            }
            assert_eq!(value_state(&eager), value_state(&lazy), "epoch {epoch}");
            assert_eq!(
                eager
                    .top_k(10)
                    .iter()
                    .map(|r| r.estimate)
                    .collect::<Vec<_>>(),
                lazy.top_k(10)
                    .iter()
                    .map(|r| r.estimate)
                    .collect::<Vec<_>>()
            );
        }
        assert_eq!(eager.engine().num_purges(), 0, "test must stay purge-free");
        lazy.materialize();
        assert_eq!(value_state(&eager), value_state(&lazy));
        lazy.check_invariants();
    }

    #[test]
    fn lazy_matches_eager_across_purges() {
        // Heavy traffic: purges (and capacity materializations) fire.
        // Value-level state must still agree at every boundary.
        let mut eager: DecayedSketch<u64> = DecayedSketch::new(32, 10, (1, 2));
        let mut lazy: DecayedSketch<u64> = DecayedSketch::new(32, 10, (1, 2)).lazy();
        let mut x = 7u64;
        for epoch in 0..8u64 {
            let mut batch = Vec::new();
            for _ in 0..2_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                batch.push(((x >> 33) % 300, x % 9 + 1));
            }
            eager.record_batch(epoch * 10, &batch);
            lazy.record_batch(epoch * 10, &batch);
            assert_eq!(eager.maximum_error(), lazy.maximum_error(), "epoch {epoch}");
            assert_eq!(eager.decayed_weight(), lazy.decayed_weight());
        }
        assert!(eager.engine().num_purges() > 0, "must exercise purging");
        lazy.check_invariants();
    }

    #[test]
    fn lazy_drained_sketch_fast_forwards() {
        let mut s: DecayedSketch<u64> = DecayedSketch::new(8, 1, (1, 2)).lazy();
        s.record(0, 1, 100);
        s.advance_to(u64::MAX);
        assert_eq!(s.engine().num_counters(), 0, "zombies compacted away");
        assert_eq!(s.engine().pending_decay_pow(), 1, "drained state settles");
        assert_eq!(s.decayed_weight(), 0);
        assert!(s.maximum_error() <= 1);
        s.record(u64::MAX, 2, 7);
        assert_eq!(s.estimate(&2), 7 + s.maximum_error());
    }

    #[test]
    fn lazy_falls_back_to_eager_for_wide_factors() {
        // λ = 3/4 cannot defer (flooring does not compose); .lazy() must
        // silently keep the eager path with identical state.
        let mut plain: DecayedSketch<u64> = DecayedSketch::new(64, 10, (3, 4));
        let mut requested: DecayedSketch<u64> = DecayedSketch::new(64, 10, (3, 4)).lazy();
        assert!(!requested.is_lazy());
        for epoch in 0..5u64 {
            let batch: Vec<(u64, u64)> = (0..500u64).map(|i| (i % 80, 3)).collect();
            plain.record_batch(epoch * 10, &batch);
            requested.record_batch(epoch * 10, &batch);
        }
        assert_eq!(
            plain.engine().state_fingerprint(),
            requested.engine().state_fingerprint()
        );
    }

    #[test]
    fn lazy_generic_string_items() {
        let mut s: DecayedSketch<String> = DecayedSketch::new(16, 100, (1, 2)).lazy();
        s.record(0, "old".into(), 600);
        s.record(250, "new".into(), 200);
        assert_eq!(s.lower_bound(&"old".to_string()), 150);
        assert_eq!(s.lower_bound(&"new".to_string()), 200);
        let top = s.top_k(1);
        assert_eq!(top[0].item, "new");
        s.materialize();
        assert_eq!(s.lower_bound(&"old".to_string()), 150);
    }

    #[test]
    #[should_panic(expected = "precedes the open epoch")]
    fn rejects_time_regression() {
        let mut s: DecayedSketch<u64> = DecayedSketch::new(8, 10, (1, 2));
        s.record(100, 1, 1);
        s.record(50, 2, 1);
    }
}
