//! Time-windowed sketch storage — §3's first motivating scenario made
//! concrete: "a company keeps a separate summary for data obtained in
//! each 1-hour period over the course of several years … at query time,
//! an analyst specifies which data are of interest and the summaries are
//! seamlessly merged".
//!
//! [`WindowedStore`] keeps one serialized [`FreqSketch`] per fixed-width
//! time bucket. Updates land in the open (in-memory) bucket; closed
//! buckets are held as compact wire bytes (hundreds of bytes to a few
//! hundred KiB each, §2.3.3), the way a production system would keep them
//! in object storage. A range query deserializes and merges only the
//! buckets that overlap the queried interval — millions of summaries
//! could be scanned this way because Algorithm 5's merge is O(k) with no
//! scratch allocation.

use streamfreq_core::{Error, FreqSketch, PurgePolicy};

/// A store of per-window frequent-items summaries with range-merge
/// queries.
///
/// # Example
///
/// ```
/// use streamfreq_apps::WindowedStore;
///
/// // Hourly windows (3600-second buckets), 1024 counters per window.
/// let mut store = WindowedStore::new(3600, 1024);
/// store.record(0, 42, 100);        // hour 0
/// store.record(4000, 42, 50);      // hour 1
/// store.record(8000, 7, 10);       // hour 2
///
/// // What happened between hours 0 and 1?
/// let summary = store.query_range(0, 7200).unwrap().unwrap();
/// assert_eq!(summary.estimate(42), 150);
/// assert_eq!(summary.estimate(7), 0);
/// ```
#[derive(Clone, Debug)]
pub struct WindowedStore {
    window_width: u64,
    k: usize,
    policy: PurgePolicy,
    /// Closed buckets: `(window_start, serialized sketch)`, ascending.
    closed: Vec<(u64, Vec<u8>)>,
    /// The currently open bucket, if any.
    open: Option<(u64, FreqSketch)>,
}

impl WindowedStore {
    /// Creates a store with `window_width` time units per bucket and `k`
    /// counters per bucket summary.
    ///
    /// # Panics
    /// Panics if `window_width` is zero or `k` is invalid.
    pub fn new(window_width: u64, k: usize) -> Self {
        Self::with_policy(window_width, k, PurgePolicy::default())
    }

    /// [`Self::new`] with an explicit purge policy for every window
    /// summary (the same `policy` knob the sketch builders expose).
    ///
    /// # Panics
    /// Panics if `window_width` is zero or `k`/`policy` is invalid.
    pub fn with_policy(window_width: u64, k: usize, policy: PurgePolicy) -> Self {
        assert!(window_width > 0, "window width must be positive");
        // Validate k and policy eagerly so failures surface at
        // construction.
        let _probe = FreqSketch::builder(k)
            .policy(policy)
            .build()
            .expect("invalid k or policy");
        Self {
            window_width,
            k,
            policy,
            closed: Vec::new(),
            open: None,
        }
    }

    fn window_start(&self, timestamp: u64) -> u64 {
        timestamp - timestamp % self.window_width
    }

    /// Records `(item, weight)` at `timestamp`. Timestamps must be
    /// non-decreasing across calls (streaming ingestion); a timestamp
    /// before the open window is clamped into it.
    ///
    /// # Panics
    /// Panics if the timestamp precedes an already-closed window.
    pub fn record(&mut self, timestamp: u64, item: u64, weight: u64) {
        let start = self.window_start(timestamp);
        if let Some((last_closed, _)) = self.closed.last() {
            assert!(
                start >= *last_closed + self.window_width,
                "timestamp {timestamp} falls in an already-closed window"
            );
        }
        let need_roll = match &self.open {
            // a record after the open window closes it; a late record
            // within the open epoch is clamped into the open window
            Some((open_start, _)) => start > *open_start,
            None => true,
        };
        if need_roll {
            self.roll_to(start);
        }
        let (_, sketch) = self.open.as_mut().expect("a window is open");
        sketch.update(item, weight);
    }

    /// Records a slice of `(item, weight)` updates that all carry the same
    /// `timestamp`, through the open window's batched, prefetching
    /// ingestion path ([`FreqSketch::update_batch`]) — the natural entry
    /// for ingest pipelines that deliver telemetry in per-tick buckets.
    /// State-identical to calling [`Self::record`] per pair.
    ///
    /// # Panics
    /// Panics if the timestamp precedes an already-closed window.
    pub fn record_batch(&mut self, timestamp: u64, batch: &[(u64, u64)]) {
        if batch.is_empty() {
            return;
        }
        let start = self.window_start(timestamp);
        if let Some((last_closed, _)) = self.closed.last() {
            assert!(
                start >= *last_closed + self.window_width,
                "timestamp {timestamp} falls in an already-closed window"
            );
        }
        let need_roll = match &self.open {
            Some((open_start, _)) => start > *open_start,
            None => true,
        };
        if need_roll {
            self.roll_to(start);
        }
        let (_, sketch) = self.open.as_mut().expect("a window is open");
        sketch.update_batch(batch);
    }

    /// Closes the open window (serializing it) and opens one at `start`.
    fn roll_to(&mut self, start: u64) {
        if let Some((open_start, sketch)) = self.open.take() {
            self.closed.push((open_start, sketch.serialize_to_bytes()));
        }
        let sketch = FreqSketch::builder(self.k)
            .policy(self.policy)
            .seed(start ^ 0x0057_AB1E)
            .build()
            .expect("validated at construction");
        self.open = Some((start, sketch));
    }

    /// Number of closed windows held.
    pub fn num_closed_windows(&self) -> usize {
        self.closed.len()
    }

    /// Total bytes held by the closed-window encodings.
    pub fn stored_bytes(&self) -> usize {
        self.closed.iter().map(|(_, b)| b.len()).sum()
    }

    /// Merges every window overlapping `[from, to)` into one summary of
    /// the union of their streams (Theorem 5 bounds apply). Returns `None`
    /// when no window overlaps.
    ///
    /// # Errors
    /// Returns a codec error if a stored encoding is corrupt.
    pub fn query_range(&self, from: u64, to: u64) -> Result<Option<FreqSketch>, Error> {
        let mut merged: Option<FreqSketch> = None;
        let mut absorb = |sketch: FreqSketch| match &mut merged {
            Some(acc) => acc.merge(&sketch),
            None => merged = Some(sketch),
        };
        for (start, bytes) in &self.closed {
            if *start < to && start + self.window_width > from {
                absorb(FreqSketch::deserialize_from_bytes(bytes)?);
            }
        }
        if let Some((start, sketch)) = &self.open {
            if *start < to && start + self.window_width > from {
                absorb(sketch.clone());
            }
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_roll_on_time() {
        let mut store = WindowedStore::new(3600, 64);
        store.record(0, 1, 10);
        store.record(1800, 1, 5);
        store.record(3600, 2, 7); // second hour
        store.record(7300, 3, 1); // third hour
        assert_eq!(store.num_closed_windows(), 2);
        assert!(store.stored_bytes() > 0);
    }

    #[test]
    fn range_query_merges_only_selected_windows() {
        let mut store = WindowedStore::new(100, 64);
        for hour in 0..10u64 {
            for _ in 0..5 {
                store.record(hour * 100 + 10, hour + 1, 100);
            }
        }
        // Query hours 3..=4 (timestamps 300..500).
        let merged = store.query_range(300, 500).unwrap().expect("overlap");
        assert_eq!(merged.estimate(4), 500, "hour-3 item");
        assert_eq!(merged.estimate(5), 500, "hour-4 item");
        assert_eq!(merged.estimate(1), 0, "hour-0 item must be absent");
        assert_eq!(merged.stream_weight(), 1000);
    }

    #[test]
    fn open_window_participates_in_queries() {
        let mut store = WindowedStore::new(100, 32);
        store.record(50, 42, 9);
        let merged = store.query_range(0, 100).unwrap().expect("open window");
        assert_eq!(merged.estimate(42), 9);
    }

    #[test]
    fn empty_range_returns_none() {
        let mut store = WindowedStore::new(100, 32);
        store.record(50, 1, 1);
        assert!(store.query_range(1000, 2000).unwrap().is_none());
    }

    #[test]
    fn merged_range_respects_error_bounds() {
        let mut store = WindowedStore::new(1000, 64);
        let mut truth = std::collections::HashMap::new();
        let mut x = 9u64;
        for t in 0..50_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = (x >> 33) % 500;
            let w = x % 20 + 1;
            store.record(t, item, w);
            *truth.entry(item).or_insert(0u64) += w;
        }
        let merged = store.query_range(0, 50_000).unwrap().expect("windows");
        for (&item, &f) in &truth {
            assert!(merged.lower_bound(item) <= f);
            assert!(merged.upper_bound(item) >= f);
        }
    }

    #[test]
    #[should_panic(expected = "already-closed")]
    fn rejects_timestamps_behind_closed_windows() {
        let mut store = WindowedStore::new(100, 32);
        store.record(250, 1, 1);
        store.record(90, 2, 1); // window [0,100) was implicitly skipped... 250 closed nothing yet
        store.record(350, 3, 1); // closes [200,300)
        store.record(150, 4, 1); // behind the closed window → panic
    }

    #[test]
    fn record_batch_matches_scalar_records() {
        let per_tick: Vec<(u64, u64)> = (0..5_000u64).map(|i| (i % 300, i % 9 + 1)).collect();
        let mut scalar = WindowedStore::new(100, 64);
        let mut batched = WindowedStore::new(100, 64);
        for tick in 0..5u64 {
            for &(item, w) in &per_tick {
                scalar.record(tick * 100, item, w);
            }
            batched.record_batch(tick * 100, &per_tick);
        }
        let a = scalar.query_range(0, 500).unwrap().unwrap();
        let b = batched.query_range(0, 500).unwrap().unwrap();
        assert_eq!(a.serialize_to_bytes(), b.serialize_to_bytes());
    }

    #[test]
    fn with_policy_configures_every_window() {
        let mut store = WindowedStore::with_policy(100, 32, PurgePolicy::smin());
        store.record(50, 1, 5);
        store.record(150, 2, 5); // closes window 0
        let merged = store.query_range(0, 200).unwrap().unwrap();
        assert_eq!(merged.policy(), PurgePolicy::smin());
    }

    #[test]
    fn storage_is_compact() {
        let mut store = WindowedStore::new(10, 4096);
        // sparse windows: few distinct items each
        for w in 0..100u64 {
            store.record(w * 10, w % 7, 1);
        }
        // 99 closed windows, each with ~1 counter: ~124 bytes each
        assert_eq!(store.num_closed_windows(), 99);
        assert!(
            store.stored_bytes() < 99 * 200,
            "sparse windows must serialize compactly, got {}",
            store.stored_bytes()
        );
    }
}
