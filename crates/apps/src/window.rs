//! Time-windowed sketch storage — §3's first motivating scenario made
//! concrete: "a company keeps a separate summary for data obtained in
//! each 1-hour period over the course of several years … at query time,
//! an analyst specifies which data are of interest and the summaries are
//! seamlessly merged".
//!
//! [`WindowedStore<K>`] keeps one serialized summary per fixed-width
//! time bucket, for **any** [`SketchKey`] item type with a wire encoding
//! ([`ItemCodec`]): `u64` flow ids, strings, tuples — the store is a
//! layer over the unified [`SketchEngine`](streamfreq_core::SketchEngine)
//! (via [`ItemsSketch`]), so every engine-level optimization reaches it
//! for free. Updates land in the open (in-memory) bucket through the
//! engine's batched, prefetching ingestion path; closed buckets are held
//! as compact wire bytes (hundreds of bytes to a few hundred KiB each,
//! §2.3.3), the way a production system would keep them in object
//! storage. A range query deserializes and merges only the buckets that
//! overlap the queried interval — millions of summaries could be scanned
//! this way because Algorithm 5's merge is O(k) with no scratch
//! allocation.
//!
//! A **retention limit** ([`WindowedStore::with_retention`]) bounds the
//! store for retention-limited telemetry: once more than `limit` closed
//! buckets accumulate, the oldest are evicted (and counted), so the
//! store holds a sliding tail of history in bounded memory.
//!
//! The whole store round-trips through a versioned wire format
//! ([`WindowedStore::serialize_to_bytes`]) so the CLI can persist bucket
//! stores to disk between `window build` and `window query` runs.

use streamfreq_core::codec::{policy_from_wire, policy_params, policy_tag};
use streamfreq_core::engine::SketchKey;
use streamfreq_core::item_codec::ItemCodec;
use streamfreq_core::{Error, ItemsSketch, PurgePolicy};

/// A store of per-window frequent-items summaries with range-merge
/// queries, generic over the item type.
///
/// # Example
///
/// ```
/// use streamfreq_apps::WindowedStore;
///
/// // Hourly windows (3600-second buckets), 1024 counters per window.
/// let mut store: WindowedStore<u64> = WindowedStore::new(3600, 1024);
/// store.record(0, 42, 100);        // hour 0
/// store.record(4000, 42, 50);      // hour 1
/// store.record(8000, 7, 10);       // hour 2
///
/// // What happened between hours 0 and 1?
/// let summary = store.query_range(0, 7200).unwrap().unwrap();
/// assert_eq!(summary.estimate(&42), 150);
/// assert_eq!(summary.estimate(&7), 0);
/// ```
///
/// String-keyed windows work identically:
///
/// ```
/// use streamfreq_apps::WindowedStore;
///
/// let mut store: WindowedStore<String> = WindowedStore::new(60, 128);
/// store.record(5, "checkout".to_string(), 3);
/// store.record(65, "search".to_string(), 9);
/// let all = store.query_range(0, 120).unwrap().unwrap();
/// assert_eq!(all.estimate(&"search".to_string()), 9);
/// ```
#[derive(Clone, Debug)]
pub struct WindowedStore<K: SketchKey + ItemCodec = u64> {
    window_width: u64,
    k: usize,
    policy: PurgePolicy,
    /// Maximum closed buckets retained (`None` = unbounded).
    retention: Option<usize>,
    /// Closed buckets evicted by the retention policy so far.
    evicted: u64,
    /// Closed buckets: `(window_start, serialized sketch)`, ascending.
    closed: Vec<(u64, Vec<u8>)>,
    /// The currently open bucket, if any.
    open: Option<(u64, ItemsSketch<K>)>,
}

/// Magic bytes of the store's wire format.
const STORE_MAGIC: &[u8; 4] = b"SFWS";
/// Current store format version.
const STORE_VERSION: u8 = 1;

impl<K: SketchKey + ItemCodec> WindowedStore<K> {
    /// Creates a store with `window_width` time units per bucket and `k`
    /// counters per bucket summary.
    ///
    /// # Panics
    /// Panics if `window_width` is zero or `k` is invalid.
    pub fn new(window_width: u64, k: usize) -> Self {
        Self::with_policy(window_width, k, PurgePolicy::default())
    }

    /// [`Self::new`] with an explicit purge policy for every window
    /// summary (the same `policy` knob the sketch builders expose).
    ///
    /// # Panics
    /// Panics if `window_width` is zero or `k`/`policy` is invalid; use
    /// [`Self::try_with_policy`] to handle configuration errors.
    pub fn with_policy(window_width: u64, k: usize, policy: PurgePolicy) -> Self {
        Self::try_with_policy(window_width, k, policy).expect("invalid window configuration")
    }

    /// Fallible [`Self::with_policy`] — the entry for callers handing
    /// through user-supplied configuration (e.g. the CLI).
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if `window_width` is zero or the
    /// `k`/`policy` combination is invalid.
    pub fn try_with_policy(
        window_width: u64,
        k: usize,
        policy: PurgePolicy,
    ) -> Result<Self, Error> {
        if window_width == 0 {
            return Err(Error::InvalidConfig("window width must be positive".into()));
        }
        // Validate k and policy eagerly so failures surface at
        // construction.
        let _probe = ItemsSketch::<K>::builder(k).policy(policy).build()?;
        Ok(Self {
            window_width,
            k,
            policy,
            retention: None,
            evicted: 0,
            closed: Vec::new(),
            open: None,
        })
    }

    /// Limits the store to the most recent `limit` *closed* buckets:
    /// when a bucket closes and the limit is exceeded, the oldest closed
    /// buckets are evicted (dropped and counted by
    /// [`Self::evicted_windows`]). The open bucket never counts against
    /// the limit.
    ///
    /// # Panics
    /// Panics if `limit` is zero — a store that can keep no history
    /// cannot answer any closed-window query.
    #[must_use]
    pub fn with_retention(mut self, limit: usize) -> Self {
        assert!(limit > 0, "retention limit must be positive");
        self.retention = Some(limit);
        self
    }

    /// The configured retention limit, if any.
    pub fn retention(&self) -> Option<usize> {
        self.retention
    }

    /// Closed buckets evicted by the retention policy so far.
    pub fn evicted_windows(&self) -> u64 {
        self.evicted
    }

    /// The bucket width in time units.
    pub fn window_width(&self) -> u64 {
        self.window_width
    }

    /// Counters per bucket summary.
    pub fn counters_per_window(&self) -> usize {
        self.k
    }

    fn window_start(&self, timestamp: u64) -> u64 {
        timestamp - timestamp % self.window_width
    }

    /// Shared entry check for the record paths: rolls the open window
    /// forward if `timestamp` belongs to a later bucket.
    ///
    /// # Panics
    /// Panics if the timestamp precedes an already-closed window.
    fn open_for(&mut self, timestamp: u64) -> &mut ItemsSketch<K> {
        let start = self.window_start(timestamp);
        if let Some((last_closed, _)) = self.closed.last() {
            assert!(
                start >= *last_closed + self.window_width,
                "timestamp {timestamp} falls in an already-closed window"
            );
        }
        let need_roll = match &self.open {
            // a record after the open window closes it; a late record
            // within the open epoch is clamped into the open window
            Some((open_start, _)) => start > *open_start,
            None => true,
        };
        if need_roll {
            self.roll_to(start);
        }
        let (_, sketch) = self.open.as_mut().expect("a window is open");
        sketch
    }

    /// Records `(item, weight)` at `timestamp`. Timestamps must be
    /// non-decreasing across calls (streaming ingestion); a timestamp
    /// before the open window is clamped into it.
    ///
    /// # Panics
    /// Panics if the timestamp precedes an already-closed window.
    pub fn record(&mut self, timestamp: u64, item: K, weight: u64) {
        self.open_for(timestamp).update(item, weight);
    }

    /// Records a slice of `(item, weight)` updates that all carry the same
    /// `timestamp`, through the open window's batched, prefetching
    /// ingestion path ([`ItemsSketch::update_batch`], i.e. the engine
    /// batch path) — the natural entry for ingest pipelines that deliver
    /// telemetry in per-tick buckets. State-identical to calling
    /// [`Self::record`] per pair.
    ///
    /// # Panics
    /// Panics if the timestamp precedes an already-closed window.
    pub fn record_batch(&mut self, timestamp: u64, batch: &[(K, u64)]) {
        if batch.is_empty() {
            return;
        }
        self.open_for(timestamp).update_batch(batch);
    }

    /// Closes the open window (serializing it) and opens one at `start`,
    /// then applies the retention policy.
    fn roll_to(&mut self, start: u64) {
        if let Some((open_start, sketch)) = self.open.take() {
            self.closed.push((open_start, sketch.serialize_to_bytes()));
            if let Some(limit) = self.retention {
                if self.closed.len() > limit {
                    let excess = self.closed.len() - limit;
                    self.closed.drain(..excess);
                    self.evicted += excess as u64;
                }
            }
        }
        let sketch = ItemsSketch::builder(self.k)
            .policy(self.policy)
            .seed(start ^ 0x0057_AB1E)
            .build()
            .expect("validated at construction");
        self.open = Some((start, sketch));
    }

    /// Number of closed windows held.
    pub fn num_closed_windows(&self) -> usize {
        self.closed.len()
    }

    /// Start timestamps of the closed windows currently held, ascending.
    pub fn closed_window_starts(&self) -> impl Iterator<Item = u64> + '_ {
        self.closed.iter().map(|&(start, _)| start)
    }

    /// Total bytes held by the closed-window encodings.
    pub fn stored_bytes(&self) -> usize {
        self.closed.iter().map(|(_, b)| b.len()).sum()
    }

    /// Merges every window overlapping `[from, to)` into one summary of
    /// the union of their streams (Theorem 5 bounds apply, via Algorithm
    /// 5 merges). Returns `None` when no *retained* window overlaps;
    /// evicted windows are gone and silently absent.
    ///
    /// # Errors
    /// Returns a codec error if a stored encoding is corrupt.
    pub fn query_range(&self, from: u64, to: u64) -> Result<Option<ItemsSketch<K>>, Error> {
        // A window whose end would overflow u64 still extends past any
        // `from`, so overflow means "overlaps on the right".
        let overlaps = |start: u64| {
            start < to
                && start
                    .checked_add(self.window_width)
                    .is_none_or(|end| end > from)
        };
        let mut merged: Option<ItemsSketch<K>> = None;
        let mut absorb = |sketch: ItemsSketch<K>| match &mut merged {
            Some(acc) => acc.merge(&sketch),
            None => merged = Some(sketch),
        };
        for (start, bytes) in &self.closed {
            if overlaps(*start) {
                absorb(ItemsSketch::deserialize_from_bytes(bytes)?);
            }
        }
        if let Some((start, sketch)) = &self.open {
            if overlaps(*start) {
                absorb(sketch.clone());
            }
        }
        Ok(merged)
    }

    /// Serializes the whole store — configuration, closed buckets, and
    /// the open bucket — into a fresh byte vector (versioned wire
    /// format, magic `"SFWS"`). The CLI's `window build` writes this to
    /// disk and `window query` reads it back.
    pub fn serialize_to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(STORE_MAGIC);
        out.push(STORE_VERSION);
        out.push(policy_tag(&self.policy));
        let (a, b) = policy_params(&self.policy);
        a.encode(&mut out);
        b.encode(&mut out);
        self.window_width.encode(&mut out);
        (self.k as u64).encode(&mut out);
        // retention: u64::MAX encodes "unbounded".
        (self.retention.map_or(u64::MAX, |r| r as u64)).encode(&mut out);
        self.evicted.encode(&mut out);
        (self.closed.len() as u32).encode(&mut out);
        for (start, bytes) in &self.closed {
            start.encode(&mut out);
            bytes.encode(&mut out);
        }
        match &self.open {
            Some((start, sketch)) => {
                out.push(1);
                start.encode(&mut out);
                sketch.serialize_to_bytes().encode(&mut out);
            }
            None => out.push(0),
        }
        out
    }

    /// Reconstructs a store from [`Self::serialize_to_bytes`] output.
    /// Every bucket encoding is validated eagerly, so a corrupt store
    /// fails here rather than at query time.
    ///
    /// # Errors
    /// Returns [`Error::Corrupt`], [`Error::UnsupportedVersion`] or
    /// [`Error::Truncated`] on malformed input; trailing bytes are
    /// rejected.
    pub fn deserialize_from_bytes(bytes: &[u8]) -> Result<Self, Error> {
        let mut buf = bytes;
        let mut magic = [0u8; 4];
        for slot in &mut magic {
            *slot = u8::decode(&mut buf)?;
        }
        if &magic != STORE_MAGIC {
            return Err(Error::Corrupt(format!("bad store magic {magic:02x?}")));
        }
        let version = u8::decode(&mut buf)?;
        if version != STORE_VERSION {
            return Err(Error::UnsupportedVersion(version));
        }
        let tag = u8::decode(&mut buf)?;
        let a = u64::decode(&mut buf)?;
        let b = u64::decode(&mut buf)?;
        let policy = policy_from_wire(tag, a, b)?;
        let window_width = u64::decode(&mut buf)?;
        if window_width == 0 {
            return Err(Error::Corrupt("zero window width".into()));
        }
        let k = usize::try_from(u64::decode(&mut buf)?)
            .map_err(|_| Error::Corrupt("k exceeds usize".into()))?;
        let retention_raw = u64::decode(&mut buf)?;
        let retention = if retention_raw == u64::MAX {
            None
        } else {
            let r = usize::try_from(retention_raw)
                .map_err(|_| Error::Corrupt("retention exceeds usize".into()))?;
            if r == 0 {
                return Err(Error::Corrupt("zero retention limit".into()));
            }
            Some(r)
        };
        let evicted = u64::decode(&mut buf)?;
        // Validate k/policy the same way the constructor does.
        ItemsSketch::<K>::builder(k)
            .policy(policy)
            .build()
            .map_err(|e| Error::Corrupt(format!("invalid store configuration: {e}")))?;
        let num_closed = u32::decode(&mut buf)? as usize;
        let mut closed = Vec::with_capacity(num_closed.min(1 << 16));
        let mut last_start: Option<u64> = None;
        for _ in 0..num_closed {
            let start = u64::decode(&mut buf)?;
            if start % window_width != 0 || last_start.is_some_and(|prev| start <= prev) {
                return Err(Error::Corrupt(format!(
                    "closed-window start {start} out of order or misaligned"
                )));
            }
            last_start = Some(start);
            let bucket = Vec::<u8>::decode(&mut buf)?;
            // Eager validation: a corrupt bucket should fail the load,
            // not a later query.
            ItemsSketch::<K>::deserialize_from_bytes(&bucket)?;
            closed.push((start, bucket));
        }
        let open = match u8::decode(&mut buf)? {
            0 => None,
            1 => {
                let start = u64::decode(&mut buf)?;
                // `prev + width` overflowing means no later window can
                // exist at all — equally corrupt, so use checked math on
                // these untrusted values.
                let min_start = last_start.map(|prev| prev.checked_add(window_width));
                if start % window_width != 0
                    || min_start.is_some_and(|min| min.is_none_or(|m| start < m))
                {
                    return Err(Error::Corrupt(format!(
                        "open-window start {start} overlaps closed windows"
                    )));
                }
                let bucket = Vec::<u8>::decode(&mut buf)?;
                Some((start, ItemsSketch::<K>::deserialize_from_bytes(&bucket)?))
            }
            other => {
                return Err(Error::Corrupt(format!("bad open-window marker {other}")));
            }
        };
        if !buf.is_empty() {
            return Err(Error::Corrupt("trailing bytes after store".into()));
        }
        Ok(Self {
            window_width,
            k,
            policy,
            retention,
            evicted,
            closed,
            open,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_roll_on_time() {
        let mut store: WindowedStore<u64> = WindowedStore::new(3600, 64);
        store.record(0, 1, 10);
        store.record(1800, 1, 5);
        store.record(3600, 2, 7); // second hour
        store.record(7300, 3, 1); // third hour
        assert_eq!(store.num_closed_windows(), 2);
        assert!(store.stored_bytes() > 0);
    }

    #[test]
    fn range_query_merges_only_selected_windows() {
        let mut store: WindowedStore<u64> = WindowedStore::new(100, 64);
        for hour in 0..10u64 {
            for _ in 0..5 {
                store.record(hour * 100 + 10, hour + 1, 100);
            }
        }
        // Query hours 3..=4 (timestamps 300..500).
        let merged = store.query_range(300, 500).unwrap().expect("overlap");
        assert_eq!(merged.estimate(&4), 500, "hour-3 item");
        assert_eq!(merged.estimate(&5), 500, "hour-4 item");
        assert_eq!(merged.estimate(&1), 0, "hour-0 item must be absent");
        assert_eq!(merged.stream_weight(), 1000);
    }

    #[test]
    fn open_window_participates_in_queries() {
        let mut store: WindowedStore<u64> = WindowedStore::new(100, 32);
        store.record(50, 42, 9);
        let merged = store.query_range(0, 100).unwrap().expect("open window");
        assert_eq!(merged.estimate(&42), 9);
    }

    #[test]
    fn empty_range_returns_none() {
        let mut store: WindowedStore<u64> = WindowedStore::new(100, 32);
        store.record(50, 1, 1);
        assert!(store.query_range(1000, 2000).unwrap().is_none());
    }

    #[test]
    fn merged_range_respects_error_bounds() {
        let mut store: WindowedStore<u64> = WindowedStore::new(1000, 64);
        let mut truth = std::collections::HashMap::new();
        let mut x = 9u64;
        for t in 0..50_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = (x >> 33) % 500;
            let w = x % 20 + 1;
            store.record(t, item, w);
            *truth.entry(item).or_insert(0u64) += w;
        }
        let merged = store.query_range(0, 50_000).unwrap().expect("windows");
        for (&item, &f) in &truth {
            assert!(merged.lower_bound(&item) <= f);
            assert!(merged.upper_bound(&item) >= f);
        }
    }

    #[test]
    #[should_panic(expected = "already-closed")]
    fn rejects_timestamps_behind_closed_windows() {
        let mut store: WindowedStore<u64> = WindowedStore::new(100, 32);
        store.record(250, 1, 1);
        store.record(90, 2, 1); // window [0,100) was implicitly skipped... 250 closed nothing yet
        store.record(350, 3, 1); // closes [200,300)
        store.record(150, 4, 1); // behind the closed window → panic
    }

    #[test]
    fn record_batch_matches_scalar_records() {
        let per_tick: Vec<(u64, u64)> = (0..5_000u64).map(|i| (i % 300, i % 9 + 1)).collect();
        let mut scalar: WindowedStore<u64> = WindowedStore::new(100, 64);
        let mut batched: WindowedStore<u64> = WindowedStore::new(100, 64);
        for tick in 0..5u64 {
            for &(item, w) in &per_tick {
                scalar.record(tick * 100, item, w);
            }
            batched.record_batch(tick * 100, &per_tick);
        }
        let a = scalar.query_range(0, 500).unwrap().unwrap();
        let b = batched.query_range(0, 500).unwrap().unwrap();
        assert_eq!(a.serialize_to_bytes(), b.serialize_to_bytes());
    }

    #[test]
    fn with_policy_configures_every_window() {
        let mut store: WindowedStore<u64> =
            WindowedStore::with_policy(100, 32, PurgePolicy::smin());
        store.record(50, 1, 5);
        store.record(150, 2, 5); // closes window 0
        let merged = store.query_range(0, 200).unwrap().unwrap();
        assert_eq!(merged.policy(), PurgePolicy::smin());
    }

    #[test]
    fn storage_is_compact() {
        let mut store: WindowedStore<u64> = WindowedStore::new(10, 4096);
        // sparse windows: few distinct items each
        for w in 0..100u64 {
            store.record(w * 10, w % 7, 1);
        }
        // 99 closed windows, each with ~1 counter: ~150 bytes each
        assert_eq!(store.num_closed_windows(), 99);
        assert!(
            store.stored_bytes() < 99 * 200,
            "sparse windows must serialize compactly, got {}",
            store.stored_bytes()
        );
    }

    #[test]
    fn string_keyed_store_works_end_to_end() {
        let mut store: WindowedStore<String> = WindowedStore::new(60, 32);
        for minute in 0..5u64 {
            let batch: Vec<(String, u64)> = (0..200u64)
                .map(|i| (format!("route-{}", (i + minute) % 17), i % 5 + 1))
                .collect();
            store.record_batch(minute * 60, &batch);
        }
        assert_eq!(store.num_closed_windows(), 4);
        let merged = store.query_range(0, 300).unwrap().expect("data");
        assert!(merged.estimate(&"route-3".to_string()) > 0);
        // Restricting the range restricts the mass.
        let first = store.query_range(0, 60).unwrap().expect("first window");
        assert!(first.stream_weight() < merged.stream_weight());
    }

    #[test]
    fn retention_evicts_oldest_buckets() {
        let mut store: WindowedStore<u64> = WindowedStore::new(10, 16).with_retention(3);
        for w in 0..8u64 {
            store.record(w * 10, w, 1);
        }
        // 7 closed (window 7 still open), limit 3 → 4 evicted.
        assert_eq!(store.num_closed_windows(), 3);
        assert_eq!(store.evicted_windows(), 4);
        let starts: Vec<u64> = store.closed_window_starts().collect();
        assert_eq!(starts, vec![40, 50, 60], "oldest buckets evicted first");
        // Evicted history is gone; retained + open history answers.
        assert!(store.query_range(0, 40).unwrap().is_none());
        let tail = store.query_range(40, 80).unwrap().expect("retained");
        assert_eq!(tail.stream_weight(), 4);
    }

    #[test]
    fn store_roundtrips_through_bytes() {
        let mut store: WindowedStore<String> =
            WindowedStore::with_policy(100, 32, PurgePolicy::smin()).with_retention(5);
        for tick in 0..7u64 {
            let batch: Vec<(String, u64)> = (0..300u64)
                .map(|i| (format!("k{}", i % 40), i % 6 + 1))
                .collect();
            store.record_batch(tick * 100, &batch);
        }
        let bytes = store.serialize_to_bytes();
        let restored = WindowedStore::<String>::deserialize_from_bytes(&bytes).unwrap();
        assert_eq!(restored.window_width(), 100);
        assert_eq!(restored.counters_per_window(), 32);
        assert_eq!(restored.retention(), Some(5));
        assert_eq!(restored.evicted_windows(), store.evicted_windows());
        assert_eq!(restored.num_closed_windows(), store.num_closed_windows());
        // Identical query results, including the open window.
        let a = store.query_range(0, 700).unwrap().unwrap();
        let b = restored.query_range(0, 700).unwrap().unwrap();
        assert_eq!(a.serialize_to_bytes(), b.serialize_to_bytes());
        // Ingestion continues identically after the roundtrip: the open
        // bucket's engine state (estimates, purge clock, stream weight)
        // travels along. (Byte-level layout of the open bucket may be
        // re-canonicalized by the decode path; behaviour may not change.)
        let mut original = store;
        let mut resumed = restored;
        let more: Vec<(String, u64)> = (0..300u64)
            .map(|i| (format!("k{}", i % 55), i % 4 + 1))
            .collect();
        original.record_batch(700, &more);
        resumed.record_batch(700, &more);
        let a = original.query_range(0, 800).unwrap().unwrap();
        let b = resumed.query_range(0, 800).unwrap().unwrap();
        assert_eq!(a.stream_weight(), b.stream_weight());
        assert_eq!(a.maximum_error(), b.maximum_error());
        for i in 0..55u64 {
            let key = format!("k{i}");
            assert_eq!(a.estimate(&key), b.estimate(&key), "{key}");
        }
    }

    #[test]
    fn store_codec_rejects_malformed() {
        let mut store: WindowedStore<u64> = WindowedStore::new(100, 16);
        store.record(50, 1, 5);
        store.record(150, 2, 5);
        let bytes = store.serialize_to_bytes();
        let mut bad = bytes.clone();
        bad[0] = b'Z';
        assert!(WindowedStore::<u64>::deserialize_from_bytes(&bad).is_err());
        for cut in [0, 4, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                WindowedStore::<u64>::deserialize_from_bytes(&bytes[..cut]).is_err(),
                "prefix {cut} accepted"
            );
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(WindowedStore::<u64>::deserialize_from_bytes(&long).is_err());
    }
}
