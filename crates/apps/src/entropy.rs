//! Streaming empirical-entropy estimation — the second downstream
//! application the paper names (§1.2/§6; Chakrabarti, Cormode & McGregor,
//! reference \[5\]), widely used for network anomaly detection \[10, 22\].
//!
//! The empirical entropy of a weighted stream is
//! `H = Σᵢ (fᵢ/N) · log₂(N/fᵢ)`. Entropy collapses when traffic
//! concentrates (DDoS source, worm scan) and spikes when it disperses, so
//! tracking it online is a classic monitoring primitive.
//!
//! ## Estimator
//!
//! The CCM decomposition: heavy items dominate entropy error, and the
//! frequent-items sketch estimates exactly those with certified accuracy;
//! the tail is handled by position sampling.
//!
//! * **Heavy part** — every item tracked by the sketch contributes the
//!   plug-in term `(lb/N)·log₂(N/lb)` from its certified lower bound
//!   (lower bounds are mass-conserving: `Σ lb ≤ N`).
//! * **Tail part** — a weighted reservoir (Efraimidis–Spirakis A-Res)
//!   samples mass units uniformly; each slot tracks `R`, the item's mass
//!   from the sampled unit to the present. For `g(f) = (f/N)·log₂(N/f)`,
//!   `Y = N·(g(R) − g(R−1))` telescopes to `E[Y | unit ∉ tracked] =
//!   (N/N_res)·Σ_{i∉tracked} g(fᵢ)` — the CCM unbiased estimator — so the
//!   tail contributes `(N_res/N) · mean(Y over untracked slots)`.
//!
//! Accuracy is probabilistic over sampling; the tests validate it on
//! uniform, degenerate, skewed, and shifting streams.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use streamfreq_core::{SketchEngine, SketchEngineBuilder, SketchKey};

/// One reservoir slot: a sampled mass unit of `item`, with its A-Res key
/// and the forward count `R` (mass of `item` from the sampled unit on).
#[derive(Clone, Debug)]
struct Slot<K> {
    item: K,
    /// A-Res key `u^{1/w}`; the reservoir keeps the largest keys.
    key: f64,
    /// Item mass observed from the sampled unit (inclusive) onward.
    r: u64,
}

/// Streaming estimator of the empirical entropy of a weighted stream,
/// generic over the item type (`u64` by default; any
/// [`SketchKey`] + `Hash` item works — the sketch half rides the shared
/// engine, the reservoir half a std `HashMap`).
///
/// # Example
///
/// ```
/// use streamfreq_apps::EntropyEstimator;
///
/// let mut h = EntropyEstimator::new(64, 256, 1);
/// for item in 0..4u64 {
///     h.update(item, 100); // uniform over 4 items → 2 bits
/// }
/// assert!((h.estimate() - 2.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct EntropyEstimator<K: SketchKey + core::hash::Hash = u64> {
    sketch: SketchEngine<K>,
    reservoir: Vec<Slot<K>>,
    /// item → indices of reservoir slots holding it (kept exact).
    slot_index: HashMap<K, Vec<usize>>,
    /// index of the minimum-key slot once the reservoir is full.
    min_idx: usize,
    reservoir_capacity: usize,
    rng: StdRng,
    stream_weight: u64,
}

impl<K: SketchKey + core::hash::Hash> EntropyEstimator<K> {
    /// Creates an estimator with `k` sketch counters and a weighted
    /// reservoir of `reservoir_capacity` samples.
    ///
    /// # Panics
    /// Panics if either capacity is zero.
    pub fn new(k: usize, reservoir_capacity: usize, seed: u64) -> Self {
        assert!(
            reservoir_capacity > 0,
            "reservoir capacity must be positive"
        );
        Self {
            sketch: SketchEngineBuilder::new(k)
                .seed(seed)
                .build()
                .expect("invalid k"),
            reservoir: Vec::with_capacity(reservoir_capacity),
            slot_index: HashMap::new(),
            min_idx: 0,
            reservoir_capacity,
            rng: StdRng::seed_from_u64(seed ^ 0xE57A_0B1A),
            stream_weight: 0,
        }
    }

    /// Processes a weighted update.
    pub fn update(&mut self, item: K, weight: u64) {
        if weight == 0 {
            return;
        }
        self.stream_weight += weight;
        self.sketch.update(item.clone(), weight);
        // Advance forward counts of existing slots holding this item.
        if let Some(idxs) = self.slot_index.get(&item) {
            for &i in idxs {
                self.reservoir[i].r += weight;
            }
        }
        // A-Res: key = U^(1/w); keep the reservoir_capacity largest keys.
        let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let key = u.powf(1.0 / weight as f64);
        // The sampled unit is uniform within this update's mass, so the
        // forward count starts uniform on 1..=weight.
        let r0 = self.rng.gen_range(1..=weight);
        if self.reservoir.len() < self.reservoir_capacity {
            let idx = self.reservoir.len();
            self.reservoir.push(Slot {
                item: item.clone(),
                key,
                r: r0,
            });
            self.slot_index.entry(item).or_default().push(idx);
            if self.reservoir.len() == self.reservoir_capacity {
                self.recompute_min();
            }
        } else if key > self.reservoir[self.min_idx].key {
            let evicted_item = self.reservoir[self.min_idx].item.clone();
            let idxs = self
                .slot_index
                .get_mut(&evicted_item)
                .expect("evicted item must be indexed");
            idxs.retain(|&i| i != self.min_idx);
            if idxs.is_empty() {
                self.slot_index.remove(&evicted_item);
            }
            self.reservoir[self.min_idx] = Slot {
                item: item.clone(),
                key,
                r: r0,
            };
            self.slot_index.entry(item).or_default().push(self.min_idx);
            self.recompute_min();
        }
    }

    fn recompute_min(&mut self) {
        let mut min = 0usize;
        for i in 1..self.reservoir.len() {
            if self.reservoir[i].key < self.reservoir[min].key {
                min = i;
            }
        }
        self.min_idx = min;
    }

    /// Total weighted stream length processed.
    pub fn stream_weight(&self) -> u64 {
        self.stream_weight
    }

    /// Access to the inner frequent-items engine (for diagnostics or
    /// combined queries).
    pub fn sketch(&self) -> &SketchEngine<K> {
        &self.sketch
    }

    /// Estimates the empirical entropy `H = Σ (fᵢ/N) log₂(N/fᵢ)` in bits.
    ///
    /// Exact when every distinct item fits in the sketch; otherwise the
    /// heavy part is sketch-accurate and the tail uses the CCM sampled
    /// estimator (unbiased; variance shrinks with the reservoir size).
    pub fn estimate(&self) -> f64 {
        let n = self.stream_weight;
        if n == 0 {
            return 0.0;
        }
        let nf = n as f64;
        let g = |f: u64| -> f64 {
            if f == 0 {
                0.0
            } else {
                (f as f64 / nf) * (nf / f as f64).log2()
            }
        };
        // Heavy part: tracked items by certified lower bound.
        let mut covered = 0u64;
        let mut h = 0.0f64;
        let tracked: Vec<(&K, u64)> = self.sketch.counters().collect();
        let tracked_items: std::collections::HashSet<&K> =
            tracked.iter().map(|&(i, _)| i).collect();
        for &(_, lb) in &tracked {
            h += g(lb);
            covered += lb;
        }
        let residual = n.saturating_sub(covered);
        if residual == 0 {
            return h;
        }
        // Tail part: CCM estimator over untracked slots.
        let mut y_sum = 0.0f64;
        let mut y_count = 0usize;
        for slot in &self.reservoir {
            if tracked_items.contains(&slot.item) {
                continue;
            }
            y_sum += nf * (g(slot.r) - g(slot.r - 1));
            y_count += 1;
        }
        if y_count > 0 {
            h += (residual as f64 / nf) * (y_sum / y_count as f64);
        }
        h
    }
}

/// Exact empirical entropy of a materialized frequency vector (test and
/// harness ground truth): `Σ (fᵢ/N) log₂(N/fᵢ)`.
pub fn exact_entropy(freqs: &[u64]) -> f64 {
    let n: u64 = freqs.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    freqs
        .iter()
        .filter(|&&f| f > 0)
        .map(|&f| {
            let p = f as f64 / nf;
            p * (nf / f as f64).log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_entropy_known_values() {
        assert_eq!(exact_entropy(&[]), 0.0);
        assert_eq!(exact_entropy(&[100]), 0.0); // degenerate: H = 0
        let h = exact_entropy(&[50, 50]);
        assert!((h - 1.0).abs() < 1e-12, "fair coin must be 1 bit, got {h}");
        let h4 = exact_entropy(&[25, 25, 25, 25]);
        assert!((h4 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_stream_has_zero_entropy() {
        let mut e = EntropyEstimator::new(16, 64, 1);
        for _ in 0..1000 {
            e.update(7, 13);
        }
        assert!(e.estimate().abs() < 1e-9);
    }

    #[test]
    fn small_uniform_stream_is_exact() {
        // 8 items fit in the sketch: the estimate is the plug-in truth.
        let mut e = EntropyEstimator::new(16, 64, 2);
        for item in 0..8u64 {
            e.update(item, 100);
        }
        let h = e.estimate();
        assert!((h - 3.0).abs() < 1e-9, "uniform-8 is 3 bits, got {h}");
    }

    #[test]
    fn uniform_tail_beyond_sketch_capacity() {
        // 4096 equally frequent items, sketch of 64: the tail estimator
        // must carry nearly all of H = 12 bits.
        let mut e = EntropyEstimator::new(64, 1024, 9);
        for round in 0..20u64 {
            for item in 0..4096u64 {
                e.update(item * 77 + round % 3, 1); // slight mixing of ids
            }
        }
        let est = e.estimate();
        assert!(
            (10.0..14.0).contains(&est),
            "uniform-4096-ish entropy estimate {est:.2} far from ~12"
        );
    }

    #[test]
    fn skewed_stream_estimate_tracks_truth() {
        // Zipf-ish stream with a tail larger than the sketch.
        let mut e = EntropyEstimator::new(64, 1024, 3);
        let mut freqs = std::collections::HashMap::new();
        let mut x = 5u64;
        for _ in 0..200_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = ((x >> 33) % 1_000) + 1;
            let item = (x >> 20) % (r * 7 + 1); // heavier mass on small ids
            e.update(item, 1);
            *freqs.entry(item).or_insert(0u64) += 1;
        }
        let truth = exact_entropy(&freqs.values().copied().collect::<Vec<_>>());
        let est = e.estimate();
        let rel = (est - truth).abs() / truth;
        assert!(
            rel < 0.1,
            "entropy estimate {est:.3} vs truth {truth:.3} (rel {rel:.3})"
        );
    }

    #[test]
    fn weighted_stream_estimate_tracks_truth() {
        let mut e = EntropyEstimator::new(64, 1024, 8);
        let mut freqs = std::collections::HashMap::new();
        let mut x = 31u64;
        for _ in 0..100_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(1);
            let item = (x >> 32) % 3_000;
            let w = x % 100 + 1;
            e.update(item, w);
            *freqs.entry(item).or_insert(0u64) += w;
        }
        let truth = exact_entropy(&freqs.values().copied().collect::<Vec<_>>());
        let est = e.estimate();
        let rel = (est - truth).abs() / truth;
        assert!(
            rel < 0.1,
            "weighted entropy estimate {est:.3} vs truth {truth:.3} (rel {rel:.3})"
        );
    }

    #[test]
    fn entropy_detects_concentration_shift() {
        // Anomaly-detection use case: a DDoS-like concentration must
        // produce a clearly lower entropy than dispersed traffic.
        let mut normal = EntropyEstimator::new(64, 256, 4);
        let mut attack = EntropyEstimator::new(64, 256, 4);
        let mut x = 1u64;
        for _ in 0..50_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(1);
            normal.update((x >> 32) % 5_000, 1);
            // attack: 90% of packets from one source
            if !x.is_multiple_of(10) {
                attack.update(42, 1);
            } else {
                attack.update((x >> 32) % 5_000, 1);
            }
        }
        assert!(
            attack.estimate() < normal.estimate() * 0.5,
            "attack entropy {:.2} not clearly below normal {:.2}",
            attack.estimate(),
            normal.estimate()
        );
    }

    #[test]
    fn reservoir_stays_bounded_and_indexed() {
        let mut e = EntropyEstimator::new(8, 32, 5);
        for i in 0..10_000u64 {
            e.update(i, i % 100 + 1);
        }
        assert!(e.reservoir.len() <= 32);
        // index consistency
        for (item, idxs) in &e.slot_index {
            for &i in idxs {
                assert_eq!(e.reservoir[i].item, *item, "stale slot index");
            }
        }
        let indexed: usize = e.slot_index.values().map(Vec::len).sum();
        assert_eq!(indexed, e.reservoir.len());
        assert_eq!(e.stream_weight(), (0..10_000u64).map(|i| i % 100 + 1).sum());
    }

    #[test]
    fn zero_weight_ignored() {
        let mut e = EntropyEstimator::new(8, 8, 6);
        e.update(1, 0);
        assert_eq!(e.stream_weight(), 0);
        assert_eq!(e.estimate(), 0.0);
    }
}
