//! # streamfreq-apps
//!
//! The downstream applications the paper motivates (§1.2) and defers to
//! future work (§6), built on the optimized frequent-items sketch:
//!
//! | module | application | paper reference |
//! |---|---|---|
//! | [`hhh`] | hierarchical heavy hitters over IPv4 prefixes | Mitzenmacher, Steinke & Thaler \[18\] |
//! | [`entropy`] | streaming empirical-entropy estimation | Chakrabarti, Cormode & McGregor \[5\] |
//! | [`sampled`] | sampled feeding (weighted Bhattacharyya et al. adaptation) | §5, reference \[3\] |
//! | [`window`] | per-period summaries with range-merge queries, retention-bounded | §3's first motivating scenario |
//! | [`decayed`] | exponential time fading (recent traffic outweighs stale) | Cafaro et al., arXiv:1601.03892 |
//!
//! The temporal layer ([`window`] + [`decayed`]) is generic over the
//! engine's [`SketchKey`](streamfreq_core::SketchKey) item types and
//! rides the batched ingestion paths — see DESIGN.md's "temporal layer"
//! section.
//!
//! Each module documents its algorithm and the substitution of our sketch
//! for the subroutine the original work used.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod decayed;
pub mod entropy;
pub mod hhh;
pub mod sampled;
pub mod window;

pub use decayed::DecayedSketch;
pub use entropy::{exact_entropy, EntropyEstimator};
pub use hhh::{HhhRow, HhhSketch};
pub use sampled::SampledSketch;
pub use window::WindowedStore;
