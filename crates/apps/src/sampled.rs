//! Sampled feeding of counter-based summaries — the paper's weighted
//! adaptation (§5) of Bhattacharyya, Dey & Woodruff's space-optimal
//! ℓ₁-heavy-hitters algorithm \[3\].
//!
//! The idea in \[3\]: sample ~`ε⁻² log(1/δ)` stream positions uniformly and
//! run a small Misra-Gries instance over the sample; for weighted streams,
//! the paper (§5) sketches the constant-time generalization implemented
//! here. For an update `(i, Δ)` the number of sampled *mass units* is
//! `t ~ Binomial(Δ, p)`; drawing `t` directly by skipping geometric gaps
//! costs O(1 + t) expected time, so the whole pass stays amortized O(1)
//! for `p = O(sample_target/N)`. The sampled weighted update `(i, t)` then
//! feeds any counter-based summary — here, the optimized
//! [`SketchEngine`],
//! which is precisely the paper's "carry over in a black-box manner"
//! remark.
//!
//! Estimates are scaled back by `1/p`, so they are unbiased up to the
//! summary's own (sample-sized, hence tiny) error. Unlike the raw sketch,
//! guarantees are probabilistic over the sampling.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use streamfreq_core::{PurgePolicy, SketchEngine, SketchEngineBuilder, SketchKey};

/// A frequent-items summary over a `p`-sampled view of the stream,
/// generic over the item type (`u64` by default — any [`SketchKey`] item
/// works, since the inner summary is the shared engine).
///
/// # Example
///
/// ```
/// use streamfreq_apps::SampledSketch;
///
/// // Keep ~1% of the stream's mass; scale estimates back by 1/p.
/// let mut s = SampledSketch::new(128, 0.01, 7);
/// for _ in 0..10_000 {
///     s.update(42, 1_000);
/// }
/// let est = s.estimate(&42);
/// let truth = 10_000u64 * 1_000;
/// let rel = est.abs_diff(truth) as f64 / truth as f64;
/// assert!(rel < 0.1);
/// ```
#[derive(Clone, Debug)]
pub struct SampledSketch<K: SketchKey = u64> {
    inner: SketchEngine<K>,
    p: f64,
    rng: StdRng,
    stream_weight: u64,
    sampled_weight: u64,
}

impl<K: SketchKey> SampledSketch<K> {
    /// Creates a sampled sketch: `k` counters over a stream thinned to
    /// mass-sampling probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 < p ≤ 1` and `k > 0`.
    pub fn new(k: usize, p: f64, seed: u64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "p {p} outside (0, 1]");
        Self {
            inner: SketchEngineBuilder::new(k)
                .policy(PurgePolicy::smed())
                .seed(seed)
                .build()
                .expect("invalid k"),
            p,
            rng: StdRng::seed_from_u64(seed ^ 0x5A4D_91E5),
            stream_weight: 0,
            sampled_weight: 0,
        }
    }

    /// Sizes `p` for a target expected sample mass over a stream of
    /// anticipated weight `n` (the `p = O(ε⁻² log(1/δ)/N)` of \[3\], with the
    /// constants surfaced as an explicit target).
    pub fn with_sample_target(k: usize, target_sample: u64, anticipated_n: u64, seed: u64) -> Self {
        assert!(
            anticipated_n > 0,
            "anticipated stream weight must be positive"
        );
        let p = (target_sample as f64 / anticipated_n as f64).clamp(f64::MIN_POSITIVE, 1.0);
        Self::new(k, p, seed)
    }

    /// The sampling probability `p`.
    pub fn sampling_probability(&self) -> f64 {
        self.p
    }

    /// Total (unsampled) weight observed.
    pub fn stream_weight(&self) -> u64 {
        self.stream_weight
    }

    /// Total sampled mass fed to the inner summary; in expectation
    /// `p · stream_weight`.
    pub fn sampled_weight(&self) -> u64 {
        self.sampled_weight
    }

    /// The inner sketch engine over the sampled stream.
    pub fn inner(&self) -> &SketchEngine<K> {
        &self.inner
    }

    /// Processes `(item, Δ)` in O(1 + Δ·p) expected time: draws
    /// `t ~ Binomial(Δ, p)` by geometric skipping and feeds `(item, t)`.
    pub fn update(&mut self, item: K, weight: u64) {
        if weight == 0 {
            return;
        }
        self.stream_weight += weight;
        let t = self.sample_binomial(weight);
        if t > 0 {
            self.sampled_weight += t;
            self.inner.update(item, t);
        }
    }

    /// Draws `Binomial(n, p)` via geometric inter-success gaps:
    /// `G = ⌊ln U / ln(1−p)⌋ + 1` successive gaps are accumulated until
    /// they exceed `n`. Expected work O(1 + n·p).
    fn sample_binomial(&mut self, n: u64) -> u64 {
        if self.p >= 1.0 {
            return n;
        }
        let log1p = (1.0 - self.p).ln(); // negative
        let mut successes = 0u64;
        let mut position = 0u64;
        loop {
            let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let gap = (u.ln() / log1p).floor() as u64 + 1;
            position = position.saturating_add(gap);
            if position > n {
                return successes;
            }
            successes += 1;
        }
    }

    /// Estimated frequency of `item`, scaled back to the full stream
    /// (`inner estimate / p`).
    pub fn estimate(&self, item: &K) -> u64 {
        (self.inner.estimate(item) as f64 / self.p).round() as u64
    }

    /// The `top` items by scaled estimate.
    pub fn top_k(&self, top: usize) -> Vec<(K, u64)>
    where
        K: Ord,
    {
        self.inner
            .top_k(top)
            .into_iter()
            .map(|row| (row.item, (row.estimate as f64 / self.p).round() as u64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_equal_one_is_exact_passthrough() {
        let mut s = SampledSketch::new(64, 1.0, 1);
        s.update(1, 1000);
        s.update(2, 50);
        assert_eq!(s.sampled_weight(), 1050);
        assert_eq!(s.estimate(&1), 1000);
        assert_eq!(s.estimate(&2), 50);
    }

    #[test]
    fn binomial_sample_never_exceeds_n() {
        let mut s = SampledSketch::<u64>::new(8, 0.3, 2);
        for _ in 0..1000 {
            let t = s.sample_binomial(50);
            assert!(t <= 50);
        }
    }

    #[test]
    fn sampled_mass_concentrates_around_pn() {
        let mut s = SampledSketch::new(64, 0.01, 3);
        for i in 0..10_000u64 {
            s.update(i % 100, 1_000);
        }
        let n = s.stream_weight();
        let expected = 0.01 * n as f64;
        let got = s.sampled_weight() as f64;
        let rel = (got - expected).abs() / expected;
        assert!(
            rel < 0.05,
            "sampled mass {got} vs expected {expected} (rel {rel:.3})"
        );
    }

    #[test]
    fn heavy_item_estimates_are_nearly_unbiased() {
        let mut s = SampledSketch::new(128, 0.005, 4);
        // one item with 30% of mass, rest dispersed
        let mut x = 9u64;
        for _ in 0..100_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            s.update(777, 30);
            s.update((x >> 33) % 5_000 + 1_000, 70);
        }
        let truth = 100_000u64 * 30;
        let est = s.estimate(&777);
        let rel = est.abs_diff(truth) as f64 / truth as f64;
        assert!(rel < 0.05, "est {est} vs truth {truth} (rel {rel:.3})");
    }

    #[test]
    fn top_k_finds_the_heavy_items() {
        let mut s = SampledSketch::new(64, 0.02, 5);
        let mut x = 3u64;
        for _ in 0..50_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(1);
            s.update(1, 100);
            s.update(2, 60);
            s.update((x >> 32) % 10_000 + 100, 10);
        }
        let top = s.top_k(2);
        let items: Vec<u64> = top.iter().map(|&(i, _)| i).collect();
        assert_eq!(items, vec![1, 2]);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let mut s = SampledSketch::new(32, 0.1, 42);
            for i in 0..10_000u64 {
                s.update(i % 50, 20);
            }
            (s.sampled_weight(), s.estimate(&7))
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn zero_p_rejected() {
        SampledSketch::<u64>::new(8, 0.0, 1);
    }

    #[test]
    fn generic_string_items_sample_and_report() {
        let mut s: SampledSketch<String> = SampledSketch::new(64, 0.05, 9);
        for i in 0..20_000u64 {
            s.update("whale".to_string(), 200);
            s.update(format!("minnow-{}", i % 500), 4);
        }
        let truth = 20_000u64 * 200;
        let est = s.estimate(&"whale".to_string());
        let rel = est.abs_diff(truth) as f64 / truth as f64;
        assert!(rel < 0.1, "est {est} vs truth {truth}");
        assert_eq!(s.top_k(1)[0].0, "whale");
    }
}
