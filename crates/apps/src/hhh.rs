//! Hierarchical heavy hitters (HHH) over IPv4 prefixes.
//!
//! §1.2 and §6 of the paper name HHH identification — Mitzenmacher,
//! Steinke & Thaler (ALENEX 2012), reference \[18\] — as the flagship
//! downstream consumer of a fast weighted heavy-hitters subroutine: that
//! prior work ran on the slow MHE implementation, and the paper's stated
//! future work is to substitute the optimized sketch. This module performs
//! that substitution.
//!
//! ## Algorithm
//!
//! One [`SketchEngine<u64>`] per prefix length in the hierarchy (default:
//! byte boundaries `/8 /16 /24 /32`). An update `(ip, Δ)` feeds each level
//! with the ip masked to that prefix — O(levels) amortized per packet;
//! [`HhhSketch::update_batch`] drives every level through the engine's
//! prefetching batch pipeline. A query
//! walks from the most-specific level upward, reporting a prefix whenever
//! its **conditioned count** — its estimate minus the counts of already
//! reported descendants — clears `φ·N`. This is the standard
//! "discounted" HHH semantics of Mitzenmacher et al.; false-negative or
//! false-positive leaning is inherited from the sketch's [`ErrorType`]
//! contract at each level.

use std::collections::HashMap;

use streamfreq_core::{ErrorType, PurgePolicy, SketchEngine, SketchEngineBuilder};

/// A reported hierarchical heavy hitter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HhhRow {
    /// The prefix value with host bits zeroed (e.g. `10.1.2.0` for `/24`).
    pub prefix: u32,
    /// The prefix length in bits.
    pub prefix_len: u8,
    /// The sketch's (unconditioned) frequency estimate for the prefix.
    pub estimate: u64,
    /// The conditioned estimate: [`HhhRow::estimate`] minus the estimates
    /// of descendants already reported at more specific levels.
    pub conditioned: u64,
}

impl HhhRow {
    /// Renders `a.b.c.d/len`.
    pub fn to_cidr(&self) -> String {
        let ip = self.prefix;
        format!(
            "{}.{}.{}.{}/{}",
            ip >> 24,
            (ip >> 16) & 0xFF,
            (ip >> 8) & 0xFF,
            ip & 0xFF,
            self.prefix_len
        )
    }
}

/// Hierarchical heavy hitters detector over IPv4 addresses.
///
/// # Example
///
/// ```
/// use streamfreq_apps::HhhSketch;
/// use streamfreq_core::ErrorType;
///
/// let mut hhh = HhhSketch::new(256);
/// // One busy host...
/// hhh.update(u32::from_be_bytes([10, 0, 0, 1]), 10_000);
/// // ...and some background noise elsewhere.
/// hhh.update(u32::from_be_bytes([192, 168, 1, 1]), 500);
///
/// let rows = hhh.hierarchical_heavy_hitters(0.5, ErrorType::NoFalsePositives);
/// assert!(rows.iter().any(|r| r.to_cidr() == "10.0.0.1/32"));
/// ```
#[derive(Clone, Debug)]
pub struct HhhSketch {
    /// Prefix lengths, ascending (least specific first).
    levels: Vec<u8>,
    /// One sketch engine per level, aligned with `levels`.
    sketches: Vec<SketchEngine<u64>>,
    /// Reusable masked-update buffer for [`Self::update_batch`].
    batch_buf: Vec<(u64, u64)>,
    stream_weight: u64,
}

impl HhhSketch {
    /// Byte-boundary hierarchy `/8 /16 /24 /32` with `k` counters per
    /// level.
    ///
    /// # Panics
    /// Panics if `k` is zero or too large for the underlying table.
    pub fn new(k: usize) -> Self {
        Self::with_levels(k, &[8, 16, 24, 32])
    }

    /// Custom hierarchy. `levels` must be strictly ascending, non-empty,
    /// and within `1..=32`.
    ///
    /// # Panics
    /// Panics on an invalid hierarchy or invalid `k`.
    pub fn with_levels(k: usize, levels: &[u8]) -> Self {
        assert!(!levels.is_empty(), "need at least one level");
        assert!(
            levels.windows(2).all(|w| w[0] < w[1]),
            "levels must strictly ascend"
        );
        assert!(
            levels.iter().all(|&l| (1..=32).contains(&l)),
            "levels must be within 1..=32"
        );
        let sketches = levels
            .iter()
            .map(|&l| {
                SketchEngineBuilder::new(k)
                    .policy(PurgePolicy::smed())
                    .seed(0x4848_4800 + l as u64) // distinct seed per level
                    .build()
                    .expect("invalid k")
            })
            .collect();
        Self {
            levels: levels.to_vec(),
            sketches,
            batch_buf: Vec::new(),
            stream_weight: 0,
        }
    }

    /// The prefix of `ip` at `len` bits with host bits zeroed.
    #[inline]
    fn mask(ip: u32, len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            ip & (u32::MAX << (32 - len))
        }
    }

    /// Feeds a weighted update: `Δ` units of traffic from source `ip`.
    pub fn update(&mut self, ip: u32, weight: u64) {
        if weight == 0 {
            return;
        }
        self.stream_weight += weight;
        for (idx, &len) in self.levels.iter().enumerate() {
            self.sketches[idx].update(Self::mask(ip, len) as u64, weight);
        }
    }

    /// Feeds a slice of weighted updates through every level's batched,
    /// prefetching ingestion path ([`SketchEngine::update_batch`]) —
    /// state-identical to calling [`Self::update`] on each pair in order,
    /// but each level's table is driven with precomputed homes and
    /// software prefetch, which matters once `k` pushes the per-level
    /// tables out of cache.
    pub fn update_batch(&mut self, batch: &[(u32, u64)]) {
        let mut masked = core::mem::take(&mut self.batch_buf);
        for (idx, &len) in self.levels.iter().enumerate() {
            masked.clear();
            // Zero weights pass through: the engine's batch path skips
            // them with scalar-identical accounting.
            masked.extend(batch.iter().map(|&(ip, w)| (Self::mask(ip, len) as u64, w)));
            self.sketches[idx].update_batch(&masked);
        }
        self.stream_weight += batch.iter().map(|&(_, w)| w).sum::<u64>();
        masked.clear();
        self.batch_buf = masked;
    }

    /// Total weighted traffic processed.
    pub fn stream_weight(&self) -> u64 {
        self.stream_weight
    }

    /// The per-level sketch engines (least-specific first), for
    /// diagnostics.
    pub fn level_sketches(&self) -> &[SketchEngine<u64>] {
        &self.sketches
    }

    /// Total memory across all level sketches.
    pub fn memory_bytes(&self) -> usize {
        self.sketches.iter().map(|s| s.memory_bytes()).sum()
    }

    /// Merges another HHH sketch built with the same hierarchy and `k`.
    ///
    /// # Panics
    /// Panics if the hierarchies differ.
    pub fn merge(&mut self, other: &HhhSketch) {
        assert_eq!(self.levels, other.levels, "hierarchies must match");
        for (mine, theirs) in self.sketches.iter_mut().zip(&other.sketches) {
            mine.merge(theirs);
        }
        self.stream_weight += other.stream_weight;
    }

    /// Computes the hierarchical heavy hitters at threshold `phi`,
    /// most-specific prefixes first within the result.
    ///
    /// A prefix is reported when its conditioned count (estimate minus
    /// already-reported descendants) may exceed `phi · N` under the chosen
    /// reporting contract.
    ///
    /// # Panics
    /// Panics if `phi` is outside `[0, 1]`.
    pub fn hierarchical_heavy_hitters(&self, phi: f64, error_type: ErrorType) -> Vec<HhhRow> {
        let threshold = streamfreq_core::bounds::phi_threshold(phi, self.stream_weight);
        let mut result: Vec<HhhRow> = Vec::new();
        // reported descendants' estimates, folded upward level by level:
        // maps ancestor prefix (at the level being processed) to the total
        // reported-descendant estimate beneath it.
        let mut discounted: HashMap<u32, u64> = HashMap::new();
        for (idx, &len) in self.levels.iter().enumerate().rev() {
            let sketch = &self.sketches[idx];
            let mut reported_here: Vec<(u32, u64)> = Vec::new();
            for row in sketch.frequent_items_with_threshold(0, error_type) {
                let prefix = row.item as u32;
                let below = discounted.get(&prefix).copied().unwrap_or(0);
                let conditioned = row.estimate.saturating_sub(below);
                if conditioned > threshold {
                    result.push(HhhRow {
                        prefix,
                        prefix_len: len,
                        estimate: row.estimate,
                        conditioned,
                    });
                    reported_here.push((prefix, row.estimate));
                }
            }
            // Fold this level's reported estimates (and the still-unreported
            // descendant discounts) up to the parent level.
            if idx > 0 {
                let parent_len = self.levels[idx - 1];
                let mut up: HashMap<u32, u64> = HashMap::new();
                for (prefix, est) in reported_here {
                    *up.entry(Self::mask(prefix, parent_len)).or_insert(0) += est;
                }
                // Descendants reported two or more levels down that were NOT
                // re-reported here still discount the grandparent: propagate
                // the leftover discounts of prefixes that were not reported.
                for (prefix, below) in discounted {
                    let parent = Self::mask(prefix, parent_len);
                    let entry = up.entry(parent).or_insert(0);
                    // Only propagate the part not already covered by a
                    // reported prefix at this level (a reported prefix's
                    // estimate already includes its descendants).
                    if !result
                        .iter()
                        .any(|r| r.prefix_len == len && r.prefix == prefix)
                    {
                        *entry += below;
                    }
                }
                discounted = up;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    #[test]
    fn masking() {
        let x = ip(10, 1, 2, 3);
        assert_eq!(HhhSketch::mask(x, 8), ip(10, 0, 0, 0));
        assert_eq!(HhhSketch::mask(x, 16), ip(10, 1, 0, 0));
        assert_eq!(HhhSketch::mask(x, 24), ip(10, 1, 2, 0));
        assert_eq!(HhhSketch::mask(x, 32), x);
    }

    #[test]
    fn single_host_reported_at_leaf_only() {
        let mut h = HhhSketch::new(64);
        h.update(ip(10, 0, 0, 1), 1_000);
        h.update(ip(192, 168, 1, 1), 10);
        let rows = h.hierarchical_heavy_hitters(0.5, ErrorType::NoFalsePositives);
        // The /32 gets reported; every ancestor is fully discounted by it.
        assert!(rows
            .iter()
            .any(|r| r.prefix_len == 32 && r.prefix == ip(10, 0, 0, 1)));
        for r in &rows {
            if r.prefix_len < 32 {
                panic!("ancestor {} reported despite full discount", r.to_cidr());
            }
        }
    }

    #[test]
    fn dispersed_subnet_reported_at_aggregate_level() {
        // 100 hosts in 10.1.0.0/16, each individually light (1% of traffic)
        // but jointly heavy; plus background noise elsewhere.
        let mut h = HhhSketch::new(256);
        for host in 0..100u32 {
            h.update(ip(10, 1, (host / 8) as u8, (host % 250) as u8), 100);
        }
        for other in 0..100u32 {
            h.update(ip(172, 16, 0, 0) + other * 7717, 10);
        }
        let rows = h.hierarchical_heavy_hitters(0.25, ErrorType::NoFalseNegatives);
        assert!(
            rows.iter()
                .any(|r| r.prefix_len == 16 && r.prefix == ip(10, 1, 0, 0)),
            "dispersed /16 not detected: {:?}",
            rows.iter().map(|r| r.to_cidr()).collect::<Vec<_>>()
        );
        // No single /32 should be heavy.
        assert!(rows.iter().all(|r| r.prefix_len != 32));
    }

    #[test]
    fn conditioned_counts_discount_descendants() {
        // One heavy host inside a subnet that also has dispersed traffic:
        // the /24's conditioned count excludes the reported host.
        let mut h = HhhSketch::new(128);
        h.update(ip(10, 0, 0, 1), 600); // heavy host
        for d in 2..100u8 {
            h.update(ip(10, 0, 0, d), 4); // dispersed: 392 total
        }
        let rows = h.hierarchical_heavy_hitters(0.3, ErrorType::NoFalseNegatives);
        let host = rows
            .iter()
            .find(|r| r.prefix_len == 32 && r.prefix == ip(10, 0, 0, 1))
            .expect("heavy host missing");
        assert_eq!(host.estimate, 600);
        if let Some(subnet) = rows.iter().find(|r| r.prefix_len == 24) {
            assert!(
                subnet.conditioned <= 392 + 1,
                "conditioned {} should exclude the reported host",
                subnet.conditioned
            );
        }
    }

    #[test]
    fn cidr_rendering() {
        let row = HhhRow {
            prefix: ip(10, 1, 2, 0),
            prefix_len: 24,
            estimate: 5,
            conditioned: 5,
        };
        assert_eq!(row.to_cidr(), "10.1.2.0/24");
    }

    #[test]
    fn update_batch_is_state_identical_to_scalar() {
        let stream: Vec<(u32, u64)> = (0..30_000u64)
            .map(|i| {
                let ip = ((i * 2_654_435_761) % 9_000) as u32 | 0x0A00_0000;
                (ip, i % 40 + 1)
            })
            .collect();
        let mut scalar = HhhSketch::new(64);
        for &(ip, w) in &stream {
            scalar.update(ip, w);
        }
        let mut batched = HhhSketch::new(64);
        for chunk in stream.chunks(997) {
            batched.update_batch(chunk);
        }
        assert_eq!(batched.stream_weight(), scalar.stream_weight());
        for (a, b) in batched.level_sketches().iter().zip(scalar.level_sketches()) {
            assert_eq!(a.state_fingerprint(), b.state_fingerprint());
        }
    }

    #[test]
    fn merge_combines_traffic() {
        let mut a = HhhSketch::new(64);
        let mut b = HhhSketch::new(64);
        a.update(ip(10, 0, 0, 1), 500);
        b.update(ip(10, 0, 0, 1), 500);
        b.update(ip(20, 0, 0, 1), 100);
        a.merge(&b);
        assert_eq!(a.stream_weight(), 1100);
        let rows = a.hierarchical_heavy_hitters(0.5, ErrorType::NoFalsePositives);
        assert!(rows
            .iter()
            .any(|r| r.prefix_len == 32 && r.prefix == ip(10, 0, 0, 1)));
    }

    #[test]
    fn custom_hierarchy() {
        let h = HhhSketch::with_levels(32, &[16, 32]);
        assert_eq!(h.level_sketches().len(), 2);
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn unsorted_levels_panic() {
        HhhSketch::with_levels(8, &[24, 8]);
    }

    #[test]
    fn memory_scales_with_levels() {
        let two = HhhSketch::with_levels(256, &[16, 32]).memory_bytes();
        let four = HhhSketch::new(256).memory_bytes();
        assert_eq!(four, two * 2);
    }
}
