//! Durable sketch storage: write-ahead logging, atomic checkpoints, and
//! crash recovery.
//!
//! The serving layer ([`crate::ConcurrentSketch`]) answers queries during
//! live ingestion, but a process crash loses the stream — and every ε·N
//! guarantee with it. This module makes sketch state survive restarts
//! with the cheapest durability story a mergeable summary allows: because
//! the sketch is a *small* state machine driven by weighted batches, a
//! recovered sketch is just
//!
//! ```text
//! recovered = checkpoint ⊕ replay(WAL tail)
//! ```
//!
//! and Algorithm 5's mergeability extends the same recipe to a bank of
//! shards (each shard recovers independently; queries merge the
//! recovered shards exactly as live snapshots do).
//!
//! ## Pieces
//!
//! | module | contents |
//! |---|---|
//! | [`wal`] | segmented, CRC-framed write-ahead log of update batches |
//! | [`checkpoint`] | atomic (temp-file + rename) full-state snapshots, **slot-exact** |
//! | [`store`] | [`DurableSketch<K>`](store::DurableSketch): engine + WAL + manifest; log truncation after checkpoints |
//! | [`recover`] | manifest-driven recovery: load checkpoint, replay tail, drop torn records |
//! | [`ship`] | segment shipping for replicas: export the shippable file set, read/import byte ranges as exact prefix copies |
//!
//! ## Guarantees
//!
//! * **Exactness.** Recovery reproduces the engine state
//!   *fingerprint-identically* to an uninterrupted run over the durably
//!   logged prefix of the stream: the checkpoint records the counter
//!   table slot-for-slot (re-feeding counters through the normal insert
//!   path cannot reproduce wrap-around probe clusters, so a refeed-based
//!   rebuild could diverge from the original layout and change future
//!   purge sampling), and WAL replay drives the same
//!   [`update_batch`](crate::SketchEngine::update_batch) path ingestion
//!   used. Pinned by the kill-point proptests in `tests/persist.rs`.
//! * **Torn writes are dropped, never misdecoded.** Every WAL frame and
//!   every checkpoint carries a CRC-32C; a truncated or bit-flipped
//!   final record fails its checksum and recovery cleanly ends the
//!   replay there.
//! * **Atomic progress.** Checkpoints and the manifest are published via
//!   temp-file + rename (with directory fsync); a crash at any point
//!   leaves either the old or the new state reachable, never a mix.
//!
//! What is durable depends on [`FsyncPolicy`]: `Always` makes every
//! acknowledged batch crash-proof, `EveryBytes` bounds the data-loss
//! window, `Off` leaves flushing to the OS (process crashes are still
//! safe; power loss may drop the un-flushed tail — which recovery then
//! detects and drops cleanly).

pub mod checkpoint;
pub mod group;
pub mod recover;
pub mod ship;
pub mod store;
pub mod wal;

pub use group::{CheckpointRound, GroupCommitWal, GroupWalStats};
pub use recover::{open_bank_existing, recover_bank_readonly, RecoveryReport, RecoverySource};
pub use ship::{export_manifest, import_file_range, read_file_range, MAX_SHIP_CHUNK};
pub use store::{checkpoint_bank, DurabilityOptions, DurableSketch, Manifest, StoreMeta};
pub use wal::{WalPosition, WalRecord};

use std::path::PathBuf;

use crate::error::Error;
use crate::purge::PurgePolicy;

/// When the write-ahead log forces its buffered bytes to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended batch: no acknowledged update is ever
    /// lost, at the cost of one synchronous disk flush per batch.
    Always,
    /// `fsync` once at least this many bytes have been appended since the
    /// last flush: bounds the crash-loss window to the given byte budget.
    EveryBytes(u64),
    /// Never `fsync` from the hot path: the OS flushes at its leisure.
    /// Process crashes lose nothing (the page cache survives); power loss
    /// may drop the unflushed tail, which recovery detects and drops.
    Off,
}

impl FsyncPolicy {
    /// The policy's stable textual label, as accepted by
    /// [`FsyncPolicy::parse`] and reported by the `serve` STATS verb:
    /// `always`, `off`, or `bytes:N`.
    pub fn label(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".into(),
            FsyncPolicy::Off => "off".into(),
            FsyncPolicy::EveryBytes(n) => format!("bytes:{n}"),
        }
    }

    /// Parses a [`Self::label`]-format policy string.
    ///
    /// # Errors
    /// Returns a description of the expected grammar on bad input.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "off" => Ok(FsyncPolicy::Off),
            other => {
                if let Some(n) = other.strip_prefix("bytes:") {
                    let n: u64 = n
                        .parse()
                        .map_err(|_| format!("bad fsync byte budget `{n}`"))?;
                    if n == 0 {
                        return Err("fsync byte budget must be positive (use `always`)".into());
                    }
                    Ok(FsyncPolicy::EveryBytes(n))
                } else {
                    Err(format!(
                        "unknown fsync policy `{other}` (want always|off|bytes:N)"
                    ))
                }
            }
        }
    }
}

impl Default for FsyncPolicy {
    /// Flush every 8 MiB: a bounded loss window without per-batch flushes.
    fn default() -> Self {
        FsyncPolicy::EveryBytes(8 << 20)
    }
}

/// Errors reported by the persistence layer.
#[derive(Debug)]
pub enum PersistError {
    /// A filesystem operation failed on a path.
    Io {
        /// The path the operation targeted.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// On-disk bytes failed validation (checksum mismatch, bad framing,
    /// impossible field values, references to missing files).
    Corrupt {
        /// The file (or directory) the corruption was found in.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// The store on disk was created with a different configuration than
    /// the one requested.
    ConfigMismatch(String),
    /// A sketch-level error (invalid configuration or codec failure)
    /// surfaced while rebuilding state.
    Sketch(Error),
}

impl PersistError {
    pub(crate) fn io(path: &std::path::Path, source: std::io::Error) -> Self {
        PersistError::Io {
            path: path.to_path_buf(),
            source,
        }
    }

    pub(crate) fn corrupt(path: &std::path::Path, detail: impl Into<String>) -> Self {
        PersistError::Corrupt {
            path: path.to_path_buf(),
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            PersistError::Corrupt { path, detail } => {
                write!(f, "{}: corrupt store: {detail}", path.display())
            }
            PersistError::ConfigMismatch(msg) => write!(f, "store configuration mismatch: {msg}"),
            PersistError::Sketch(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            PersistError::Sketch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<Error> for PersistError {
    fn from(e: Error) -> Self {
        PersistError::Sketch(e)
    }
}

/// The construction parameters of a [`crate::SketchEngine`], as recorded
/// in store manifests: recovery without a checkpoint (a crash before the
/// first one) must rebuild the engine *exactly* as the original run
/// started it, including the initial table size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineConfig {
    /// Maximum assigned counters (the paper's `k`).
    pub max_counters: usize,
    /// Purge policy.
    pub policy: PurgePolicy,
    /// Purge-sampler seed.
    pub seed: u64,
    /// Whether the table grows from 8 slots or preallocates.
    pub grow_from_small: bool,
}

impl EngineConfig {
    /// A default-policy, default-seed configuration for `max_counters`
    /// counters (the [`crate::SketchEngineBuilder`] defaults).
    pub fn new(max_counters: usize) -> Self {
        EngineConfig {
            max_counters,
            policy: PurgePolicy::default(),
            seed: crate::engine::DEFAULT_SEED,
            grow_from_small: true,
        }
    }

    /// Sets the purge policy.
    pub fn policy(mut self, policy: PurgePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the sampler seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the table-growth mode.
    pub fn grow_from_small(mut self, grow: bool) -> Self {
        self.grow_from_small = grow;
        self
    }

    /// Builds a fresh engine with this configuration.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] exactly as the builder would.
    pub fn build_engine<K: crate::engine::SketchKey>(
        &self,
    ) -> Result<crate::engine::SketchEngine<K>, Error> {
        crate::engine::SketchEngineBuilder::new(self.max_counters)
            .policy(self.policy)
            .seed(self.seed)
            .grow_from_small(self.grow_from_small)
            .build()
    }
}

/// Publishes `bytes` at `path` atomically: write to a sibling `.tmp`
/// file, fsync it, rename over `path`, fsync the parent directory. A
/// crash at any point leaves either the old file or the new one, never
/// a torn mix. One implementation for every self-validating file the
/// store writes (checkpoints, MANIFEST, STORE).
pub(crate) fn atomic_write(path: &std::path::Path, bytes: &[u8]) -> Result<(), PersistError> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp).map_err(|e| PersistError::io(&tmp, e))?;
        std::io::Write::write_all(&mut file, bytes).map_err(|e| PersistError::io(&tmp, e))?;
        file.sync_all().map_err(|e| PersistError::io(&tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| PersistError::io(path, e))?;
    if let Some(parent) = path.parent() {
        wal::fsync_dir(parent)?;
    }
    Ok(())
}

/// Verifies the trailing CRC-32C of a self-validating file and returns
/// the covered bytes — the shared decode gate for checkpoints, the
/// manifest, and the store metadata.
pub(crate) fn verify_trailing_crc(bytes: &[u8]) -> Result<&[u8], Error> {
    if bytes.len() < 4 {
        return Err(Error::Truncated {
            needed: 4 - bytes.len(),
            remaining: bytes.len(),
        });
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = crc_bytes
        .try_into()
        .map(u32::from_le_bytes)
        .map_err(|_| Error::Corrupt("checksum trailer missing".into()))?;
    if crc32c(body) != stored {
        return Err(Error::Corrupt("checksum mismatch".into()));
    }
    Ok(body)
}

/// CRC-32C (Castagnoli) of `bytes` — the checksum guarding every WAL
/// frame, checkpoint, and manifest. The polynomial matches iSCSI/ext4 so
/// external tooling can verify the files. Uses the SSE4.2 `crc32`
/// instruction where the CPU has it (this sits on the durable ingest
/// fast path — every logged byte goes through here), with a table-driven
/// software fallback.
pub fn crc32c(bytes: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse4.2") {
            // The crate forbids unsafe code; this call and `crc32c_hw`
            // below are the sole, deliberate exception — CPU checksum
            // intrinsics behind a runtime feature check, taking and
            // returning plain integers, verified against the software
            // path by the test vectors.
            #[allow(unsafe_code)]
            // SAFETY: the sse4.2 feature was just verified at runtime.
            return unsafe { crc32c_hw(bytes) };
        }
    }
    crc32c_sw(bytes)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
#[allow(unsafe_code)]
unsafe fn crc32c_hw(bytes: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut crc = u64::from(!0u32);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        crc = _mm_crc32_u64(
            crc,
            u64::from_le_bytes(chunk.try_into().expect("sized chunk")),
        );
    }
    let mut crc = crc as u32;
    for &b in chunks.remainder() {
        crc = _mm_crc32_u8(crc, b);
    }
    !crc
}

fn crc32c_sw(bytes: &[u8]) -> u32 {
    const POLY: u32 = 0x82F6_3B78; // reversed Castagnoli polynomial
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_matches_known_vectors() {
        // RFC 3720 §B.4 test vectors.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        // The hardware and software paths must agree at every length
        // (the remainder loop covers 0..8 trailing bytes).
        let long: Vec<u8> = (0..1000u32)
            .flat_map(|i| i.wrapping_mul(2_654_435_761).to_le_bytes())
            .collect();
        for end in [0, 1, 7, 8, 9, 4000] {
            assert_eq!(
                crc32c(&long[..end]),
                crc32c_sw(&long[..end]),
                "length {end}"
            );
        }
    }

    #[test]
    fn fsync_policy_labels_roundtrip() {
        for policy in [
            FsyncPolicy::Always,
            FsyncPolicy::Off,
            FsyncPolicy::EveryBytes(8 << 20),
            FsyncPolicy::EveryBytes(1),
        ] {
            assert_eq!(FsyncPolicy::parse(&policy.label()).unwrap(), policy);
        }
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert!(FsyncPolicy::parse("bytes:0").is_err());
        assert!(FsyncPolicy::parse("bytes:lots").is_err());
    }

    #[test]
    fn engine_config_builds_equivalently_to_builder() {
        let config = EngineConfig::new(64).seed(9).grow_from_small(false);
        let from_config: crate::SketchEngine<u64> = config.build_engine().unwrap();
        let from_builder = crate::SketchEngineBuilder::<u64>::new(64)
            .seed(9)
            .grow_from_small(false)
            .build()
            .unwrap();
        assert_eq!(
            from_config.state_fingerprint(),
            from_builder.state_fingerprint()
        );
    }
}
