//! Segmented, CRC-framed write-ahead log of weighted update batches.
//!
//! ## On-disk layout
//!
//! The log is a sequence of segment files `wal-<seq>.seg` (16-digit
//! decimal `seq`, starting at 1) in the store directory. Each segment is:
//!
//! ```text
//! [ magic "SFWL" | version u8 | reserved ×3 ]          8-byte header
//! [ frame ]*
//! ```
//!
//! and each frame is:
//!
//! ```text
//! [ payload_len u32le | crc32c(payload) u32le | payload ]
//! ```
//!
//! The payload encoding is set by the segment header's version byte.
//! Version 2 (current) is compact varints with a per-shard stream tag,
//! so one log can carry every shard of a store:
//!
//! ```text
//! [ stream varint | epoch varint | count varint
//!   | count × (item compact | weight varint) ]
//! ```
//!
//! Version 1 (the pre-shared-log format, still readable) is fixed-width
//! little-endian with no stream tag (all records decode as stream 0):
//!
//! ```text
//! [ epoch u64le | count u32le | count × (item ItemCodec | weight u64le) ]
//! ```
//!
//! New frames are always written as version 2; a writer resuming into a
//! version-1 segment rotates immediately so the two payload formats
//! never mix within one segment.
//!
//! `epoch` is the checkpoint epoch current when the batch was appended —
//! a diagnostic tag recovery reports but does not need (the manifest's
//! byte position, not the epoch, delimits the replay tail). `stream`
//! identifies the shard that appended the record; readers recovering a
//! single shard filter on it.
//!
//! ## Torn-write contract
//!
//! An append interrupted by a crash leaves a frame with a short or
//! corrupt payload at the *physical end* of the log. The reader stops
//! replay at the first frame that fails its length or CRC check: if that
//! frame sits in the last segment, the tail is **dropped** (reported, not
//! an error — this is the expected crash signature); a bad frame with
//! more log after it cannot come from a torn append and is reported as
//! corruption. [`WalWriter::open_at`] truncates the dropped tail before
//! appending again, so the log never accumulates garbage mid-stream.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::item_codec::{read_uvarint, write_uvarint, ItemCodec};

use super::{FsyncPolicy, PersistError};

const SEG_MAGIC: &[u8; 4] = b"SFWL";
/// Fixed-width payloads, no stream tag (read-only legacy).
const SEG_VERSION_V1: u8 = 1;
/// Varint payloads with a stream tag — what new segments are written as.
const SEG_VERSION: u8 = 2;

fn known_version(version: u8) -> bool {
    version == SEG_VERSION_V1 || version == SEG_VERSION
}

/// Checks a segment header prefix — magic then a known version byte —
/// and returns the version. `None` covers short, wrong-magic, and
/// unknown-version prefixes alike; callers decide torn versus corrupt.
fn parse_segment_header(bytes: &[u8]) -> Option<u8> {
    let magic = bytes.get(..4)?;
    let version = *bytes.get(4)?;
    (magic == SEG_MAGIC && known_version(version)).then_some(version)
}

/// Bytes of a segment file's header (`magic`, version, reserved).
pub const SEGMENT_HEADER_LEN: u64 = 8;

/// [`SEGMENT_HEADER_LEN`] for slice math, converted once outside the
/// decode paths.
const SEG_HEADER_USIZE: usize = SEGMENT_HEADER_LEN as usize;

/// Bytes of a frame header (`payload_len`, `crc32c`).
const FRAME_HEADER_LEN: u64 = 8;

/// [`FRAME_HEADER_LEN`] for slice math, converted once outside the
/// decode paths.
const FRAME_HEADER_USIZE: usize = FRAME_HEADER_LEN as usize;

/// Sanity cap on one frame's payload: anything larger is corruption,
/// not a batch (writers buffer a few thousand updates per batch).
const MAX_FRAME_PAYLOAD: u32 = 1 << 30;

/// A byte position in the log: the first replayable byte of `segment`.
/// Ordered lexicographically (segment, then offset), matching append
/// order within one log.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct WalPosition {
    /// Segment sequence number (1-based).
    pub segment: u64,
    /// Byte offset within the segment (≥ [`SEGMENT_HEADER_LEN`]).
    pub offset: u64,
}

/// One decoded WAL record: a weighted batch tagged with the shard stream
/// that appended it and the checkpoint epoch current at append time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord<K> {
    /// Shard stream tag (0 for single-engine stores and v1 segments).
    pub stream: u32,
    /// Checkpoint epoch at append time (diagnostic).
    pub epoch: u64,
    /// The weighted update batch, in append order.
    pub batch: Vec<(K, u64)>,
    /// Position of this record's frame header — what per-shard replay
    /// compares against a manifest's `wal_start`.
    pub at: WalPosition,
}

/// Everything a log scan recovers.
#[derive(Debug)]
pub struct WalReadOutcome<K> {
    /// Valid records from the start position to the end of the log.
    pub records: Vec<WalRecord<K>>,
    /// Position immediately after the last valid record — where a
    /// resumed writer continues (after truncating any torn tail).
    pub end: WalPosition,
    /// Bytes of torn/corrupt tail dropped from the last segment.
    pub dropped_tail_bytes: u64,
}

/// Path of segment `seq` under `dir`.
pub(crate) fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:016}.seg"))
}

/// The `(seq, path)` of every WAL segment in `dir`, ascending.
pub(crate) fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, PersistError> {
    let mut segments = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(segments),
        Err(e) => return Err(PersistError::io(dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| PersistError::io(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".seg"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            segments.push((seq, entry.path()));
        }
    }
    segments.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(segments)
}

/// Flushes a directory so a just-created/renamed entry survives a crash.
pub(crate) fn fsync_dir(dir: &Path) -> Result<(), PersistError> {
    // Directory fsync is a Unix-ism; opening the directory read-only and
    // syncing it is the portable-enough idiom (a failure to open it is
    // not fatal on filesystems that do not support it).
    if let Ok(handle) = File::open(dir) {
        handle.sync_all().map_err(|e| PersistError::io(dir, e))?;
    }
    Ok(())
}

/// Appender half of the log. Owns the current (last) segment; earlier
/// segments are immutable history until a checkpoint truncates them.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    fsync: FsyncPolicy,
    segment_bytes: u64,
    seq: u64,
    file: File,
    offset: u64,
    unsynced: u64,
    /// Total on-disk bytes across all retained segments.
    live_bytes: u64,
    frame_buf: Vec<u8>,
}

impl WalWriter {
    /// Creates a fresh log in `dir` (segment 1, header only). `dir` must
    /// exist; the segment file must not.
    pub fn create(
        dir: &Path,
        fsync: FsyncPolicy,
        segment_bytes: u64,
    ) -> Result<Self, PersistError> {
        let seq = 1;
        let file = new_segment(dir, seq)?;
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            fsync,
            segment_bytes,
            seq,
            file,
            offset: SEGMENT_HEADER_LEN,
            unsynced: 0,
            live_bytes: SEGMENT_HEADER_LEN,
            frame_buf: Vec::new(),
        })
    }

    /// Re-opens an existing log for appending at `pos` — the end
    /// position a [`read_from`] scan returned. The target segment must be
    /// the newest one on disk; any torn tail past `pos.offset` is
    /// truncated away first.
    pub fn open_at(
        dir: &Path,
        pos: WalPosition,
        fsync: FsyncPolicy,
        segment_bytes: u64,
    ) -> Result<Self, PersistError> {
        let mut segments = list_segments(dir)?;
        // Segments newer than the append position can only be the
        // husk of a crash during rotation: a directory entry whose
        // 8-byte header never became durable (`read_from` ends the
        // replay before such a segment). Remove the husks; anything
        // with a *valid* header past the append position would mean
        // the caller is about to orphan real data — refuse.
        while segments.last().is_some_and(|&(seq, _)| seq > pos.segment) {
            let Some((_, husk)) = segments.pop() else {
                break;
            };
            let mut header = [0u8; SEG_HEADER_USIZE];
            let intact = File::open(&husk)
                .and_then(|mut f| f.read_exact(&mut header))
                .is_ok()
                && parse_segment_header(&header).is_some();
            if intact {
                return Err(PersistError::corrupt(
                    &husk,
                    format!("intact segment newer than append position {}", pos.segment),
                ));
            }
            std::fs::remove_file(&husk).map_err(|e| PersistError::io(&husk, e))?;
            fsync_dir(dir)?;
        }
        let newest = segments.last().map(|&(seq, _)| seq);
        if newest != Some(pos.segment) {
            return Err(PersistError::corrupt(
                dir,
                format!(
                    "append position in segment {} but newest on disk is {:?}",
                    pos.segment, newest
                ),
            ));
        }
        let path = segment_path(dir, pos.segment);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| PersistError::io(&path, e))?;
        let disk_len = file
            .metadata()
            .map_err(|e| PersistError::io(&path, e))?
            .len();
        if disk_len < pos.offset {
            return Err(PersistError::corrupt(
                &path,
                format!(
                    "append offset {} beyond file of {disk_len} bytes",
                    pos.offset
                ),
            ));
        }
        if disk_len > pos.offset {
            file.set_len(pos.offset)
                .map_err(|e| PersistError::io(&path, e))?;
            file.sync_data().map_err(|e| PersistError::io(&path, e))?;
        }
        let mut live_bytes = pos.offset;
        for &(seq, ref seg_path) in &segments {
            if seq == pos.segment {
                continue;
            }
            live_bytes += std::fs::metadata(seg_path)
                .map_err(|e| PersistError::io(seg_path, e))?
                .len();
        }
        let mut writer = WalWriter {
            dir: dir.to_path_buf(),
            fsync,
            segment_bytes,
            seq: pos.segment,
            file,
            offset: pos.offset,
            unsynced: 0,
            live_bytes,
            frame_buf: Vec::new(),
        };
        let mut header = [0u8; SEG_HEADER_USIZE];
        writer
            .file
            .seek(SeekFrom::Start(0))
            .and_then(|_| writer.file.read_exact(&mut header))
            .map_err(|e| PersistError::io(&path, e))?;
        let Some(header_version) = parse_segment_header(&header) else {
            return Err(PersistError::corrupt(&path, "bad segment header"));
        };
        writer
            .file
            .seek(SeekFrom::Start(pos.offset))
            .map_err(|e| PersistError::io(&path, e))?;
        if header_version != SEG_VERSION {
            // Resuming into a legacy segment: new frames use the v2
            // payload encoding, which must not share a v1 segment.
            writer.rotate()?;
        }
        Ok(writer)
    }

    /// The position the next record will be appended at.
    pub fn position(&self) -> WalPosition {
        WalPosition {
            segment: self.seq,
            offset: self.offset,
        }
    }

    /// Total on-disk bytes across every retained segment.
    pub fn total_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Appends one weighted batch tagged with `epoch` as stream 0. Empty
    /// batches are a no-op. The bytes are durable per the writer's
    /// [`FsyncPolicy`]; rotation to a new segment happens once the
    /// current one exceeds the configured size.
    pub fn append<K: ItemCodec>(
        &mut self,
        epoch: u64,
        batch: &[(K, u64)],
    ) -> Result<(), PersistError> {
        if batch.is_empty() {
            return Ok(());
        }
        // Reuse the writer's scratch buffer: steady-state appends build
        // their frame with zero allocation.
        let mut frame = std::mem::take(&mut self.frame_buf);
        frame.clear();
        encode_frame(&mut frame, 0, epoch, batch);
        let result = self.append_encoded(&frame);
        self.frame_buf = frame;
        result.map(|_| ())
    }

    /// Appends pre-encoded frame bytes — one or more complete frames
    /// produced by [`encode_frame`], e.g. a group-commit flush buffer —
    /// as a single `write_all`, then applies the fsync policy and size-
    /// based rotation once for the whole buffer. Returns whether the
    /// bytes were fsynced.
    pub(crate) fn append_encoded(&mut self, frames: &[u8]) -> Result<bool, PersistError> {
        if frames.is_empty() {
            return Ok(false);
        }
        let path = segment_path(&self.dir, self.seq);
        self.file
            .write_all(frames)
            .map_err(|e| PersistError::io(&path, e))?;
        self.offset += frames.len() as u64;
        self.live_bytes += frames.len() as u64;
        self.unsynced += frames.len() as u64;
        let mut synced = false;
        match self.fsync {
            FsyncPolicy::Always => {
                self.sync()?;
                synced = true;
            }
            FsyncPolicy::EveryBytes(budget) => {
                if self.unsynced >= budget {
                    self.sync()?;
                    synced = true;
                }
            }
            FsyncPolicy::Off => {}
        }
        if self.offset >= self.segment_bytes {
            self.rotate()?;
            synced = true;
        }
        Ok(synced)
    }

    /// Forces all appended bytes to stable storage regardless of policy.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        let path = segment_path(&self.dir, self.seq);
        self.file
            .sync_data()
            .map_err(|e| PersistError::io(&path, e))?;
        self.unsynced = 0;
        Ok(())
    }

    /// Closes the current segment (fsyncing it) and starts the next one.
    /// Returns the position of the new segment's first record — what a
    /// checkpoint manifest records as the replay start.
    pub fn rotate(&mut self) -> Result<WalPosition, PersistError> {
        self.sync()?;
        self.seq += 1;
        self.file = new_segment(&self.dir, self.seq)?;
        self.offset = SEGMENT_HEADER_LEN;
        self.live_bytes += SEGMENT_HEADER_LEN;
        self.unsynced = 0;
        Ok(self.position())
    }

    /// Deletes every segment with sequence number below `seq` (log
    /// truncation after a checkpoint). Returns the bytes freed.
    pub fn remove_segments_below(&mut self, seq: u64) -> Result<u64, PersistError> {
        let mut freed = 0;
        for (old_seq, path) in list_segments(&self.dir)? {
            if old_seq >= seq {
                continue;
            }
            freed += std::fs::metadata(&path)
                .map_err(|e| PersistError::io(&path, e))?
                .len();
            std::fs::remove_file(&path).map_err(|e| PersistError::io(&path, e))?;
        }
        fsync_dir(&self.dir)?;
        self.live_bytes -= freed;
        Ok(freed)
    }
}

/// Appends one complete v2 frame — header, CRC, and varint payload — to
/// `out`. The buffer is caller-owned so hot paths can reuse it across
/// frames and coalesce many frames before a single write.
pub(crate) fn encode_frame<K: ItemCodec>(
    out: &mut Vec<u8>,
    stream: u32,
    epoch: u64,
    batch: &[(K, u64)],
) {
    let header_at = out.len();
    // Worst case: 10-byte varints for every field. One reservation keeps
    // the per-item encode loop free of growth checks.
    out.reserve(FRAME_HEADER_LEN as usize + 30 + 20 * batch.len());
    out.extend_from_slice(&[0u8; FRAME_HEADER_LEN as usize]);
    write_uvarint(out, u64::from(stream));
    write_uvarint(out, epoch);
    write_uvarint(out, batch.len() as u64);
    for (item, weight) in batch {
        item.encode_compact_pair(*weight, out);
    }
    let payload_len = (out.len() - header_at - FRAME_HEADER_LEN as usize) as u32;
    let crc = super::crc32c(&out[header_at + FRAME_HEADER_LEN as usize..]);
    out[header_at..header_at + 4].copy_from_slice(&payload_len.to_le_bytes());
    out[header_at + 4..header_at + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Creates segment `seq` with its header written and the directory entry
/// flushed.
fn new_segment(dir: &Path, seq: u64) -> Result<File, PersistError> {
    let path = segment_path(dir, seq);
    let mut file = OpenOptions::new()
        .create_new(true)
        .write(true)
        .read(true)
        .open(&path)
        .map_err(|e| PersistError::io(&path, e))?;
    let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
    header[..4].copy_from_slice(SEG_MAGIC);
    header[4] = SEG_VERSION;
    file.write_all(&header)
        .map_err(|e| PersistError::io(&path, e))?;
    file.sync_data().map_err(|e| PersistError::io(&path, e))?;
    fsync_dir(dir)?;
    Ok(file)
}

/// Frame-chain auditor for the `debug-invariants` sanitizer: re-reads
/// the entire on-disk log and checks the chain invariants the appenders
/// maintain — contiguous segment sequence numbers (a hole means history
/// the manifests may still depend on was deleted out from under them),
/// every frame decodable in strict append order, and per-stream epoch
/// monotonicity (a shard's checkpoint epoch never decreases along the
/// log; a decrease means frames were reordered or a stale writer raced
/// a checkpoint).
///
/// An empty directory is a valid (empty) chain. This is a full-log
/// re-read — call it from the feature-gated hooks after rotation and
/// checkpoint truncation, not on the append path.
///
/// # Errors
/// Returns [`PersistError`] naming the first violated chain invariant.
pub fn audit_chain<K: ItemCodec>(dir: &Path) -> Result<(), PersistError> {
    let segments = list_segments(dir)?;
    let Some(&(first, _)) = segments.first() else {
        return Ok(());
    };
    for (walked, &(seq, ref path)) in segments.iter().enumerate() {
        let expected = first + walked as u64;
        if seq != expected {
            return Err(PersistError::corrupt(
                path,
                format!("segment chain hole: expected seq {expected}, found {seq}"),
            ));
        }
    }
    let outcome = read_from::<K>(
        dir,
        WalPosition {
            segment: first,
            offset: SEGMENT_HEADER_LEN,
        },
    )?;
    let mut last_epoch: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    let mut last_at: Option<WalPosition> = None;
    for rec in &outcome.records {
        if last_at.is_some_and(|prev| rec.at <= prev) {
            return Err(PersistError::corrupt(
                dir,
                format!("frame positions out of append order at {:?}", rec.at),
            ));
        }
        last_at = Some(rec.at);
        if let Some(&prev) = last_epoch.get(&rec.stream) {
            if rec.epoch < prev {
                return Err(PersistError::corrupt(
                    dir,
                    format!(
                        "stream {} epoch went backwards: {} after {prev}",
                        rec.stream, rec.epoch
                    ),
                ));
            }
        }
        last_epoch.insert(rec.stream, rec.epoch);
    }
    Ok(())
}

/// Scans the log from `start` to its physical end, decoding every valid
/// frame. See the module docs for the torn-write contract; a bad frame
/// anywhere except the last segment's tail is an error.
///
/// # Errors
/// Returns [`PersistError`] for missing segments between `start` and the
/// newest one, unreadable files, or mid-log corruption.
pub fn read_from<K: ItemCodec>(
    dir: &Path,
    start: WalPosition,
) -> Result<WalReadOutcome<K>, PersistError> {
    let segments = list_segments(dir)?;
    let relevant: Vec<&(u64, PathBuf)> = segments
        .iter()
        .filter(|&&(seq, _)| seq >= start.segment)
        .collect();
    if relevant.is_empty() {
        return Err(PersistError::corrupt(
            dir,
            format!("manifest points at missing WAL segment {}", start.segment),
        ));
    }
    // The replay range must be contiguous: a hole means a segment the
    // manifest still depends on was deleted.
    for (i, &&(seq, _)) in relevant.iter().enumerate() {
        let expected = start.segment + i as u64;
        if seq != expected {
            return Err(PersistError::corrupt(
                dir,
                format!("WAL segment {expected} missing (next present is {seq})"),
            ));
        }
    }
    let mut records = Vec::new();
    let mut end = start;
    let mut dropped = 0u64;
    let last_index = relevant.len() - 1;
    for (i, &&(seq, ref path)) in relevant.iter().enumerate() {
        let is_last = i == last_index;
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| PersistError::io(path, e))?;
        let header_version =
            parse_segment_header(&bytes).filter(|_| bytes.len() >= SEG_HEADER_USIZE);
        let Some(version) = header_version else {
            // A bad header on the newest, not-yet-referenced segment is
            // the signature of a crash during rotation (the directory
            // entry committed before the header bytes were durable): a
            // torn tail, not corruption. The manifest's own start
            // segment always has a durable header — `new_segment` syncs
            // it before any manifest can reference it — so a bad header
            // there is real damage.
            if is_last && seq != start.segment {
                return Ok(WalReadOutcome {
                    records,
                    end,
                    dropped_tail_bytes: bytes.len() as u64,
                });
            }
            return Err(PersistError::corrupt(path, "bad segment header"));
        };
        let mut cursor = if seq == start.segment {
            if start.offset < SEGMENT_HEADER_LEN || start.offset > bytes.len() as u64 {
                return Err(PersistError::corrupt(
                    path,
                    format!("replay offset {} outside segment", start.offset),
                ));
            }
            usize::try_from(start.offset)
                .map_err(|_| PersistError::corrupt(path, "replay offset overflows usize"))?
        } else {
            SEG_HEADER_USIZE
        };
        end = WalPosition {
            segment: seq,
            offset: cursor as u64,
        };
        loop {
            let at = WalPosition {
                segment: seq,
                offset: cursor as u64,
            };
            match decode_frame::<K>(version, bytes.get(cursor..).unwrap_or_default(), at) {
                FrameOutcome::Record(record, consumed) => {
                    records.push(record);
                    cursor = cursor.saturating_add(consumed);
                    end.offset = cursor as u64;
                }
                FrameOutcome::End => break,
                FrameOutcome::Torn(detail) => {
                    if is_last {
                        dropped = (bytes.len() - cursor) as u64;
                        return Ok(WalReadOutcome {
                            records,
                            end,
                            dropped_tail_bytes: dropped,
                        });
                    }
                    return Err(PersistError::corrupt(
                        path,
                        format!("mid-log frame at offset {cursor}: {detail}"),
                    ));
                }
            }
        }
    }
    Ok(WalReadOutcome {
        records,
        end,
        dropped_tail_bytes: dropped,
    })
}

enum FrameOutcome<K> {
    /// A valid frame: the record and the bytes it consumed.
    Record(WalRecord<K>, usize),
    /// Clean end of segment (zero bytes remain).
    End,
    /// A short, corrupt, or undecodable frame.
    Torn(String),
}

/// Reads a frame header's `(payload_len, crc)` pair, or `None` when
/// fewer than [`FRAME_HEADER_USIZE`] bytes remain.
fn frame_header(bytes: &[u8]) -> Option<(u32, u32)> {
    let len = bytes.get(0..4)?.try_into().ok()?;
    let crc = bytes.get(4..8)?.try_into().ok()?;
    Some((u32::from_le_bytes(len), u32::from_le_bytes(crc)))
}

/// Decodes the frame at the front of `bytes`, interpreting the payload
/// per the segment's `version`.
fn decode_frame<K: ItemCodec>(version: u8, bytes: &[u8], at: WalPosition) -> FrameOutcome<K> {
    if bytes.is_empty() {
        return FrameOutcome::End;
    }
    let Some((payload_len, crc)) = frame_header(bytes) else {
        return FrameOutcome::Torn(format!("{}-byte partial frame header", bytes.len()));
    };
    if payload_len > MAX_FRAME_PAYLOAD {
        return FrameOutcome::Torn(format!("implausible payload length {payload_len}"));
    }
    let total = match usize::try_from(payload_len)
        .ok()
        .and_then(|p| FRAME_HEADER_USIZE.checked_add(p))
    {
        Some(total) => total,
        None => return FrameOutcome::Torn(format!("implausible payload length {payload_len}")),
    };
    let Some(payload) = bytes.get(FRAME_HEADER_USIZE..total) else {
        return FrameOutcome::Torn(format!(
            "payload truncated ({} of {payload_len} bytes)",
            bytes.len() - FRAME_HEADER_USIZE
        ));
    };
    if super::crc32c(payload) != crc {
        return FrameOutcome::Torn("CRC mismatch".into());
    }
    // Past the CRC the payload is trusted framing-wise, but the decode
    // stays total: a CRC collision on garbage must fail cleanly.
    let mut view = payload;
    let mut decode = || -> Result<WalRecord<K>, crate::error::Error> {
        let (stream, epoch, count) = if version == SEG_VERSION_V1 {
            (
                0u32,
                u64::decode(&mut view)?,
                usize::try_from(u32::decode(&mut view)?).map_err(|_| {
                    crate::error::Error::Corrupt("batch count overflows usize".into())
                })?,
            )
        } else {
            let stream = u32::try_from(read_uvarint(&mut view)?)
                .map_err(|_| crate::error::Error::Corrupt("stream tag overflows u32".into()))?;
            let epoch = read_uvarint(&mut view)?;
            let count = usize::try_from(read_uvarint(&mut view)?)
                .map_err(|_| crate::error::Error::Corrupt("batch count overflows usize".into()))?;
            (stream, epoch, count)
        };
        let mut batch = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let (item, weight) = if version == SEG_VERSION_V1 {
                (K::decode(&mut view)?, u64::decode(&mut view)?)
            } else {
                (K::decode_compact(&mut view)?, read_uvarint(&mut view)?)
            };
            batch.push((item, weight));
        }
        if !view.is_empty() {
            return Err(crate::error::Error::Corrupt(
                "trailing bytes in WAL payload".into(),
            ));
        }
        Ok(WalRecord {
            stream,
            epoch,
            batch,
            at,
        })
    };
    match decode() {
        Ok(record) => FrameOutcome::Record(record, total),
        Err(e) => FrameOutcome::Torn(format!("undecodable payload: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("streamfreq-wal-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn start() -> WalPosition {
        WalPosition {
            segment: 1,
            offset: SEGMENT_HEADER_LEN,
        }
    }

    #[test]
    fn append_read_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let mut w = WalWriter::create(&dir, FsyncPolicy::Off, 1 << 20).unwrap();
        w.append(0, &[(1u64, 10u64), (2, 20)]).unwrap();
        w.append(0, &[(3u64, 30u64)]).unwrap();
        w.append(1, &[(4u64, 40u64)]).unwrap();
        w.append::<u64>(1, &[]).unwrap(); // no-op
        let out = read_from::<u64>(&dir, start()).unwrap();
        assert_eq!(out.records.len(), 3);
        assert_eq!(out.records[0].batch, vec![(1, 10), (2, 20)]);
        assert_eq!(out.records[2].epoch, 1);
        assert_eq!(out.dropped_tail_bytes, 0);
        assert_eq!(out.end, w.position());
        assert_eq!(w.total_bytes(), out.end.offset);
    }

    #[test]
    fn string_items_roundtrip() {
        let dir = tmp_dir("strings");
        let mut w = WalWriter::create(&dir, FsyncPolicy::Always, 1 << 20).unwrap();
        let batch = vec![("alpha".to_string(), 5u64), ("β".to_string(), 7)];
        w.append(3, &batch).unwrap();
        let out = read_from::<String>(&dir, start()).unwrap();
        assert_eq!(out.records[0].batch, batch);
    }

    #[test]
    fn rotation_splits_segments_and_replays_across() {
        let dir = tmp_dir("rotate");
        // Tiny segment budget: every append rotates.
        let mut w = WalWriter::create(&dir, FsyncPolicy::Off, 16).unwrap();
        for i in 0..5u64 {
            w.append(0, &[(i, i + 1)]).unwrap();
        }
        assert!(list_segments(&dir).unwrap().len() >= 5);
        let out = read_from::<u64>(&dir, start()).unwrap();
        assert_eq!(out.records.len(), 5);
        assert_eq!(out.records[4].batch, vec![(4, 5)]);
    }

    #[test]
    fn audit_chain_accepts_clean_log_and_rejects_holes() {
        let dir = tmp_dir("audit-chain");
        audit_chain::<u64>(&dir).expect("an empty directory is a valid chain");
        // Tiny segment budget: every append rotates, building a chain.
        let mut w = WalWriter::create(&dir, FsyncPolicy::Off, 16).unwrap();
        for i in 0..5u64 {
            w.append(i, &[(i, i + 1)]).unwrap();
        }
        drop(w);
        assert!(list_segments(&dir).unwrap().len() >= 3);
        audit_chain::<u64>(&dir).expect("intact chain audits clean");
        let (_, mid_path) = list_segments(&dir).unwrap()[1].clone();
        std::fs::remove_file(&mid_path).unwrap();
        let err = audit_chain::<u64>(&dir).unwrap_err();
        assert!(err.to_string().contains("hole"), "{err}");
    }

    #[test]
    fn audit_chain_rejects_backwards_epochs() {
        let dir = tmp_dir("audit-epoch");
        let mut w = WalWriter::create(&dir, FsyncPolicy::Off, 1 << 20).unwrap();
        w.append(5, &[(1u64, 1u64)]).unwrap();
        w.append(3, &[(2u64, 2u64)]).unwrap();
        drop(w);
        let err = audit_chain::<u64>(&dir).unwrap_err();
        assert!(err.to_string().contains("epoch went backwards"), "{err}");
    }

    #[test]
    fn torn_tail_is_dropped_at_every_cut_point() {
        let dir = tmp_dir("torn");
        let mut w = WalWriter::create(&dir, FsyncPolicy::Off, 1 << 20).unwrap();
        w.append(0, &[(1u64, 1u64)]).unwrap();
        let keep = w.position().offset;
        w.append(0, &[(2u64, 2u64), (3, 3)]).unwrap();
        let full = w.position().offset;
        drop(w);
        let path = segment_path(&dir, 1);
        let bytes = std::fs::read(&path).unwrap();
        for cut in keep..full {
            std::fs::write(&path, &bytes[..cut as usize]).unwrap();
            let out = read_from::<u64>(&dir, start()).unwrap();
            assert_eq!(out.records.len(), 1, "cut at {cut}");
            assert_eq!(out.end.offset, keep);
            assert_eq!(out.dropped_tail_bytes, cut - keep);
        }
    }

    #[test]
    fn flipped_tail_byte_is_dropped_not_misdecoded() {
        let dir = tmp_dir("flip");
        let mut w = WalWriter::create(&dir, FsyncPolicy::Off, 1 << 20).unwrap();
        w.append(0, &[(1u64, 1u64)]).unwrap();
        let keep = w.position().offset;
        w.append(0, &[(2u64, 2u64)]).unwrap();
        drop(w);
        let path = segment_path(&dir, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        for flip in keep as usize..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[flip] ^= 0x40;
            std::fs::write(&path, &corrupted).unwrap();
            let out = read_from::<u64>(&dir, start()).unwrap();
            assert_eq!(out.records.len(), 1, "flip at {flip}");
            assert_eq!(out.records[0].batch, vec![(1, 1)]);
        }
        // Restore and confirm both records decode again.
        bytes[0] = b'S';
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_from::<u64>(&dir, start()).unwrap().records.len(), 2);
    }

    #[test]
    fn mid_log_corruption_is_an_error() {
        let dir = tmp_dir("midlog");
        let mut w = WalWriter::create(&dir, FsyncPolicy::Off, 16).unwrap();
        for i in 0..4u64 {
            w.append(0, &[(i, 1u64)]).unwrap(); // rotates per append
        }
        drop(w);
        // Corrupt a frame in the FIRST segment: later segments exist, so
        // this cannot be a torn tail.
        let path = segment_path(&dir, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_from::<u64>(&dir, start()),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn missing_segment_is_a_clean_error() {
        let dir = tmp_dir("hole");
        let mut w = WalWriter::create(&dir, FsyncPolicy::Off, 16).unwrap();
        for i in 0..3u64 {
            w.append(0, &[(i, 1u64)]).unwrap();
        }
        drop(w);
        std::fs::remove_file(segment_path(&dir, 2)).unwrap();
        let err = read_from::<u64>(&dir, start()).unwrap_err();
        assert!(err.to_string().contains("segment 2 missing"), "{err}");
        // A start position past the newest segment is also clean.
        let err = read_from::<u64>(
            &dir,
            WalPosition {
                segment: 99,
                offset: SEGMENT_HEADER_LEN,
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("missing WAL segment 99"), "{err}");
    }

    #[test]
    fn open_at_truncates_torn_tail_and_resumes() {
        let dir = tmp_dir("resume");
        let mut w = WalWriter::create(&dir, FsyncPolicy::Off, 1 << 20).unwrap();
        w.append(0, &[(1u64, 1u64)]).unwrap();
        w.append(0, &[(2u64, 2u64)]).unwrap();
        drop(w);
        // Tear the second record.
        let path = segment_path(&dir, 1);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let out = read_from::<u64>(&dir, start()).unwrap();
        assert_eq!(out.records.len(), 1);
        let mut w = WalWriter::open_at(&dir, out.end, FsyncPolicy::Off, 1 << 20).unwrap();
        w.append(0, &[(9u64, 9u64)]).unwrap();
        drop(w);
        let out = read_from::<u64>(&dir, start()).unwrap();
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.records[1].batch, vec![(9, 9)]);
        assert_eq!(out.dropped_tail_bytes, 0, "torn bytes were truncated away");
    }

    #[test]
    fn headerless_rotation_husk_is_dropped_and_cleaned() {
        // Crash during rotation: the new segment's directory entry
        // committed but its header never became durable. Replay must
        // treat the husk as a torn tail, and a resumed writer must
        // clean it up and continue in the previous segment.
        let dir = tmp_dir("husk");
        let mut w = WalWriter::create(&dir, FsyncPolicy::Off, 1 << 20).unwrap();
        w.append(0, &[(1u64, 1u64)]).unwrap();
        let keep = w.position();
        drop(w);
        for husk_bytes in [&b""[..], &b"SF"[..], &b"garbage!"[..]] {
            std::fs::write(segment_path(&dir, 2), husk_bytes).unwrap();
            let out = read_from::<u64>(&dir, start()).unwrap();
            assert_eq!(out.records.len(), 1, "husk {husk_bytes:?}");
            assert_eq!(out.end, keep);
            assert_eq!(out.dropped_tail_bytes, husk_bytes.len() as u64);
            let mut w = WalWriter::open_at(&dir, out.end, FsyncPolicy::Off, 1 << 20).unwrap();
            assert!(!segment_path(&dir, 2).exists(), "husk removed");
            w.append(0, &[(2u64, 2u64)]).unwrap();
            drop(w);
            let out = read_from::<u64>(&dir, start()).unwrap();
            assert_eq!(out.records.len(), 2);
            // Reset for the next husk shape.
            let mut w = WalWriter::open_at(&dir, keep, FsyncPolicy::Off, 1 << 20).unwrap();
            w.sync().unwrap();
            drop(w);
        }
        // An *intact* newer segment must never be silently deleted.
        let mut w = WalWriter::open_at(&dir, keep, FsyncPolicy::Off, 1 << 20).unwrap();
        let pos2 = w.rotate().unwrap();
        w.append(0, &[(3u64, 3u64)]).unwrap();
        drop(w);
        assert!(matches!(
            WalWriter::open_at(&dir, keep, FsyncPolicy::Off, 1 << 20),
            Err(PersistError::Corrupt { .. })
        ));
        assert!(segment_path(&dir, pos2.segment).exists());
    }

    /// Hand-writes a v1-format segment: version byte 1, fixed-width
    /// little-endian payloads — byte-for-byte what the pre-shared-log
    /// writer produced.
    fn write_v1_segment(dir: &Path, seq: u64, batches: &[(u64, Vec<(u64, u64)>)]) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SEG_MAGIC);
        bytes.push(SEG_VERSION_V1);
        bytes.extend_from_slice(&[0u8; 3]);
        for (epoch, batch) in batches {
            let mut payload = Vec::new();
            payload.extend_from_slice(&epoch.to_le_bytes());
            payload.extend_from_slice(&(batch.len() as u32).to_le_bytes());
            for &(item, weight) in batch {
                payload.extend_from_slice(&item.to_le_bytes());
                payload.extend_from_slice(&weight.to_le_bytes());
            }
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&crate::persist::crc32c(&payload).to_le_bytes());
            bytes.extend_from_slice(&payload);
        }
        std::fs::write(segment_path(dir, seq), bytes).unwrap();
    }

    #[test]
    fn v1_segments_still_decode() {
        let dir = tmp_dir("v1-read");
        write_v1_segment(&dir, 1, &[(0, vec![(1, 10), (2, 20)]), (3, vec![(7, 70)])]);
        let out = read_from::<u64>(&dir, start()).unwrap();
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.records[0].batch, vec![(1, 10), (2, 20)]);
        assert_eq!(out.records[0].stream, 0, "v1 records decode as stream 0");
        assert_eq!(out.records[1].epoch, 3);
        assert_eq!(out.dropped_tail_bytes, 0);
    }

    #[test]
    fn resuming_a_v1_segment_rotates_to_v2() {
        let dir = tmp_dir("v1-resume");
        write_v1_segment(&dir, 1, &[(0, vec![(1, 1)])]);
        let out = read_from::<u64>(&dir, start()).unwrap();
        assert_eq!(out.records.len(), 1);
        let mut w = WalWriter::open_at(&dir, out.end, FsyncPolicy::Off, 1 << 20).unwrap();
        // The v1 segment must not receive v2 frames: the writer starts a
        // fresh segment immediately.
        assert_eq!(w.position().segment, 2);
        w.append(5, &[(9u64, 9u64)]).unwrap();
        drop(w);
        let out = read_from::<u64>(&dir, start()).unwrap();
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.records[0].batch, vec![(1, 1)]);
        assert_eq!(out.records[1].batch, vec![(9, 9)]);
        assert_eq!(out.records[1].at.segment, 2);
    }

    #[test]
    fn v1_torn_tail_is_still_dropped() {
        let dir = tmp_dir("v1-torn");
        write_v1_segment(&dir, 1, &[(0, vec![(1, 1)]), (0, vec![(2, 2), (3, 3)])]);
        let path = segment_path(&dir, 1);
        let bytes = std::fs::read(&path).unwrap();
        let keep = read_from::<u64>(&dir, start()).unwrap().records[0]
            .at
            .offset
            + (FRAME_HEADER_LEN + 8 + 4 + 16);
        for cut in keep..bytes.len() as u64 {
            std::fs::write(&path, &bytes[..cut as usize]).unwrap();
            let out = read_from::<u64>(&dir, start()).unwrap();
            assert_eq!(out.records.len(), 1, "cut at {cut}");
        }
    }

    #[test]
    fn stream_tags_and_positions_roundtrip() {
        let dir = tmp_dir("streams");
        let mut w = WalWriter::create(&dir, FsyncPolicy::Off, 1 << 20).unwrap();
        let mut buf = Vec::new();
        encode_frame(&mut buf, 2, 10, &[(100u64, 1u64)]);
        encode_frame(&mut buf, 0, 10, &[(200u64, 2u64)]);
        encode_frame(&mut buf, 7, 11, &[(300u64, 3u64), (301, 4)]);
        w.append_encoded(&buf).unwrap();
        drop(w);
        let out = read_from::<u64>(&dir, start()).unwrap();
        assert_eq!(out.records.len(), 3);
        assert_eq!(out.records[0].stream, 2);
        assert_eq!(out.records[1].stream, 0);
        assert_eq!(out.records[2].stream, 7);
        assert_eq!(out.records[2].batch, vec![(300, 3), (301, 4)]);
        // Frame positions are strictly increasing and start at the top.
        assert_eq!(out.records[0].at, start());
        assert!(out.records[0].at < out.records[1].at);
        assert!(out.records[1].at < out.records[2].at);
        assert_eq!(out.end.offset, SEGMENT_HEADER_LEN + buf.len() as u64);
    }

    #[test]
    fn compact_frames_are_smaller_than_v1() {
        // The headline wal_bytes claim: small items and weights shrink
        // by well over the 30% target.
        let batch: Vec<(u64, u64)> = (0..1_000u64).map(|i| (i % 4096, i % 17 + 1)).collect();
        let mut v2 = Vec::new();
        encode_frame(&mut v2, 0, 1, &batch);
        let v1_len = FRAME_HEADER_LEN as usize + 8 + 4 + batch.len() * 16;
        assert!(
            (v2.len() as f64) < v1_len as f64 * 0.5,
            "v2 frame {} bytes vs v1 {} bytes",
            v2.len(),
            v1_len
        );
    }

    #[test]
    fn truncation_removes_old_segments() {
        let dir = tmp_dir("truncate");
        let mut w = WalWriter::create(&dir, FsyncPolicy::Off, 16).unwrap();
        for i in 0..4u64 {
            w.append(0, &[(i, 1u64)]).unwrap();
        }
        let pos = w.rotate().unwrap();
        let before = w.total_bytes();
        let freed = w.remove_segments_below(pos.segment).unwrap();
        assert!(freed > 0);
        assert_eq!(w.total_bytes(), before - freed);
        assert_eq!(w.total_bytes(), SEGMENT_HEADER_LEN);
        let out = read_from::<u64>(&dir, pos).unwrap();
        assert!(out.records.is_empty());
    }
}
