//! Segment shipping: export a durable store's file set for replication,
//! and import shipped byte ranges into a follower's store directory.
//!
//! Replica catch-up rides entirely on the existing recovery contract:
//! a follower that holds a byte-exact prefix copy of the leader's store
//! directory — the `STORE` descriptor, the shared group-commit WAL
//! segments, and each shard's `MANIFEST` + newest checkpoint — recovers
//! to exactly the state `checkpoint ⊕ replay(WAL tail)` defines. So
//! shipping needs no new format at all, only three primitives:
//!
//! * [`export_manifest`] — the leader's shippable file list with sizes,
//!   so a follower can diff against what it already holds and fetch
//!   only tails;
//! * [`read_file_range`] — a bounded byte range of one store file (the
//!   `FETCH` opcode's backing), chunk-capped so one request cannot pin
//!   a whole segment in memory;
//! * [`import_file_range`] — write a shipped range at its offset in the
//!   follower's copy, truncating anything past it so the local file is
//!   an exact prefix of the leader's.
//!
//! Torn tails are already the recovery contract's problem (CRC-framed,
//! dropped never misdecoded), which is what makes "copy file prefixes"
//! a sound replication protocol: a follower that stops mid-ship simply
//! recovers to an earlier durable point.
//!
//! Relative paths cross the wire, so both directions validate them with
//! [`crate::cluster::wire::validate_rel_path`] before touching the
//! filesystem.

use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use super::PersistError;
use crate::cluster::wire::validate_rel_path;

/// Most bytes one [`read_file_range`] call returns; clients loop on the
/// offset until they have a file's full advertised length.
pub const MAX_SHIP_CHUNK: u64 = 1 << 22;

/// Resolves a wire-supplied relative path inside `dir`, refusing
/// traversal.
fn resolve_rel(dir: &Path, rel: &str) -> Result<PathBuf, PersistError> {
    validate_rel_path(rel).map_err(|e| PersistError::corrupt(dir, e.to_string()))?;
    Ok(dir.join(rel))
}

/// Whether a top-level store entry is shippable.
fn is_top_level_shippable(name: &str) -> bool {
    name == super::store::STORE_FILE || (name.starts_with("wal-") && name.ends_with(".seg"))
}

/// Whether a shard-directory entry is shippable.
fn is_shard_shippable(name: &str) -> bool {
    name == super::store::MANIFEST_FILE || (name.starts_with("ckpt-") && name.ends_with(".ck"))
}

/// Lists the shippable files of the store at `dir` as
/// `(store-relative path, size in bytes)`, sorted by path for
/// deterministic manifests.
///
/// Shippable means: the top-level `STORE` descriptor and `wal-*.seg`
/// segments, plus `MANIFEST` and `ckpt-*.ck` files one level down in
/// `shard-*` directories. Temp files and anything else are skipped —
/// they are not part of the recovery contract.
///
/// # Errors
/// [`PersistError::Io`] if the directory cannot be listed or a file
/// cannot be stat'ed.
pub fn export_manifest(dir: &Path) -> Result<Vec<(String, u64)>, PersistError> {
    let mut out = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| PersistError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| PersistError::io(dir, e))?;
        let name = match entry.file_name().into_string() {
            Ok(name) => name,
            Err(_) => continue,
        };
        let meta = entry
            .metadata()
            .map_err(|e| PersistError::io(&entry.path(), e))?;
        if meta.is_file() && is_top_level_shippable(&name) {
            out.push((name, meta.len()));
        } else if meta.is_dir() && name.starts_with("shard-") {
            let sub_path = entry.path();
            let sub_entries =
                fs::read_dir(&sub_path).map_err(|e| PersistError::io(&sub_path, e))?;
            for sub in sub_entries {
                let sub = sub.map_err(|e| PersistError::io(&sub_path, e))?;
                let sub_name = match sub.file_name().into_string() {
                    Ok(sub_name) => sub_name,
                    Err(_) => continue,
                };
                let sub_meta = sub
                    .metadata()
                    .map_err(|e| PersistError::io(&sub.path(), e))?;
                if sub_meta.is_file() && is_shard_shippable(&sub_name) {
                    out.push((format!("{name}/{sub_name}"), sub_meta.len()));
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Reads up to [`MAX_SHIP_CHUNK`] bytes of store file `rel` starting at
/// byte `start`. Returns an empty vector at or past end-of-file — the
/// client's signal that it holds the full file.
///
/// # Errors
/// [`PersistError::Corrupt`] for an invalid relative path,
/// [`PersistError::Io`] if the file cannot be opened or read.
pub fn read_file_range(dir: &Path, rel: &str, start: u64) -> Result<Vec<u8>, PersistError> {
    let path = resolve_rel(dir, rel)?;
    let mut file = fs::File::open(&path).map_err(|e| PersistError::io(&path, e))?;
    let total = file
        .metadata()
        .map_err(|e| PersistError::io(&path, e))?
        .len();
    let want = total.saturating_sub(start).min(MAX_SHIP_CHUNK);
    if want == 0 {
        return Ok(Vec::new());
    }
    file.seek(SeekFrom::Start(start))
        .map_err(|e| PersistError::io(&path, e))?;
    let mut buf = Vec::new();
    file.take(want)
        .read_to_end(&mut buf)
        .map_err(|e| PersistError::io(&path, e))?;
    Ok(buf)
}

/// Writes `bytes` at byte `start` of store file `rel` under `dir`,
/// then truncates the file to end exactly there — so after the call the
/// local file is a byte-exact prefix copy of the leader's file up to
/// `start + bytes.len()`.
///
/// Refuses to leave a hole: `start` must not exceed the current local
/// length (a follower always ships contiguously from its own length, or
/// from zero after detecting a leader-side truncation).
///
/// # Errors
/// [`PersistError::Corrupt`] for an invalid path or a gap,
/// [`PersistError::Io`] on filesystem failure.
pub fn import_file_range(
    dir: &Path,
    rel: &str,
    start: u64,
    bytes: &[u8],
) -> Result<(), PersistError> {
    let path = resolve_rel(dir, rel)?;
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).map_err(|e| PersistError::io(parent, e))?;
    }
    let mut file = fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(&path)
        .map_err(|e| PersistError::io(&path, e))?;
    let local = file
        .metadata()
        .map_err(|e| PersistError::io(&path, e))?
        .len();
    if start > local {
        return Err(PersistError::corrupt(
            &path,
            format!("shipped range starts at {start} but local file holds {local} bytes"),
        ));
    }
    let added = u64::try_from(bytes.len())
        .map_err(|_| PersistError::corrupt(&path, "shipped range too large"))?;
    let end = start
        .checked_add(added)
        .ok_or_else(|| PersistError::corrupt(&path, "shipped range overflows file offset"))?;
    file.seek(SeekFrom::Start(start))
        .map_err(|e| PersistError::io(&path, e))?;
    file.write_all(bytes)
        .map_err(|e| PersistError::io(&path, e))?;
    file.set_len(end).map_err(|e| PersistError::io(&path, e))?;
    file.sync_all().map_err(|e| PersistError::io(&path, e))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sf-ship-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_lists_only_shippable_files() {
        let dir = tmp_dir("manifest");
        fs::write(dir.join("STORE"), b"store").unwrap();
        fs::write(dir.join("wal-0000000000000001.seg"), b"seg-one").unwrap();
        fs::write(dir.join("wal-0000000000000001.seg.tmp"), b"junk").unwrap();
        fs::write(dir.join("stray.txt"), b"junk").unwrap();
        let shard = dir.join("shard-0000");
        fs::create_dir_all(&shard).unwrap();
        fs::write(shard.join("MANIFEST"), b"manifest!").unwrap();
        fs::write(shard.join("ckpt-0000000000000007.ck"), b"ck").unwrap();
        fs::write(shard.join("ckpt-7.tmp"), b"junk").unwrap();
        let listed = export_manifest(&dir).unwrap();
        assert_eq!(
            listed,
            vec![
                ("STORE".to_string(), 5),
                ("shard-0000/MANIFEST".to_string(), 9),
                ("shard-0000/ckpt-0000000000000007.ck".to_string(), 2),
                ("wal-0000000000000001.seg".to_string(), 7),
            ]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn range_read_is_chunked_and_offset_correct() {
        let dir = tmp_dir("read");
        fs::write(dir.join("STORE"), b"abcdefghij").unwrap();
        assert_eq!(read_file_range(&dir, "STORE", 0).unwrap(), b"abcdefghij");
        assert_eq!(read_file_range(&dir, "STORE", 4).unwrap(), b"efghij");
        assert_eq!(read_file_range(&dir, "STORE", 10).unwrap(), b"");
        assert_eq!(read_file_range(&dir, "STORE", 999).unwrap(), b"");
        assert!(read_file_range(&dir, "../STORE", 0).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn import_builds_exact_prefix_copies() {
        let dir = tmp_dir("import");
        import_file_range(&dir, "shard-0001/MANIFEST", 0, b"hello").unwrap();
        import_file_range(&dir, "shard-0001/MANIFEST", 5, b" world").unwrap();
        assert_eq!(
            fs::read(dir.join("shard-0001/MANIFEST")).unwrap(),
            b"hello world"
        );
        // Re-shipping from an earlier offset truncates the stale tail.
        import_file_range(&dir, "shard-0001/MANIFEST", 5, b"!").unwrap();
        assert_eq!(
            fs::read(dir.join("shard-0001/MANIFEST")).unwrap(),
            b"hello!"
        );
        // Gaps are refused.
        assert!(import_file_range(&dir, "shard-0001/MANIFEST", 100, b"x").is_err());
        // Traversal is refused.
        assert!(import_file_range(&dir, "../evil", 0, b"x").is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ship_loop_replicates_a_directory() {
        let leader = tmp_dir("leader");
        let follower = tmp_dir("follower");
        let big = vec![7u8; (MAX_SHIP_CHUNK as usize) + 1234];
        fs::write(leader.join("wal-0000000000000002.seg"), &big).unwrap();
        fs::write(leader.join("STORE"), b"hdr").unwrap();
        for (rel, size) in export_manifest(&leader).unwrap() {
            let mut have = 0u64;
            while have < size {
                let chunk = read_file_range(&leader, &rel, have).unwrap();
                assert!(!chunk.is_empty(), "advertised bytes must be fetchable");
                import_file_range(&follower, &rel, have, &chunk).unwrap();
                have += chunk.len() as u64;
            }
        }
        assert_eq!(
            fs::read(follower.join("wal-0000000000000002.seg")).unwrap(),
            big
        );
        assert_eq!(fs::read(follower.join("STORE")).unwrap(), b"hdr");
        fs::remove_dir_all(&leader).unwrap();
        fs::remove_dir_all(&follower).unwrap();
    }
}
