//! Group-commit front end over the segmented WAL.
//!
//! Ingest threads never touch the file: they encode their frame
//! (`encode_frame`), hand the bytes to
//! [`GroupCommitWal::append_frame`], and return. A dedicated log-writer
//! thread drains the staging buffer with one `write_all` (and, per
//! policy, one fsync) per flush window, so frames from every shard of a
//! store coalesce into a handful of syscalls. Double buffering — the
//! staging `Vec` swaps with the writer's scratch `Vec` — means neither
//! side allocates in steady state and producers only ever contend on a
//! short critical section.
//!
//! ## Durability semantics
//!
//! * [`FsyncPolicy::Always`]: `append_frame` blocks until the frame's
//!   flush window has been fsynced — acknowledged still means durable,
//!   but every waiter of a window shares one fsync (that *is* the group
//!   commit).
//! * [`FsyncPolicy::EveryBytes`]/[`FsyncPolicy::Off`]: `append_frame`
//!   returns as soon as the bytes are staged. Log-before-apply becomes
//!   stage-before-apply, which preserves the recovery contract: the
//!   staging queue is FIFO, so the log on disk is always a prefix of
//!   what was acknowledged, and a crash loses exactly a torn tail.
//!
//! Errors on the writer thread are sticky: once a flush fails, every
//! subsequent (and currently blocked) `append_frame` fails, so a durable
//! shard can keep its panic-on-persistence-failure contract.
//!
//! ## Checkpoint rounds
//!
//! A store-wide checkpoint needs one log rotation that cleanly splits
//! "covered by this round's checkpoints" from "to be replayed".
//! [`CheckpointRound`] rendezvouses every shard: the last shard to
//! arrive performs the rotation (behind a full flush barrier) while the
//! rest wait, each shard then writes its own checkpoint + manifest
//! against the returned position, and the last shard to finish truncates
//! the log below it. Because every participating shard is blocked from
//! arrival to departure, no new frames can slip in front of the rotation
//! point uncovered.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use super::wal::{WalPosition, WalWriter};
use super::{FsyncPolicy, PersistError};
use crate::sanitize;

/// Backpressure threshold: producers stall once this many staged bytes
/// are waiting for the writer thread. This bounds memory, not
/// durability — under the lazy fsync policies the acknowledged-but-not-
/// durable window already exists and is closed by `sync_all`, so the
/// mark is sized to ride out multi-second bursts above disk bandwidth
/// (compact frames run ~7 bytes per update) before smoothing ingest
/// down to the writer's drain rate.
const STAGING_HIGH_WATER: usize = 32 << 20;

/// How long a checkpoint participant waits for its peers before
/// concluding one of them died (a worker panic would otherwise turn
/// into a silent hang).
const ROUND_STALL_TIMEOUT: Duration = Duration::from_secs(60);

/// Counters exposed on the serving layer's `STATS` verb.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupWalStats {
    /// Flush windows the writer thread has drained (one `write_all`
    /// syscall each).
    pub flush_count: u64,
    /// Flush windows that coalesced more than one frame.
    pub group_commit_batches: u64,
    /// Frames appended to the log.
    pub frames: u64,
    /// fsyncs issued (policy-driven, rotations, and barriers).
    pub fsync_count: u64,
}

impl GroupWalStats {
    /// Mean frames per fsync — the observable group-commit win.
    pub fn avg_frames_per_fsync(&self) -> f64 {
        if self.fsync_count == 0 {
            0.0
        } else {
            self.frames as f64 / self.fsync_count as f64
        }
    }
}

struct Queue {
    staging: Vec<u8>,
    staging_frames: u64,
    /// Frames handed to `append_frame` (ticket counter).
    enqueued: u64,
    /// Frames the writer thread has written to the file.
    flushed: u64,
    /// Frames covered by an fsync.
    synced: u64,
    stop: bool,
    /// Sticky failure detail; set once, never cleared.
    failed: Option<String>,
}

struct Inner {
    queue: Mutex<Queue>,
    /// Writer-thread wakeup: staged bytes or stop.
    work: Condvar,
    /// Producer wakeup: space freed, frames flushed/synced, or failure.
    done: Condvar,
    sink: Mutex<WalWriter>,
    fsync: FsyncPolicy,
    /// Mirror of the sink's `total_bytes`, readable without a lock.
    live_bytes: AtomicU64,
    flush_count: AtomicU64,
    group_commit_batches: AtomicU64,
    frames: AtomicU64,
    fsync_count: AtomicU64,
}

impl Inner {
    fn fail(queue: &mut Queue, error: &PersistError) {
        if queue.failed.is_none() {
            queue.failed = Some(error.to_string());
        }
    }

    fn failed_err(queue: &Queue) -> Option<PersistError> {
        queue.failed.as_ref().map(|msg| {
            PersistError::corrupt(
                std::path::Path::new("<group-commit wal>"),
                format!("log writer failed: {msg}"),
            )
        })
    }
}

/// The shared, asynchronously flushed log of one store. Cheap to share
/// (`Arc`); dropped last, it joins the writer thread.
pub struct GroupCommitWal {
    inner: Arc<Inner>,
    writer: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for GroupCommitWal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCommitWal")
            .field("live_bytes", &self.inner.live_bytes.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl GroupCommitWal {
    /// Wraps an opened [`WalWriter`] and starts the log-writer thread.
    /// `fsync` must be the policy the writer was opened with.
    pub fn start(writer: WalWriter, fsync: FsyncPolicy) -> Self {
        let inner = Arc::new(Inner {
            queue: Mutex::new(Queue {
                staging: Vec::new(),
                staging_frames: 0,
                enqueued: 0,
                flushed: 0,
                synced: 0,
                stop: false,
                failed: None,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            live_bytes: AtomicU64::new(writer.total_bytes()),
            sink: Mutex::new(writer),
            fsync,
            flush_count: AtomicU64::new(0),
            group_commit_batches: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            fsync_count: AtomicU64::new(0),
        });
        let thread_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("sf-wal-writer".into())
            .spawn(move || writer_loop(&thread_inner))
            .expect("spawn wal writer thread");
        GroupCommitWal {
            inner,
            writer: Mutex::new(Some(handle)),
        }
    }

    /// Stages one encoded frame (the complete bytes produced by
    /// `encode_frame`). Blocks for backpressure past the
    /// staging high-water mark, and — under [`FsyncPolicy::Always`] —
    /// until the frame is fsynced.
    pub fn append_frame(&self, frame: &[u8]) -> Result<(), PersistError> {
        debug_assert!(!frame.is_empty());
        let inner = &*self.inner;
        let _rank = sanitize::rank_acquire(sanitize::rank::WAL_QUEUE, "wal staging queue");
        let mut queue = inner.queue.lock().expect("wal queue poisoned");
        while queue.failed.is_none() && !queue.stop && queue.staging.len() >= STAGING_HIGH_WATER {
            queue = inner.done.wait(queue).expect("wal queue poisoned");
        }
        if let Some(err) = Inner::failed_err(&queue) {
            return Err(err);
        }
        if queue.stop {
            return Err(PersistError::corrupt(
                std::path::Path::new("<group-commit wal>"),
                "append after close",
            ));
        }
        queue.staging.extend_from_slice(frame);
        queue.staging_frames += 1;
        queue.enqueued += 1;
        let ticket = queue.enqueued;
        inner.work.notify_one();
        if matches!(inner.fsync, FsyncPolicy::Always) {
            while queue.failed.is_none() && queue.synced < ticket {
                queue = inner.done.wait(queue).expect("wal queue poisoned");
            }
            if let Some(err) = Inner::failed_err(&queue) {
                return Err(err);
            }
        }
        Ok(())
    }

    /// Waits until everything staged is on the file, fsyncs it, and
    /// rotates to a fresh segment. Returns the new segment's first
    /// position — the `wal_start` a checkpoint round's manifests record.
    /// New appends are held off for the (short) duration of the rotate.
    pub fn rotate_for_checkpoint(&self) -> Result<WalPosition, PersistError> {
        let inner = &*self.inner;
        let _q_rank = sanitize::rank_acquire(sanitize::rank::WAL_QUEUE, "wal staging queue");
        let mut queue = inner.queue.lock().expect("wal queue poisoned");
        while queue.failed.is_none() && queue.flushed < queue.enqueued {
            queue = inner.done.wait(queue).expect("wal queue poisoned");
        }
        if let Some(err) = Inner::failed_err(&queue) {
            return Err(err);
        }
        // Holding the queue lock here keeps producers out while the
        // rotation point is fixed.
        let _s_rank = sanitize::rank_acquire(sanitize::rank::WAL_SINK, "wal sink");
        let mut sink = inner.sink.lock().expect("wal sink poisoned");
        let pos = match sink.rotate() {
            Ok(pos) => pos,
            Err(e) => {
                Inner::fail(&mut queue, &e);
                inner.done.notify_all();
                return Err(e);
            }
        };
        queue.synced = queue.flushed;
        inner.fsync_count.fetch_add(1, Ordering::Relaxed);
        inner
            .live_bytes
            .store(sink.total_bytes(), Ordering::Relaxed);
        inner.done.notify_all();
        Ok(pos)
    }

    /// Forces everything appended so far onto stable storage.
    pub fn sync_all(&self) -> Result<(), PersistError> {
        let inner = &*self.inner;
        let _q_rank = sanitize::rank_acquire(sanitize::rank::WAL_QUEUE, "wal staging queue");
        let mut queue = inner.queue.lock().expect("wal queue poisoned");
        while queue.failed.is_none() && queue.flushed < queue.enqueued {
            queue = inner.done.wait(queue).expect("wal queue poisoned");
        }
        if let Some(err) = Inner::failed_err(&queue) {
            return Err(err);
        }
        let _s_rank = sanitize::rank_acquire(sanitize::rank::WAL_SINK, "wal sink");
        let mut sink = inner.sink.lock().expect("wal sink poisoned");
        match sink.sync() {
            Ok(()) => {
                queue.synced = queue.flushed;
                inner.fsync_count.fetch_add(1, Ordering::Relaxed);
                inner.done.notify_all();
                Ok(())
            }
            Err(e) => {
                Inner::fail(&mut queue, &e);
                inner.done.notify_all();
                Err(e)
            }
        }
    }

    /// Deletes every segment below `seq` (checkpoint truncation).
    pub fn remove_segments_below(&self, seq: u64) -> Result<u64, PersistError> {
        let _rank = sanitize::rank_acquire(sanitize::rank::WAL_SINK, "wal sink");
        let mut sink = self.inner.sink.lock().expect("wal sink poisoned");
        let freed = sink.remove_segments_below(seq)?;
        self.inner
            .live_bytes
            .store(sink.total_bytes(), Ordering::Relaxed);
        Ok(freed)
    }

    /// The position the next flushed frame lands at. Only meaningful
    /// when nothing is staged (e.g. right after open or a rotation).
    pub fn position(&self) -> WalPosition {
        let _rank = sanitize::rank_acquire(sanitize::rank::WAL_SINK, "wal sink");
        self.inner
            .sink
            .lock()
            .expect("wal sink poisoned")
            .position()
    }

    /// Total on-disk bytes across retained segments (lock-free gauge,
    /// updated per flush).
    pub fn total_bytes(&self) -> u64 {
        self.inner.live_bytes.load(Ordering::Relaxed)
    }

    /// Group-commit counters since this log was opened.
    pub fn stats(&self) -> GroupWalStats {
        GroupWalStats {
            flush_count: self.inner.flush_count.load(Ordering::Relaxed),
            group_commit_batches: self.inner.group_commit_batches.load(Ordering::Relaxed),
            frames: self.inner.frames.load(Ordering::Relaxed),
            fsync_count: self.inner.fsync_count.load(Ordering::Relaxed),
        }
    }
}

impl Drop for GroupCommitWal {
    fn drop(&mut self) {
        {
            let mut queue = match self.inner.queue.lock() {
                Ok(queue) => queue,
                Err(poisoned) => poisoned.into_inner(),
            };
            queue.stop = true;
            self.inner.work.notify_all();
            self.inner.done.notify_all();
        }
        if let Some(handle) = self.writer.lock().expect("writer handle").take() {
            let _ = handle.join();
        }
    }
}

fn writer_loop(inner: &Inner) {
    let mut scratch: Vec<u8> = Vec::new();
    let mut q_rank = sanitize::rank_acquire(sanitize::rank::WAL_QUEUE, "wal staging queue");
    let mut queue = inner.queue.lock().expect("wal queue poisoned");
    loop {
        if queue.failed.is_some() {
            // Sticky failure: park until told to stop so producers keep
            // getting a clean error instead of a hang.
            if queue.stop {
                return;
            }
            queue = inner.work.wait(queue).expect("wal queue poisoned");
            continue;
        }
        if queue.staging.is_empty() {
            if queue.stop {
                break;
            }
            queue = inner.work.wait(queue).expect("wal queue poisoned");
            continue;
        }
        // Double buffer: swap the staged bytes out and release the lock
        // before touching the file, so producers stage the next window
        // while this one is being written.
        std::mem::swap(&mut queue.staging, &mut scratch);
        let frames = queue.staging_frames;
        queue.staging_frames = 0;
        drop(queue);
        drop(q_rank);
        inner.done.notify_all();

        let s_rank = sanitize::rank_acquire(sanitize::rank::WAL_SINK, "wal sink");
        let mut sink = inner.sink.lock().expect("wal sink poisoned");
        let result = sink.append_encoded(&scratch);
        let live = sink.total_bytes();
        drop(sink);
        drop(s_rank);
        scratch.clear();

        q_rank = sanitize::rank_acquire(sanitize::rank::WAL_QUEUE, "wal staging queue");
        queue = inner.queue.lock().expect("wal queue poisoned");
        match result {
            Ok(synced) => {
                queue.flushed += frames;
                inner.live_bytes.store(live, Ordering::Relaxed);
                inner.flush_count.fetch_add(1, Ordering::Relaxed);
                inner.frames.fetch_add(frames, Ordering::Relaxed);
                if frames > 1 {
                    inner.group_commit_batches.fetch_add(1, Ordering::Relaxed);
                }
                if synced {
                    queue.synced = queue.flushed;
                    inner.fsync_count.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) => {
                Inner::fail(&mut queue, &e);
            }
        }
        inner.done.notify_all();
    }
    // Clean stop with everything flushed: make the tail durable so a
    // graceful close behaves like an explicit sync. The sink is released
    // before retaking the queue: taking the queue (rank 40) while
    // holding the sink (rank 50) would invert the lock order every
    // other path follows.
    drop(queue);
    drop(q_rank);
    let sync_ok = {
        let _s_rank = sanitize::rank_acquire(sanitize::rank::WAL_SINK, "wal sink");
        let mut sink = inner.sink.lock().expect("wal sink poisoned");
        sink.sync().is_ok()
    };
    if sync_ok {
        let _q_rank = sanitize::rank_acquire(sanitize::rank::WAL_QUEUE, "wal staging queue");
        let mut queue = inner.queue.lock().expect("wal queue poisoned");
        queue.synced = queue.flushed;
        inner.fsync_count.fetch_add(1, Ordering::Relaxed);
        inner.done.notify_all();
    }
}

/// Rendezvous for store-wide checkpoint rounds over one shared log; see
/// the module docs for the protocol.
#[derive(Debug)]
pub struct CheckpointRound {
    shards: usize,
    state: Mutex<RoundState>,
    cv: Condvar,
}

#[derive(Debug)]
struct RoundState {
    arrived: usize,
    departed: usize,
    generation: u64,
    failures: usize,
    outcome: Option<Result<WalPosition, String>>,
}

impl CheckpointRound {
    /// A round coordinator for `shards` participants (≥ 1).
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a round needs at least one shard");
        CheckpointRound {
            shards,
            state: Mutex::new(RoundState {
                arrived: 0,
                departed: 0,
                generation: 0,
                failures: 0,
                outcome: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until all `shards` participants have arrived; the last
    /// arrival runs `rotate` (one rotation per round) and its result is
    /// shared with everyone.
    pub fn arrive(
        &self,
        rotate: impl FnOnce() -> Result<WalPosition, PersistError>,
    ) -> Result<WalPosition, PersistError> {
        let _rank = sanitize::rank_acquire(sanitize::rank::ROUND, "checkpoint round");
        let mut state = self.state.lock().expect("round poisoned");
        let generation = state.generation;
        state.arrived += 1;
        if state.arrived == self.shards {
            state.outcome = Some(rotate().map_err(|e| e.to_string()));
            state.generation += 1;
            self.cv.notify_all();
        } else {
            while state.generation == generation {
                let (next, timeout) = self
                    .cv
                    .wait_timeout(state, ROUND_STALL_TIMEOUT)
                    .expect("round poisoned");
                state = next;
                if timeout.timed_out() && state.generation == generation {
                    panic!(
                        "checkpoint round stalled: {} of {} shards arrived",
                        state.arrived, self.shards
                    );
                }
            }
        }
        match state.outcome.as_ref().expect("set by last arrival") {
            Ok(pos) => Ok(*pos),
            Err(msg) => Err(PersistError::corrupt(
                std::path::Path::new("<checkpoint round>"),
                format!("rotation failed: {msg}"),
            )),
        }
    }

    /// Marks this participant's checkpoint + manifest as written
    /// (`success: true`) or abandoned after an error (`success: false`).
    /// Returns `true` only for the last participant of a round in which
    /// *every* shard succeeded — that shard then truncates the log. A
    /// round with any failure truncates nothing, because the failed
    /// shard's manifest still points into the pre-rotation log.
    pub fn depart(&self, success: bool) -> bool {
        let _rank = sanitize::rank_acquire(sanitize::rank::ROUND, "checkpoint round");
        let mut state = self.state.lock().expect("round poisoned");
        if !success {
            state.failures += 1;
        }
        state.departed += 1;
        let last = state.departed == self.shards;
        let all_ok = state.failures == 0;
        if last {
            state.arrived = 0;
            state.departed = 0;
            state.failures = 0;
            state.outcome = None;
        }
        last && all_ok
    }
}

#[cfg(test)]
mod tests {
    use super::super::wal;
    use super::*;
    use std::path::{Path, PathBuf};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("streamfreq-group-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn start_pos() -> WalPosition {
        WalPosition {
            segment: 1,
            offset: wal::SEGMENT_HEADER_LEN,
        }
    }

    fn open(dir: &Path, fsync: FsyncPolicy) -> GroupCommitWal {
        let writer = wal::WalWriter::create(dir, fsync, 1 << 20).unwrap();
        GroupCommitWal::start(writer, fsync)
    }

    #[test]
    fn concurrent_producers_coalesce_and_replay_in_fifo_order() {
        let dir = tmp_dir("coalesce");
        let log = Arc::new(open(&dir, FsyncPolicy::Off));
        let mut handles = Vec::new();
        for stream in 0..4u32 {
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                let mut frame = Vec::new();
                for i in 0..200u64 {
                    frame.clear();
                    wal::encode_frame(&mut frame, stream, 0, &[(i, i + 1)]);
                    log.append_frame(&frame).unwrap();
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        log.sync_all().unwrap();
        let stats = log.stats();
        assert_eq!(stats.frames, 800);
        assert!(stats.flush_count <= stats.frames);
        drop(Arc::try_unwrap(log).expect("sole owner"));
        let out = wal::read_from::<u64>(&dir, start_pos()).unwrap();
        assert_eq!(out.records.len(), 800);
        // Per-stream FIFO: each producer's items appear in append order.
        for stream in 0..4u32 {
            let items: Vec<u64> = out
                .records
                .iter()
                .filter(|r| r.stream == stream)
                .map(|r| r.batch[0].0)
                .collect();
            let expected: Vec<u64> = (0..200).collect();
            assert_eq!(items, expected, "stream {stream} reordered");
        }
    }

    #[test]
    fn always_policy_means_acknowledged_is_durable() {
        let dir = tmp_dir("always");
        let log = open(&dir, FsyncPolicy::Always);
        let mut frame = Vec::new();
        for i in 0..20u64 {
            frame.clear();
            wal::encode_frame(&mut frame, 0, 0, &[(i, 1)]);
            log.append_frame(&frame).unwrap();
        }
        let stats = log.stats();
        assert_eq!(stats.frames, 20);
        assert!(stats.fsync_count >= 1, "Always must fsync");
        // Every acknowledged frame is already readable on disk, without
        // closing the log.
        let out = wal::read_from::<u64>(&dir, start_pos()).unwrap();
        assert_eq!(out.records.len(), 20);
    }

    #[test]
    fn rotation_barrier_flushes_everything_first() {
        let dir = tmp_dir("rotate-barrier");
        let log = open(&dir, FsyncPolicy::Off);
        let mut frame = Vec::new();
        for i in 0..50u64 {
            frame.clear();
            wal::encode_frame(&mut frame, 1, 7, &[(i, 1)]);
            log.append_frame(&frame).unwrap();
        }
        let pos = log.rotate_for_checkpoint().unwrap();
        assert!(pos.segment >= 2);
        let out = wal::read_from::<u64>(&dir, start_pos()).unwrap();
        assert_eq!(out.records.len(), 50, "barrier lost staged frames");
        assert!(out.records.iter().all(|r| r.at < pos));
        let freed = log.remove_segments_below(pos.segment).unwrap();
        assert!(freed > 0);
        let out = wal::read_from::<u64>(&dir, pos).unwrap();
        assert!(out.records.is_empty());
    }

    #[test]
    fn writer_failure_is_sticky() {
        let dir = tmp_dir("sticky");
        let log = open(&dir, FsyncPolicy::Off);
        // Sabotage: make the live segment unwritable by replacing the
        // directory out from under the writer... simplest portable
        // sabotage is removing the directory so rotation/sync fails.
        let mut frame = Vec::new();
        wal::encode_frame(&mut frame, 0, 0, &[(1u64, 1u64)]);
        log.append_frame(&frame).unwrap();
        log.sync_all().unwrap();
        // Force a rotation failure: drop the directory, then rotate.
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(log.rotate_for_checkpoint().is_err());
        assert!(
            log.append_frame(&frame).is_err(),
            "appends after a writer failure must fail loudly"
        );
    }

    #[test]
    fn checkpoint_round_rotates_once_for_all_shards() {
        let dir = tmp_dir("round");
        let log = Arc::new(open(&dir, FsyncPolicy::Off));
        let round = Arc::new(CheckpointRound::new(3));
        let rotations = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for stream in 0..3u32 {
            let log = Arc::clone(&log);
            let round = Arc::clone(&round);
            let rotations = Arc::clone(&rotations);
            handles.push(std::thread::spawn(move || {
                let mut frame = Vec::new();
                wal::encode_frame(&mut frame, stream, 0, &[(u64::from(stream), 1u64)]);
                log.append_frame(&frame).unwrap();
                let pos = round
                    .arrive(|| {
                        rotations.fetch_add(1, Ordering::Relaxed);
                        log.rotate_for_checkpoint()
                    })
                    .unwrap();
                if round.depart(true) {
                    log.remove_segments_below(pos.segment).unwrap();
                }
                pos
            }));
        }
        let positions: Vec<WalPosition> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            rotations.load(Ordering::Relaxed),
            1,
            "one rotation per round"
        );
        assert!(positions.windows(2).all(|w| w[0] == w[1]));
        let out = wal::read_from::<u64>(&dir, positions[0]).unwrap();
        assert!(out.records.is_empty(), "round left uncovered records");
    }
}
