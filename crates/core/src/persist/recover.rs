//! Crash recovery: turn a store directory back into a live engine.
//!
//! Recovery is manifest-driven:
//!
//! 1. read `MANIFEST` (its CRC protects the pointer itself);
//! 2. load the checkpoint it names, if any — slot-exact, so the engine
//!    resumes in the precise state it was checkpointed in;
//! 3. replay the WAL from the manifest's position through the normal
//!    [`update_batch`](crate::SketchEngine::update_batch) path, stopping
//!    cleanly at a torn tail (detected by CRC, dropped, never
//!    misdecoded);
//! 4. truncate the torn bytes and reopen the log for appending.
//!
//! Every degenerate layout recovers deliberately:
//!
//! | on disk | outcome |
//! |---|---|
//! | nothing | fresh store (manifest written, WAL segment 1 created) |
//! | manifest, no checkpoint, empty WAL | fresh engine from the recorded config |
//! | manifest, no checkpoint, WAL records | **WAL-only**: fresh engine + full replay |
//! | manifest + checkpoint, empty tail | checkpoint state verbatim |
//! | manifest + checkpoint + tail | checkpoint ⊕ replay |
//! | WAL segments but no manifest | tolerant full replay from the oldest segment |
//! | manifest → missing checkpoint/segment | clean [`PersistError::Corrupt`], never a panic |

use std::path::Path;

use crate::engine::{SketchEngine, SketchKey};
use crate::item_codec::ItemCodec;

use super::store::{read_manifest, write_manifest, DurabilityOptions, DurableSketch, Manifest};
use super::wal::{self, WalPosition, WalWriter, SEGMENT_HEADER_LEN};
use super::{EngineConfig, PersistError};

/// Where a recovered engine's state came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoverySource {
    /// No prior state: a new store was created.
    Fresh,
    /// No checkpoint yet; the whole WAL was replayed into a fresh engine.
    WalOnly,
    /// A checkpoint with an empty WAL tail.
    CheckpointOnly,
    /// A checkpoint plus a replayed WAL tail.
    CheckpointAndWal,
}

/// What recovery did, for reporting and tests.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryReport {
    /// Which of the recovery paths ran.
    pub source: RecoverySource,
    /// Epoch of the loaded checkpoint (0 if none).
    pub checkpoint_epoch: u64,
    /// WAL records (batches) replayed.
    pub records_replayed: u64,
    /// Individual weighted updates replayed.
    pub updates_replayed: u64,
    /// Torn/corrupt tail bytes dropped from the last segment.
    pub dropped_tail_bytes: u64,
}

impl RecoveryReport {
    fn fresh() -> Self {
        RecoveryReport {
            source: RecoverySource::Fresh,
            checkpoint_epoch: 0,
            records_replayed: 0,
            updates_replayed: 0,
            dropped_tail_bytes: 0,
        }
    }
}

/// Recovered state plus the log position appending should resume at.
struct LoadedState<K: SketchKey> {
    engine: SketchEngine<K>,
    config: EngineConfig,
    epoch: u64,
    wal_end: WalPosition,
    report: RecoveryReport,
}

/// Core recovery: rebuilds the engine from an existing store directory
/// without mutating anything on disk.
fn load_state<K: SketchKey + ItemCodec>(
    dir: &Path,
    manifest: Option<Manifest>,
) -> Result<LoadedState<K>, PersistError> {
    let manifest = match manifest {
        Some(m) => m,
        None => {
            // No manifest: tolerate a store that lost it (or predates
            // it) by replaying whatever segments exist — but only if the
            // caller-supplied config path provides one, which
            // `open_sketch` handles; reaching here without a manifest is
            // a bug, so fail cleanly.
            return Err(PersistError::corrupt(dir, "store has no manifest"));
        }
    };
    let (mut engine, ckpt_epoch) = match &manifest.checkpoint {
        Some(name) => {
            let (engine, epoch) = super::checkpoint::read_checkpoint::<K>(&dir.join(name))?;
            if epoch != manifest.epoch {
                return Err(PersistError::corrupt(
                    dir,
                    format!(
                        "manifest epoch {} disagrees with checkpoint epoch {epoch}",
                        manifest.epoch
                    ),
                ));
            }
            (engine, epoch)
        }
        None => (manifest.config.build_engine::<K>()?, 0),
    };
    let outcome = wal::read_from::<K>(dir, manifest.wal_start)?;
    let mut records = 0u64;
    let mut updates = 0u64;
    for record in &outcome.records {
        records += 1;
        updates += record.batch.len() as u64;
        engine.update_batch(&record.batch);
    }
    let source = match (manifest.checkpoint.is_some(), records > 0) {
        (false, false) => RecoverySource::Fresh,
        (false, true) => RecoverySource::WalOnly,
        (true, false) => RecoverySource::CheckpointOnly,
        (true, true) => RecoverySource::CheckpointAndWal,
    };
    Ok(LoadedState {
        engine,
        config: manifest.config,
        epoch: manifest.epoch,
        wal_end: outcome.end,
        report: RecoveryReport {
            source,
            checkpoint_epoch: ckpt_epoch,
            records_replayed: records,
            updates_replayed: updates,
            dropped_tail_bytes: outcome.dropped_tail_bytes,
        },
    })
}

/// Opens (recovering) or creates the durable sketch in `dir`. Backs
/// [`DurableSketch::open`]; see there for the error contract.
pub(crate) fn open_sketch<K: SketchKey + ItemCodec>(
    dir: &Path,
    config: EngineConfig,
    opts: DurabilityOptions,
) -> Result<(DurableSketch<K>, RecoveryReport), PersistError> {
    std::fs::create_dir_all(dir).map_err(|e| PersistError::io(dir, e))?;
    let manifest = read_manifest(dir)?;
    let has_segments = !wal::list_segments(dir)?.is_empty();
    if manifest.is_none() && !has_segments {
        // Brand-new store.
        let engine = config.build_engine::<K>()?;
        let wal = WalWriter::create(dir, opts.fsync, opts.segment_bytes)?;
        write_manifest(
            dir,
            &Manifest {
                epoch: 0,
                config,
                checkpoint: None,
                wal_start: wal.position(),
            },
        )?;
        return Ok((
            DurableSketch {
                engine,
                wal,
                dir: dir.to_path_buf(),
                epoch: 0,
                config,
            },
            RecoveryReport::fresh(),
        ));
    }
    // A store missing only its manifest (deleted out-of-band) still
    // recovers: synthesize a manifest replaying every segment from the
    // oldest with the caller's config.
    let manifest = match manifest {
        Some(m) => {
            if m.config != config {
                return Err(PersistError::ConfigMismatch(format!(
                    "store in {} was created with {:?}, requested {:?}",
                    dir.display(),
                    m.config,
                    config
                )));
            }
            m
        }
        None => {
            // Tolerating a lost manifest is only safe when the WAL is
            // the complete history. A checkpoint file on disk means the
            // WAL prefix it covers was truncated — replaying the tail
            // alone would silently reconstruct (and then persist) a
            // fraction of the stream, so refuse loudly instead.
            if let Some(ckpt) = std::fs::read_dir(dir)
                .map_err(|e| PersistError::io(dir, e))?
                .filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .find(|name| name.starts_with("ckpt-") && name.ends_with(".ck"))
            {
                return Err(PersistError::corrupt(
                    dir,
                    format!(
                        "manifest is missing but checkpoint {ckpt} exists; \
                         recovering from the WAL alone would lose the \
                         checkpointed prefix (restore or rebuild MANIFEST)"
                    ),
                ));
            }
            let oldest = wal::list_segments(dir)?
                .first()
                .map(|&(seq, _)| seq)
                .expect("has_segments checked above");
            Manifest {
                epoch: 0,
                config,
                checkpoint: None,
                wal_start: WalPosition {
                    segment: oldest,
                    offset: SEGMENT_HEADER_LEN,
                },
            }
        }
    };
    let state = load_state::<K>(dir, Some(manifest.clone()))?;
    let wal = WalWriter::open_at(dir, state.wal_end, opts.fsync, opts.segment_bytes)?;
    if read_manifest(dir)?.is_none() {
        write_manifest(dir, &manifest)?;
    }
    Ok((
        DurableSketch {
            engine: state.engine,
            wal,
            dir: dir.to_path_buf(),
            epoch: state.epoch,
            config: state.config,
        },
        state.report,
    ))
}

/// Read-only recovery: rebuilds the engine state from `dir` using the
/// configuration recorded in its manifest, touching nothing on disk.
/// This is what offline tooling (`streamfreq recover`, `streamfreq
/// info`) uses — no caller-supplied configuration needed.
///
/// # Errors
/// [`PersistError::Corrupt`] for a missing/invalid manifest or damaged
/// state; I/O errors otherwise.
pub fn recover_engine_readonly<K: SketchKey + ItemCodec>(
    dir: &Path,
) -> Result<(SketchEngine<K>, u64, RecoveryReport), PersistError> {
    let manifest = read_manifest(dir)?;
    if manifest.is_none() {
        return Err(PersistError::corrupt(dir, "no MANIFEST in store directory"));
    }
    let state = load_state::<K>(dir, manifest)?;
    Ok((state.engine, state.epoch, state.report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("streamfreq-recover-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn opts() -> DurabilityOptions {
        DurabilityOptions {
            fsync: super::super::FsyncPolicy::Off,
            segment_bytes: 1 << 16,
        }
    }

    /// Reference: an uninterrupted engine over the same updates.
    fn reference(config: EngineConfig, stream: &[(u64, u64)], batch: usize) -> SketchEngine<u64> {
        let mut engine = config.build_engine::<u64>().unwrap();
        for chunk in stream.chunks(batch) {
            engine.update_batch(chunk);
        }
        engine
    }

    fn stream(len: u64) -> Vec<(u64, u64)> {
        (0..len)
            .map(|i| ((i * 2_654_435_761) % 500, i % 9 + 1))
            .collect()
    }

    #[test]
    fn recovery_equals_uninterrupted_run_across_checkpoints() {
        let dir = tmp_dir("equals-uninterrupted");
        let config = EngineConfig::new(64).seed(5);
        let stream = stream(30_000);
        let (mut store, _) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        for (i, chunk) in stream.chunks(512).enumerate() {
            store.update_batch(chunk).unwrap();
            if i % 17 == 16 {
                store.checkpoint().unwrap();
            }
        }
        let live_fp = store.engine().state_fingerprint();
        drop(store); // "crash": no final checkpoint, no drain
        let (engine, _, report) = recover_engine_readonly::<u64>(&dir).unwrap();
        assert_eq!(engine.state_fingerprint(), live_fp);
        assert_eq!(
            engine.state_fingerprint(),
            reference(config, &stream, 512).state_fingerprint()
        );
        assert!(report.records_replayed > 0);
        assert!(report.checkpoint_epoch > 0);
        assert_eq!(report.source, RecoverySource::CheckpointAndWal);
    }

    #[test]
    fn empty_wal_checkpoint_only_and_wal_only() {
        // Checkpoint-only: tail is empty after a checkpoint.
        let dir = tmp_dir("ckpt-only");
        let config = EngineConfig::new(32);
        let (mut store, _) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        store.update_batch(&[(1, 10), (2, 20)]).unwrap();
        store.checkpoint().unwrap();
        drop(store);
        let (engine, epoch, report) = recover_engine_readonly::<u64>(&dir).unwrap();
        assert_eq!(report.source, RecoverySource::CheckpointOnly);
        assert_eq!(epoch, 1);
        assert_eq!(engine.stream_weight(), 30);

        // WAL-only: crash before the first checkpoint.
        let dir = tmp_dir("wal-only");
        let (mut store, _) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        store.update_batch(&[(1, 10), (2, 20)]).unwrap();
        drop(store);
        let (engine, epoch, report) = recover_engine_readonly::<u64>(&dir).unwrap();
        assert_eq!(report.source, RecoverySource::WalOnly);
        assert_eq!(epoch, 0);
        assert_eq!(engine.stream_weight(), 30);

        // Empty store: fresh manifest, no records.
        let dir = tmp_dir("empty");
        let (store, _) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        drop(store);
        let (engine, _, report) = recover_engine_readonly::<u64>(&dir).unwrap();
        assert_eq!(report.source, RecoverySource::Fresh);
        assert!(engine.is_empty());
    }

    #[test]
    fn missing_segment_and_missing_checkpoint_are_clean_errors() {
        let dir = tmp_dir("missing-pieces");
        let config = EngineConfig::new(32);
        let (mut store, _) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        store.update_batch(&[(1, 1)]).unwrap();
        store.checkpoint().unwrap();
        store.update_batch(&[(2, 2)]).unwrap();
        drop(store);

        // Delete the WAL segment the manifest points at.
        let manifest = read_manifest(&dir).unwrap().unwrap();
        let seg = wal::segment_path(&dir, manifest.wal_start.segment);
        let seg_bytes = std::fs::read(&seg).unwrap();
        std::fs::remove_file(&seg).unwrap();
        let err = recover_engine_readonly::<u64>(&dir).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt { .. }), "{err:?}");
        assert!(err.to_string().contains("missing WAL segment"), "{err}");
        std::fs::write(&seg, seg_bytes).unwrap();

        // Delete the checkpoint file.
        let ckpt = dir.join(manifest.checkpoint.unwrap());
        std::fs::remove_file(&ckpt).unwrap();
        let err = recover_engine_readonly::<u64>(&dir).unwrap_err();
        assert!(err.to_string().contains("missing checkpoint"), "{err}");
    }

    #[test]
    fn lost_manifest_recovers_via_open() {
        let dir = tmp_dir("lost-manifest");
        let config = EngineConfig::new(32).seed(2);
        let (mut store, _) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        store.update_batch(&[(1, 10), (2, 20), (3, 30)]).unwrap();
        drop(store);
        std::fs::remove_file(dir.join(super::super::store::MANIFEST_FILE)).unwrap();
        let (store, report) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        assert_eq!(report.source, RecoverySource::WalOnly);
        assert_eq!(store.engine().stream_weight(), 60);
        // readonly recovery requires the manifest, which open re-wrote.
        let (engine, _, _) = recover_engine_readonly::<u64>(&dir).unwrap();
        assert_eq!(engine.stream_weight(), 60);
    }

    #[test]
    fn lost_manifest_with_checkpoint_refuses_lossy_recovery() {
        // The WAL tail alone is NOT the full history once a checkpoint
        // truncated the log; a lost manifest must not silently rebuild
        // (and persist) the truncated fraction.
        let dir = tmp_dir("lost-manifest-ckpt");
        let config = EngineConfig::new(32).seed(2);
        let (mut store, _) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        store.update_batch(&[(1, 10), (2, 20)]).unwrap();
        store.checkpoint().unwrap();
        store.update_batch(&[(3, 30)]).unwrap();
        drop(store);
        std::fs::remove_file(dir.join(super::super::store::MANIFEST_FILE)).unwrap();
        let err = match DurableSketch::<u64>::open(&dir, config, opts()) {
            Err(e) => e,
            Ok(_) => panic!("lossy lost-manifest recovery accepted"),
        };
        assert!(err.to_string().contains("checkpointed prefix"), "{err}");
    }

    #[test]
    fn resumed_store_continues_identically() {
        // Crash, recover, continue: the continued run must be
        // fingerprint-identical to one that never crashed.
        let dir = tmp_dir("resume-continue");
        let config = EngineConfig::new(48).seed(8);
        let full = stream(24_000);
        let (first_half, second_half) = full.split_at(12_000);
        let (mut store, _) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        for chunk in first_half.chunks(256) {
            store.update_batch(chunk).unwrap();
        }
        store.checkpoint().unwrap();
        drop(store);
        let (mut store, report) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        assert_eq!(report.source, RecoverySource::CheckpointOnly);
        for chunk in second_half.chunks(256) {
            store.update_batch(chunk).unwrap();
        }
        assert_eq!(
            store.engine().state_fingerprint(),
            reference(config, &full, 256).state_fingerprint()
        );
    }
}
