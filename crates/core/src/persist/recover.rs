//! Crash recovery: turn a store directory back into a live engine.
//!
//! Recovery is manifest-driven:
//!
//! 1. read `MANIFEST` (its CRC protects the pointer itself);
//! 2. load the checkpoint it names, if any — slot-exact, so the engine
//!    resumes in the precise state it was checkpointed in;
//! 3. replay the WAL from the manifest's position through the normal
//!    [`update_batch`](crate::SketchEngine::update_batch) path, stopping
//!    cleanly at a torn tail (detected by CRC, dropped, never
//!    misdecoded);
//! 4. truncate the torn bytes and reopen the log for appending.
//!
//! Replay is coalesced: records accumulate into `REPLAY_CHUNK`-pair
//! batches before each engine call, so recovery runs through the same
//! batched fast path as live ingest (batching is state-identical to
//! sequential updates by the engine's contract).
//!
//! Every degenerate layout recovers deliberately:
//!
//! | on disk | outcome |
//! |---|---|
//! | nothing | fresh store (manifest written, WAL segment 1 created) |
//! | manifest, no checkpoint, empty WAL | fresh engine from the recorded config |
//! | manifest, no checkpoint, WAL records | **WAL-only**: fresh engine + full replay |
//! | manifest + checkpoint, empty tail | checkpoint state verbatim |
//! | manifest + checkpoint + tail | checkpoint ⊕ replay |
//! | WAL segments but no manifest | tolerant full replay from the oldest segment |
//! | manifest → missing checkpoint/segment | clean [`PersistError::Corrupt`], never a panic |
//!
//! ## Banks and the shared log
//!
//! A sharded store (`open_bank`) keeps **one** log at the bank level;
//! each shard's manifest records `shared_log = true` plus its stream
//! tag, and recovery scans the log once from the minimum `wal_start`,
//! routing records to shards by tag (a record counts for shard `s` when
//! `stream == s` and its position is at or past that shard's
//! `wal_start`).
//!
//! Shards found in the pre-shared-log layout (a `shared_log = false`
//! manifest with shard-local segments) are recovered through the legacy
//! path and migrated: a fresh checkpoint of the recovered state is
//! written, the manifest is repointed at the shared log, and only then
//! are the shard-local files deleted. Each step is atomic per shard, so
//! a crash mid-migration leaves every shard individually recoverable —
//! some already on the shared log, the rest still legacy.

use std::path::Path;
use std::sync::Arc;

use crate::engine::{SketchEngine, SketchKey};
use crate::item_codec::ItemCodec;

use super::checkpoint::write_checkpoint;
use super::group::{CheckpointRound, GroupCommitWal};
use super::store::{
    checkpoint_file_name, read_manifest, read_store_meta, shard_dir, write_manifest,
    DurabilityOptions, DurableSketch, Manifest,
};
use super::wal::{self, WalPosition, WalWriter, SEGMENT_HEADER_LEN};
use super::{EngineConfig, PersistError};

/// Replayed pairs buffered before each [`SketchEngine::update_batch`]
/// call during recovery.
const REPLAY_CHUNK: usize = 8192;

/// Where a recovered engine's state came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoverySource {
    /// No prior state: a new store was created.
    Fresh,
    /// No checkpoint yet; the whole WAL was replayed into a fresh engine.
    WalOnly,
    /// A checkpoint with an empty WAL tail.
    CheckpointOnly,
    /// A checkpoint plus a replayed WAL tail.
    CheckpointAndWal,
}

impl RecoverySource {
    fn classify(has_checkpoint: bool, replayed: bool) -> Self {
        match (has_checkpoint, replayed) {
            (false, false) => RecoverySource::Fresh,
            (false, true) => RecoverySource::WalOnly,
            (true, false) => RecoverySource::CheckpointOnly,
            (true, true) => RecoverySource::CheckpointAndWal,
        }
    }
}

/// What recovery did, for reporting and tests.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryReport {
    /// Which of the recovery paths ran.
    pub source: RecoverySource,
    /// Epoch of the loaded checkpoint (0 if none).
    pub checkpoint_epoch: u64,
    /// WAL records (batches) replayed.
    pub records_replayed: u64,
    /// Individual weighted updates replayed.
    pub updates_replayed: u64,
    /// Torn/corrupt tail bytes dropped from the last segment. For a
    /// shard recovered from a bank's shared log this is the log-wide
    /// value, repeated on every such shard's report.
    pub dropped_tail_bytes: u64,
}

impl RecoveryReport {
    fn fresh() -> Self {
        RecoveryReport {
            source: RecoverySource::Fresh,
            checkpoint_epoch: 0,
            records_replayed: 0,
            updates_replayed: 0,
            dropped_tail_bytes: 0,
        }
    }
}

/// Owns an engine during replay and feeds it coalesced batches.
struct Replayer<K: SketchKey> {
    engine: SketchEngine<K>,
    pending: Vec<(K, u64)>,
    records: u64,
    updates: u64,
}

impl<K: SketchKey> Replayer<K> {
    fn new(engine: SketchEngine<K>) -> Self {
        Replayer {
            engine,
            pending: Vec::with_capacity(REPLAY_CHUNK),
            records: 0,
            updates: 0,
        }
    }

    fn push(&mut self, batch: &[(K, u64)]) {
        self.records += 1;
        self.updates += batch.len() as u64;
        self.pending.extend_from_slice(batch);
        if self.pending.len() >= REPLAY_CHUNK {
            self.engine.update_batch(&self.pending);
            self.pending.clear();
        }
    }

    fn finish(mut self) -> (SketchEngine<K>, u64, u64) {
        if !self.pending.is_empty() {
            self.engine.update_batch(&self.pending);
        }
        (self.engine, self.records, self.updates)
    }
}

/// Recovered state plus the log position appending should resume at.
struct LoadedState<K: SketchKey> {
    engine: SketchEngine<K>,
    config: EngineConfig,
    epoch: u64,
    wal_end: WalPosition,
    report: RecoveryReport,
}

/// Builds the engine a manifest's checkpoint describes (or a fresh one
/// from the recorded config) without touching the WAL.
fn load_checkpoint_state<K: SketchKey + ItemCodec>(
    dir: &Path,
    manifest: &Manifest,
) -> Result<(SketchEngine<K>, u64), PersistError> {
    match &manifest.checkpoint {
        Some(name) => {
            let (engine, epoch) = super::checkpoint::read_checkpoint::<K>(&dir.join(name))?;
            if epoch != manifest.epoch {
                return Err(PersistError::corrupt(
                    dir,
                    format!(
                        "manifest epoch {} disagrees with checkpoint epoch {epoch}",
                        manifest.epoch
                    ),
                ));
            }
            Ok((engine, epoch))
        }
        None => Ok((manifest.config.build_engine::<K>()?, 0)),
    }
}

/// Core single-store recovery: rebuilds the engine from a store
/// directory whose log lives in that same directory, mutating nothing.
fn load_state<K: SketchKey + ItemCodec>(
    dir: &Path,
    manifest: Option<Manifest>,
) -> Result<LoadedState<K>, PersistError> {
    let manifest = match manifest {
        Some(m) => m,
        None => {
            // Reaching here without a manifest is a bug (`open_sketch`
            // synthesizes one first), so fail cleanly.
            return Err(PersistError::corrupt(dir, "store has no manifest"));
        }
    };
    if manifest.shared_log {
        return Err(PersistError::corrupt(
            dir,
            "manifest belongs to a shared-log bank shard; recover the bank directory",
        ));
    }
    let (engine, ckpt_epoch) = load_checkpoint_state::<K>(dir, &manifest)?;
    let outcome = wal::read_from::<K>(dir, manifest.wal_start)?;
    let mut replayer = Replayer::new(engine);
    for record in &outcome.records {
        replayer.push(&record.batch);
    }
    let (engine, records, updates) = replayer.finish();
    Ok(LoadedState {
        engine,
        config: manifest.config,
        epoch: manifest.epoch,
        wal_end: outcome.end,
        report: RecoveryReport {
            source: RecoverySource::classify(manifest.checkpoint.is_some(), records > 0),
            checkpoint_epoch: ckpt_epoch,
            records_replayed: records,
            updates_replayed: updates,
            dropped_tail_bytes: outcome.dropped_tail_bytes,
        },
    })
}

/// Refuses lost-manifest recovery when a checkpoint file proves the WAL
/// is not the complete history (see the callers for the rationale).
fn refuse_lossy_lost_manifest(dir: &Path) -> Result<(), PersistError> {
    if let Some(ckpt) = std::fs::read_dir(dir)
        .map_err(|e| PersistError::io(dir, e))?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .find(|name| name.starts_with("ckpt-") && name.ends_with(".ck"))
    {
        return Err(PersistError::corrupt(
            dir,
            format!(
                "manifest is missing but checkpoint {ckpt} exists; \
                 recovering from the WAL alone would lose the \
                 checkpointed prefix (restore or rebuild MANIFEST)"
            ),
        ));
    }
    Ok(())
}

/// Opens (recovering) or creates the durable sketch in `dir`. Backs
/// [`DurableSketch::open`]; see there for the error contract.
pub(crate) fn open_sketch<K: SketchKey + ItemCodec>(
    dir: &Path,
    config: EngineConfig,
    opts: DurabilityOptions,
) -> Result<(DurableSketch<K>, RecoveryReport), PersistError> {
    std::fs::create_dir_all(dir).map_err(|e| PersistError::io(dir, e))?;
    let manifest = read_manifest(dir)?;
    let has_segments = !wal::list_segments(dir)?.is_empty();
    if manifest.is_none() && !has_segments {
        // Brand-new store.
        let engine = config.build_engine::<K>()?;
        let writer = WalWriter::create(dir, opts.fsync, opts.segment_bytes)?;
        write_manifest(
            dir,
            &Manifest {
                epoch: 0,
                config,
                checkpoint: None,
                wal_start: writer.position(),
                shared_log: false,
                stream: 0,
            },
        )?;
        return Ok((
            DurableSketch {
                engine,
                wal: Arc::new(GroupCommitWal::start(writer, opts.fsync)),
                round: Arc::new(CheckpointRound::new(1)),
                dir: dir.to_path_buf(),
                epoch: 0,
                config,
                stream: 0,
                shared_log: false,
                frame_buf: Vec::new(),
            },
            RecoveryReport::fresh(),
        ));
    }
    // A store missing only its manifest (deleted out-of-band) still
    // recovers: synthesize a manifest replaying every segment from the
    // oldest with the caller's config.
    let manifest = match manifest {
        Some(m) => {
            if m.config != config {
                return Err(PersistError::ConfigMismatch(format!(
                    "store in {} was created with {:?}, requested {:?}",
                    dir.display(),
                    m.config,
                    config
                )));
            }
            m
        }
        None => {
            // Tolerating a lost manifest is only safe when the WAL is
            // the complete history. A checkpoint file on disk means the
            // WAL prefix it covers was truncated — replaying the tail
            // alone would silently reconstruct (and then persist) a
            // fraction of the stream, so refuse loudly instead.
            refuse_lossy_lost_manifest(dir)?;
            let oldest = wal::list_segments(dir)?
                .first()
                .map(|&(seq, _)| seq)
                .ok_or_else(|| {
                    PersistError::corrupt(dir, "WAL segments vanished during recovery")
                })?;
            Manifest {
                epoch: 0,
                config,
                checkpoint: None,
                wal_start: WalPosition {
                    segment: oldest,
                    offset: SEGMENT_HEADER_LEN,
                },
                shared_log: false,
                stream: 0,
            }
        }
    };
    let state = load_state::<K>(dir, Some(manifest.clone()))?;
    let writer = WalWriter::open_at(dir, state.wal_end, opts.fsync, opts.segment_bytes)?;
    if read_manifest(dir)?.is_none() {
        write_manifest(dir, &manifest)?;
    }
    Ok((
        DurableSketch {
            engine: state.engine,
            wal: Arc::new(GroupCommitWal::start(writer, opts.fsync)),
            round: Arc::new(CheckpointRound::new(1)),
            dir: dir.to_path_buf(),
            epoch: state.epoch,
            config: state.config,
            stream: 0,
            shared_log: false,
            frame_buf: Vec::new(),
        },
        state.report,
    ))
}

/// Read-only recovery: rebuilds the engine state from `dir` using the
/// configuration recorded in its manifest, touching nothing on disk.
/// This is what offline tooling (`streamfreq recover`, `streamfreq
/// info`) uses — no caller-supplied configuration needed.
///
/// # Errors
/// [`PersistError::Corrupt`] for a missing/invalid manifest or damaged
/// state; I/O errors otherwise.
pub fn recover_engine_readonly<K: SketchKey + ItemCodec>(
    dir: &Path,
) -> Result<(SketchEngine<K>, u64, RecoveryReport), PersistError> {
    let manifest = read_manifest(dir)?;
    if manifest.is_none() {
        return Err(PersistError::corrupt(dir, "no MANIFEST in store directory"));
    }
    let state = load_state::<K>(dir, manifest)?;
    Ok((state.engine, state.epoch, state.report))
}

/// How shard `s` of a bank will be recovered.
enum ShardPlan<K: SketchKey> {
    /// No prior state anywhere: a brand-new shard.
    Fresh { engine: SketchEngine<K> },
    /// Recovered from the pre-shared-log shard-local layout; its files
    /// migrate onto the shared log before ingest resumes.
    Migrate { state: LoadedState<K> },
    /// Already on the shared log; finished by the shared replay.
    Shared {
        manifest: Manifest,
        /// The manifest was synthesized (lost out-of-band) and must be
        /// rewritten.
        rewrite: bool,
    },
}

/// Replays the bank-level shared log once, routing records to the given
/// shards by stream tag. Returns each shard's finished
/// `(engine, checkpoint_epoch, report)` keyed by shard index, plus the
/// log's end position.
#[allow(clippy::type_complexity)]
fn replay_shared<K: SketchKey + ItemCodec>(
    dir: &Path,
    shards: Vec<(usize, Manifest)>,
    num_shards: usize,
) -> Result<
    (
        Vec<(usize, SketchEngine<K>, u64, RecoveryReport)>,
        WalPosition,
    ),
    PersistError,
> {
    let start = shards
        .iter()
        .map(|(_, m)| m.wal_start)
        .min()
        .ok_or_else(|| PersistError::corrupt(dir, "replay_shared invoked with no shards"))?;
    let outcome = wal::read_from::<K>(dir, start)?;
    let mut slots: Vec<Option<(Manifest, u64, Replayer<K>)>> =
        (0..num_shards).map(|_| None).collect();
    for (s, manifest) in shards {
        let sdir = shard_dir(dir, s);
        let (engine, ckpt_epoch) = load_checkpoint_state::<K>(&sdir, &manifest)?;
        slots[s] = Some((manifest, ckpt_epoch, Replayer::new(engine)));
    }
    for record in &outcome.records {
        let slot = usize::try_from(record.stream)
            .ok()
            .and_then(|s| slots.get_mut(s))
            .ok_or_else(|| {
                PersistError::corrupt(
                    dir,
                    format!(
                        "shared WAL record tagged stream {} but the bank has {num_shards} shards",
                        record.stream
                    ),
                )
            })?;
        let Some((manifest, _, replayer)) = slot else {
            return Err(PersistError::corrupt(
                dir,
                format!(
                    "shared WAL holds records for stream {} but that shard \
                     does not use the shared log",
                    record.stream
                ),
            ));
        };
        // Records before this shard's own replay start are covered by
        // its checkpoint (the shared scan starts at the bank minimum).
        if record.at >= manifest.wal_start {
            replayer.push(&record.batch);
        }
    }
    let mut done = Vec::new();
    for (s, slot) in slots.into_iter().enumerate() {
        let Some((manifest, ckpt_epoch, replayer)) = slot else {
            continue;
        };
        let (engine, records, updates) = replayer.finish();
        done.push((
            s,
            engine,
            manifest.epoch,
            RecoveryReport {
                source: RecoverySource::classify(manifest.checkpoint.is_some(), records > 0),
                checkpoint_epoch: ckpt_epoch,
                records_replayed: records,
                updates_replayed: updates,
                dropped_tail_bytes: outcome.dropped_tail_bytes,
            },
        ));
    }
    Ok((done, outcome.end))
}

/// Deletes shard-local WAL segments (legacy layout or migration debris).
fn remove_local_segments(sdir: &Path) -> Result<(), PersistError> {
    let segments = wal::list_segments(sdir)?;
    if segments.is_empty() {
        return Ok(());
    }
    for (_, path) in &segments {
        std::fs::remove_file(path).map_err(|e| PersistError::io(path, e))?;
    }
    wal::fsync_dir(sdir)
}

/// Opens every shard of an existing durable bank read-write using the
/// configurations recorded in the shard manifests — what offline
/// tooling (`streamfreq checkpoint` on a bank directory) uses, since it
/// has no serve-time flags to supply. Legacy per-shard layouts migrate
/// onto the shared log exactly as `open_bank` does.
///
/// # Errors
/// Fails if the bank metadata or any shard manifest is missing, plus
/// everything [`DurableSketch::open`] can report per shard.
#[allow(clippy::type_complexity)]
pub fn open_bank_existing<K: SketchKey + ItemCodec>(
    dir: &Path,
    opts: DurabilityOptions,
) -> Result<Vec<(DurableSketch<K>, RecoveryReport)>, PersistError> {
    let meta = read_store_meta(dir)?
        .ok_or_else(|| PersistError::corrupt(dir, "no STORE metadata in bank directory"))?;
    let mut configs = Vec::with_capacity(meta.num_shards);
    for s in 0..meta.num_shards {
        let sdir = shard_dir(dir, s);
        let manifest = read_manifest(&sdir)?
            .ok_or_else(|| PersistError::corrupt(&sdir, "no MANIFEST in store directory"))?;
        configs.push(manifest.config);
    }
    open_bank(dir, &configs, opts)
}

/// Opens (recovering, migrating if needed) or creates the sharded bank
/// in `dir`: one shared group-commit log, one [`DurableSketch`] per
/// shard, all sharing the log and one [`CheckpointRound`].
///
/// # Errors
/// As [`DurableSketch::open`], per shard.
#[allow(clippy::type_complexity)]
pub(crate) fn open_bank<K: SketchKey + ItemCodec>(
    dir: &Path,
    configs: &[EngineConfig],
    opts: DurabilityOptions,
) -> Result<Vec<(DurableSketch<K>, RecoveryReport)>, PersistError> {
    if configs.is_empty() {
        return Err(PersistError::ConfigMismatch(
            "a bank needs at least one shard".into(),
        ));
    }
    std::fs::create_dir_all(dir).map_err(|e| PersistError::io(dir, e))?;
    let shared_segments = wal::list_segments(dir)?;
    let oldest_shared = shared_segments.first().map(|&(seq, _)| seq);

    let mut plans: Vec<ShardPlan<K>> = Vec::with_capacity(configs.len());
    for (s, &config) in configs.iter().enumerate() {
        let sdir = shard_dir(dir, s);
        std::fs::create_dir_all(&sdir).map_err(|e| PersistError::io(&sdir, e))?;
        let manifest = read_manifest(&sdir)?;
        let local_segments = wal::list_segments(&sdir)?;
        let plan = match manifest {
            Some(m) if m.shared_log => {
                if m.config != config {
                    return Err(PersistError::ConfigMismatch(format!(
                        "shard {s} in {} was created with {:?}, requested {:?}",
                        dir.display(),
                        m.config,
                        config
                    )));
                }
                if m.stream as usize != s {
                    return Err(PersistError::corrupt(
                        &sdir,
                        format!("manifest stream tag {} in shard directory {s}", m.stream),
                    ));
                }
                ShardPlan::Shared {
                    manifest: m,
                    rewrite: false,
                }
            }
            Some(m) => {
                if m.config != config {
                    return Err(PersistError::ConfigMismatch(format!(
                        "shard {s} in {} was created with {:?}, requested {:?}",
                        dir.display(),
                        m.config,
                        config
                    )));
                }
                ShardPlan::Migrate {
                    state: load_state::<K>(&sdir, Some(m))?,
                }
            }
            None if !local_segments.is_empty() => {
                // Legacy shard that lost its manifest: same tolerance
                // (and same lossy-recovery refusal) as a single store.
                refuse_lossy_lost_manifest(&sdir)?;
                let oldest = local_segments[0].0;
                let synthesized = Manifest {
                    epoch: 0,
                    config,
                    checkpoint: None,
                    wal_start: WalPosition {
                        segment: oldest,
                        offset: SEGMENT_HEADER_LEN,
                    },
                    shared_log: false,
                    stream: 0,
                };
                ShardPlan::Migrate {
                    state: load_state::<K>(&sdir, Some(synthesized))?,
                }
            }
            None => {
                refuse_lossy_lost_manifest(&sdir)?;
                match oldest_shared {
                    // Shared-log shard that lost its manifest: replay
                    // its stream from the oldest shared segment.
                    Some(oldest) => ShardPlan::Shared {
                        manifest: Manifest {
                            epoch: 0,
                            config,
                            checkpoint: None,
                            wal_start: WalPosition {
                                segment: oldest,
                                offset: SEGMENT_HEADER_LEN,
                            },
                            shared_log: true,
                            stream: s as u32,
                        },
                        rewrite: true,
                    },
                    None => ShardPlan::Fresh {
                        engine: config.build_engine::<K>()?,
                    },
                }
            }
        };
        plans.push(plan);
    }

    // One scan of the shared log finishes every shared shard.
    let shared_inputs: Vec<(usize, Manifest)> = plans
        .iter()
        .enumerate()
        .filter_map(|(s, plan)| match plan {
            ShardPlan::Shared { manifest, .. } => Some((s, manifest.clone())),
            _ => None,
        })
        .collect();
    let mut shared_done: Vec<Option<(SketchEngine<K>, u64, RecoveryReport)>> =
        (0..configs.len()).map(|_| None).collect();
    let wal_end = if shared_inputs.is_empty() {
        match oldest_shared {
            Some(oldest) => {
                // Unreferenced shared segments are debris from a crashed
                // migration — refuse if they hold records (that would
                // mean a manifest was lost some other way).
                let outcome = wal::read_from::<K>(
                    dir,
                    WalPosition {
                        segment: oldest,
                        offset: SEGMENT_HEADER_LEN,
                    },
                )?;
                if !outcome.records.is_empty() {
                    return Err(PersistError::corrupt(
                        dir,
                        "shared WAL holds records but no shard manifest references it",
                    ));
                }
                Some(outcome.end)
            }
            None => None,
        }
    } else {
        let (done, end) = replay_shared::<K>(dir, shared_inputs, configs.len())?;
        for (s, engine, epoch, report) in done {
            shared_done[s] = Some((engine, epoch, report));
        }
        Some(end)
    };

    let writer = match wal_end {
        Some(end) => WalWriter::open_at(dir, end, opts.fsync, opts.segment_bytes)?,
        None => WalWriter::create(dir, opts.fsync, opts.segment_bytes)?,
    };
    // Nothing can append until this function returns, so the writer's
    // position is where migrated and fresh manifests start replay.
    let log_position = writer.position();
    let wal = Arc::new(GroupCommitWal::start(writer, opts.fsync));
    let round = Arc::new(CheckpointRound::new(configs.len()));

    let mut out = Vec::with_capacity(configs.len());
    for (s, plan) in plans.into_iter().enumerate() {
        let sdir = shard_dir(dir, s);
        let config = configs[s];
        let sketch = |engine, epoch| DurableSketch {
            engine,
            wal: Arc::clone(&wal),
            round: Arc::clone(&round),
            dir: sdir.clone(),
            epoch,
            config,
            stream: s as u32,
            shared_log: true,
            frame_buf: Vec::new(),
        };
        match plan {
            ShardPlan::Fresh { engine } => {
                write_manifest(
                    &sdir,
                    &Manifest {
                        epoch: 0,
                        config,
                        checkpoint: None,
                        wal_start: log_position,
                        shared_log: true,
                        stream: s as u32,
                    },
                )?;
                out.push((sketch(engine, 0), RecoveryReport::fresh()));
            }
            ShardPlan::Migrate { state } => {
                // Migration = one checkpoint of the recovered state onto
                // the shared log, then drop the legacy files. A crash
                // before the new manifest lands leaves the legacy layout
                // fully intact (the new checkpoint file is inert).
                let new_epoch = state.epoch + 1;
                let name = checkpoint_file_name(new_epoch);
                write_checkpoint(&sdir.join(&name), &state.engine, new_epoch)?;
                write_manifest(
                    &sdir,
                    &Manifest {
                        epoch: new_epoch,
                        config,
                        checkpoint: Some(name.clone()),
                        wal_start: log_position,
                        shared_log: true,
                        stream: s as u32,
                    },
                )?;
                remove_local_segments(&sdir)?;
                for entry in std::fs::read_dir(&sdir).map_err(|e| PersistError::io(&sdir, e))? {
                    let entry = entry.map_err(|e| PersistError::io(&sdir, e))?;
                    let file_name = entry.file_name();
                    let Some(file_name) = file_name.to_str() else {
                        continue;
                    };
                    if file_name.starts_with("ckpt-")
                        && file_name.ends_with(".ck")
                        && file_name != name.as_str()
                    {
                        let _ = std::fs::remove_file(entry.path());
                    }
                }
                out.push((sketch(state.engine, new_epoch), state.report));
            }
            ShardPlan::Shared { rewrite, .. } => {
                let (engine, epoch, report) = shared_done
                    .get_mut(s)
                    .and_then(Option::take)
                    .ok_or_else(|| {
                        PersistError::corrupt(dir, format!("shared replay lost shard {s}"))
                    })?;
                if rewrite {
                    write_manifest(
                        &sdir,
                        &Manifest {
                            epoch,
                            config,
                            checkpoint: None,
                            wal_start: WalPosition {
                                segment: oldest_shared.ok_or_else(|| {
                                    PersistError::corrupt(
                                        dir,
                                        "shared-log shard without a shared WAL segment",
                                    )
                                })?,
                                offset: SEGMENT_HEADER_LEN,
                            },
                            shared_log: true,
                            stream: s as u32,
                        },
                    )?;
                }
                // Shard-local segments next to a shared-log manifest are
                // debris from a crash between manifest write and legacy
                // cleanup.
                remove_local_segments(&sdir)?;
                out.push((sketch(engine, epoch), report));
            }
        }
    }
    Ok(out)
}

/// Read-only recovery of a sharded bank: rebuilds every shard's engine
/// from `dir` (its `STORE` metadata names the shard count), touching
/// nothing on disk. Legacy shard-local layouts and the shared log may
/// coexist (a crash mid-migration); both recover.
///
/// Returns `(engine, checkpoint_epoch, report)` per shard, in order.
///
/// # Errors
/// [`PersistError::Corrupt`] for missing metadata/manifests or damaged
/// state; I/O errors otherwise.
#[allow(clippy::type_complexity)]
pub fn recover_bank_readonly<K: SketchKey + ItemCodec>(
    dir: &Path,
) -> Result<Vec<(SketchEngine<K>, u64, RecoveryReport)>, PersistError> {
    let meta = read_store_meta(dir)?
        .ok_or_else(|| PersistError::corrupt(dir, "no STORE metadata in bank directory"))?;
    let mut results: Vec<Option<(SketchEngine<K>, u64, RecoveryReport)>> =
        (0..meta.num_shards).map(|_| None).collect();
    let mut shared: Vec<(usize, Manifest)> = Vec::new();
    for (s, slot) in results.iter_mut().enumerate() {
        let sdir = shard_dir(dir, s);
        let manifest = read_manifest(&sdir)?
            .ok_or_else(|| PersistError::corrupt(&sdir, "no MANIFEST in store directory"))?;
        if manifest.shared_log {
            if manifest.stream as usize != s {
                return Err(PersistError::corrupt(
                    &sdir,
                    format!(
                        "manifest stream tag {} in shard directory {s}",
                        manifest.stream
                    ),
                ));
            }
            shared.push((s, manifest));
        } else {
            let state = load_state::<K>(&sdir, Some(manifest))?;
            *slot = Some((state.engine, state.epoch, state.report));
        }
    }
    if !shared.is_empty() {
        let (done, _) = replay_shared::<K>(dir, shared, meta.num_shards)?;
        for (s, engine, epoch, report) in done {
            results[s] = Some((engine, epoch, report));
        }
    }
    results
        .into_iter()
        .enumerate()
        .map(|(s, slot)| {
            slot.ok_or_else(|| PersistError::corrupt(dir, format!("shard {s} never recovered")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("streamfreq-recover-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn opts() -> DurabilityOptions {
        DurabilityOptions {
            fsync: super::super::FsyncPolicy::Off,
            segment_bytes: 1 << 16,
        }
    }

    /// Reference: an uninterrupted engine over the same updates.
    fn reference(config: EngineConfig, stream: &[(u64, u64)], batch: usize) -> SketchEngine<u64> {
        let mut engine = config.build_engine::<u64>().unwrap();
        for chunk in stream.chunks(batch) {
            engine.update_batch(chunk);
        }
        engine
    }

    fn stream(len: u64) -> Vec<(u64, u64)> {
        (0..len)
            .map(|i| ((i * 2_654_435_761) % 500, i % 9 + 1))
            .collect()
    }

    #[test]
    fn recovery_equals_uninterrupted_run_across_checkpoints() {
        let dir = tmp_dir("equals-uninterrupted");
        let config = EngineConfig::new(64).seed(5);
        let stream = stream(30_000);
        let (mut store, _) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        for (i, chunk) in stream.chunks(512).enumerate() {
            store.update_batch(chunk).unwrap();
            if i % 17 == 16 {
                store.checkpoint().unwrap();
            }
        }
        store.sync().unwrap();
        let live_fp = store.engine().state_fingerprint();
        drop(store); // "crash": no final checkpoint, no drain
        let (engine, _, report) = recover_engine_readonly::<u64>(&dir).unwrap();
        assert_eq!(engine.state_fingerprint(), live_fp);
        assert_eq!(
            engine.state_fingerprint(),
            reference(config, &stream, 512).state_fingerprint()
        );
        assert!(report.records_replayed > 0);
        assert!(report.checkpoint_epoch > 0);
        assert_eq!(report.source, RecoverySource::CheckpointAndWal);
    }

    #[test]
    fn empty_wal_checkpoint_only_and_wal_only() {
        // Checkpoint-only: tail is empty after a checkpoint.
        let dir = tmp_dir("ckpt-only");
        let config = EngineConfig::new(32);
        let (mut store, _) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        store.update_batch(&[(1, 10), (2, 20)]).unwrap();
        store.checkpoint().unwrap();
        drop(store);
        let (engine, epoch, report) = recover_engine_readonly::<u64>(&dir).unwrap();
        assert_eq!(report.source, RecoverySource::CheckpointOnly);
        assert_eq!(epoch, 1);
        assert_eq!(engine.stream_weight(), 30);

        // WAL-only: crash before the first checkpoint.
        let dir = tmp_dir("wal-only");
        let (mut store, _) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        store.update_batch(&[(1, 10), (2, 20)]).unwrap();
        store.sync().unwrap();
        drop(store);
        let (engine, epoch, report) = recover_engine_readonly::<u64>(&dir).unwrap();
        assert_eq!(report.source, RecoverySource::WalOnly);
        assert_eq!(epoch, 0);
        assert_eq!(engine.stream_weight(), 30);

        // Empty store: fresh manifest, no records.
        let dir = tmp_dir("empty");
        let (store, _) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        drop(store);
        let (engine, _, report) = recover_engine_readonly::<u64>(&dir).unwrap();
        assert_eq!(report.source, RecoverySource::Fresh);
        assert!(engine.is_empty());
    }

    #[test]
    fn missing_segment_and_missing_checkpoint_are_clean_errors() {
        let dir = tmp_dir("missing-pieces");
        let config = EngineConfig::new(32);
        let (mut store, _) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        store.update_batch(&[(1, 1)]).unwrap();
        store.checkpoint().unwrap();
        store.update_batch(&[(2, 2)]).unwrap();
        store.sync().unwrap();
        drop(store);

        // Delete the WAL segment the manifest points at.
        let manifest = read_manifest(&dir).unwrap().unwrap();
        let seg = wal::segment_path(&dir, manifest.wal_start.segment);
        let seg_bytes = std::fs::read(&seg).unwrap();
        std::fs::remove_file(&seg).unwrap();
        let err = recover_engine_readonly::<u64>(&dir).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt { .. }), "{err:?}");
        assert!(err.to_string().contains("missing WAL segment"), "{err}");
        std::fs::write(&seg, seg_bytes).unwrap();

        // Delete the checkpoint file.
        let ckpt = dir.join(manifest.checkpoint.unwrap());
        std::fs::remove_file(&ckpt).unwrap();
        let err = recover_engine_readonly::<u64>(&dir).unwrap_err();
        assert!(err.to_string().contains("missing checkpoint"), "{err}");
    }

    #[test]
    fn lost_manifest_recovers_via_open() {
        let dir = tmp_dir("lost-manifest");
        let config = EngineConfig::new(32).seed(2);
        let (mut store, _) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        store.update_batch(&[(1, 10), (2, 20), (3, 30)]).unwrap();
        store.sync().unwrap();
        drop(store);
        std::fs::remove_file(dir.join(super::super::store::MANIFEST_FILE)).unwrap();
        let (store, report) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        assert_eq!(report.source, RecoverySource::WalOnly);
        assert_eq!(store.engine().stream_weight(), 60);
        // readonly recovery requires the manifest, which open re-wrote.
        let (engine, _, _) = recover_engine_readonly::<u64>(&dir).unwrap();
        assert_eq!(engine.stream_weight(), 60);
    }

    #[test]
    fn lost_manifest_with_checkpoint_refuses_lossy_recovery() {
        // The WAL tail alone is NOT the full history once a checkpoint
        // truncated the log; a lost manifest must not silently rebuild
        // (and persist) the truncated fraction.
        let dir = tmp_dir("lost-manifest-ckpt");
        let config = EngineConfig::new(32).seed(2);
        let (mut store, _) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        store.update_batch(&[(1, 10), (2, 20)]).unwrap();
        store.checkpoint().unwrap();
        store.update_batch(&[(3, 30)]).unwrap();
        store.sync().unwrap();
        drop(store);
        std::fs::remove_file(dir.join(super::super::store::MANIFEST_FILE)).unwrap();
        let err = match DurableSketch::<u64>::open(&dir, config, opts()) {
            Err(e) => e,
            Ok(_) => panic!("lossy lost-manifest recovery accepted"),
        };
        assert!(err.to_string().contains("checkpointed prefix"), "{err}");
    }

    #[test]
    fn resumed_store_continues_identically() {
        // Crash, recover, continue: the continued run must be
        // fingerprint-identical to one that never crashed.
        let dir = tmp_dir("resume-continue");
        let config = EngineConfig::new(48).seed(8);
        let full = stream(24_000);
        let (first_half, second_half) = full.split_at(12_000);
        let (mut store, _) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        for chunk in first_half.chunks(256) {
            store.update_batch(chunk).unwrap();
        }
        store.checkpoint().unwrap();
        drop(store);
        let (mut store, report) = DurableSketch::<u64>::open(&dir, config, opts()).unwrap();
        assert_eq!(report.source, RecoverySource::CheckpointOnly);
        for chunk in second_half.chunks(256) {
            store.update_batch(chunk).unwrap();
        }
        assert_eq!(
            store.engine().state_fingerprint(),
            reference(config, &full, 256).state_fingerprint()
        );
    }

    // ---- bank (shared-log) recovery ----

    fn bank_configs(n: usize) -> Vec<EngineConfig> {
        (0..n)
            .map(|s| EngineConfig::new(48).seed(77 + s as u64))
            .collect()
    }

    fn write_bank_meta(dir: &Path, n: usize) {
        std::fs::create_dir_all(dir).unwrap();
        super::super::store::write_store_meta(
            dir,
            &super::super::store::StoreMeta {
                num_shards: n,
                counters_per_shard: 48,
                merged_capacity: 96,
                policy: crate::purge::PurgePolicy::default(),
                seed: 77,
            },
        )
        .unwrap();
    }

    #[test]
    fn fresh_bank_shares_one_log_and_recovers_per_stream() {
        let dir = tmp_dir("bank-fresh");
        let configs = bank_configs(3);
        write_bank_meta(&dir, 3);
        let mut shards: Vec<DurableSketch<u64>> = open_bank(&dir, &configs, opts())
            .unwrap()
            .into_iter()
            .map(|(s, r)| {
                assert_eq!(r.source, RecoverySource::Fresh);
                s
            })
            .collect();
        let data = stream(9_000);
        for (i, chunk) in data.chunks(64).enumerate() {
            shards[i % 3].update_batch(chunk).unwrap();
        }
        shards[0].sync().unwrap();
        let fps: Vec<Vec<u8>> = shards
            .iter()
            .map(|s| s.engine().state_fingerprint())
            .collect();
        // Exactly one shared log at the bank level, none per shard.
        assert!(!wal::list_segments(&dir).unwrap().is_empty());
        for s in 0..3 {
            assert!(wal::list_segments(&shard_dir(&dir, s)).unwrap().is_empty());
        }
        drop(shards); // crash: no checkpoint
        let recovered = recover_bank_readonly::<u64>(&dir).unwrap();
        for (s, (engine, epoch, report)) in recovered.iter().enumerate() {
            assert_eq!(engine.state_fingerprint(), fps[s], "shard {s}");
            assert_eq!(*epoch, 0);
            assert_eq!(report.source, RecoverySource::WalOnly);
        }
    }

    #[test]
    fn bank_checkpoint_round_then_crash_recovers_exactly() {
        let dir = tmp_dir("bank-round");
        let configs = bank_configs(2);
        write_bank_meta(&dir, 2);
        let mut shards: Vec<DurableSketch<u64>> = open_bank(&dir, &configs, opts())
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        let data = stream(6_000);
        for (i, chunk) in data.chunks(32).enumerate() {
            shards[i % 2].update_batch(chunk).unwrap();
        }
        super::super::store::checkpoint_bank(&mut shards).unwrap();
        for (i, chunk) in data.chunks(32).enumerate() {
            shards[(i + 1) % 2].update_batch(chunk).unwrap();
        }
        shards[0].sync().unwrap();
        let fps: Vec<Vec<u8>> = shards
            .iter()
            .map(|s| s.engine().state_fingerprint())
            .collect();
        drop(shards);
        let recovered = recover_bank_readonly::<u64>(&dir).unwrap();
        for (s, (engine, epoch, report)) in recovered.iter().enumerate() {
            assert_eq!(engine.state_fingerprint(), fps[s], "shard {s}");
            assert_eq!(*epoch, 1);
            assert_eq!(report.source, RecoverySource::CheckpointAndWal);
        }
        // Reopening for writing agrees too, and keeps working.
        let reopened = open_bank::<u64>(&dir, &configs, opts()).unwrap();
        for (s, (shard, _)) in reopened.iter().enumerate() {
            assert_eq!(shard.engine().state_fingerprint(), fps[s]);
        }
    }

    #[test]
    fn legacy_per_shard_layout_migrates_onto_the_shared_log() {
        let dir = tmp_dir("bank-migrate");
        let configs = bank_configs(2);
        write_bank_meta(&dir, 2);
        // Build the pre-shared-log layout: each shard is its own
        // single-engine store with a local WAL (shard 1 also has a
        // checkpoint, exercising checkpoint ⊕ replay migration).
        let data = stream(4_000);
        let mut fps = Vec::new();
        for (s, config) in configs.iter().enumerate() {
            let sdir = shard_dir(&dir, s);
            let (mut store, _) = DurableSketch::<u64>::open(&sdir, *config, opts()).unwrap();
            for chunk in data.chunks(128) {
                store.update_batch(chunk).unwrap();
            }
            if s == 1 {
                store.checkpoint().unwrap();
                store.update_batch(&[(9_999, 5)]).unwrap();
            }
            store.sync().unwrap();
            fps.push(store.engine().state_fingerprint());
            drop(store);
            assert!(!wal::list_segments(&sdir).unwrap().is_empty());
        }
        // Opening as a bank migrates both shards.
        let shards = open_bank::<u64>(&dir, &configs, opts()).unwrap();
        for (s, (shard, _)) in shards.iter().enumerate() {
            assert_eq!(shard.engine().state_fingerprint(), fps[s], "shard {s}");
            // Local segments are gone; the manifest moved to the shared
            // log with a fresh checkpoint of the migrated state.
            let sdir = shard_dir(&dir, s);
            assert!(wal::list_segments(&sdir).unwrap().is_empty());
            let m = read_manifest(&sdir).unwrap().unwrap();
            assert!(m.shared_log);
            assert_eq!(m.stream as usize, s);
            assert!(m.checkpoint.is_some());
        }
        drop(shards);
        // And the migrated bank recovers bit-identically thereafter.
        let recovered = recover_bank_readonly::<u64>(&dir).unwrap();
        for (s, (engine, _, report)) in recovered.iter().enumerate() {
            assert_eq!(engine.state_fingerprint(), fps[s], "shard {s}");
            assert_eq!(report.source, RecoverySource::CheckpointOnly);
        }
    }

    #[test]
    fn mixed_migration_state_recovers_per_shard() {
        // Crash mid-migration: shard 0 already on the shared log, shard
        // 1 still legacy. Both must recover, read-only and for writing.
        let dir = tmp_dir("bank-mixed");
        let configs = bank_configs(2);
        write_bank_meta(&dir, 2);
        let data = stream(3_000);
        // Shard 1: legacy layout.
        let legacy_dir = shard_dir(&dir, 1);
        let (mut legacy, _) = DurableSketch::<u64>::open(&legacy_dir, configs[1], opts()).unwrap();
        for chunk in data.chunks(64) {
            legacy.update_batch(chunk).unwrap();
        }
        legacy.sync().unwrap();
        let legacy_fp = legacy.engine().state_fingerprint();
        drop(legacy);
        // Shard 0: migrated (build a one-shard bank view of it by hand:
        // open the full bank once with shard 0 fresh, append, crash).
        let shards = open_bank::<u64>(&dir, &configs, opts()).unwrap();
        // ^ this migrates shard 1 too — undo that premise; instead keep
        // shard 1 legacy by rebuilding its layout after the bank open.
        drop(shards);
        let _ = std::fs::remove_dir_all(&legacy_dir);
        let (mut legacy, _) = DurableSketch::<u64>::open(&legacy_dir, configs[1], opts()).unwrap();
        for chunk in data.chunks(64) {
            legacy.update_batch(chunk).unwrap();
        }
        legacy.sync().unwrap();
        assert_eq!(legacy.engine().state_fingerprint(), legacy_fp);
        drop(legacy);
        // Now: shard 0 has a shared-log manifest, shard 1 a legacy one.
        let recovered = recover_bank_readonly::<u64>(&dir).unwrap();
        assert_eq!(recovered[1].0.state_fingerprint(), legacy_fp);
        let shards = open_bank::<u64>(&dir, &configs, opts()).unwrap();
        assert_eq!(shards[1].0.engine().state_fingerprint(), legacy_fp);
    }
}
