//! Atomic, slot-exact engine checkpoints.
//!
//! A checkpoint is one self-validating file carrying the *complete*
//! engine state: configuration, bookkeeping (offset, stream weight,
//! operation counts, saturation flags), the purge-sampler state, and the
//! counter table **slot for slot**. The whole file is covered by a
//! trailing CRC-32C, so any truncation or bit flip is detected before a
//! single field is trusted (contrast with the bare wire codecs of
//! [`crate::codec`]/[`crate::item_codec`], where a flipped counter byte
//! decodes to a different-but-well-formed sketch).
//!
//! ## Why slot-exact?
//!
//! The wire codecs rebuild the table by re-inserting counters through
//! the normal probe path. That is operationally sound but not
//! layout-preserving: a probe cluster that wrapped around the end of the
//! table re-inserts at its unwrapped home slots. Layout feeds the purge
//! sampler (values are sampled by slot position), so a refeed-rebuilt
//! engine can purge differently from the original — fatal for the
//! recovery contract that `checkpoint ⊕ replay` equals an uninterrupted
//! run *fingerprint-identically*. Checkpoints therefore record `(slot,
//! item, count)` triples and restore them verbatim
//! ([`crate::table::LpTable`]'s `restore_slot`), then re-validate the
//! probing invariants so hostile bytes cannot smuggle in an unreachable
//! counter.
//!
//! ## Layout (version 1, little-endian)
//!
//! ```text
//! magic "SFCK" | version u8 | flags u8 | reserved u16
//! epoch u64
//! key-type label (u16 len + UTF-8)
//! max_counters u64 | policy (tag u8, a u64, b u64) | seed u64 | lg_cur u32
//! offset u64 | stream_weight u64 | num_updates u64 | num_purges u64
//! sampler state u64 × 4
//! num_active u32 | num_active × (slot u32, item ItemCodec, count u64)
//! crc32c u32            (over every preceding byte)
//! ```
//!
//! Files are published with temp-file + rename + directory fsync
//! ([`write_checkpoint`]), so a crash mid-write leaves the previous
//! checkpoint untouched.

use std::path::Path;

use crate::engine::{SketchEngine, SketchEngineBuilder, SketchKey};
use crate::error::Error;
use crate::item_codec::ItemCodec;
use crate::purge::PurgePolicy;
use crate::rng::Xoshiro256StarStar;
use crate::table::LpTable;

use super::{crc32c, PersistError};

const MAGIC: &[u8; 4] = b"SFCK";
const VERSION: u8 = 1;

/// Metadata of a checkpoint file, decodable without knowing the key type
/// (everything up to the counter entries is fixed-layout). Backs the
/// `streamfreq info` command.
#[derive(Clone, Debug)]
pub struct CheckpointInfo {
    /// Checkpoint epoch (the store's checkpoint counter at write time).
    pub epoch: u64,
    /// The Rust key type the counters are encoded with.
    pub key_type: String,
    /// Maximum assigned counters (the paper's `k`).
    pub max_counters: u64,
    /// Purge policy.
    pub policy: PurgePolicy,
    /// Purge-sampler seed.
    pub seed: u64,
    /// Cumulative purge decrement (the maximum estimation error).
    pub offset: u64,
    /// Total weighted stream length `N` covered.
    pub stream_weight: u64,
    /// Update operations processed.
    pub num_updates: u64,
    /// Purge operations performed.
    pub num_purges: u64,
    /// Counters assigned at checkpoint time.
    pub num_counters: u64,
    /// True if the stream weight saturated at `u64::MAX`.
    pub weight_saturated: bool,
    /// True if the error offset saturated at `u64::MAX`.
    pub offset_saturated: bool,
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], Error> {
    if buf.len() < n {
        return Err(Error::Truncated {
            needed: n - buf.len(),
            remaining: buf.len(),
        });
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

/// Serializes `engine` into a checkpoint byte vector tagged with `epoch`.
pub fn encode_checkpoint<K: SketchKey + ItemCodec>(
    engine: &SketchEngine<K>,
    epoch: u64,
) -> Vec<u8> {
    let num_active = engine.table.num_active();
    let mut out = Vec::with_capacity(128 + 16 * num_active);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(u8::from(engine.weight_saturated) | u8::from(engine.offset_saturated) << 1);
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    let label = std::any::type_name::<K>().as_bytes();
    out.extend_from_slice(&(label.len() as u16).to_le_bytes());
    out.extend_from_slice(label);
    out.extend_from_slice(&(engine.max_counters as u64).to_le_bytes());
    out.push(crate::codec::policy_tag(&engine.policy));
    let (a, b) = crate::codec::policy_params(&engine.policy);
    out.extend_from_slice(&a.to_le_bytes());
    out.extend_from_slice(&b.to_le_bytes());
    out.extend_from_slice(&engine.seed.to_le_bytes());
    out.extend_from_slice(&engine.lg_cur.to_le_bytes());
    out.extend_from_slice(&engine.offset.to_le_bytes());
    out.extend_from_slice(&engine.stream_weight.to_le_bytes());
    out.extend_from_slice(&engine.num_updates.to_le_bytes());
    out.extend_from_slice(&engine.num_purges.to_le_bytes());
    for word in engine.rng.state() {
        out.extend_from_slice(&word.to_le_bytes());
    }
    out.extend_from_slice(&(num_active as u32).to_le_bytes());
    for (slot, key, value) in engine.table.iter_with_slots() {
        out.extend_from_slice(&(slot as u32).to_le_bytes());
        key.encode(&mut out);
        out.extend_from_slice(&(value as u64).to_le_bytes());
    }
    let crc = crc32c(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Parses the fixed-layout prefix shared by [`checkpoint_info`] and
/// [`decode_checkpoint`]; returns the info plus the cursor positioned at
/// the counter entries and the decoded sampler state / `lg_cur`.
#[allow(clippy::type_complexity)]
fn decode_header(body: &[u8]) -> Result<(CheckpointInfo, u32, [u64; 4], &[u8]), Error> {
    let mut buf = body;
    let magic = take(&mut buf, 4)?;
    if magic != MAGIC {
        return Err(Error::Corrupt(format!("bad checkpoint magic {magic:02x?}")));
    }
    let version = u8::decode(&mut buf)?;
    if version != VERSION {
        return Err(Error::UnsupportedVersion(version));
    }
    let flags = u8::decode(&mut buf)?;
    if flags > 3 {
        return Err(Error::Corrupt("nonzero reserved flag bits".into()));
    }
    let reserved = u16::decode(&mut buf)?;
    if reserved != 0 {
        return Err(Error::Corrupt("nonzero reserved header bytes".into()));
    }
    let epoch = u64::decode(&mut buf)?;
    let label_len = usize::from(u16::decode(&mut buf)?);
    let label = take(&mut buf, label_len)?;
    let key_type = std::str::from_utf8(label)
        .map_err(|_| Error::Corrupt("key-type label is not UTF-8".into()))?
        .to_string();
    let max_counters = u64::decode(&mut buf)?;
    let tag = u8::decode(&mut buf)?;
    let a = u64::decode(&mut buf)?;
    let b = u64::decode(&mut buf)?;
    let policy = crate::codec::policy_from_wire(tag, a, b)?;
    let seed = u64::decode(&mut buf)?;
    let lg_cur = u32::decode(&mut buf)?;
    let offset = u64::decode(&mut buf)?;
    let stream_weight = u64::decode(&mut buf)?;
    let num_updates = u64::decode(&mut buf)?;
    let num_purges = u64::decode(&mut buf)?;
    let mut state = [0u64; 4];
    for word in &mut state {
        *word = u64::decode(&mut buf)?;
    }
    let num_counters = u32::decode(&mut buf)?;
    let info = CheckpointInfo {
        epoch,
        key_type,
        max_counters,
        policy,
        seed,
        offset,
        stream_weight,
        num_updates,
        num_purges,
        num_counters: num_counters as u64,
        weight_saturated: flags & 1 != 0,
        offset_saturated: flags & 2 != 0,
    };
    Ok((info, lg_cur, state, buf))
}

/// Decodes a checkpoint's metadata without needing its key type: the
/// counter entries are not parsed (their byte integrity is still
/// guaranteed by the file CRC).
///
/// # Errors
/// Returns [`Error::Corrupt`] / [`Error::Truncated`] /
/// [`Error::UnsupportedVersion`] for malformed bytes.
pub fn checkpoint_info(bytes: &[u8]) -> Result<CheckpointInfo, Error> {
    let body = super::verify_trailing_crc(bytes)?;
    let (info, _, _, _) = decode_header(body)?;
    Ok(info)
}

/// Reconstructs the engine and epoch from checkpoint bytes. The result
/// is state-fingerprint-identical to the engine that was encoded.
///
/// # Errors
/// Returns [`Error`] for any malformed input: checksum mismatch, framing
/// problems, a key-type mismatch, impossible field values, or a counter
/// layout that violates the table's probing invariants.
pub fn decode_checkpoint<K: SketchKey + ItemCodec>(
    bytes: &[u8],
) -> Result<(SketchEngine<K>, u64), Error> {
    let body = super::verify_trailing_crc(bytes)?;
    let (info, lg_cur, rng_state, mut buf) = decode_header(body)?;
    let expected = std::any::type_name::<K>();
    if info.key_type != expected {
        return Err(Error::Corrupt(format!(
            "checkpoint key type is {}, expected {expected}",
            info.key_type
        )));
    }
    let max_counters = usize::try_from(info.max_counters)
        .map_err(|_| Error::Corrupt("max_counters exceeds usize".into()))?;
    let mut engine = SketchEngineBuilder::<K>::new(max_counters)
        .policy(info.policy)
        .seed(info.seed)
        .build()?;
    if lg_cur < engine.lg_cur || lg_cur > engine.lg_max {
        return Err(Error::Corrupt(format!(
            "table size 2^{lg_cur} outside the engine's 2^{}..=2^{} range",
            engine.lg_cur, engine.lg_max
        )));
    }
    engine.lg_cur = lg_cur;
    engine.table = LpTable::with_lg_len(lg_cur);
    let num_active = usize::try_from(info.num_counters)
        .map_err(|_| Error::Corrupt("num_counters overflows usize".into()))?;
    // The capacity discipline must hold at the recorded table size, and
    // at least one slot must stay vacant for the probe loops.
    if num_active > engine.capacity_now() || num_active >= engine.table.len() {
        return Err(Error::Corrupt(format!(
            "{num_active} counters exceed capacity at table size 2^{lg_cur}"
        )));
    }
    let mut last_slot: Option<u32> = None;
    for _ in 0..num_active {
        let slot = u32::decode(&mut buf)?;
        if let Some(prev) = last_slot {
            if slot <= prev {
                return Err(Error::Corrupt("counter slots out of order".into()));
            }
        }
        last_slot = Some(slot);
        let item = K::decode(&mut buf)?;
        let count = u64::decode(&mut buf)?;
        if count == 0 {
            return Err(Error::Corrupt("counter value 0 out of range".into()));
        }
        let count = i64::try_from(count)
            .map_err(|_| Error::Corrupt(format!("counter value {count} out of range")))?;
        let slot = usize::try_from(slot)
            .map_err(|_| Error::Corrupt("counter slot overflows usize".into()))?;
        engine
            .table
            .restore_slot(slot, item, count)
            .map_err(Error::Corrupt)?;
    }
    if !buf.is_empty() {
        return Err(Error::Corrupt("trailing bytes after counters".into()));
    }
    engine.table.validate_layout().map_err(Error::Corrupt)?;
    if rng_state == [0; 4] {
        return Err(Error::Corrupt("invalid all-zero sampler state".into()));
    }
    engine.offset = info.offset;
    engine.offset_saturated = info.offset_saturated;
    engine.stream_weight = info.stream_weight;
    engine.weight_saturated = info.weight_saturated;
    engine.num_updates = info.num_updates;
    engine.num_purges = info.num_purges;
    engine.rng = Xoshiro256StarStar::from_state(rng_state);
    // Final gate: whole-engine invariants (capacity discipline, mass
    // conservation) must hold for the restored state; a CRC-valid frame
    // that violates them is corrupt, not panic-worthy.
    engine.audit().map_err(Error::Corrupt)?;
    Ok((engine, info.epoch))
}

/// Writes `engine`'s checkpoint to `path` atomically: the bytes go to a
/// sibling `.tmp` file, are fsynced, renamed over `path`, and the parent
/// directory is fsynced. A crash at any point leaves either the old file
/// or the new one, never a torn mix.
pub fn write_checkpoint<K: SketchKey + ItemCodec>(
    path: &Path,
    engine: &SketchEngine<K>,
    epoch: u64,
) -> Result<(), PersistError> {
    super::atomic_write(path, &encode_checkpoint(engine, epoch))
}

/// Reads and decodes the checkpoint at `path`.
///
/// # Errors
/// A missing file is reported as [`PersistError::Corrupt`] (the caller
/// reached this path through a manifest that promised the file exists);
/// other failures map from [`decode_checkpoint`].
pub fn read_checkpoint<K: SketchKey + ItemCodec>(
    path: &Path,
) -> Result<(SketchEngine<K>, u64), PersistError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(PersistError::corrupt(
                path,
                "manifest references a missing checkpoint file",
            ))
        }
        Err(e) => return Err(PersistError::io(path, e)),
    };
    decode_checkpoint(&bytes).map_err(|e| PersistError::corrupt(path, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An engine loaded enough to have grown, purged, and (at k values
    /// this small) formed wrap-around probe clusters.
    fn loaded_engine(seed: u64) -> SketchEngine<u64> {
        let mut e: SketchEngine<u64> = SketchEngine::builder(96).seed(seed).build().unwrap();
        for i in 0..40_000u64 {
            e.update(i % 700, i % 13 + 1);
        }
        assert!(e.num_purges() > 0);
        e
    }

    #[test]
    fn roundtrip_is_fingerprint_identical() {
        for seed in [1u64, 7, 42, 1234] {
            let original = loaded_engine(seed);
            let bytes = encode_checkpoint(&original, 9);
            let (decoded, epoch) = decode_checkpoint::<u64>(&bytes).unwrap();
            assert_eq!(epoch, 9);
            assert_eq!(
                decoded.state_fingerprint(),
                original.state_fingerprint(),
                "seed {seed}"
            );
            assert_eq!(
                decoded.table_layout_fingerprint(),
                original.table_layout_fingerprint()
            );
            assert_eq!(decoded.seed(), original.seed());
        }
    }

    #[test]
    fn roundtrip_then_identical_future_behaviour() {
        let mut original = loaded_engine(3);
        let (mut decoded, _) = decode_checkpoint::<u64>(&encode_checkpoint(&original, 1)).unwrap();
        for i in 0..30_000u64 {
            original.update(i % 911, 3);
            decoded.update(i % 911, 3);
        }
        assert_eq!(decoded.state_fingerprint(), original.state_fingerprint());
    }

    #[test]
    fn string_keys_roundtrip() {
        let mut e: SketchEngine<String> = SketchEngine::builder(32).build().unwrap();
        for i in 0..5_000u64 {
            e.update(format!("flow-{}", i % 120), i % 5 + 1);
        }
        let (d, _) = decode_checkpoint::<String>(&encode_checkpoint(&e, 2)).unwrap();
        assert_eq!(d.state_fingerprint(), e.state_fingerprint());
    }

    #[test]
    fn empty_engine_roundtrips() {
        let e: SketchEngine<u64> = SketchEngine::builder(64).build().unwrap();
        let (d, epoch) = decode_checkpoint::<u64>(&encode_checkpoint(&e, 0)).unwrap();
        assert_eq!(epoch, 0);
        assert_eq!(d.state_fingerprint(), e.state_fingerprint());
    }

    #[test]
    fn info_reads_metadata_without_key_type() {
        let e = loaded_engine(5);
        let info = checkpoint_info(&encode_checkpoint(&e, 77)).unwrap();
        assert_eq!(info.epoch, 77);
        assert_eq!(info.key_type, "u64");
        assert_eq!(info.max_counters, 96);
        assert_eq!(info.stream_weight, e.stream_weight());
        assert_eq!(info.offset, e.maximum_error());
        assert_eq!(info.num_counters as usize, e.num_counters());
        assert!(!info.weight_saturated && !info.offset_saturated);
    }

    #[test]
    fn saturation_flags_roundtrip() {
        let mut e: SketchEngine<u64> = SketchEngine::builder(16).build().unwrap();
        e.update(1, 5);
        e.offset = u64::MAX;
        e.offset_saturated = true;
        e.stream_weight = u64::MAX;
        e.weight_saturated = true;
        let bytes = encode_checkpoint(&e, 1);
        let info = checkpoint_info(&bytes).unwrap();
        assert!(info.weight_saturated && info.offset_saturated);
        let (d, _) = decode_checkpoint::<u64>(&bytes).unwrap();
        assert!(d.maximum_error_saturated() && d.stream_weight_saturated());
        assert_eq!(d.state_fingerprint(), e.state_fingerprint());
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        // The CRC makes corruption loud: unlike the bare wire codecs, a
        // flipped counter byte cannot decode into a plausible sketch.
        let e = loaded_engine(11);
        let bytes = encode_checkpoint(&e, 4);
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1;
            assert!(
                decode_checkpoint::<u64>(&corrupt).is_err(),
                "flip at byte {i} of {} accepted",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let e = loaded_engine(13);
        let bytes = encode_checkpoint(&e, 4);
        for cut in 0..bytes.len() {
            assert!(
                decode_checkpoint::<u64>(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn crafted_duplicate_key_is_rejected() {
        // A hostile checkpoint with a *valid* CRC that stores the same
        // key (with the same count) in two adjacent slots: restore_slot
        // accepts each slot individually and the probe path is
        // gap-free, so only the duplicate-shadowing check in
        // validate_layout stands between this and an engine that
        // reports the key twice.
        let mut e: SketchEngine<u64> = SketchEngine::builder(16).build().unwrap();
        e.update(42, 7);
        let bytes = encode_checkpoint(&e, 1);
        let n = bytes.len();
        // Layout from the end: [.. num_active u32 | slot u32, key u64,
        // count u64 | crc u32].
        let entry = bytes[n - 24..n - 4].to_vec();
        let slot = u32::from_le_bytes(entry[0..4].try_into().unwrap());
        let mut forged = bytes[..n - 4].to_vec();
        forged[n - 28..n - 24].copy_from_slice(&2u32.to_le_bytes()); // num_active = 2
        forged.extend_from_slice(&(slot + 1).to_le_bytes()); // adjacent slot
        forged.extend_from_slice(&entry[4..]); // same key, same count
        let crc = super::super::crc32c(&forged);
        forged.extend_from_slice(&crc.to_le_bytes());
        let err = decode_checkpoint::<u64>(&forged).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn crafted_mass_violation_is_rejected() {
        // A hostile checkpoint with a valid CRC whose single counter
        // claims more mass than the recorded stream weight. Every field
        // decodes individually; only the whole-engine audit at the end of
        // decode_checkpoint can see the inconsistency.
        let mut e: SketchEngine<u64> = SketchEngine::builder(16).build().unwrap();
        e.update(42, 7);
        let bytes = encode_checkpoint(&e, 1);
        let n = bytes.len();
        // Layout from the end: [.. slot u32, key u64, count u64 | crc u32].
        let mut forged = bytes[..n - 4].to_vec();
        forged[n - 12..n - 4].copy_from_slice(&1_000_000u64.to_le_bytes());
        let crc = super::super::crc32c(&forged);
        forged.extend_from_slice(&crc.to_le_bytes());
        let err = decode_checkpoint::<u64>(&forged).unwrap_err();
        assert!(err.to_string().contains("mass"), "{err}");
    }

    #[test]
    fn key_type_mismatch_is_rejected() {
        let mut e: SketchEngine<u64> = SketchEngine::builder(16).build().unwrap();
        e.update(1, 1);
        let bytes = encode_checkpoint(&e, 1);
        let err = decode_checkpoint::<String>(&bytes).unwrap_err();
        assert!(err.to_string().contains("key type"), "{err}");
    }

    #[test]
    fn atomic_write_and_read_back() {
        let dir = std::env::temp_dir().join("streamfreq-ckpt-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ck");
        let e = loaded_engine(17);
        write_checkpoint(&path, &e, 3).unwrap();
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file renamed away"
        );
        let (d, epoch) = read_checkpoint::<u64>(&path).unwrap();
        assert_eq!(epoch, 3);
        assert_eq!(d.state_fingerprint(), e.state_fingerprint());
        std::fs::remove_file(&path).unwrap();
        let err = read_checkpoint::<u64>(&path).unwrap_err();
        assert!(err.to_string().contains("missing checkpoint"), "{err}");
    }
}
