//! The durable store: a manifest tying a checkpoint to a WAL position,
//! and [`DurableSketch`] — a [`SketchEngine`] whose updates are logged
//! before they are applied.
//!
//! ## Directory layout
//!
//! ```text
//! <dir>/MANIFEST            what to recover from (atomic, CRC'd)
//! <dir>/ckpt-<epoch>.ck     the newest checkpoint (older ones deleted)
//! <dir>/wal-<seq>.seg       WAL segments ≥ the manifest's replay start
//! ```
//!
//! A multi-shard store (the [`crate::ConcurrentSketch`] durability hook)
//! nests one such directory per shard under `shard-<i>/`, plus a
//! top-level `STORE` file recording the bank configuration.
//!
//! ## The checkpoint protocol
//!
//! [`DurableSketch::checkpoint`] makes durability incremental:
//!
//! 1. rotate the WAL to a fresh segment (future records land there);
//! 2. write `ckpt-<epoch+1>.ck` atomically;
//! 3. publish a new MANIFEST pointing at (new checkpoint, new segment);
//! 4. only then delete the older segments and checkpoints.
//!
//! A crash between any two steps leaves the *previous* manifest's
//! checkpoint and segments fully intact, so recovery always has a
//! consistent pair to start from. Leftover files from a torn checkpoint
//! (a stale `.tmp`, an unreferenced newer segment) are ignored or
//! cleaned on the next successful checkpoint.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::engine::{SketchEngine, SketchKey};
use crate::error::Error;
use crate::item_codec::ItemCodec;
use crate::purge::PurgePolicy;

use super::checkpoint::write_checkpoint;
use super::group::{CheckpointRound, GroupCommitWal, GroupWalStats};
use super::recover::RecoveryReport;
use super::wal::{WalPosition, SEGMENT_HEADER_LEN};
use super::{crc32c, EngineConfig, FsyncPolicy, PersistError};

const MANIFEST_MAGIC: &[u8; 4] = b"SFMF";
const MANIFEST_VERSION_V1: u8 = 1;
/// Version 2 appends the shared-log flag and stream tag; manifests of
/// single-engine stores still encode as v1 for byte compatibility.
const MANIFEST_VERSION: u8 = 2;
const STORE_MAGIC: &[u8; 4] = b"SFST";
const STORE_VERSION: u8 = 1;

/// File name of the manifest inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// File name of the bank-level metadata of a sharded store.
pub const STORE_FILE: &str = "STORE";

/// Runtime knobs of a durable store (what is *not* recorded on disk:
/// these may change between runs without invalidating the data).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DurabilityOptions {
    /// When WAL bytes are forced to stable storage.
    pub fsync: FsyncPolicy,
    /// Segment size at which the WAL rotates to a new file.
    pub segment_bytes: u64,
}

impl Default for DurabilityOptions {
    /// 8 MiB fsync budget, 64 MiB segments.
    fn default() -> Self {
        DurabilityOptions {
            fsync: FsyncPolicy::default(),
            segment_bytes: 64 << 20,
        }
    }
}

/// The recovery pointer: which checkpoint to load and where in the WAL
/// to start replaying. Also records the engine configuration so a store
/// that crashed before its first checkpoint can rebuild the engine
/// exactly as the original run started it.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Checkpoint epoch (0 until the first checkpoint).
    pub epoch: u64,
    /// Engine construction parameters.
    pub config: EngineConfig,
    /// File name of the checkpoint to load, if one exists.
    pub checkpoint: Option<String>,
    /// First WAL position to replay.
    pub wal_start: WalPosition,
    /// True when this shard's records live in the bank-level shared log
    /// (one directory up), tagged with `stream`; false when the log is
    /// in this directory — the only layout before manifest v2.
    pub shared_log: bool,
    /// This shard's stream tag in the shared log.
    pub stream: u32,
}

impl Manifest {
    /// Decodes a manifest from its file bytes (CRC-verified) — the
    /// introspection hook behind `streamfreq info`.
    ///
    /// # Errors
    /// Returns [`Error`] for bad checksums, framing, or field values.
    pub fn from_bytes(bytes: &[u8]) -> Result<Manifest, Error> {
        Manifest::decode(bytes)
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(96);
        out.extend_from_slice(MANIFEST_MAGIC);
        // Shard-local stores keep the v1 byte layout so their manifests
        // stay readable by the previous release.
        out.push(if self.shared_log {
            MANIFEST_VERSION
        } else {
            MANIFEST_VERSION_V1
        });
        out.push(u8::from(self.config.grow_from_small));
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.config.max_counters as u64).to_le_bytes());
        out.push(crate::codec::policy_tag(&self.config.policy));
        let (a, b) = crate::codec::policy_params(&self.config.policy);
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
        out.extend_from_slice(&self.config.seed.to_le_bytes());
        let name = self.checkpoint.as_deref().unwrap_or("");
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&self.wal_start.segment.to_le_bytes());
        out.extend_from_slice(&self.wal_start.offset.to_le_bytes());
        if self.shared_log {
            out.push(1);
            out.extend_from_slice(&self.stream.to_le_bytes());
        }
        let crc = crc32c(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Result<Manifest, Error> {
        let mut buf = super::verify_trailing_crc(bytes)?;
        let magic = u32::decode(&mut buf)?.to_le_bytes();
        if &magic != MANIFEST_MAGIC {
            return Err(Error::Corrupt(format!("bad manifest magic {magic:02x?}")));
        }
        let version = u8::decode(&mut buf)?;
        if version != MANIFEST_VERSION_V1 && version != MANIFEST_VERSION {
            return Err(Error::UnsupportedVersion(version));
        }
        let grow_flag = u8::decode(&mut buf)?;
        if grow_flag > 1 {
            return Err(Error::Corrupt("bad grow_from_small flag".into()));
        }
        let epoch = u64::decode(&mut buf)?;
        let max_counters = usize::try_from(u64::decode(&mut buf)?)
            .map_err(|_| Error::Corrupt("max_counters exceeds usize".into()))?;
        let tag = u8::decode(&mut buf)?;
        let a = u64::decode(&mut buf)?;
        let b = u64::decode(&mut buf)?;
        let policy = crate::codec::policy_from_wire(tag, a, b)?;
        let seed = u64::decode(&mut buf)?;
        let name_len = usize::from(u16::decode(&mut buf)?);
        if buf.len() < name_len {
            return Err(Error::Truncated {
                needed: name_len - buf.len(),
                remaining: buf.len(),
            });
        }
        let (name, rest) = buf.split_at(name_len);
        buf = rest;
        let name = std::str::from_utf8(name)
            .map_err(|_| Error::Corrupt("checkpoint name is not UTF-8".into()))?;
        if name.contains(['/', '\\']) {
            return Err(Error::Corrupt("checkpoint name escapes the store".into()));
        }
        let segment = u64::decode(&mut buf)?;
        let offset = u64::decode(&mut buf)?;
        let (shared_log, stream) = if version == MANIFEST_VERSION {
            let flag = u8::decode(&mut buf)?;
            if flag != 1 {
                return Err(Error::Corrupt("bad shared-log flag".into()));
            }
            (true, u32::decode(&mut buf)?)
        } else {
            (false, 0)
        };
        if !buf.is_empty() {
            return Err(Error::Corrupt("trailing bytes after manifest".into()));
        }
        if segment == 0 || offset < SEGMENT_HEADER_LEN {
            return Err(Error::Corrupt("impossible WAL position".into()));
        }
        Ok(Manifest {
            epoch,
            config: EngineConfig {
                max_counters,
                policy,
                seed,
                grow_from_small: grow_flag == 1,
            },
            checkpoint: (!name.is_empty()).then(|| name.to_string()),
            wal_start: WalPosition { segment, offset },
            shared_log,
            stream,
        })
    }
}

/// Atomically publishes `manifest` in `dir` (temp + rename + dir fsync).
pub fn write_manifest(dir: &Path, manifest: &Manifest) -> Result<(), PersistError> {
    super::atomic_write(&dir.join(MANIFEST_FILE), &manifest.encode())
}

/// Reads the manifest in `dir`, or `None` if no store was created there.
pub fn read_manifest(dir: &Path) -> Result<Option<Manifest>, PersistError> {
    let path = dir.join(MANIFEST_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PersistError::io(&path, e)),
    };
    Manifest::decode(&bytes)
        .map(Some)
        .map_err(|e| PersistError::corrupt(&path, e.to_string()))
}

/// Bank-level metadata of a sharded durable store: enough for offline
/// tooling (`streamfreq recover` / `checkpoint`) to rebuild the bank
/// without being told the serve-time flags.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreMeta {
    /// Number of shard subdirectories.
    pub num_shards: usize,
    /// Counters per shard engine.
    pub counters_per_shard: usize,
    /// Counter budget of the merged (Algorithm 5) export.
    pub merged_capacity: usize,
    /// Purge policy of every shard.
    pub policy: PurgePolicy,
    /// Base sampler seed (shard `s` uses `seed + s`).
    pub seed: u64,
}

impl StoreMeta {
    /// Decodes bank metadata from its file bytes (CRC-verified) — the
    /// introspection hook behind `streamfreq info`.
    ///
    /// # Errors
    /// Returns [`Error`] for bad checksums, framing, or field values.
    pub fn from_bytes(bytes: &[u8]) -> Result<StoreMeta, Error> {
        StoreMeta::decode(bytes)
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(STORE_MAGIC);
        out.push(STORE_VERSION);
        out.extend_from_slice(&(self.num_shards as u32).to_le_bytes());
        out.extend_from_slice(&(self.counters_per_shard as u64).to_le_bytes());
        out.extend_from_slice(&(self.merged_capacity as u64).to_le_bytes());
        out.push(crate::codec::policy_tag(&self.policy));
        let (a, b) = crate::codec::policy_params(&self.policy);
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        let crc = crc32c(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Result<StoreMeta, Error> {
        let mut buf = super::verify_trailing_crc(bytes)?;
        let magic = u32::decode(&mut buf)?.to_le_bytes();
        if &magic != STORE_MAGIC {
            return Err(Error::Corrupt(format!("bad store magic {magic:02x?}")));
        }
        let version = u8::decode(&mut buf)?;
        if version != STORE_VERSION {
            return Err(Error::UnsupportedVersion(version));
        }
        let num_shards = usize::try_from(u32::decode(&mut buf)?)
            .map_err(|_| Error::Corrupt("num_shards exceeds usize".into()))?;
        if num_shards == 0 {
            return Err(Error::Corrupt("store has zero shards".into()));
        }
        let counters_per_shard = usize::try_from(u64::decode(&mut buf)?)
            .map_err(|_| Error::Corrupt("counters_per_shard exceeds usize".into()))?;
        let merged_capacity = usize::try_from(u64::decode(&mut buf)?)
            .map_err(|_| Error::Corrupt("merged_capacity exceeds usize".into()))?;
        let tag = u8::decode(&mut buf)?;
        let a = u64::decode(&mut buf)?;
        let b = u64::decode(&mut buf)?;
        let policy = crate::codec::policy_from_wire(tag, a, b)?;
        let seed = u64::decode(&mut buf)?;
        if !buf.is_empty() {
            return Err(Error::Corrupt("trailing bytes after store metadata".into()));
        }
        Ok(StoreMeta {
            num_shards,
            counters_per_shard,
            merged_capacity,
            policy,
            seed,
        })
    }
}

/// Atomically publishes the bank metadata in `dir`.
pub fn write_store_meta(dir: &Path, meta: &StoreMeta) -> Result<(), PersistError> {
    super::atomic_write(&dir.join(STORE_FILE), &meta.encode())
}

/// Reads the bank metadata in `dir`, or `None` if absent.
pub fn read_store_meta(dir: &Path) -> Result<Option<StoreMeta>, PersistError> {
    let path = dir.join(STORE_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PersistError::io(&path, e)),
    };
    StoreMeta::decode(&bytes)
        .map(Some)
        .map_err(|e| PersistError::corrupt(&path, e.to_string()))
}

/// The shard subdirectory of a sharded store.
pub fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:04}"))
}

/// File name of the checkpoint written at `epoch`.
pub(crate) fn checkpoint_file_name(epoch: u64) -> String {
    format!("ckpt-{epoch:016}.ck")
}

/// A [`SketchEngine`] with a write-ahead log in front of it and periodic
/// checkpoints behind it. Every update batch is appended to the WAL
/// *before* it is applied, so the engine's state is always recoverable
/// as `checkpoint ⊕ replay` — see the [module docs](self) for the
/// checkpoint protocol and [`crate::persist`] for the guarantees.
#[derive(Debug)]
pub struct DurableSketch<K: SketchKey + ItemCodec> {
    pub(crate) engine: SketchEngine<K>,
    /// The group-commit log — shared (`Arc`) across every shard of a
    /// bank, exclusively owned by a single-engine store.
    pub(crate) wal: Arc<GroupCommitWal>,
    /// Checkpoint rendezvous over that log (1 participant when alone).
    pub(crate) round: Arc<CheckpointRound>,
    pub(crate) dir: PathBuf,
    pub(crate) epoch: u64,
    pub(crate) config: EngineConfig,
    /// Stream tag on this store's frames (0 unless a bank shard).
    pub(crate) stream: u32,
    /// Whether manifests should point at the bank-level shared log.
    pub(crate) shared_log: bool,
    /// Reused frame scratch so steady-state appends do not allocate.
    pub(crate) frame_buf: Vec<u8>,
}

impl<K: SketchKey + ItemCodec> DurableSketch<K> {
    /// Opens the store in `dir`, recovering any existing state (creating
    /// the directory and a fresh store if none exists). The requested
    /// `config` must match a pre-existing store's recorded configuration.
    ///
    /// # Errors
    /// [`PersistError::ConfigMismatch`] if `dir` holds a store built with
    /// different parameters; [`PersistError::Corrupt`] for damaged state
    /// (bad checksums, missing files a manifest references); I/O errors
    /// otherwise.
    pub fn open(
        dir: &Path,
        config: EngineConfig,
        opts: DurabilityOptions,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        super::recover::open_sketch(dir, config, opts)
    }

    /// Opens an existing store using the configuration recorded in its
    /// manifest — what offline tooling (`streamfreq checkpoint`) uses,
    /// since it has no serve-time flags to supply.
    ///
    /// # Errors
    /// [`PersistError::Corrupt`] if `dir` holds no manifest; otherwise
    /// as [`Self::open`].
    pub fn open_existing(
        dir: &Path,
        opts: DurabilityOptions,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        let manifest = read_manifest(dir)?
            .ok_or_else(|| PersistError::corrupt(dir, "no MANIFEST in store directory"))?;
        Self::open(dir, manifest.config, opts)
    }

    /// The engine holding the live state.
    #[inline]
    pub fn engine(&self) -> &SketchEngine<K> {
        &self.engine
    }

    /// The store directory.
    #[inline]
    pub fn data_dir(&self) -> &Path {
        &self.dir
    }

    /// The epoch of the newest durable checkpoint (0 before the first).
    #[inline]
    pub fn last_checkpoint_epoch(&self) -> u64 {
        self.epoch
    }

    /// Bytes currently held by WAL segments on disk.
    #[inline]
    pub fn wal_bytes(&self) -> u64 {
        self.wal.total_bytes()
    }

    /// Logs and applies one weighted update.
    ///
    /// # Errors
    /// On a WAL I/O failure the update is **not** applied to the engine
    /// (the log never lags the state).
    pub fn update(&mut self, item: K, weight: u64) -> Result<(), PersistError> {
        if weight == 0 {
            return Ok(());
        }
        self.update_batch(std::slice::from_ref(&(item, weight)))
    }

    /// Logs and applies a batch of weighted updates, state-identically
    /// to [`SketchEngine::update_batch`].
    ///
    /// # Errors
    /// On a WAL I/O failure the batch is **not** applied to the engine.
    pub fn update_batch(&mut self, batch: &[(K, u64)]) -> Result<(), PersistError> {
        if batch.is_empty() {
            return Ok(());
        }
        self.frame_buf.clear();
        super::wal::encode_frame(&mut self.frame_buf, self.stream, self.epoch, batch);
        self.wal.append_frame(&self.frame_buf)?;
        self.engine.update_batch(batch);
        Ok(())
    }

    /// Forces all logged bytes to stable storage regardless of the
    /// configured [`FsyncPolicy`].
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.wal.sync_all()
    }

    /// Group-commit counters of the underlying log (bank-wide when the
    /// log is shared).
    pub fn wal_stats(&self) -> GroupWalStats {
        self.wal.stats()
    }

    /// Capacity of the reusable frame-encode scratch buffer. Constant
    /// once warmed up: the encode path allocates O(1) per flush, not
    /// per batch (`fig_persist` asserts this stays flat).
    pub fn encode_scratch_capacity(&self) -> usize {
        self.frame_buf.capacity()
    }

    /// Takes a checkpoint: writes the full engine state atomically,
    /// repoints the manifest at it, and truncates the now-redundant WAL
    /// prefix. Over a shared log this is one leg of a bank-wide round —
    /// the call blocks until every sibling shard checkpoints too, and
    /// only the round's last finisher truncates. Returns the new
    /// checkpoint epoch.
    ///
    /// # Errors
    /// On failure the store is left on its previous (still consistent)
    /// checkpoint+WAL pair; a round with any failed shard truncates
    /// nothing.
    pub fn checkpoint(&mut self) -> Result<u64, PersistError> {
        let new_epoch = self.epoch + 1;
        let wal = Arc::clone(&self.wal);
        let replay_start = match self.round.arrive(|| wal.rotate_for_checkpoint()) {
            Ok(pos) => pos,
            Err(e) => {
                self.round.depart(false);
                return Err(e);
            }
        };
        let published = self.publish_checkpoint(new_epoch, replay_start);
        let truncate = self.round.depart(published.is_ok());
        published?;
        if truncate {
            // Only after every manifest of the round is durable may the
            // old state go.
            self.wal.remove_segments_below(replay_start.segment)?;
        }
        self.epoch = new_epoch;
        if !self.shared_log {
            // A shared log cannot be audited from one shard of a live
            // bank: sibling checkpoints truncate, and sibling appends
            // rotate, concurrently with the re-read. The bank-wide audit
            // runs in checkpoint_bank, where shard access is exclusive
            // and the group-commit queue has drained.
            self.debug_audit_wal_chain();
        }
        Ok(new_epoch)
    }

    /// Writes this store's checkpoint file and manifest for `new_epoch`
    /// and cleans superseded checkpoint files.
    fn publish_checkpoint(
        &self,
        new_epoch: u64,
        replay_start: WalPosition,
    ) -> Result<(), PersistError> {
        let name = checkpoint_file_name(new_epoch);
        write_checkpoint(&self.dir.join(&name), &self.engine, new_epoch)?;
        write_manifest(
            &self.dir,
            &Manifest {
                epoch: new_epoch,
                config: self.config,
                checkpoint: Some(name.clone()),
                wal_start: replay_start,
                shared_log: self.shared_log,
                stream: self.stream,
            },
        )?;
        for entry in std::fs::read_dir(&self.dir).map_err(|e| PersistError::io(&self.dir, e))? {
            let entry = entry.map_err(|e| PersistError::io(&self.dir, e))?;
            let file_name = entry.file_name();
            let Some(file_name) = file_name.to_str() else {
                continue;
            };
            if file_name.starts_with("ckpt-")
                && file_name.ends_with(".ck")
                && file_name != name.as_str()
            {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        Ok(())
    }

    /// Consumes the store, returning the engine (the on-disk state stays
    /// as-is and remains recoverable).
    pub fn into_engine(self) -> SketchEngine<K> {
        self.engine
    }

    /// `debug-invariants` hook: re-audits the on-disk WAL frame chain
    /// after structural log changes (rotation and truncation). A full
    /// log re-read, so it runs only on the checkpoint path — never per
    /// append — and only where no other thread can mutate the log
    /// mid-read (per-store checkpoints and the single-threaded bank
    /// round). Compiles to nothing without the feature.
    #[cfg(feature = "debug-invariants")]
    fn debug_audit_wal_chain(&self) {
        // A bank shard's shared log lives in the bank root, one level
        // above the shard directory its manifests live in.
        let wal_dir = if self.shared_log {
            self.dir.parent().unwrap_or(&self.dir)
        } else {
            &self.dir
        };
        if let Err(e) = super::wal::audit_chain::<K>(wal_dir) {
            panic!("debug-invariants: WAL chain audit failed: {e}");
        }
    }

    #[cfg(not(feature = "debug-invariants"))]
    #[inline(always)]
    fn debug_audit_wal_chain(&self) {}
}

/// Checkpoints every shard of a bank from one thread — what offline
/// tooling (`streamfreq checkpoint`) uses, since [`DurableSketch::
/// checkpoint`] over a shared log blocks for its sibling shards. One
/// rotation, all checkpoints and manifests, then one truncation, with
/// the same crash-consistency as the concurrent round.
///
/// All shards must share one log (they do when produced by a bank open).
///
/// # Errors
/// On failure nothing is truncated and every shard stays on a
/// consistent checkpoint+WAL pair (shards already checkpointed this
/// call keep their new manifests, which still replay correctly).
pub fn checkpoint_bank<K: SketchKey + ItemCodec>(
    shards: &mut [DurableSketch<K>],
) -> Result<(), PersistError> {
    let Some(first) = shards.first() else {
        return Ok(());
    };
    let wal = Arc::clone(&first.wal);
    let replay_start = wal.rotate_for_checkpoint()?;
    for shard in shards.iter_mut() {
        let new_epoch = shard.epoch + 1;
        shard.publish_checkpoint(new_epoch, replay_start)?;
        shard.epoch = new_epoch;
    }
    wal.remove_segments_below(replay_start.segment)?;
    if let Some(first) = shards.first() {
        first.debug_audit_wal_chain();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("streamfreq-store-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn manifest_roundtrip() {
        for manifest in [
            Manifest {
                epoch: 0,
                config: EngineConfig::new(64),
                checkpoint: None,
                wal_start: WalPosition {
                    segment: 1,
                    offset: SEGMENT_HEADER_LEN,
                },
                shared_log: false,
                stream: 0,
            },
            Manifest {
                epoch: 12,
                config: EngineConfig::new(4096)
                    .policy(PurgePolicy::GlobalMin)
                    .seed(99)
                    .grow_from_small(false),
                checkpoint: Some(checkpoint_file_name(12)),
                wal_start: WalPosition {
                    segment: 40,
                    offset: 12_345,
                },
                shared_log: false,
                stream: 0,
            },
            Manifest {
                epoch: 7,
                config: EngineConfig::new(256),
                checkpoint: Some(checkpoint_file_name(7)),
                wal_start: WalPosition {
                    segment: 3,
                    offset: 4_242,
                },
                shared_log: true,
                stream: 11,
            },
        ] {
            let decoded = Manifest::decode(&manifest.encode()).unwrap();
            assert_eq!(decoded, manifest);
        }
    }

    #[test]
    fn shard_local_manifests_keep_the_v1_byte_layout() {
        // A non-shared manifest must stay readable by the previous
        // release: version byte 1, no trailing shared-log fields.
        let manifest = Manifest {
            epoch: 2,
            config: EngineConfig::new(64),
            checkpoint: None,
            wal_start: WalPosition {
                segment: 1,
                offset: SEGMENT_HEADER_LEN,
            },
            shared_log: false,
            stream: 0,
        };
        let bytes = manifest.encode();
        assert_eq!(bytes[4], MANIFEST_VERSION_V1);
        let shared = Manifest {
            shared_log: true,
            stream: 3,
            ..manifest
        };
        let shared_bytes = shared.encode();
        assert_eq!(shared_bytes[4], MANIFEST_VERSION);
        assert_eq!(shared_bytes.len(), bytes.len() + 5);
    }

    #[test]
    fn manifest_rejects_corruption_and_traversal() {
        let manifest = Manifest {
            epoch: 3,
            config: EngineConfig::new(64),
            checkpoint: Some("ckpt-x.ck".into()),
            wal_start: WalPosition {
                segment: 2,
                offset: 8,
            },
            shared_log: false,
            stream: 0,
        };
        for manifest in [
            manifest.clone(),
            Manifest {
                shared_log: true,
                stream: 9,
                ..manifest.clone()
            },
        ] {
            let bytes = manifest.encode();
            for i in 0..bytes.len() {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 0x10;
                assert!(Manifest::decode(&corrupt).is_err(), "flip at {i} accepted");
            }
        }
        let traversal = Manifest {
            checkpoint: Some("../evil.ck".into()),
            ..manifest
        };
        assert!(Manifest::decode(&traversal.encode()).is_err());
    }

    #[test]
    fn store_meta_roundtrip_and_corruption() {
        let meta = StoreMeta {
            num_shards: 4,
            counters_per_shard: 128,
            merged_capacity: 512,
            policy: PurgePolicy::smed(),
            seed: 7,
        };
        let bytes = meta.encode();
        assert_eq!(StoreMeta::decode(&bytes).unwrap(), meta);
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x04;
            assert!(StoreMeta::decode(&corrupt).is_err(), "flip at {i} accepted");
        }
    }

    #[test]
    fn manifest_file_roundtrip() {
        let dir = tmp_dir("manifest-file");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(read_manifest(&dir).unwrap().is_none());
        let manifest = Manifest {
            epoch: 5,
            config: EngineConfig::new(32),
            checkpoint: Some(checkpoint_file_name(5)),
            wal_start: WalPosition {
                segment: 6,
                offset: 8,
            },
            shared_log: true,
            stream: 2,
        };
        write_manifest(&dir, &manifest).unwrap();
        assert_eq!(read_manifest(&dir).unwrap().unwrap(), manifest);
    }

    #[test]
    fn durable_updates_checkpoint_and_truncate() {
        let dir = tmp_dir("durable-basic");
        let config = EngineConfig::new(64).seed(3);
        let (mut store, report) =
            DurableSketch::<u64>::open(&dir, config, DurabilityOptions::default()).unwrap();
        assert_eq!(report.records_replayed, 0);
        for i in 0..2_000u64 {
            store.update(i % 50, i % 7 + 1).unwrap();
        }
        // wal_bytes reports the on-disk log; barrier past the async
        // log-writer before sampling it.
        store.sync().unwrap();
        let wal_before = store.wal_bytes();
        assert!(wal_before > SEGMENT_HEADER_LEN);
        assert_eq!(store.last_checkpoint_epoch(), 0);
        let epoch = store.checkpoint().unwrap();
        assert_eq!(epoch, 1);
        assert!(
            store.wal_bytes() < wal_before,
            "checkpoint must truncate the log ({} -> {})",
            wal_before,
            store.wal_bytes()
        );
        // A second checkpoint removes the first's file.
        store.update_batch(&[(1, 5), (2, 5)]).unwrap();
        store.checkpoint().unwrap();
        assert!(dir.join(checkpoint_file_name(2)).exists());
        assert!(!dir.join(checkpoint_file_name(1)).exists());
        let n = store.engine().stream_weight();
        drop(store);
        // Reopen: state is intact.
        let (store, report) =
            DurableSketch::<u64>::open(&dir, config, DurabilityOptions::default()).unwrap();
        assert_eq!(store.engine().stream_weight(), n);
        assert_eq!(report.checkpoint_epoch, 2);
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let dir = tmp_dir("mismatch");
        let config = EngineConfig::new(64);
        let (store, _) =
            DurableSketch::<u64>::open(&dir, config, DurabilityOptions::default()).unwrap();
        drop(store);
        let other = EngineConfig::new(128);
        assert!(matches!(
            DurableSketch::<u64>::open(&dir, other, DurabilityOptions::default()),
            Err(PersistError::ConfigMismatch(_))
        ));
    }
}
