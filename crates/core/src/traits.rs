//! Common traits for streaming frequency estimators and counter-based
//! summaries.
//!
//! The paper's merge procedure (Algorithm 5) "applies generically to any
//! counter-based algorithm that can efficiently handle weighted updates"
//! (§3.2). These traits make that genericity concrete: anything exposing
//! weighted [`FrequencyEstimator::update`] can be a merge *destination*,
//! and anything exposing its counters ([`CounterSummary::counters`]) can be
//! a merge *source*. The baseline algorithms in `streamfreq-baselines`
//! implement both, which is how the experiment harness swaps algorithms.

/// A one-pass streaming algorithm answering point queries over weighted
/// streams (§1.2).
pub trait FrequencyEstimator {
    /// Processes the weighted update `(item, weight)`.
    fn update(&mut self, item: u64, weight: u64);

    /// Processes a unit update.
    fn update_one(&mut self, item: u64) {
        self.update(item, 1);
    }

    /// The estimate `f̂ᵢ` for the item's weighted frequency.
    fn estimate(&self, item: u64) -> u64;

    /// The weighted stream length `N = Σ Δⱼ` processed so far.
    fn stream_weight(&self) -> u64;
}

/// A counter-based summary (§1.3.1): `k` counters, each assigned to an item
/// with an approximate count.
pub trait CounterSummary: FrequencyEstimator {
    /// The current `(item, count)` assignments. Counts are the summary's
    /// stored (lower-bound) counters, not offset-adjusted estimates.
    fn counters(&self) -> Vec<(u64, u64)>;

    /// Number of currently assigned counters.
    fn num_counters(&self) -> usize;

    /// Maximum number of counters the summary maintains (the paper's `k`).
    fn max_counters(&self) -> usize;

    /// The summary's maximum estimation error (`offset` for this crate's
    /// sketches; `0` for exact summaries; the minimum counter for Space
    /// Saving style summaries).
    fn max_error(&self) -> u64;
}

/// Algorithm 5's core loop in trait form: replay `src`'s counters into
/// `dst` as weighted updates.
///
/// Note that `dst.stream_weight()` afterwards reflects the *sum of src's
/// counters*, not the weighted length of src's input stream (counters
/// undercount by design). [`crate::FreqSketch::merge`] and
/// [`crate::FreqSketch::absorb_counters`] perform the exact bookkeeping;
/// this helper exists for experiments that merge across algorithm types.
pub fn replay_counters<D: FrequencyEstimator + ?Sized, S: CounterSummary + ?Sized>(
    dst: &mut D,
    src: &S,
) {
    for (item, count) in src.counters() {
        if count > 0 {
            dst.update(item, count);
        }
    }
}

impl FrequencyEstimator for crate::FreqSketch {
    fn update(&mut self, item: u64, weight: u64) {
        crate::FreqSketch::update(self, item, weight);
    }

    fn estimate(&self, item: u64) -> u64 {
        crate::FreqSketch::estimate(self, item)
    }

    fn stream_weight(&self) -> u64 {
        crate::FreqSketch::stream_weight(self)
    }
}

impl CounterSummary for crate::FreqSketch {
    fn counters(&self) -> Vec<(u64, u64)> {
        crate::FreqSketch::counters(self).collect()
    }

    fn num_counters(&self) -> usize {
        crate::FreqSketch::num_counters(self)
    }

    fn max_counters(&self) -> usize {
        crate::FreqSketch::max_counters(self)
    }

    fn max_error(&self) -> u64 {
        self.maximum_error()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FreqSketch;

    #[test]
    fn freq_sketch_implements_both_traits() {
        let mut s = FreqSketch::with_max_counters(16);
        FrequencyEstimator::update(&mut s, 1, 10);
        s.update_one(1);
        assert_eq!(FrequencyEstimator::estimate(&s, 1), 11);
        assert_eq!(FrequencyEstimator::stream_weight(&s), 11);
        assert_eq!(CounterSummary::num_counters(&s), 1);
        assert_eq!(CounterSummary::max_counters(&s), 16);
        assert_eq!(CounterSummary::max_error(&s), 0);
        assert_eq!(CounterSummary::counters(&s), vec![(1, 11)]);
    }

    #[test]
    fn replay_counters_transfers_mass() {
        let mut src = FreqSketch::with_max_counters(16);
        for i in 0..10u64 {
            src.update(i, (i + 1) * 3);
        }
        let mut dst = FreqSketch::with_max_counters(16);
        replay_counters(&mut dst, &src);
        for i in 0..10u64 {
            assert_eq!(dst.estimate(i), (i + 1) * 3);
        }
    }
}
