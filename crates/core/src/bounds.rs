//! A-priori error-bound arithmetic from the paper's analysis (Lemmas 1–4,
//! Theorems 2, 4, 5).
//!
//! These helpers let callers size a sketch before seeing the stream
//! ("how many counters for ±0.1% of N?") and let the test suite assert the
//! guarantees the paper proves.

/// Lemma 1: the classic Misra-Gries bound. With `k` counters on a stream of
/// weighted length `n`, every estimate satisfies `0 ≤ fᵢ − f̂ᵢ ≤ n/(k+1)`.
#[inline]
pub fn mg_error_bound(k: usize, n: u64) -> u64 {
    n / (k as u64 + 1)
}

/// Theorem 2 / Theorem 4 tail form: with effective `k*` and residual weight
/// `n_res_j = N^res(j)` (total weight minus the top-`j` items), the error is
/// at most `N^res(j)/(k* − j)`. Returns `None` when `j ≥ k*` (the bound is
/// vacuous there).
#[inline]
pub fn tail_error_bound(kstar: usize, j: usize, n_res_j: u64) -> Option<u64> {
    if j >= kstar {
        return None;
    }
    Some(n_res_j / (kstar - j) as u64)
}

/// Counters needed for absolute error `≤ eps · n` under an effective-k\*
/// fraction `kstar_fraction` (see
/// [`crate::purge::PurgePolicy::effective_kstar_fraction`]):
/// `k ≥ 1/(eps · fraction)`.
///
/// # Panics
/// Panics unless `0 < eps ≤ 1` and `0 < kstar_fraction ≤ 1`.
pub fn counters_for_epsilon(eps: f64, kstar_fraction: f64) -> usize {
    assert!(eps > 0.0 && eps <= 1.0, "eps {eps} outside (0, 1]");
    assert!(
        kstar_fraction > 0.0 && kstar_fraction <= 1.0,
        "kstar_fraction {kstar_fraction} outside (0, 1]"
    );
    (1.0 / (eps * kstar_fraction)).ceil() as usize
}

/// Residual stream weight `N^res(j)`: the total weight minus the `j`
/// heaviest frequencies. `freqs` need not be sorted. Used by tests and the
/// error-measurement harness to evaluate tail guarantees on skewed streams.
pub fn residual_weight(freqs: &[u64], j: usize) -> u64 {
    let total: u64 = freqs.iter().sum();
    if j == 0 {
        return total;
    }
    let mut top: Vec<u64> = freqs.to_vec();
    top.sort_unstable_by(|a, b| b.cmp(a));
    total - top.iter().take(j).sum::<u64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mg_bound_basic() {
        assert_eq!(mg_error_bound(99, 10_000), 100);
        assert_eq!(mg_error_bound(0, 500), 500);
    }

    #[test]
    fn tail_bound_specializes_to_lemma1_at_j0() {
        // With j = 0, N^res(0) = N and the bound is N/k*.
        assert_eq!(tail_error_bound(100, 0, 10_000), Some(100));
    }

    #[test]
    fn tail_bound_vacuous_when_j_too_large() {
        assert_eq!(tail_error_bound(10, 10, 1000), None);
        assert_eq!(tail_error_bound(10, 11, 1000), None);
    }

    #[test]
    fn tail_bound_improves_on_skew() {
        // One item holds 90% of the mass: removing it shrinks the bound 10x.
        let freqs = [9_000u64, 100, 100, 100, 100, 100, 100, 100, 100, 100, 100];
        let n = residual_weight(&freqs, 0);
        assert_eq!(n, 10_000);
        let res1 = residual_weight(&freqs, 1);
        assert_eq!(res1, 1_000);
        let loose = tail_error_bound(50, 0, n).unwrap();
        let tight = tail_error_bound(50, 1, res1).unwrap();
        assert!(tight * 9 < loose, "tail bound should exploit skew");
    }

    #[test]
    fn counters_for_epsilon_inverts_bound() {
        // eps = 1% with SMED's 0.33 fraction → ~304 counters.
        let k = counters_for_epsilon(0.01, 0.33);
        assert_eq!(k, 304);
        // With those k, the bound indeed comes in at or under eps·n.
        let n = 1_000_000u64;
        let err = n as f64 / (0.33 * k as f64);
        assert!(err <= 0.01 * n as f64 * 1.01);
    }

    #[test]
    fn residual_weight_unsorted_input() {
        assert_eq!(residual_weight(&[5, 100, 7], 1), 12);
        assert_eq!(residual_weight(&[5, 100, 7], 2), 5);
        assert_eq!(residual_weight(&[5, 100, 7], 5), 0);
        assert_eq!(residual_weight(&[], 0), 0);
    }

    #[test]
    #[should_panic(expected = "eps")]
    fn counters_for_epsilon_rejects_zero() {
        counters_for_epsilon(0.0, 0.33);
    }
}
