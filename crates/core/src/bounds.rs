//! A-priori error-bound arithmetic from the paper's analysis (Lemmas 1–4,
//! Theorems 2, 4, 5).
//!
//! These helpers let callers size a sketch before seeing the stream
//! ("how many counters for ±0.1% of N?") and let the test suite assert the
//! guarantees the paper proves.

/// Lemma 1: the classic Misra-Gries bound. With `k` counters on a stream of
/// weighted length `n`, every estimate satisfies `0 ≤ fᵢ − f̂ᵢ ≤ n/(k+1)`.
#[inline]
pub fn mg_error_bound(k: usize, n: u64) -> u64 {
    n / (k as u64 + 1)
}

/// The exact (φ, ε)-heavy-hitter threshold `⌊φ · n⌋`, computed in integer
/// arithmetic.
///
/// The heavy-hitter contract of §1.2 compares frequencies against the
/// *real* product `φ · N` with a strict `>`, which for integer
/// frequencies is equivalent to comparing against `⌊φ · n⌋` — where `φ`
/// is the exact rational value the `f64` argument denotes. Computing the
/// product in `f64` (`(phi * n as f64) as u64`) silently rounds `n` to 53
/// bits of precision once `n ≥ 2⁵³` and can round the product either way,
/// so the truncated threshold could land one above the true value (false
/// negatives at the contract boundary) or far below it (spurious rows).
/// This helper decomposes `φ` into its mantissa and exponent and forms
/// `mantissa · n` in `u128` (at most 117 bits), then shifts — no rounding
/// at any step, for every `n` up to `u64::MAX`.
///
/// Every query entry point in the workspace funnels its φ-threshold
/// through here, so the reporting contracts stay exact beyond the paper's
/// `N ≤ 10²⁰` regime.
///
/// # Panics
/// Panics if `phi` is not in `[0, 1]` (NaN included).
#[inline]
pub fn phi_threshold(phi: f64, n: u64) -> u64 {
    assert!((0.0..=1.0).contains(&phi), "phi {phi} outside [0, 1]");
    if phi == 0.0 || n == 0 {
        return 0;
    }
    let bits = phi.to_bits();
    let exponent_field = (bits >> 52) & 0x7ff;
    let fraction = bits & ((1u64 << 52) - 1);
    // phi = mantissa · 2^(-shift), exactly. phi ≤ 1 keeps shift ≥ 52 for
    // normals (phi = 1.0 has mantissa 2^52, shift 52) and 1074 for
    // subnormals.
    let (mantissa, shift) = if exponent_field == 0 {
        (fraction, 1074u32)
    } else {
        (fraction | (1 << 52), (1075 - exponent_field) as u32)
    };
    let product = mantissa as u128 * n as u128; // ≤ 2^53 · 2^64 = 2^117
    if shift >= 128 {
        0
    } else {
        // phi ≤ 1 bounds the result by n, so the narrowing cast is exact.
        (product >> shift) as u64
    }
}

/// Theorem 2 / Theorem 4 tail form: with effective `k*` and residual weight
/// `n_res_j = N^res(j)` (total weight minus the top-`j` items), the error is
/// at most `N^res(j)/(k* − j)`. Returns `None` when `j ≥ k*` (the bound is
/// vacuous there).
#[inline]
pub fn tail_error_bound(kstar: usize, j: usize, n_res_j: u64) -> Option<u64> {
    if j >= kstar {
        return None;
    }
    Some(n_res_j / (kstar - j) as u64)
}

/// Counters needed for absolute error `≤ eps · n` under an effective-k\*
/// fraction `kstar_fraction` (see
/// [`crate::purge::PurgePolicy::effective_kstar_fraction`]):
/// `k ≥ 1/(eps · fraction)`.
///
/// # Panics
/// Panics unless `0 < eps ≤ 1` and `0 < kstar_fraction ≤ 1`.
pub fn counters_for_epsilon(eps: f64, kstar_fraction: f64) -> usize {
    assert!(eps > 0.0 && eps <= 1.0, "eps {eps} outside (0, 1]");
    assert!(
        kstar_fraction > 0.0 && kstar_fraction <= 1.0,
        "kstar_fraction {kstar_fraction} outside (0, 1]"
    );
    (1.0 / (eps * kstar_fraction)).ceil() as usize
}

/// Residual stream weight `N^res(j)`: the total weight minus the `j`
/// heaviest frequencies. `freqs` need not be sorted. Used by tests and the
/// error-measurement harness to evaluate tail guarantees on skewed streams.
pub fn residual_weight(freqs: &[u64], j: usize) -> u64 {
    let total: u64 = freqs.iter().sum();
    if j == 0 {
        return total;
    }
    let mut top: Vec<u64> = freqs.to_vec();
    top.sort_unstable_by(|a, b| b.cmp(a));
    total - top.iter().take(j).sum::<u64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mg_bound_basic() {
        assert_eq!(mg_error_bound(99, 10_000), 100);
        assert_eq!(mg_error_bound(0, 500), 500);
    }

    #[test]
    fn tail_bound_specializes_to_lemma1_at_j0() {
        // With j = 0, N^res(0) = N and the bound is N/k*.
        assert_eq!(tail_error_bound(100, 0, 10_000), Some(100));
    }

    #[test]
    fn tail_bound_vacuous_when_j_too_large() {
        assert_eq!(tail_error_bound(10, 10, 1000), None);
        assert_eq!(tail_error_bound(10, 11, 1000), None);
    }

    #[test]
    fn tail_bound_improves_on_skew() {
        // One item holds 90% of the mass: removing it shrinks the bound 10x.
        let freqs = [9_000u64, 100, 100, 100, 100, 100, 100, 100, 100, 100, 100];
        let n = residual_weight(&freqs, 0);
        assert_eq!(n, 10_000);
        let res1 = residual_weight(&freqs, 1);
        assert_eq!(res1, 1_000);
        let loose = tail_error_bound(50, 0, n).unwrap();
        let tight = tail_error_bound(50, 1, res1).unwrap();
        assert!(tight * 9 < loose, "tail bound should exploit skew");
    }

    #[test]
    fn counters_for_epsilon_inverts_bound() {
        // eps = 1% with SMED's 0.33 fraction → ~304 counters.
        let k = counters_for_epsilon(0.01, 0.33);
        assert_eq!(k, 304);
        // With those k, the bound indeed comes in at or under eps·n.
        let n = 1_000_000u64;
        let err = n as f64 / (0.33 * k as f64);
        assert!(err <= 0.01 * n as f64 * 1.01);
    }

    #[test]
    fn residual_weight_unsorted_input() {
        assert_eq!(residual_weight(&[5, 100, 7], 1), 12);
        assert_eq!(residual_weight(&[5, 100, 7], 2), 5);
        assert_eq!(residual_weight(&[5, 100, 7], 5), 0);
        assert_eq!(residual_weight(&[], 0), 0);
    }

    #[test]
    #[should_panic(expected = "eps")]
    fn counters_for_epsilon_rejects_zero() {
        counters_for_epsilon(0.0, 0.33);
    }

    #[test]
    fn phi_threshold_matches_exact_rationals() {
        // Dyadic φ values are exact in f64, so the threshold must be the
        // exact rational product, floored — at any magnitude.
        assert_eq!(phi_threshold(0.0, u64::MAX), 0);
        assert_eq!(phi_threshold(1.0, u64::MAX), u64::MAX);
        assert_eq!(phi_threshold(0.5, 7), 3);
        assert_eq!(phi_threshold(0.25, 1001), 250);
        assert_eq!(phi_threshold(0.5, (1 << 60) + 1), 1 << 59);
        assert_eq!(phi_threshold(0.125, u64::MAX), u64::MAX / 8);
        // Smallest positive subnormal: φ·n < 1 for every u64 n.
        assert_eq!(phi_threshold(f64::from_bits(1), u64::MAX), 0);
    }

    #[test]
    fn phi_threshold_agrees_with_f64_in_its_safe_regime() {
        // Below 2^53 with dyadic φ the float product is exact, so both
        // paths must agree — the helper changes nothing where the old
        // code was correct.
        for phi in [0.5, 0.25, 0.0625, 1.0] {
            for n in [0u64, 1, 17, 1_000_003, (1 << 52) - 1] {
                assert_eq!(
                    phi_threshold(phi, n),
                    // lint:allow(float-threshold-cast): reference float path; this test pins its agreement regime
                    (phi * n as f64) as u64,
                    "phi {phi} n {n}"
                );
            }
        }
        // Non-dyadic φ at small n: the float product may round across an
        // integer; the exact floor is never above it by more than the
        // rounding the float path already commits to.
        for phi in [0.1, 0.3, 1.0 / 3.0, 0.9] {
            for n in [10u64, 100, 12_345, 99_999_999] {
                let exact = phi_threshold(phi, n);
                // lint:allow(float-threshold-cast): reference float path; this test bounds its divergence
                let float = (phi * n as f64) as u64;
                assert!(exact.abs_diff(float) <= 1, "phi {phi} n {n}");
            }
        }
    }

    #[test]
    fn phi_threshold_regression_beyond_2_53() {
        // The float path rounds n = 2^60 + 1 to 2^60 before multiplying:
        // at φ = 1 the threshold silently loses the +1 — an item with the
        // whole stream's weight would be reported as exceeding φ·N even
        // though nothing can exceed 1.0·N. The exact helper keeps every
        // bit of n.
        let n = (1u64 << 60) + 1;
        let float_path = (1.0f64 * n as f64) as u64;
        assert_eq!(float_path, 1 << 60, "f64 provably drops the low bit");
        assert_eq!(phi_threshold(1.0, n), n);
        assert_ne!(phi_threshold(1.0, n), float_path);

        // And the float product can also round *up* past the exact
        // threshold, which would make the NoFalseNegatives contract miss
        // a boundary item. Scan a band of φ values at this n and pin the
        // exact results against the u128 reference the helper implements.
        for mantissa_step in 0..64u64 {
            let phi = f64::from_bits(0.9f64.to_bits() + mantissa_step);
            let exact = phi_threshold(phi, n);
            // Reference: the same decomposition, done longhand.
            let bits = phi.to_bits();
            let m = (bits & ((1u64 << 52) - 1)) | (1 << 52);
            let shift = 1075 - ((bits >> 52) & 0x7ff);
            let want = ((m as u128 * n as u128) >> shift) as u64;
            assert_eq!(exact, want, "phi bits {bits:#x}");
            // Exactness sanity: threshold within 1 of n·phi computed in
            // greater precision would be vacuous — instead check the
            // defining Euclidean property m·n = q·2^shift + r, r < 2^shift.
            let q = exact as u128;
            let r = m as u128 * n as u128 - (q << shift);
            assert!(r < (1u128 << shift));
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn phi_threshold_rejects_out_of_range() {
        phi_threshold(1.5, 10);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn phi_threshold_rejects_nan() {
        phi_threshold(f64::NAN, 10);
    }
}
