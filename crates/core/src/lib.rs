//! # streamfreq-core
//!
//! A high-performance frequent-items sketch for data streams — a from-
//! scratch Rust implementation of
//!
//! > Anderson, Bevin, Lang, Liberty, Rhodes, Thaler.
//! > *A High-Performance Algorithm for Identifying Frequent Items in Data
//! > Streams.* IMC 2017 (arXiv:1705.07001),
//!
//! the algorithm deployed in Apache DataSketches as the Frequent Items
//! Sketch.
//!
//! ## What it does
//!
//! In one pass over a stream of weighted updates `(item, Δ)`, a
//! [`FreqSketch`] with `k` counters maintains, in `24k` bytes:
//!
//! * point estimates `f̂ᵢ` with certified bounds
//!   `lower_bound ≤ fᵢ ≤ upper_bound`,
//! * (φ, ε)-heavy hitters with either a no-false-positives or a
//!   no-false-negatives contract ([`ErrorType`]),
//! * amortized **O(1)** update time for *weighted* updates — the paper's
//!   first headline contribution — via sample-quantile purging
//!   ([`PurgePolicy`], default SMED), and
//! * mergeability (Algorithm 5) with error bounded by Theorem 5 — the
//!   second headline contribution.
//!
//! ## Quick start
//!
//! ```
//! use streamfreq_core::{FreqSketch, ErrorType};
//!
//! // Track network flows by bytes sent, with ~64 counters of state.
//! let mut sketch = FreqSketch::with_max_counters(64);
//! for (flow, bytes_sent) in [(10u64, 1500u64), (10, 1500), (20, 40), (10, 9000)] {
//!     sketch.update(flow, bytes_sent);
//! }
//! assert_eq!(sketch.estimate(10), 12_000);
//! let heavy = sketch.heavy_hitters(0.5, ErrorType::NoFalsePositives);
//! assert_eq!(heavy[0].item, 10);
//! ```
//!
//! ## Module map
//!
//! One generic engine sits under every public sketch variant:
//!
//! | module | contents |
//! |---|---|
//! | [`engine`] | [`SketchEngine<K>`](engine::SketchEngine) — the one generic core: updates, batching, purge, merge, bounds |
//! | [`sketch`] | [`FreqSketch`] = `SketchEngine<u64>` — the paper's sketch with by-value `u64` queries |
//! | [`items`] | [`ItemsSketch<T>`](ItemsSketch) = `SketchEngine<T>` for arbitrary item types |
//! | [`sharded`] | [`ShardedSketch<K>`](ShardedSketch) — hash-partitioned multi-core ingestion over engine shards |
//! | [`concurrent`] | [`ConcurrentSketch<K>`](ConcurrentSketch) — long-lived serving layer: channel-fed shard workers, immutable merged snapshots |
//! | [`signed`] | [`SignedSketch<K>`](SignedSketch) — deletions via §1.3's two-instance reduction |
//! | [`purge`] | decrement policies: SMED / SMIN / quantile sweep / MED / global-min |
//! | [`table`] | the §2.3.3 linear-probing counter table, generic over [`engine::SketchKey`] |
//! | [`select`] | Hoare's quickselect (Algorithm 65: FIND) |
//! | [`bounds`] | a-priori error arithmetic (Lemmas 1–4, Theorems 2/4/5) |
//! | [`result`] | heavy-hitter rows and reporting contracts |
//! | [`codec`] | versioned binary wire format (on `SketchEngine<u64>`) |
//! | [`item_codec`] | per-type wire encodings for [`ItemsSketch`] |
//! | [`persist`] | durability: CRC-framed WAL, atomic checkpoints, crash recovery ([`DurableSketch`]) |
//! | [`hashing`], [`rng`] | deterministic hashing and sampling substrate |
//!
//! ## Guarantees
//!
//! With the default SMED policy (`ℓ = 1024`), Theorems 3–4 of the paper
//! give amortized O(1) updates and, with probability ≥ 1 − 1.5·10⁻⁸ on
//! streams of weight ≤ 10²⁰ (§2.3.2),
//!
//! ```text
//! 0 ≤ fᵢ − lower_bound(i) ≤ N^res(j) / (0.33·k − j)   for any j < 0.33k.
//! ```
//!
//! The a-posteriori error [`FreqSketch::maximum_error`] is typically far
//! smaller than the a-priori bound and is exact: every estimate is within
//! `maximum_error` of the truth.
//!
//! ## Out of scope (by design, matching the paper)
//!
//! * Deletions / negative weights: counter-based summaries target
//!   insertion streams (§1.3 Note shows the two-instance reduction if
//!   deletions are rare).
//! * Adversarial hash-collision resistance: hashing is deterministic for
//!   reproducibility and wire compatibility; an adversary who can choose
//!   items after inspecting the code can lengthen probe runs. The same
//!   holds for the deployed DataSketches implementation.

// `deny` rather than `forbid`: the one sanctioned exception is the
// bounds-checked software-prefetch helper in `table`, which must call the
// `_mm_prefetch` intrinsic on x86-64 (see `table::prefetch_read`).
#![deny(unsafe_code)]
// Inside the sanctioned `unsafe fn`s, every unsafe operation still needs
// its own `unsafe {}` block — no blanket-unsafe function bodies.
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bounds;
pub mod cluster;
pub mod codec;
pub mod concurrent;
pub mod engine;
pub mod error;
pub mod hashing;
pub mod item_codec;
pub mod items;
pub mod persist;
pub mod purge;
pub mod result;
pub mod rng;
pub mod sanitize;
pub mod select;
pub mod sharded;
pub mod signed;
pub mod sketch;
pub mod table;
pub mod traits;

pub use bounds::phi_threshold;
pub use cluster::{HashRing, NodeSpec, Topology};
pub use concurrent::{
    ConcurrentSketch, ConcurrentSketchBuilder, ConcurrentWriter, Snapshot, SnapshotReader,
};
pub use engine::{SketchEngine, SketchEngineBuilder, SketchKey};
pub use error::Error;
pub use items::{ItemsSketch, ItemsSketchBuilder};
pub use persist::{DurabilityOptions, DurableSketch, EngineConfig, FsyncPolicy, PersistError};
pub use purge::PurgePolicy;
pub use result::{ErrorType, Row};
pub use sharded::{ShardedSketch, ShardedSketchBuilder};
pub use signed::{SignedFreqSketch, SignedSketch};
pub use sketch::{FreqSketch, FreqSketchBuilder};
pub use traits::{CounterSummary, FrequencyEstimator};
