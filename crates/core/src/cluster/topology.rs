//! The explicit, epoch-versioned cluster topology file.
//!
//! Cluster membership is never implicit: every process that routes
//! (ingest clients), fans out (query tiers), or gets promoted
//! (replicas) reads the same small text file and computes the same
//! ring. The file is human-editable and diff-friendly:
//!
//! ```text
//! SFTOPO v1
//! epoch 3
//! vnodes 64
//! node 1 127.0.0.1:7001
//! node 2 127.0.0.1:7002
//! node 3 127.0.0.1:7103
//! ```
//!
//! * `epoch` is the topology version, **strictly increasing**: every
//!   mutation helper ([`Topology::with_node_addr`],
//!   [`Topology::with_node_added`], [`Topology::with_node_removed`])
//!   returns a new topology at `epoch + 1`, and refuses to wrap. A
//!   reader comparing two files trusts the higher epoch.
//! * `vnodes` is the ring width (virtual nodes per node).
//! * `node <id> <host:port>` declares one member. The *id* is the
//!   node's permanent identity on the ring; the address is merely where
//!   it currently lives. Failover therefore rewrites the address and
//!   bumps the epoch while **routing stays fixed** — the promoted
//!   replica serves exactly the key arcs its dead leader owned.
//!
//! Blank lines and `#` comments are allowed. Parsing is defensive
//! (untrusted input): malformed files produce [`Error::Corrupt`], never
//! a panic, and membership is bounded so a hostile file cannot request
//! a multi-gigabyte ring.

use crate::cluster::ring::HashRing;
use crate::error::Error;

/// Most members a topology file may declare.
pub const MAX_NODES: usize = 4096;

/// Widest allowed ring (virtual nodes per node).
pub const MAX_VNODES: u32 = 1 << 16;

/// The first line of every topology file.
pub const TOPOLOGY_MAGIC: &str = "SFTOPO v1";

/// One cluster member: a permanent ring identity plus its current
/// address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeSpec {
    /// Permanent node id (determines ring placement; never reused).
    pub id: u64,
    /// Current `host:port` of the serving process.
    pub addr: String,
}

/// An epoch-versioned cluster membership: the parsed topology file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    epoch: u64,
    vnodes: u32,
    nodes: Vec<NodeSpec>,
}

impl Topology {
    /// Creates a validated topology.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] on an empty or oversized node set, a
    /// duplicate id, an invalid address, or a zero/oversized `vnodes`.
    pub fn new(epoch: u64, vnodes: u32, nodes: Vec<NodeSpec>) -> Result<Topology, Error> {
        if nodes.is_empty() {
            return Err(Error::InvalidConfig(
                "topology needs at least one node".into(),
            ));
        }
        if nodes.len() > MAX_NODES {
            return Err(Error::InvalidConfig(format!(
                "topology declares {} nodes (max {MAX_NODES})",
                nodes.len()
            )));
        }
        if vnodes == 0 || vnodes > MAX_VNODES {
            return Err(Error::InvalidConfig(format!(
                "vnodes {vnodes} outside 1..={MAX_VNODES}"
            )));
        }
        for node in &nodes {
            validate_addr(&node.addr)?;
            let dup = nodes.iter().filter(|other| other.id == node.id).count();
            if dup > 1 {
                return Err(Error::InvalidConfig(format!(
                    "duplicate node id {}",
                    node.id
                )));
            }
        }
        Ok(Topology {
            epoch,
            vnodes,
            nodes,
        })
    }

    /// The topology version.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Virtual nodes per member on the ring.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// The members, in file order (the canonical merge order for
    /// fan-out queries).
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// The index of the member with `id`, if present.
    pub fn node_index_of(&self, id: u64) -> Option<usize> {
        self.nodes.iter().position(|n| n.id == id)
    }

    /// Builds the consistent-hash ring for this membership. Owner
    /// indices returned by the ring index into [`Topology::nodes`].
    pub fn ring(&self) -> HashRing {
        let ids: Vec<u64> = self.nodes.iter().map(|n| n.id).collect();
        HashRing::build(&ids, self.vnodes)
    }

    /// The next epoch, refusing to wrap.
    fn bumped_epoch(&self) -> Result<u64, Error> {
        self.epoch
            .checked_add(1)
            .ok_or_else(|| Error::InvalidConfig("topology epoch overflow".into()))
    }

    /// Failover: the same membership with node `id` re-addressed (a
    /// promoted replica taking over its leader's ring identity), at
    /// `epoch + 1`.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] if `id` is not a member or the address
    /// is invalid.
    pub fn with_node_addr(&self, id: u64, addr: &str) -> Result<Topology, Error> {
        validate_addr(addr)?;
        let mut nodes = self.nodes.clone();
        let node = nodes
            .iter_mut()
            .find(|n| n.id == id)
            .ok_or_else(|| Error::InvalidConfig(format!("no node with id {id}")))?;
        node.addr = addr.to_string();
        Topology::new(self.bumped_epoch()?, self.vnodes, nodes)
    }

    /// Scale-out: the membership plus one new node, at `epoch + 1`.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] on a duplicate id or invalid spec.
    pub fn with_node_added(&self, node: NodeSpec) -> Result<Topology, Error> {
        let mut nodes = self.nodes.clone();
        nodes.push(node);
        Topology::new(self.bumped_epoch()?, self.vnodes, nodes)
    }

    /// Scale-in: the membership minus node `id`, at `epoch + 1`. Only
    /// the removed node's ≈ 1/N key arc remaps (see
    /// [`crate::cluster::ring`]).
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] if `id` is not a member or it is the
    /// last one.
    pub fn with_node_removed(&self, id: u64) -> Result<Topology, Error> {
        if self.node_index_of(id).is_none() {
            return Err(Error::InvalidConfig(format!("no node with id {id}")));
        }
        let nodes: Vec<NodeSpec> = self.nodes.iter().filter(|n| n.id != id).cloned().collect();
        Topology::new(self.bumped_epoch()?, self.vnodes, nodes)
    }

    /// Renders the canonical file form (parse ∘ encode is identity).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = String::new();
        out.push_str(TOPOLOGY_MAGIC);
        out.push('\n');
        out.push_str(&format!("epoch {}\n", self.epoch));
        out.push_str(&format!("vnodes {}\n", self.vnodes));
        for node in &self.nodes {
            out.push_str(&format!("node {} {}\n", node.id, node.addr));
        }
        out.into_bytes()
    }

    /// Parses a topology file.
    ///
    /// # Errors
    /// [`Error::Corrupt`] on non-UTF-8 bytes, a bad header, malformed
    /// or out-of-order directives; [`Error::InvalidConfig`] when the
    /// described membership is invalid (see [`Topology::new`]).
    pub fn parse(bytes: &[u8]) -> Result<Topology, Error> {
        let text = core::str::from_utf8(bytes)
            .map_err(|_| Error::Corrupt("topology file is not UTF-8".into()))?;
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        let header = lines
            .next()
            .ok_or_else(|| Error::Corrupt("empty topology file".into()))?;
        if header != TOPOLOGY_MAGIC {
            return Err(Error::Corrupt(format!(
                "bad topology header `{header}` (want `{TOPOLOGY_MAGIC}`)"
            )));
        }
        let epoch = parse_directive_u64(lines.next(), "epoch")?;
        let vnodes = parse_directive_u64(lines.next(), "vnodes")?;
        let vnodes = u32::try_from(vnodes)
            .map_err(|_| Error::Corrupt(format!("vnodes {vnodes} does not fit u32")))?;
        let mut nodes: Vec<NodeSpec> = Vec::new();
        for line in lines {
            let mut fields = line.split_whitespace();
            match fields.next() {
                Some("node") => {}
                Some(other) => {
                    return Err(Error::Corrupt(format!("unknown directive `{other}`")));
                }
                None => continue,
            }
            let id = fields
                .next()
                .and_then(|f| f.parse::<u64>().ok())
                .ok_or_else(|| Error::Corrupt(format!("bad node id in `{line}`")))?;
            let addr = fields
                .next()
                .ok_or_else(|| Error::Corrupt(format!("missing node address in `{line}`")))?;
            if fields.next().is_some() {
                return Err(Error::Corrupt(format!("trailing fields in `{line}`")));
            }
            if nodes.len() >= MAX_NODES {
                return Err(Error::Corrupt(format!(
                    "topology declares more than {MAX_NODES} nodes"
                )));
            }
            nodes.push(NodeSpec {
                id,
                addr: addr.to_string(),
            });
        }
        Topology::new(epoch, vnodes, nodes)
    }
}

/// Parses one `<keyword> <u64>` directive line.
fn parse_directive_u64(line: Option<&str>, keyword: &str) -> Result<u64, Error> {
    let line = line.ok_or_else(|| Error::Corrupt(format!("missing `{keyword}` directive")))?;
    let mut fields = line.split_whitespace();
    if fields.next() != Some(keyword) {
        return Err(Error::Corrupt(format!(
            "expected `{keyword} <value>`, found `{line}`"
        )));
    }
    let value = fields
        .next()
        .and_then(|f| f.parse::<u64>().ok())
        .ok_or_else(|| Error::Corrupt(format!("bad `{keyword}` value in `{line}`")))?;
    if fields.next().is_some() {
        return Err(Error::Corrupt(format!("trailing fields in `{line}`")));
    }
    Ok(value)
}

/// A plausible `host:port` token: non-empty, no whitespace (guaranteed
/// by tokenization), and a port-bearing colon.
fn validate_addr(addr: &str) -> Result<(), Error> {
    let port = addr.rsplit(':').next().unwrap_or("");
    if addr.is_empty() || port.is_empty() || port.parse::<u16>().is_err() {
        return Err(Error::InvalidConfig(format!(
            "node address `{addr}` is not host:port"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes3() -> Vec<NodeSpec> {
        vec![
            NodeSpec {
                id: 1,
                addr: "127.0.0.1:7001".into(),
            },
            NodeSpec {
                id: 2,
                addr: "127.0.0.1:7002".into(),
            },
            NodeSpec {
                id: 3,
                addr: "127.0.0.1:7003".into(),
            },
        ]
    }

    #[test]
    fn encode_parse_roundtrips() {
        let topo = Topology::new(7, 48, nodes3()).unwrap();
        let parsed = Topology::parse(&topo.encode()).unwrap();
        assert_eq!(parsed, topo);
    }

    #[test]
    fn parse_accepts_comments_and_blank_lines() {
        let text = "# cluster of two\nSFTOPO v1\n\nepoch 2\nvnodes 8\n\n# members\nnode 10 a:1\nnode 11 b:2\n";
        let topo = Topology::parse(text.as_bytes()).unwrap();
        assert_eq!(topo.epoch(), 2);
        assert_eq!(topo.nodes().len(), 2);
    }

    #[test]
    fn parse_rejects_malformed_files() {
        for bad in [
            &b""[..],
            b"SFTOPO v2\nepoch 1\nvnodes 8\nnode 1 a:1\n",
            b"SFTOPO v1\nvnodes 8\nepoch 1\nnode 1 a:1\n", // out of order
            b"SFTOPO v1\nepoch x\nvnodes 8\nnode 1 a:1\n",
            b"SFTOPO v1\nepoch 1\nvnodes 0\nnode 1 a:1\n",
            b"SFTOPO v1\nepoch 1\nvnodes 8\n", // no nodes
            b"SFTOPO v1\nepoch 1\nvnodes 8\nnode 1 a:1 extra\n", // trailing
            b"SFTOPO v1\nepoch 1\nvnodes 8\nnode 1 a:1\nnode 1 b:2\n", // dup id
            b"SFTOPO v1\nepoch 1\nvnodes 8\nnode 1 noport\n",
            b"SFTOPO v1\nepoch 1\nvnodes 8\nfrob 1 a:1\n",
            b"\xFF\xFE",
        ] {
            assert!(
                Topology::parse(bad).is_err(),
                "accepted {:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn mutations_strictly_increase_the_epoch() {
        let t0 = Topology::new(1, 16, nodes3()).unwrap();
        let t1 = t0.with_node_addr(3, "127.0.0.1:7103").unwrap();
        assert_eq!(t1.epoch(), 2);
        assert_eq!(t1.nodes()[2].addr, "127.0.0.1:7103");
        let t2 = t1
            .with_node_added(NodeSpec {
                id: 4,
                addr: "127.0.0.1:7004".into(),
            })
            .unwrap();
        assert_eq!(t2.epoch(), 3);
        let t3 = t2.with_node_removed(4).unwrap();
        assert_eq!(t3.epoch(), 4);
        // Epoch overflow refuses to wrap back to a stale version.
        let max = Topology::new(u64::MAX, 16, nodes3()).unwrap();
        assert!(max.with_node_addr(1, "x:1").is_err());
    }

    #[test]
    fn readdressing_keeps_routing_fixed() {
        let t0 = Topology::new(1, 32, nodes3()).unwrap();
        let t1 = t0.with_node_addr(2, "10.0.0.9:9999").unwrap();
        let (r0, r1) = (t0.ring(), t1.ring());
        for key in 0u64..2000 {
            assert_eq!(r0.route(&key), r1.route(&key));
        }
    }

    #[test]
    fn rejects_invalid_membership() {
        assert!(Topology::new(1, 16, vec![]).is_err());
        assert!(Topology::new(1, 0, nodes3()).is_err());
        assert!(Topology::new(1, MAX_VNODES + 1, nodes3()).is_err());
        let mut dup = nodes3();
        dup[2].id = 1;
        assert!(Topology::new(1, 16, dup).is_err());
    }
}
