//! Payload codecs for the cluster extension opcodes of the SFBP binary
//! protocol.
//!
//! The serving loop's binary protocol frames requests and responses as
//! `[len u32le | tag u8 | payload]`; this module defines the *payload*
//! encodings the cluster verbs add, so the server, the ingest-routing
//! client, the merging query tier, and the replication client all agree
//! byte for byte:
//!
//! | opcode | request payload | OK payload |
//! |---|---|---|
//! | `SNAP` | empty | `epoch u64le \| sealed u8 \| engine SFQ1 bytes` |
//! | `REPL` | empty | `count u32le`, then per file `path_len u16le \| path \| size u64le` |
//! | `FETCH` | `offset u64le \| path bytes` | file bytes from `offset` (chunk-capped) |
//! | `INGEST` | `count u32le`, then `count ×` (`item u64le`, `weight u64le`) | `applied u64le` |
//!
//! Every decoder treats its input as **untrusted**: response payloads
//! cross a socket from a process that may be of a different version,
//! misconfigured, or hostile, and `FETCH`/`INGEST` request payloads
//! arrive at the server from arbitrary clients. Decoders return
//! [`Error::Corrupt`]/[`Error::Truncated`] and never panic; shipped
//! file paths are validated against traversal (`..`, absolute paths)
//! before any filesystem use; counts are bounded so a hostile length
//! cannot request a huge allocation.

use crate::engine::SketchEngine;
use crate::error::Error;

/// Most files one `REPL` manifest may list.
pub const MAX_SHIP_FILES: u32 = 65_536;

/// Longest store-relative path a manifest entry or `FETCH` may carry.
pub const MAX_SHIP_PATH: usize = 512;

/// Most updates one `INGEST` frame may carry.
pub const MAX_INGEST_BATCH: usize = 65_536;

/// A node's exported snapshot: the published Algorithm-5 merged engine
/// plus the serving metadata a query tier tracks per node.
#[derive(Debug)]
pub struct NodeSnapshot {
    /// Snapshot epoch on the node (monotone per node).
    pub epoch: u64,
    /// Whether the node's ingestion has drained (final snapshot).
    pub sealed: bool,
    /// The node's merged sketch state.
    pub engine: SketchEngine<u64>,
}

/// Splits `n` bytes off the front of `buf`.
fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], Error> {
    match (buf.get(..n), buf.get(n..)) {
        (Some(head), Some(tail)) => {
            *buf = tail;
            Ok(head)
        }
        _ => Err(Error::Truncated {
            needed: n.saturating_sub(buf.len()),
            remaining: buf.len(),
        }),
    }
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, Error> {
    take(buf, 8)?
        .try_into()
        .map(u64::from_le_bytes)
        .map_err(|_| Error::Corrupt("sized read mismatch".into()))
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, Error> {
    take(buf, 4)?
        .try_into()
        .map(u32::from_le_bytes)
        .map_err(|_| Error::Corrupt("sized read mismatch".into()))
}

fn take_u16(buf: &mut &[u8]) -> Result<u16, Error> {
    take(buf, 2)?
        .try_into()
        .map(u16::from_le_bytes)
        .map_err(|_| Error::Corrupt("sized read mismatch".into()))
}

/// Rejects non-empty trailing bytes after a complete decode.
fn expect_empty(buf: &[u8], what: &str) -> Result<(), Error> {
    if buf.is_empty() {
        Ok(())
    } else {
        Err(Error::Corrupt(format!(
            "{} trailing bytes after {what} payload",
            buf.len()
        )))
    }
}

/// Validates a store-relative shipped-file path: UTF-8, bounded,
/// forward-slash separated, no absolute/parent/self components, and a
/// conservative filename alphabet. The gate between wire bytes and the
/// replica's filesystem.
///
/// # Errors
/// [`Error::Corrupt`] describing the violation.
pub fn validate_rel_path(path: &str) -> Result<(), Error> {
    if path.is_empty() || path.len() > MAX_SHIP_PATH {
        return Err(Error::Corrupt(format!(
            "shipped path length {} outside 1..={MAX_SHIP_PATH}",
            path.len()
        )));
    }
    if path.starts_with('/') {
        return Err(Error::Corrupt(format!("absolute shipped path `{path}`")));
    }
    for component in path.split('/') {
        if component.is_empty() || component == "." || component == ".." {
            return Err(Error::Corrupt(format!(
                "path traversal component in shipped path `{path}`"
            )));
        }
        for ch in component.chars() {
            if !(ch.is_ascii_alphanumeric() || matches!(ch, '.' | '_' | '-')) {
                return Err(Error::Corrupt(format!(
                    "character `{ch}` in shipped path `{path}`"
                )));
            }
        }
    }
    Ok(())
}

/// Encodes a `SNAP` OK payload.
pub fn encode_snapshot(epoch: u64, sealed: bool, engine: &SketchEngine<u64>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&epoch.to_le_bytes());
    out.push(u8::from(sealed));
    out.extend_from_slice(&engine.serialize_to_bytes());
    out
}

/// Decodes a `SNAP` OK payload (untrusted bytes from a fanned-out
/// node). The embedded engine goes through the full defensive SFQ1
/// decode, audit gate included.
///
/// # Errors
/// [`Error::Corrupt`]/[`Error::Truncated`] on malformed bytes.
pub fn decode_snapshot(payload: &[u8]) -> Result<NodeSnapshot, Error> {
    let mut buf = payload;
    let epoch = take_u64(&mut buf)?;
    let sealed = match take(&mut buf, 1)?.first() {
        Some(0) => false,
        Some(1) => true,
        _ => return Err(Error::Corrupt("bad sealed flag in snapshot payload".into())),
    };
    let engine = SketchEngine::<u64>::deserialize_from_bytes(buf)?;
    Ok(NodeSnapshot {
        epoch,
        sealed,
        engine,
    })
}

/// Encodes a `REPL` OK payload: the shippable-file manifest.
///
/// # Errors
/// [`Error::InvalidConfig`] if an entry violates the path or count
/// bounds the decoder enforces (a server-side bug, not wire damage).
pub fn encode_file_list(entries: &[(String, u64)]) -> Result<Vec<u8>, Error> {
    let entry_count = u32::try_from(entries.len())
        .ok()
        .filter(|&n| n <= MAX_SHIP_FILES)
        .ok_or_else(|| {
            Error::InvalidConfig(format!("{} files exceed manifest cap", entries.len()))
        })?;
    let mut out = Vec::new();
    out.extend_from_slice(&entry_count.to_le_bytes());
    for (path, size) in entries {
        validate_rel_path(path).map_err(|e| Error::InvalidConfig(e.to_string()))?;
        let path_bytes = path.as_bytes();
        let path_tag = u16::try_from(path_bytes.len())
            .map_err(|_| Error::InvalidConfig(format!("path `{path}` too long")))?;
        out.extend_from_slice(&path_tag.to_le_bytes());
        out.extend_from_slice(path_bytes);
        out.extend_from_slice(&size.to_le_bytes());
    }
    Ok(out)
}

/// Decodes a `REPL` OK payload (untrusted bytes from a leader).
///
/// # Errors
/// [`Error::Corrupt`]/[`Error::Truncated`] on malformed bytes, counts
/// beyond [`MAX_SHIP_FILES`], or invalid shipped paths.
pub fn decode_file_list(payload: &[u8]) -> Result<Vec<(String, u64)>, Error> {
    let mut buf = payload;
    let entries = take_u32(&mut buf)?;
    if entries > MAX_SHIP_FILES {
        return Err(Error::Corrupt(format!(
            "manifest lists {entries} files (max {MAX_SHIP_FILES})"
        )));
    }
    let mut out = Vec::new();
    for _ in 0..entries {
        let path_tag = take_u16(&mut buf)?;
        let path_bytes = take(&mut buf, usize::from(path_tag))?;
        let path = core::str::from_utf8(path_bytes)
            .map_err(|_| Error::Corrupt("non-UTF-8 shipped path".into()))?;
        validate_rel_path(path)?;
        let size = take_u64(&mut buf)?;
        out.push((path.to_string(), size));
    }
    expect_empty(buf, "manifest")?;
    Ok(out)
}

/// Encodes a `FETCH` request payload.
pub fn encode_fetch_request(offset: u64, rel_path: &str) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&offset.to_le_bytes());
    out.extend_from_slice(rel_path.as_bytes());
    out
}

/// Decodes a `FETCH` request payload (untrusted bytes from a client —
/// this is the path that will touch the server's store directory).
///
/// # Errors
/// [`Error::Corrupt`]/[`Error::Truncated`] on malformed bytes or a
/// path failing [`validate_rel_path`].
pub fn decode_fetch_request(payload: &[u8]) -> Result<(u64, String), Error> {
    let mut buf = payload;
    let start = take_u64(&mut buf)?;
    let path =
        core::str::from_utf8(buf).map_err(|_| Error::Corrupt("non-UTF-8 fetch path".into()))?;
    validate_rel_path(path)?;
    Ok((start, path.to_string()))
}

/// Encodes an `INGEST` request payload.
///
/// # Panics
/// Panics if the batch exceeds [`MAX_INGEST_BATCH`] — callers chunk
/// before encoding.
pub fn encode_ingest_batch(batch: &[(u64, u64)]) -> Vec<u8> {
    assert!(batch.len() <= MAX_INGEST_BATCH, "ingest batch too large");
    let mut out = Vec::with_capacity(4 + batch.len() * 16);
    out.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    for (item, weight) in batch {
        out.extend_from_slice(&item.to_le_bytes());
        out.extend_from_slice(&weight.to_le_bytes());
    }
    out
}

/// Decodes an `INGEST` request payload (untrusted bytes from a client).
///
/// # Errors
/// [`Error::Corrupt`]/[`Error::Truncated`] on malformed bytes or a
/// count beyond [`MAX_INGEST_BATCH`].
pub fn decode_ingest_batch(payload: &[u8]) -> Result<Vec<(u64, u64)>, Error> {
    let mut buf = payload;
    let updates = take_u32(&mut buf)?;
    if usize::try_from(updates)
        .map(|n| n > MAX_INGEST_BATCH)
        .unwrap_or(true)
    {
        return Err(Error::Corrupt(format!(
            "ingest batch of {updates} updates (max {MAX_INGEST_BATCH})"
        )));
    }
    let mut out = Vec::new();
    for _ in 0..updates {
        let item = take_u64(&mut buf)?;
        let weight = take_u64(&mut buf)?;
        out.push((item, weight));
    }
    expect_empty(buf, "ingest")?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SketchEngineBuilder;

    #[test]
    fn snapshot_roundtrips_and_rejects_damage() {
        let mut engine: SketchEngine<u64> = SketchEngineBuilder::new(32).seed(5).build().unwrap();
        for i in 0..200u64 {
            engine.update(i % 17, i + 1);
        }
        let payload = encode_snapshot(9, true, &engine);
        let snap = decode_snapshot(&payload).unwrap();
        assert_eq!(snap.epoch, 9);
        assert!(snap.sealed);
        assert_eq!(
            snap.engine.state_fingerprint(),
            engine.state_fingerprint(),
            "decoded engine must be operationally identical"
        );
        assert!(decode_snapshot(&payload[..7]).is_err(), "truncated header");
        let mut bad_flag = payload.clone();
        bad_flag[8] = 7;
        assert!(decode_snapshot(&bad_flag).is_err(), "bad sealed flag");
        let mut bad_engine = payload.clone();
        let last = bad_engine.len() - 1;
        bad_engine[last] ^= 0xFF;
        assert!(decode_snapshot(&bad_engine).is_err(), "corrupt engine");
    }

    #[test]
    fn file_list_roundtrips_and_bounds_hold() {
        let entries = vec![
            ("STORE".to_string(), 64u64),
            ("wal-000001.seg".to_string(), 12_345),
            ("shard-0000/MANIFEST".to_string(), 90),
        ];
        let payload = encode_file_list(&entries).unwrap();
        assert_eq!(decode_file_list(&payload).unwrap(), entries);
        assert!(decode_file_list(&payload[..payload.len() - 2]).is_err());
        let mut trailing = payload.clone();
        trailing.push(0);
        assert!(decode_file_list(&trailing).is_err());
        // A hostile count cannot demand a huge allocation.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_file_list(&hostile).is_err());
    }

    #[test]
    fn rel_path_validation_blocks_traversal() {
        assert!(validate_rel_path("STORE").is_ok());
        assert!(validate_rel_path("shard-0003/ckpt-000007.ck").is_ok());
        for bad in [
            "",
            "/etc/passwd",
            "../wal-1.seg",
            "shard/../../x",
            "shard/./x",
            "a//b",
            "sp ace",
            "tab\tseg",
            "uni\u{2603}code",
        ] {
            assert!(validate_rel_path(bad).is_err(), "accepted `{bad}`");
        }
        let long = "a".repeat(MAX_SHIP_PATH + 1);
        assert!(validate_rel_path(&long).is_err());
    }

    #[test]
    fn fetch_request_roundtrips() {
        let payload = encode_fetch_request(4096, "wal-000002.seg");
        assert_eq!(
            decode_fetch_request(&payload).unwrap(),
            (4096, "wal-000002.seg".to_string())
        );
        assert!(decode_fetch_request(&payload[..5]).is_err());
        assert!(decode_fetch_request(&encode_fetch_request(0, "../x")).is_err());
    }

    #[test]
    fn ingest_batch_roundtrips_and_bounds_hold() {
        let batch: Vec<(u64, u64)> = (0..1000).map(|i| (i * 7, i + 1)).collect();
        let payload = encode_ingest_batch(&batch);
        assert_eq!(decode_ingest_batch(&payload).unwrap(), batch);
        assert!(decode_ingest_batch(&payload[..payload.len() - 3]).is_err());
        let mut trailing = payload.clone();
        trailing.extend_from_slice(&[0; 3]);
        assert!(decode_ingest_batch(&trailing).is_err());
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_ingest_batch(&hostile).is_err());
    }
}
