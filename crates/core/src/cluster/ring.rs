//! Consistent-hash ring with virtual nodes.
//!
//! The keyspace is the full `u64` hash circle. Every node contributes
//! `vnodes` points to the circle, each placed at the stable hash of
//! `(node id, replica index)`; a key is owned by the first point at or
//! clockwise-after the key's own position (wrapping at the top). Two
//! consequences fall straight out of the construction:
//!
//! * **Determinism.** Placement depends only on node *ids* and the
//!   vnode count — both recorded in the topology file — so every
//!   process (ingest clients, query tiers, the nodes themselves)
//!   computes identical routes, across restarts and machines.
//! * **Minimal remapping.** Removing a node removes only that node's
//!   points: a key whose owning point belonged to a *different* node
//!   keeps its owner exactly, so only ≈ 1/N of keys move (the removed
//!   node's arc mass). Adding a node is symmetric.
//!
//! The key's ring position is a *re-mixed* hash, decorrelated from the
//! bits [`shard_of`](crate::concurrent) uses for intra-node shard
//! routing: node arcs partition the circle into intervals, and without
//! the re-mix a node owning few arcs would see its keys' high hash bits
//! concentrated in those intervals, skewing its internal shard balance.

use crate::hashing::Hash64;
use crate::rng::split_mix64_mix;

/// Salt decorrelating ring positions from the item hash itself (and
/// from the upper bits `shard_of` consumes inside each node).
const RING_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// The ring position of an item key.
#[inline]
pub fn key_point<K: Hash64 + ?Sized>(key: &K) -> u64 {
    split_mix64_mix(key.hash64() ^ RING_SALT)
}

/// The ring position of virtual node `replica` of node `node_id`.
#[inline]
pub fn vnode_point(node_id: u64, replica: u32) -> u64 {
    (node_id, u64::from(replica)).hash64()
}

/// A consistent-hash ring over a fixed node set.
///
/// Build one from a [`crate::cluster::Topology`] (via
/// [`Topology::ring`](crate::cluster::Topology::ring)) or directly from
/// node ids. Owners are reported as *indices into the node list the
/// ring was built from*, so callers can carry addresses or sketch
/// handles in a parallel slice.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// Sorted `(position, node index)` points. Ties sort by node index,
    /// so even colliding vnode positions resolve deterministically.
    points: Vec<(u64, u32)>,
    num_nodes: usize,
}

impl HashRing {
    /// Builds the ring: `vnodes` points for each id in `node_ids`.
    ///
    /// # Panics
    /// Panics if `node_ids` is empty, holds more than `u32::MAX`
    /// entries, or `vnodes` is zero — a ring with no points cannot
    /// route. (Topology validation rejects these before a file-driven
    /// path can reach here.)
    pub fn build(node_ids: &[u64], vnodes: u32) -> HashRing {
        assert!(!node_ids.is_empty(), "ring needs at least one node");
        assert!(vnodes > 0, "ring needs at least one vnode per node");
        assert!(u32::try_from(node_ids.len()).is_ok(), "too many nodes");
        let mut points = Vec::with_capacity(node_ids.len() * vnodes as usize);
        for (index, &id) in node_ids.iter().enumerate() {
            for replica in 0..vnodes {
                points.push((vnode_point(id, replica), index as u32));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            num_nodes: node_ids.len(),
        }
    }

    /// Number of nodes the ring was built from.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Total points on the circle (nodes × vnodes).
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// The node index owning ring position `point`: the first vnode at
    /// or clockwise-after it, wrapping at the top of the circle.
    pub fn owner_of_point(&self, point: u64) -> usize {
        let i = self.points.partition_point(|&(p, _)| p < point);
        let (_, node) = if i == self.points.len() {
            self.points[0]
        } else {
            self.points[i]
        };
        node as usize
    }

    /// The node index owning item `key`.
    pub fn route<K: Hash64 + ?Sized>(&self, key: &K) -> usize {
        self.owner_of_point(key_point(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let ids = [11u64, 22, 33];
        let a = HashRing::build(&ids, 16);
        let b = HashRing::build(&ids, 16);
        for key in 0u64..1000 {
            let owner = a.route(&key);
            assert!(owner < 3);
            assert_eq!(owner, b.route(&key), "two builds diverged on {key}");
        }
    }

    #[test]
    fn removal_only_remaps_the_removed_nodes_keys() {
        let ids = [1u64, 2, 3, 4, 5];
        let full = HashRing::build(&ids, 32);
        let reduced_ids: Vec<u64> = ids.iter().copied().filter(|&id| id != 3).collect();
        let reduced = HashRing::build(&reduced_ids, 32);
        let removed_index = 2; // id 3 in the full list
        for key in 0u64..4000 {
            let before = full.route(&key);
            let after = reduced.route(&key);
            if before != removed_index {
                // Survivor-owned keys keep their owner (ids shift down
                // by one slot past the removal point).
                let expected = if before > removed_index {
                    before - 1
                } else {
                    before
                };
                assert_eq!(after, expected, "key {key} moved off a surviving node");
            }
        }
    }

    #[test]
    fn arcs_are_roughly_balanced() {
        let ids: Vec<u64> = (100..108).collect();
        let ring = HashRing::build(&ids, 64);
        let mut owned = vec![0usize; ids.len()];
        for key in 0u64..80_000 {
            owned[ring.route(&key)] += 1;
        }
        let expect = 80_000 / ids.len();
        for (node, &count) in owned.iter().enumerate() {
            assert!(
                count > expect / 3 && count < expect * 3,
                "node {node} owns {count} of 80000 (expected ≈{expect})"
            );
        }
    }

    #[test]
    fn vnode_points_differ_per_replica_and_node() {
        assert_ne!(vnode_point(1, 0), vnode_point(1, 1));
        assert_ne!(vnode_point(1, 0), vnode_point(2, 0));
    }
}
