//! Distributed cluster mode: consistent-hash partitioning across N
//! ingest nodes, with merging fan-out queries and WAL-shipped replicas.
//!
//! Algorithm 5 makes the sketch *mergeable* with additive error
//! accounting (Theorem 5): merging per-node summaries adds their
//! offsets and their stream weights, nothing else. That is exactly the
//! primitive that makes horizontal scale-out honest rather than
//! heuristic — a cluster of N ingest nodes, each sketching its slice of
//! the keyspace, answers any EST/TOPK/HH query by merging the N
//! per-node snapshots into one bank whose error band is *certified*,
//! not estimated.
//!
//! ## Pieces
//!
//! | module | contents |
//! |---|---|
//! | [`ring`] | consistent-hash ring with virtual nodes: deterministic key → node routing, minimal remapping on membership change |
//! | [`topology`] | the explicit, epoch-versioned cluster membership file (`SFTOPO v1`): node ids, addresses, ring width |
//! | [`wire`] | payload codecs for the cluster extension opcodes of the SFBP binary protocol (snapshot export, file shipping, wire ingest) |
//!
//! ## Division of labor
//!
//! This module is pure data-plane logic — hashing, routing, and byte
//! codecs — with no sockets and no threads, so it unit-tests without a
//! cluster. The actual processes (ingest routing client, merging query
//! tier, WAL-shipping replication) live in the `streamfreq` CLI
//! (`cluster-ingest`, `cluster-query`, `cluster-serve`,
//! `cluster-replicate`, `cluster-promote` verbs), which composes these
//! parts with the existing serving loop and the
//! [`crate::persist`] recovery contract.
//!
//! ## Trust model
//!
//! Topology files and fan-out response payloads are *untrusted input*:
//! [`topology::Topology::parse`] and every `wire::decode_*` function
//! follow the same defensive-decode discipline as the sketch codec
//! (explicit `Err(Corrupt)`/`Err(Truncated)`, no panics, no unchecked
//! arithmetic), enforced by `streamfreq-lint`.

pub mod ring;
pub mod topology;
pub mod wire;

pub use ring::HashRing;
pub use topology::{NodeSpec, Topology};
pub use wire::NodeSnapshot;
