//! Signed (turnstile) streams via the two-instance reduction of §1.3's
//! Note.
//!
//! Counter-based summaries target insertion streams, but the paper points
//! out that deletions can be handled "easily ... at the cost of having
//! error proportional to `Σ|Δⱼ|` rather than to `N = ΣΔⱼ`": run one
//! summary over the positive updates and one over the magnitudes of the
//! negative updates, and estimate by difference. By the triangle
//! inequality the error of the difference is at most the sum of the two
//! summaries' errors.
//!
//! This is the right tool when deletions are a small fraction of traffic
//! (retractions, corrections, cancelled orders); if `Σ|Δⱼ| ≫ ΣΔⱼ`, a
//! linear sketch (see `streamfreq-baselines::count_min` /
//! [`count_sketch`](https://en.wikipedia.org/wiki/Count_sketch)) is the
//! better fit — exactly the trade-off §1.3 describes.

use crate::purge::PurgePolicy;
use crate::sketch::{FreqSketch, FreqSketchBuilder};
use crate::Error;

/// A frequent-items summary for streams with deletions (strict turnstile:
/// final frequencies must be non-negative for the bounds to be
/// meaningful).
///
/// # Example
///
/// ```
/// use streamfreq_core::SignedFreqSketch;
///
/// let mut net = SignedFreqSketch::with_max_counters(32);
/// net.update(1, 500);   // order placed
/// net.update(1, -120);  // partial cancellation
/// assert_eq!(net.estimate(1), 380);
/// let (lo, hi) = net.bounds(1);
/// assert!(lo <= 380 && 380 <= hi);
/// ```
#[derive(Clone, Debug)]
pub struct SignedFreqSketch {
    /// Summary of all positive-weight updates.
    additions: FreqSketch,
    /// Summary of the magnitudes of all negative-weight updates.
    deletions: FreqSketch,
}

impl SignedFreqSketch {
    /// Creates a signed sketch: two `k`-counter instances (one per sign).
    ///
    /// # Panics
    /// Panics if `k` is invalid; use [`SignedFreqSketch::try_new`] to
    /// handle configuration errors.
    pub fn with_max_counters(k: usize) -> Self {
        Self::try_new(k, PurgePolicy::default(), 0).expect("invalid k")
    }

    /// Creates a signed sketch with an explicit policy and seed.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] for invalid parameters.
    pub fn try_new(k: usize, policy: PurgePolicy, seed: u64) -> Result<Self, Error> {
        Ok(Self {
            additions: FreqSketchBuilder::new(k)
                .policy(policy)
                .seed(seed)
                .build()?,
            deletions: FreqSketchBuilder::new(k)
                .policy(policy)
                .seed(seed ^ 0x0DE1_E7E5)
                .build()?,
        })
    }

    /// Processes a signed update. Zero deltas are ignored.
    ///
    /// # Panics
    /// Panics if `|delta|` exceeds `i64::MAX as u64` conversions or total
    /// weights overflow (same limits as [`FreqSketch::update`]).
    pub fn update(&mut self, item: u64, delta: i64) {
        match delta.cmp(&0) {
            core::cmp::Ordering::Greater => self.additions.update(item, delta as u64),
            core::cmp::Ordering::Less => {
                self.deletions.update(item, delta.unsigned_abs());
            }
            core::cmp::Ordering::Equal => {}
        }
    }

    /// Estimated net frequency `f̂ᵢ = f̂ᵢ⁺ − f̂ᵢ⁻` (may be negative due to
    /// approximation even in strict turnstile streams).
    pub fn estimate(&self, item: u64) -> i64 {
        self.additions.estimate(item) as i64 - self.deletions.estimate(item) as i64
    }

    /// Certified bounds on the net frequency:
    /// `lower = lb⁺ − ub⁻`, `upper = ub⁺ − lb⁻`.
    pub fn bounds(&self, item: u64) -> (i64, i64) {
        let lower =
            self.additions.lower_bound(item) as i64 - self.deletions.upper_bound(item) as i64;
        let upper =
            self.additions.upper_bound(item) as i64 - self.deletions.lower_bound(item) as i64;
        (lower, upper)
    }

    /// Maximum estimation error: the sum of the two instances' errors
    /// (triangle inequality, §1.3 Note) — proportional to `Σ|Δⱼ|`.
    pub fn maximum_error(&self) -> u64 {
        self.additions.maximum_error() + self.deletions.maximum_error()
    }

    /// Gross weight `Σ|Δⱼ|` processed.
    pub fn gross_weight(&self) -> u64 {
        self.additions.stream_weight() + self.deletions.stream_weight()
    }

    /// Net weight `ΣΔⱼ` processed (saturating at zero if deletions
    /// exceed additions).
    pub fn net_weight(&self) -> i64 {
        self.additions.stream_weight() as i64 - self.deletions.stream_weight() as i64
    }

    /// The positive-side summary.
    pub fn additions(&self) -> &FreqSketch {
        &self.additions
    }

    /// The negative-side summary.
    pub fn deletions(&self) -> &FreqSketch {
        &self.deletions
    }

    /// Merges another signed sketch (Algorithm 5, applied per sign).
    pub fn merge(&mut self, other: &SignedFreqSketch) {
        self.additions.merge(&other.additions);
        self.deletions.merge(&other.deletions);
    }

    /// Items whose net frequency may exceed `threshold`, by upper bound,
    /// sorted descending (a no-false-negatives style report).
    pub fn frequent_items_above(&self, threshold: i64) -> Vec<(u64, i64)> {
        let mut rows: Vec<(u64, i64)> = self
            .additions
            .counters()
            .filter_map(|(item, _)| {
                let (_, ub) = self.bounds(item);
                (ub > threshold).then_some((item, self.estimate(item)))
            })
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn exact_in_small_regime() {
        let mut s = SignedFreqSketch::with_max_counters(32);
        s.update(1, 100);
        s.update(1, -30);
        s.update(2, 50);
        s.update(3, -5);
        assert_eq!(s.estimate(1), 70);
        assert_eq!(s.estimate(2), 50);
        assert_eq!(s.estimate(3), -5);
        assert_eq!(s.gross_weight(), 185);
        assert_eq!(s.net_weight(), 115);
        assert_eq!(s.maximum_error(), 0);
    }

    #[test]
    fn zero_delta_is_noop() {
        let mut s = SignedFreqSketch::with_max_counters(8);
        s.update(1, 0);
        assert_eq!(s.gross_weight(), 0);
    }

    #[test]
    fn bounds_bracket_net_truth_under_pressure() {
        let mut s = SignedFreqSketch::with_max_counters(48);
        let mut truth: HashMap<u64, i64> = HashMap::new();
        let mut x = 77u64;
        for _ in 0..60_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = (x >> 33) % 300;
            let mag = (x % 50 + 1) as i64;
            // 85% inserts, 15% deletes — the "deletions are rare" regime.
            let delta = if x % 100 < 85 { mag } else { -mag };
            s.update(item, delta);
            *truth.entry(item).or_insert(0) += delta;
        }
        assert!(s.additions().num_purges() > 0, "must exercise purging");
        for (&item, &f) in &truth {
            let (lo, hi) = s.bounds(item);
            assert!(lo <= f && f <= hi, "item {item}: {f} outside [{lo}, {hi}]");
            assert!(
                s.estimate(item).abs_diff(f) <= s.maximum_error(),
                "estimate error beyond certified maximum"
            );
        }
    }

    #[test]
    fn heavy_net_item_is_reported() {
        let mut s = SignedFreqSketch::with_max_counters(32);
        for i in 0..5_000u64 {
            s.update(42, 200);
            s.update(42, -50); // net +150 per round
            s.update(i % 500 + 100, 10);
        }
        let net = 5_000i64 * 150;
        let (lo, hi) = s.bounds(42);
        assert!(lo <= net && net <= hi);
        let top = s.frequent_items_above(net / 2);
        assert_eq!(top.first().map(|&(i, _)| i), Some(42));
    }

    #[test]
    fn merge_combines_both_signs() {
        let mut a = SignedFreqSketch::with_max_counters(16);
        let mut b = SignedFreqSketch::with_max_counters(16);
        a.update(1, 100);
        b.update(1, -40);
        b.update(2, 7);
        a.merge(&b);
        assert_eq!(a.estimate(1), 60);
        assert_eq!(a.estimate(2), 7);
        assert_eq!(a.gross_weight(), 147);
    }
}
