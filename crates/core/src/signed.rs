//! Signed (turnstile) streams via the two-instance reduction of §1.3's
//! Note, generic over the item type.
//!
//! Counter-based summaries target insertion streams, but the paper points
//! out that deletions can be handled "easily ... at the cost of having
//! error proportional to `Σ|Δⱼ|` rather than to `N = ΣΔⱼ`": run one
//! summary over the positive updates and one over the magnitudes of the
//! negative updates, and estimate by difference. By the triangle
//! inequality the error of the difference is at most the sum of the two
//! summaries' errors.
//!
//! [`SignedSketch<K>`] runs two [`SketchEngine`]s, one per sign, over any
//! [`SketchKey`] item type — the deletion workloads of Bhattacharyya, Dey
//! & Woodruff's ℓ₁-heavy-hitters setting are not `u64`-only, and neither
//! is this. [`SignedFreqSketch`] is the `u64` alias. Both sides ride the
//! engine's prefetching batch pipeline via [`SignedSketch::update_batch`].
//!
//! This is the right tool when deletions are a small fraction of traffic
//! (retractions, corrections, cancelled orders); if `Σ|Δⱼ| ≫ ΣΔⱼ`, a
//! linear sketch (see `streamfreq-baselines::count_min` /
//! [`count_sketch`](https://en.wikipedia.org/wiki/Count_sketch)) is the
//! better fit — exactly the trade-off §1.3 describes.

use crate::engine::{SketchEngine, SketchEngineBuilder, SketchKey};
use crate::purge::PurgePolicy;
use crate::Error;

/// A frequent-items summary for streams with deletions (strict turnstile:
/// final frequencies must be non-negative for the bounds to be
/// meaningful), generic over the item type.
///
/// # Example
///
/// ```
/// use streamfreq_core::SignedFreqSketch;
///
/// let mut net = SignedFreqSketch::with_max_counters(32);
/// net.update(1, 500);   // order placed
/// net.update(1, -120);  // partial cancellation
/// assert_eq!(net.estimate(&1), 380);
/// let (lo, hi) = net.bounds(&1);
/// assert!(lo <= 380 && 380 <= hi);
/// ```
#[derive(Clone, Debug)]
pub struct SignedSketch<K: SketchKey = u64> {
    /// Summary of all positive-weight updates.
    additions: SketchEngine<K>,
    /// Summary of the magnitudes of all negative-weight updates.
    deletions: SketchEngine<K>,
    /// Reusable per-sign buffers for [`Self::update_batch`].
    positive_buf: Vec<(K, u64)>,
    negative_buf: Vec<(K, u64)>,
}

/// The `u64`-keyed signed sketch (the original name of this type, kept
/// as the idiomatic spelling for numeric identifiers).
pub type SignedFreqSketch = SignedSketch<u64>;

impl<K: SketchKey> SignedSketch<K> {
    /// Creates a signed sketch: two `k`-counter instances (one per sign).
    ///
    /// # Panics
    /// Panics if `k` is invalid; use [`SignedSketch::try_new`] to
    /// handle configuration errors.
    pub fn with_max_counters(k: usize) -> Self {
        Self::try_new(k, PurgePolicy::default(), 0).expect("invalid k")
    }

    /// Creates a signed sketch with an explicit policy and seed.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] for invalid parameters.
    pub fn try_new(k: usize, policy: PurgePolicy, seed: u64) -> Result<Self, Error> {
        Ok(Self {
            additions: SketchEngineBuilder::new(k)
                .policy(policy)
                .seed(seed)
                .build()?,
            deletions: SketchEngineBuilder::new(k)
                .policy(policy)
                .seed(seed ^ 0x0DE1_E7E5)
                .build()?,
            positive_buf: Vec::new(),
            negative_buf: Vec::new(),
        })
    }

    /// Processes a signed update. Zero deltas are ignored.
    ///
    /// # Panics
    /// Panics if `|delta|` exceeds `i64::MAX as u64` conversions or total
    /// weights overflow (same limits as [`SketchEngine::update`]).
    pub fn update(&mut self, item: K, delta: i64) {
        match delta.cmp(&0) {
            core::cmp::Ordering::Greater => self.additions.update(item, delta as u64),
            core::cmp::Ordering::Less => {
                self.deletions.update(item, delta.unsigned_abs());
            }
            core::cmp::Ordering::Equal => {}
        }
    }

    /// Processes a slice of signed updates through both engines' batched,
    /// prefetching ingestion paths — state-identical to calling
    /// [`Self::update`] on each pair in order (each sign's subsequence is
    /// preserved, and the per-sign batch path is state-identical to its
    /// scalar path under any chunking).
    pub fn update_batch(&mut self, batch: &[(K, i64)]) {
        self.positive_buf.clear();
        self.negative_buf.clear();
        for (item, delta) in batch {
            match delta.cmp(&0) {
                core::cmp::Ordering::Greater => {
                    self.positive_buf.push((item.clone(), *delta as u64));
                }
                core::cmp::Ordering::Less => {
                    self.negative_buf.push((item.clone(), delta.unsigned_abs()));
                }
                core::cmp::Ordering::Equal => {}
            }
        }
        self.additions.update_batch(&self.positive_buf);
        self.deletions.update_batch(&self.negative_buf);
    }

    /// Estimated net frequency `f̂ᵢ = f̂ᵢ⁺ − f̂ᵢ⁻` (may be negative due to
    /// approximation even in strict turnstile streams).
    pub fn estimate(&self, item: &K) -> i64 {
        self.additions.estimate(item) as i64 - self.deletions.estimate(item) as i64
    }

    /// Certified bounds on the net frequency:
    /// `lower = lb⁺ − ub⁻`, `upper = ub⁺ − lb⁻`.
    pub fn bounds(&self, item: &K) -> (i64, i64) {
        let lower =
            self.additions.lower_bound(item) as i64 - self.deletions.upper_bound(item) as i64;
        let upper =
            self.additions.upper_bound(item) as i64 - self.deletions.lower_bound(item) as i64;
        (lower, upper)
    }

    /// Maximum estimation error: the sum of the two instances' errors
    /// (triangle inequality, §1.3 Note) — proportional to `Σ|Δⱼ|`.
    pub fn maximum_error(&self) -> u64 {
        self.additions.maximum_error() + self.deletions.maximum_error()
    }

    /// Gross weight `Σ|Δⱼ|` processed.
    pub fn gross_weight(&self) -> u64 {
        self.additions.stream_weight() + self.deletions.stream_weight()
    }

    /// Net weight `ΣΔⱼ` processed (negative if deletions exceed
    /// additions).
    pub fn net_weight(&self) -> i64 {
        self.additions.stream_weight() as i64 - self.deletions.stream_weight() as i64
    }

    /// The positive-side summary.
    pub fn additions(&self) -> &SketchEngine<K> {
        &self.additions
    }

    /// The negative-side summary.
    pub fn deletions(&self) -> &SketchEngine<K> {
        &self.deletions
    }

    /// Merges another signed sketch (Algorithm 5, applied per sign).
    pub fn merge(&mut self, other: &SignedSketch<K>) {
        self.additions.merge(&other.additions);
        self.deletions.merge(&other.deletions);
    }

    /// Items whose net frequency may exceed `threshold`, by upper bound,
    /// sorted descending by estimate (a no-false-negatives style report).
    pub fn frequent_items_above(&self, threshold: i64) -> Vec<(K, i64)>
    where
        K: Ord,
    {
        let mut rows: Vec<(K, i64)> = self
            .additions
            .counters()
            .filter_map(|(item, _)| {
                let (_, ub) = self.bounds(item);
                (ub > threshold).then(|| (item.clone(), self.estimate(item)))
            })
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows
    }

    /// [`Self::frequent_items_above`] at the sketch's own
    /// [`Self::maximum_error`] — the finest net-frequency distinction the
    /// two-instance reduction can certify.
    pub fn frequent_items(&self) -> Vec<(K, i64)>
    where
        K: Ord,
    {
        self.frequent_items_above(self.maximum_error() as i64)
    }

    /// The (φ, ε)-heavy-hitters query over the *net* stream: items whose
    /// net frequency may exceed `max(phi · max(ΣΔⱼ, 0), maximum_error)`.
    /// No false negatives: reporting is by net upper bound, so any item
    /// genuinely above the threshold is returned. The threshold is the
    /// exact `⌊phi · N⌋` of [`crate::bounds::phi_threshold`].
    ///
    /// # Panics
    /// Panics if `phi` is outside `[0, 1]`.
    pub fn heavy_hitters(&self, phi: f64) -> Vec<(K, i64)>
    where
        K: Ord,
    {
        let net = self.net_weight().max(0);
        // net ≤ i64::MAX and phi ≤ 1, so the exact threshold fits in i64.
        let threshold = crate::bounds::phi_threshold(phi, net as u64) as i64;
        self.frequent_items_above(threshold.max(self.maximum_error() as i64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn exact_in_small_regime() {
        let mut s = SignedFreqSketch::with_max_counters(32);
        s.update(1, 100);
        s.update(1, -30);
        s.update(2, 50);
        s.update(3, -5);
        assert_eq!(s.estimate(&1), 70);
        assert_eq!(s.estimate(&2), 50);
        assert_eq!(s.estimate(&3), -5);
        assert_eq!(s.gross_weight(), 185);
        assert_eq!(s.net_weight(), 115);
        assert_eq!(s.maximum_error(), 0);
    }

    #[test]
    fn zero_delta_is_noop() {
        let mut s = SignedFreqSketch::with_max_counters(8);
        s.update(1, 0);
        assert_eq!(s.gross_weight(), 0);
    }

    #[test]
    fn bounds_bracket_net_truth_under_pressure() {
        let mut s = SignedFreqSketch::with_max_counters(48);
        let mut truth: HashMap<u64, i64> = HashMap::new();
        let mut x = 77u64;
        for _ in 0..60_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = (x >> 33) % 300;
            let mag = (x % 50 + 1) as i64;
            // 85% inserts, 15% deletes — the "deletions are rare" regime.
            let delta = if x % 100 < 85 { mag } else { -mag };
            s.update(item, delta);
            *truth.entry(item).or_insert(0) += delta;
        }
        assert!(s.additions().num_purges() > 0, "must exercise purging");
        for (&item, &f) in &truth {
            let (lo, hi) = s.bounds(&item);
            assert!(lo <= f && f <= hi, "item {item}: {f} outside [{lo}, {hi}]");
            assert!(
                s.estimate(&item).abs_diff(f) <= s.maximum_error(),
                "estimate error beyond certified maximum"
            );
        }
    }

    #[test]
    fn heavy_net_item_is_reported() {
        let mut s = SignedFreqSketch::with_max_counters(32);
        for i in 0..5_000u64 {
            s.update(42, 200);
            s.update(42, -50); // net +150 per round
            s.update(i % 500 + 100, 10);
        }
        let net = 5_000i64 * 150;
        let (lo, hi) = s.bounds(&42);
        assert!(lo <= net && net <= hi);
        let top = s.frequent_items_above(net / 2);
        assert_eq!(top.first().map(|&(i, _)| i), Some(42));
    }

    #[test]
    fn update_batch_is_state_identical_to_scalar() {
        let stream: Vec<(u64, i64)> = (0..40_000u64)
            .map(|i| {
                let item = (i * 2_654_435_761) % 400;
                let mag = (i % 60 + 1) as i64;
                (item, if i % 9 == 0 { -mag } else { mag })
            })
            .collect();
        let mut scalar = SignedFreqSketch::try_new(64, PurgePolicy::smed(), 5).unwrap();
        for &(item, delta) in &stream {
            scalar.update(item, delta);
        }
        let mut batched = SignedFreqSketch::try_new(64, PurgePolicy::smed(), 5).unwrap();
        // Arbitrary re-chunking must not matter.
        for chunk in stream.chunks(777) {
            batched.update_batch(chunk);
        }
        assert!(scalar.additions().num_purges() > 0, "must exercise purging");
        assert_eq!(
            batched.additions().state_fingerprint(),
            scalar.additions().state_fingerprint()
        );
        assert_eq!(
            batched.deletions().state_fingerprint(),
            scalar.deletions().state_fingerprint()
        );
    }

    #[test]
    fn update_batch_skips_zero_deltas() {
        let mut s = SignedFreqSketch::with_max_counters(8);
        s.update_batch(&[(1, 5), (2, 0), (3, -7)]);
        assert_eq!(s.gross_weight(), 12);
        assert_eq!(s.estimate(&2), 0);
    }

    #[test]
    fn heavy_hitters_reports_net_heavy_items() {
        let mut s = SignedFreqSketch::with_max_counters(64);
        for i in 0..5_000u64 {
            s.update(7, 100);
            s.update(7, -40); // net +60 per round → 300k net
            s.update(i % 800 + 100, 2);
        }
        let hh = s.heavy_hitters(0.2);
        assert!(!hh.is_empty(), "the 30%-net item must be reported");
        assert_eq!(hh[0].0, 7);
        // No-false-negatives side: everything reported has ub above the
        // requested threshold.
        let net = s.net_weight().max(0);
        let threshold = i64::try_from(crate::bounds::phi_threshold(0.2, net as u64)).unwrap();
        for (item, _) in &hh {
            let (_, ub) = s.bounds(item);
            assert!(ub > threshold);
        }
    }

    #[test]
    fn frequent_items_at_certified_error_level() {
        let mut s = SignedFreqSketch::with_max_counters(16);
        for i in 0..20_000u64 {
            s.update(1, 50);
            s.update(i % 300 + 10, 3);
            if i % 10 == 0 {
                s.update(1, -5);
            }
        }
        let rows = s.frequent_items();
        assert_eq!(rows.first().map(|&(i, _)| i), Some(1));
    }

    #[test]
    fn generic_string_items_work() {
        let mut s: SignedSketch<String> = SignedSketch::with_max_counters(16);
        s.update("order-1".into(), 500);
        s.update("order-1".into(), -120);
        s.update("order-2".into(), 80);
        assert_eq!(s.estimate(&"order-1".to_string()), 380);
        assert_eq!(s.net_weight(), 460);
        let top = s.frequent_items_above(100);
        assert_eq!(top[0].0, "order-1");
    }

    #[test]
    fn merge_combines_both_signs() {
        let mut a = SignedFreqSketch::with_max_counters(16);
        let mut b = SignedFreqSketch::with_max_counters(16);
        a.update(1, 100);
        b.update(1, -40);
        b.update(2, 7);
        a.merge(&b);
        assert_eq!(a.estimate(&1), 60);
        assert_eq!(a.estimate(&2), 7);
        assert_eq!(a.gross_weight(), 147);
    }
}
