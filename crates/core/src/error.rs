//! Error type for sketch configuration and (de)serialization.

use core::fmt;

/// Errors reported by sketch construction and the binary codec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// A configuration parameter was out of range.
    InvalidConfig(String),
    /// The serialized bytes do not describe a sketch (bad magic or framing).
    Corrupt(String),
    /// The serialized sketch uses a format version this library predates.
    UnsupportedVersion(u8),
    /// The byte buffer ended before the encoded sketch did.
    Truncated {
        /// Bytes needed to continue decoding.
        needed: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid sketch configuration: {msg}"),
            Error::Corrupt(msg) => write!(f, "corrupt sketch encoding: {msg}"),
            Error::UnsupportedVersion(v) => write!(f, "unsupported serialization version {v}"),
            Error::Truncated { needed, remaining } => write!(
                f,
                "truncated sketch encoding: needed {needed} more bytes, {remaining} remain"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::InvalidConfig("k must be positive".into());
        assert!(e.to_string().contains("k must be positive"));
        let e = Error::Truncated {
            needed: 16,
            remaining: 3,
        };
        assert!(e.to_string().contains("16"));
        assert!(e.to_string().contains('3'));
    }
}
