//! [`FreqSketch`]: the paper's optimized frequent-items summary for `u64`
//! items and weighted updates.
//!
//! This is Algorithm 4 with the §2.3 production refinements:
//!
//! * counters live in the linear-probing table of §2.3.3
//!   ([`crate::table::LpTable`]);
//! * purges decrement by a configurable [`PurgePolicy`] — the sample median
//!   (**SMED**) by default;
//! * estimates use the offset variant of §2.3.1 (a hybrid of Misra-Gries
//!   and Space Saving estimates): the summary tracks the cumulative
//!   decrement `offset`, reports `c(i) + offset` for tracked items and `0`
//!   for untracked items, and certifies `c(i) ≤ fᵢ ≤ c(i) + offset`;
//! * merging follows Algorithm 5: the other summary's counters are replayed
//!   into this one as weighted updates, in randomized order to sidestep the
//!   probe-clustering caveat of §3.2's Note.
//!
//! The table starts small and doubles up to its configured maximum, so an
//! under-filled sketch costs memory proportional to its content, matching
//! the DataSketches deployment the paper describes.
//!
//! All of the algorithmic machinery lives in the generic
//! [`SketchEngine`]; `FreqSketch` is the
//! `u64`-keyed instantiation with by-value query ergonomics and the
//! versioned wire format of [`crate::codec`]. The instantiation is
//! zero-overhead: the `u64` hash inlines to the SplitMix64 finalizer and
//! keys are stored in a dense `Vec<u64>`, exactly as the pre-engine
//! specialized implementation stored them.
//!
//! # Example
//!
//! ```
//! use streamfreq_core::{FreqSketch, ErrorType};
//!
//! let mut sketch = FreqSketch::with_max_counters(64);
//! for flow in 0u64..1000 {
//!     // flow 7 is hot: give it large weighted updates.
//!     sketch.update(7, 1_000);
//!     sketch.update(flow, 1);
//! }
//! let top = sketch.frequent_items(ErrorType::NoFalsePositives);
//! assert_eq!(top[0].item, 7);
//! assert!(sketch.lower_bound(7) <= 1_000_000 && 1_000_000 <= sketch.upper_bound(7));
//! ```

use crate::engine::{SketchEngine, SketchEngineBuilder};
use crate::error::Error;
use crate::purge::PurgePolicy;
use crate::result::{ErrorType, Row};

pub use crate::engine::DEFAULT_SEED;

/// A weighted frequent-items sketch over `u64` item identifiers.
///
/// See the [module docs](self) for the algorithmic background and the
/// crate docs for the full API tour.
#[derive(Clone, Debug)]
pub struct FreqSketch {
    pub(crate) engine: SketchEngine<u64>,
}

/// Configures and constructs a [`FreqSketch`].
#[derive(Clone, Debug)]
pub struct FreqSketchBuilder {
    inner: SketchEngineBuilder<u64>,
}

impl FreqSketchBuilder {
    /// Starts a builder for a sketch maintaining at most `max_counters`
    /// assigned counters (the paper's `k`).
    pub fn new(max_counters: usize) -> Self {
        Self {
            inner: SketchEngineBuilder::new(max_counters),
        }
    }

    /// Selects the purge policy (default: SMED, the paper's recommendation).
    pub fn policy(mut self, policy: PurgePolicy) -> Self {
        self.inner = self.inner.policy(policy);
        self
    }

    /// Seeds the purge-sampling generator (default: [`DEFAULT_SEED`]).
    /// Two sketches built with equal configuration and seed process any
    /// stream identically.
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner = self.inner.seed(seed);
        self
    }

    /// If `false`, allocates the maximum-size table up front instead of
    /// growing from 8 slots. Pre-allocation avoids rehashing churn in
    /// benchmarks; growth minimizes footprint for underfilled sketches.
    pub fn grow_from_small(mut self, grow: bool) -> Self {
        self.inner = self.inner.grow_from_small(grow);
        self
    }

    /// Builds the sketch.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if `max_counters` is zero or so
    /// large the table would exceed 2³¹ slots, or if the policy parameters
    /// are out of range.
    pub fn build(self) -> Result<FreqSketch, Error> {
        Ok(FreqSketch {
            engine: self.inner.build()?,
        })
    }
}

impl From<SketchEngine<u64>> for FreqSketch {
    /// Wraps a `u64`-keyed engine (e.g. a [`crate::ShardedSketch`] merge
    /// export) in the `FreqSketch` API.
    fn from(engine: SketchEngine<u64>) -> Self {
        FreqSketch { engine }
    }
}

impl FreqSketch {
    /// Creates a SMED sketch maintaining at most `max_counters` counters,
    /// with default seed and a growing table.
    ///
    /// # Panics
    /// Panics if `max_counters` is zero or needs a table beyond 2³¹ slots;
    /// use [`FreqSketch::builder`] to handle configuration errors.
    pub fn with_max_counters(max_counters: usize) -> Self {
        FreqSketchBuilder::new(max_counters)
            .build()
            .expect("invalid max_counters")
    }

    /// Starts a [`FreqSketchBuilder`] for custom configuration.
    pub fn builder(max_counters: usize) -> FreqSketchBuilder {
        FreqSketchBuilder::new(max_counters)
    }

    /// Read access to the underlying generic engine.
    #[inline]
    pub fn engine(&self) -> &SketchEngine<u64> {
        &self.engine
    }

    /// Mutable access to the underlying generic engine, for the bench
    /// harness's ingest-profiling hooks.
    #[doc(hidden)]
    pub fn engine_mut(&mut self) -> &mut SketchEngine<u64> {
        &mut self.engine
    }

    /// Number of counters currently assigned.
    #[inline]
    pub fn num_counters(&self) -> usize {
        self.engine.num_counters()
    }

    /// Maximum number of counters this sketch maintains (the paper's `k`).
    #[inline]
    pub fn max_counters(&self) -> usize {
        self.engine.max_counters()
    }

    /// True if the sketch has processed no updates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.engine.is_empty()
    }

    /// Total weighted stream length `N = Σ Δⱼ` processed so far
    /// (including merged-in streams). Saturates at `u64::MAX` instead of
    /// panicking — see [`SketchEngine::stream_weight`] for the policy.
    #[inline]
    pub fn stream_weight(&self) -> u64 {
        self.engine.stream_weight()
    }

    /// True if the total stream weight ever exceeded `u64::MAX` and
    /// [`Self::stream_weight`] is pinned at the saturation point.
    #[inline]
    pub fn stream_weight_saturated(&self) -> bool {
        self.engine.stream_weight_saturated()
    }

    /// Number of update operations `n` processed so far.
    #[inline]
    pub fn num_updates(&self) -> u64 {
        self.engine.num_updates()
    }

    /// Number of purge (DecrementCounters) operations performed.
    #[inline]
    pub fn num_purges(&self) -> u64 {
        self.engine.num_purges()
    }

    /// The purge policy in effect.
    #[inline]
    pub fn policy(&self) -> PurgePolicy {
        self.engine.policy()
    }

    /// The seed the purge sampler was initialized with.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.engine.seed()
    }

    /// Bytes of heap memory held by the counter table. At the maximum table
    /// size this is `18 · 2^lg_max ≈ 24k` bytes (§2.3.3).
    #[inline]
    pub fn memory_bytes(&self) -> usize {
        self.engine.memory_bytes()
    }

    /// Processes the weighted update `(item, weight)` in amortized O(1).
    ///
    /// Zero weights are ignored (they carry no frequency mass). If the
    /// total stream weight exceeds `u64::MAX`, `N` saturates rather than
    /// panicking — see [`Self::stream_weight`] for the policy.
    ///
    /// # Panics
    /// Panics if `weight` exceeds `i64::MAX` (counters are signed 64-bit,
    /// matching the paper's deployment).
    #[inline]
    pub fn update(&mut self, item: u64, weight: u64) {
        self.engine.update(item, weight);
    }

    /// Processes a unit update `(item, 1)`.
    #[inline]
    pub fn update_one(&mut self, item: u64) {
        self.engine.update_one(item);
    }

    /// Processes a slice of weighted updates, **state-identically** to
    /// calling [`Self::update`] on each pair in order, but substantially
    /// faster on large tables — see [`SketchEngine::update_batch`] for
    /// the chunking and prefetching scheme.
    pub fn update_batch(&mut self, batch: &[(u64, u64)]) {
        self.engine.update_batch(batch);
    }

    /// Estimate `f̂ᵢ` of the item's weighted frequency: `c(i) + offset` for
    /// tracked items, `0` for untracked items (§2.3.1's MG/SS hybrid).
    /// Always satisfies `estimate − maximum_error ≤ fᵢ ≤ estimate` for
    /// tracked items and `0 ≤ fᵢ ≤ maximum_error` for untracked ones.
    #[inline]
    pub fn estimate(&self, item: u64) -> u64 {
        self.engine.estimate(&item)
    }

    /// Certified lower bound on the item's frequency: `c(i)`, or `0` if the
    /// item is not tracked. Never exceeds the true frequency.
    #[inline]
    pub fn lower_bound(&self, item: u64) -> u64 {
        self.engine.lower_bound(&item)
    }

    /// Certified upper bound on the item's frequency: `c(i) + offset`, or
    /// `offset` alone if the item is not tracked. Never below the true
    /// frequency.
    #[inline]
    pub fn upper_bound(&self, item: u64) -> u64 {
        self.engine.upper_bound(&item)
    }

    /// The a-posteriori maximum error: any estimate is within this of the
    /// true frequency. Equal to the cumulative purge decrement (`offset`).
    #[inline]
    pub fn maximum_error(&self) -> u64 {
        self.engine.maximum_error()
    }

    /// A-priori bound on `maximum_error` after processing weight `n_total`:
    /// `n_total / (k*_eff · k)` per Lemma 4 / Theorems 2 & 4, where
    /// `k*_eff` comes from [`PurgePolicy::effective_kstar_fraction`].
    pub fn a_priori_error(&self, n_total: u64) -> u64 {
        self.engine.a_priori_error(n_total)
    }

    /// Iterates over the tracked `(item, lower_bound)` pairs in table order.
    pub fn counters(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.engine.counters().map(|(&item, lb)| (item, lb))
    }

    /// Returns every item whose frequency may exceed `threshold`, under the
    /// chosen reporting contract, sorted by descending estimate — see
    /// [`SketchEngine::frequent_items_with_threshold`] for the contract
    /// details and the threshold clamp.
    pub fn frequent_items_with_threshold(&self, threshold: u64, error_type: ErrorType) -> Vec<Row> {
        self.engine
            .frequent_items_with_threshold(threshold, error_type)
    }

    /// [`Self::frequent_items_with_threshold`] with the sketch's own
    /// `maximum_error` as the threshold — the finest distinction the
    /// summary can certify.
    pub fn frequent_items(&self, error_type: ErrorType) -> Vec<Row> {
        self.engine.frequent_items(error_type)
    }

    /// The (φ, ε)-heavy-hitters query of §1.2: items whose frequency may
    /// exceed `max(phi · N, maximum_error)`, under the chosen reporting
    /// contract.
    ///
    /// # Panics
    /// Panics if `phi` is outside `[0, 1]`.
    pub fn heavy_hitters(&self, phi: f64, error_type: ErrorType) -> Vec<Row> {
        self.engine.heavy_hitters(phi, error_type)
    }

    /// The `k` tracked items with the largest estimates.
    pub fn top_k(&self, k: usize) -> Vec<Row> {
        self.engine.top_k(k)
    }

    /// Merges `other` into `self` (Algorithm 5): every counter of `other`
    /// is replayed into `self` as a weighted update, in randomized order,
    /// and the offsets add — see [`SketchEngine::merge`].
    pub fn merge(&mut self, other: &FreqSketch) {
        self.engine.merge(&other.engine);
    }

    /// Scales every counter to `⌊c · num / den⌋` in place, dropping the
    /// counters that reach zero — the time-fading hook; see
    /// [`SketchEngine::scale_counters`] for the bounds accounting.
    ///
    /// # Panics
    /// Panics if `den` is zero or `num > den`.
    pub fn scale_counters(&mut self, num: u64, den: u64) {
        self.engine.scale_counters(num, den);
    }

    /// Replays an arbitrary counter list into the sketch as weighted
    /// updates (Algorithm 5's generic form) — see
    /// [`SketchEngine::absorb_counters`].
    pub fn absorb_counters<I>(
        &mut self,
        counters: I,
        source_stream_weight: u64,
        source_max_error: u64,
    ) where
        I: IntoIterator<Item = (u64, u64)>,
    {
        self.engine
            .absorb_counters(counters, source_stream_weight, source_max_error);
    }

    /// Test/debug aid: verifies the internal table invariants.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.engine.check_invariants();
    }
}

/// Streaming ingestion through the batch path: buffers the iterator into
/// chunks and forwards them to [`FreqSketch::update_batch`], so
/// `sketch.extend(stream)` gets the prefetching fast path without the
/// caller materializing a slice.
impl Extend<(u64, u64)> for FreqSketch {
    fn extend<I: IntoIterator<Item = (u64, u64)>>(&mut self, iter: I) {
        self.engine.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn empty_sketch_reports_zero() {
        let s = FreqSketch::with_max_counters(16);
        assert!(s.is_empty());
        assert_eq!(s.estimate(5), 0);
        assert_eq!(s.lower_bound(5), 0);
        assert_eq!(s.upper_bound(5), 0);
        assert_eq!(s.maximum_error(), 0);
        assert_eq!(s.stream_weight(), 0);
        assert!(s.frequent_items(ErrorType::NoFalseNegatives).is_empty());
    }

    #[test]
    fn exact_below_capacity() {
        // Fewer distinct items than counters: the sketch is exact.
        let mut s = FreqSketch::with_max_counters(64);
        for i in 0..50u64 {
            s.update(i, (i + 1) * 10);
        }
        assert_eq!(s.maximum_error(), 0);
        for i in 0..50u64 {
            assert_eq!(s.estimate(i), (i + 1) * 10);
            assert_eq!(s.lower_bound(i), (i + 1) * 10);
            assert_eq!(s.upper_bound(i), (i + 1) * 10);
        }
        assert_eq!(s.stream_weight(), (1..=50u64).map(|x| x * 10).sum());
    }

    #[test]
    fn zero_weight_update_is_a_noop() {
        let mut s = FreqSketch::with_max_counters(8);
        s.update(1, 0);
        assert!(s.is_empty());
        assert_eq!(s.stream_weight(), 0);
    }

    #[test]
    fn bounds_bracket_truth_beyond_capacity() {
        let mut s = FreqSketch::with_max_counters(32);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut x = 12345u64;
        for _ in 0..20_000 {
            // xorshift-ish mixing to get a skewed-but-spread key sequence
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let item = x % 300;
            let w = x % 97 + 1;
            s.update(item, w);
            *truth.entry(item).or_insert(0) += w;
        }
        s.check_invariants();
        for (&item, &f) in &truth {
            assert!(s.lower_bound(item) <= f, "lb violated for {item}");
            assert!(s.upper_bound(item) >= f, "ub violated for {item}");
            let est = s.estimate(item);
            if est > 0 {
                assert!(est.abs_diff(f) <= s.maximum_error());
            } else {
                assert!(f <= s.maximum_error());
            }
        }
    }

    #[test]
    fn maximum_error_respects_a_priori_bound() {
        for policy in [
            PurgePolicy::smed(),
            PurgePolicy::smin(),
            PurgePolicy::med(),
            PurgePolicy::GlobalMin,
        ] {
            let mut s = FreqSketch::builder(100).policy(policy).build().unwrap();
            for i in 0..200_000u64 {
                s.update(i % 1000, 3);
            }
            let bound = s.a_priori_error(s.stream_weight());
            assert!(
                s.maximum_error() <= bound,
                "{policy:?}: offset {} exceeds a-priori bound {bound}",
                s.maximum_error()
            );
        }
    }

    #[test]
    fn heavy_item_always_survives() {
        // An item holding >50% of the stream mass can never be evicted
        // (error ≤ N/(k*_eff·k) < N/2 for any sane configuration).
        let mut s = FreqSketch::with_max_counters(64);
        for i in 0..10_000u64 {
            s.update(999_999, 100);
            s.update(i, 1);
        }
        let f = 10_000u64 * 100;
        assert!(s.lower_bound(999_999) > 0, "heavy item evicted");
        assert!(s.lower_bound(999_999) <= f && f <= s.upper_bound(999_999));
        let hh = s.heavy_hitters(0.4, ErrorType::NoFalsePositives);
        assert_eq!(hh.len(), 1);
        assert_eq!(hh[0].item, 999_999);
    }

    #[test]
    fn no_false_negatives_contract() {
        let mut s = FreqSketch::with_max_counters(32);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..50_000u64 {
            let item = i % 500;
            let w = if item < 5 { 500 } else { 1 };
            s.update(item, w);
            *truth.entry(item).or_insert(0) += w;
        }
        let n = s.stream_weight();
        let phi = 0.05;
        let reported: Vec<u64> = s
            .heavy_hitters(phi, ErrorType::NoFalseNegatives)
            .iter()
            .map(|r| r.item)
            .collect();
        for (&item, &f) in &truth {
            if f > crate::bounds::phi_threshold(phi, n) {
                assert!(reported.contains(&item), "missed heavy hitter {item}");
            }
        }
    }

    #[test]
    fn no_false_positives_contract() {
        let mut s = FreqSketch::with_max_counters(32);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..50_000u64 {
            let item = i % 500;
            let w = if item < 5 { 500 } else { 1 };
            s.update(item, w);
            *truth.entry(item).or_insert(0) += w;
        }
        let threshold = s.maximum_error();
        for row in s.frequent_items_with_threshold(threshold, ErrorType::NoFalsePositives) {
            assert!(
                truth[&row.item] > threshold,
                "false positive: item {} true {} ≤ threshold {threshold}",
                row.item,
                truth[&row.item],
            );
        }
    }

    #[test]
    fn rows_are_sorted_descending() {
        let mut s = FreqSketch::with_max_counters(64);
        for i in 0..40u64 {
            s.update(i, 40 - i);
        }
        let rows = s.top_k(10);
        assert_eq!(rows.len(), 10);
        for w in rows.windows(2) {
            assert!(w[0].estimate >= w[1].estimate);
        }
        assert_eq!(rows[0].item, 0);
    }

    #[test]
    fn table_growth_preserves_counts() {
        let mut s = FreqSketch::with_max_counters(3000); // grows 8 → 4096
        for i in 0..2000u64 {
            s.update(i, i + 1);
        }
        assert_eq!(s.maximum_error(), 0, "no purge should have happened");
        for i in (0..2000u64).step_by(97) {
            assert_eq!(s.estimate(i), i + 1);
        }
        s.check_invariants();
    }

    #[test]
    fn preallocated_matches_grown() {
        let stream: Vec<(u64, u64)> = (0..30_000u64).map(|i| (i % 700, i % 13 + 1)).collect();
        let mut grown = FreqSketch::builder(128).seed(9).build().unwrap();
        let mut fixed = FreqSketch::builder(128)
            .seed(9)
            .grow_from_small(false)
            .build()
            .unwrap();
        for &(i, w) in &stream {
            grown.update(i, w);
            fixed.update(i, w);
        }
        // Same seed, same policy: purge decisions happen at the same points
        // once both are at max size; estimates must agree.
        for item in 0..700u64 {
            assert_eq!(grown.estimate(item), fixed.estimate(item), "item {item}");
        }
        assert_eq!(grown.maximum_error(), fixed.maximum_error());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = FreqSketch::builder(50).seed(1234).build().unwrap();
        let mut b = FreqSketch::builder(50).seed(1234).build().unwrap();
        for i in 0..100_000u64 {
            let item = (i * 2_654_435_761) % 999;
            a.update(item, i % 50 + 1);
            b.update(item, i % 50 + 1);
        }
        assert_eq!(a.maximum_error(), b.maximum_error());
        assert_eq!(a.num_purges(), b.num_purges());
        for item in 0..999 {
            assert_eq!(a.estimate(item), b.estimate(item));
        }
    }

    #[test]
    fn merge_is_error_bounded() {
        let mut left = FreqSketch::builder(64).seed(1).build().unwrap();
        let mut right = FreqSketch::builder(64).seed(2).build().unwrap();
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..30_000u64 {
            let item = i % 400;
            let w = i % 7 + 1;
            if i % 2 == 0 {
                left.update(item, w);
            } else {
                right.update(item, w);
            }
            *truth.entry(item).or_insert(0) += w;
        }
        let n_total = left.stream_weight() + right.stream_weight();
        left.merge(&right);
        assert_eq!(left.stream_weight(), n_total);
        left.check_invariants();
        for (&item, &f) in &truth {
            assert!(left.lower_bound(item) <= f, "merge lb violated for {item}");
            assert!(left.upper_bound(item) >= f, "merge ub violated for {item}");
        }
        // Theorem 5: error ≤ N / (k*_eff · k) with both sketches' purges.
        let bound = left.a_priori_error(n_total);
        assert!(left.maximum_error() <= bound);
    }

    #[test]
    fn merge_into_empty_copies_counters() {
        let mut src = FreqSketch::with_max_counters(32);
        for i in 0..20u64 {
            src.update(i, (i + 1) * 5);
        }
        let mut dst = FreqSketch::with_max_counters(32);
        dst.merge(&src);
        for i in 0..20u64 {
            assert_eq!(dst.estimate(i), (i + 1) * 5);
        }
        assert_eq!(dst.stream_weight(), src.stream_weight());
    }

    #[test]
    fn absorb_exact_counters() {
        let mut s = FreqSketch::with_max_counters(64);
        s.absorb_counters(vec![(1u64, 100u64), (2, 50), (3, 0)], 150, 0);
        assert_eq!(s.estimate(1), 100);
        assert_eq!(s.estimate(2), 50);
        assert_eq!(s.estimate(3), 0);
        assert_eq!(s.stream_weight(), 150);
    }

    #[test]
    fn builder_rejects_bad_config() {
        assert!(matches!(
            FreqSketch::builder(0).build(),
            Err(Error::InvalidConfig(_))
        ));
        assert!(matches!(
            FreqSketch::builder(10)
                .policy(PurgePolicy::SampleQuantile {
                    sample_size: 0,
                    quantile: 0.5
                })
                .build(),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn memory_is_24k_bytes_at_design_point() {
        let s = FreqSketch::builder(24_576)
            .grow_from_small(false)
            .build()
            .unwrap();
        assert_eq!(s.memory_bytes(), 24 * 24_576);
    }

    #[test]
    fn purge_count_is_amortized_constant() {
        // Theorem 3: with SMED, purges happen at most ~once per (1-q)·k
        // inserts of new items; verify the rate is far below 1/update.
        let mut s = FreqSketch::builder(256).build().unwrap();
        for i in 0..100_000u64 {
            s.update(i, 1); // all-distinct: worst case for purge frequency
        }
        let purges = s.num_purges();
        // Each purge with c*=median kills ≥ half the counters ⇒ at most
        // one purge per k/2 inserts plus slack.
        assert!(purges <= 100_000 / (256 / 4), "too many purges: {purges}");
        assert!(purges > 0);
    }

    /// Reference stream with enough skew and churn to force growth and
    /// many purges at small k.
    fn churny_stream(len: u64) -> Vec<(u64, u64)> {
        (0..len)
            .map(|i| {
                let item = (i * 2_654_435_761) % 900;
                let w = if item < 3 { 1_000 } else { i % 17 + 1 };
                (item, w)
            })
            .collect()
    }

    #[test]
    fn update_batch_is_state_identical_to_scalar() {
        let stream = churny_stream(40_000);
        let mut scalar = FreqSketch::builder(128).seed(5).build().unwrap();
        for &(item, w) in &stream {
            scalar.update(item, w);
        }
        let mut batched = FreqSketch::builder(128).seed(5).build().unwrap();
        batched.update_batch(&stream);
        batched.check_invariants();
        // Bit-identical state: same counters in the same slots, same
        // offset, same sampler state — the wire encodings must match.
        assert_eq!(batched.serialize_to_bytes(), scalar.serialize_to_bytes());
    }

    #[test]
    fn update_batch_equivalence_across_arbitrary_splits() {
        let stream = churny_stream(20_000);
        let reference = {
            let mut s = FreqSketch::builder(64).seed(9).build().unwrap();
            s.update_batch(&stream);
            s
        };
        for parts in [2usize, 3, 7, 100] {
            let mut s = FreqSketch::builder(64).seed(9).build().unwrap();
            for chunk in stream.chunks(stream.len().div_ceil(parts)) {
                s.update_batch(chunk);
            }
            assert_eq!(
                s.serialize_to_bytes(),
                reference.serialize_to_bytes(),
                "split into {parts} parts diverged"
            );
        }
    }

    #[test]
    fn update_batch_skips_zero_weights_like_scalar() {
        let mut a = FreqSketch::with_max_counters(16);
        a.update_batch(&[(1, 5), (2, 0), (3, 7), (2, 0)]);
        assert_eq!(a.num_updates(), 2);
        assert_eq!(a.stream_weight(), 12);
        assert_eq!(a.estimate(2), 0);
    }

    #[test]
    fn extend_matches_update_batch() {
        let stream = churny_stream(30_000);
        let mut via_batch = FreqSketch::builder(96).seed(2).build().unwrap();
        via_batch.update_batch(&stream);
        let mut via_extend = FreqSketch::builder(96).seed(2).build().unwrap();
        via_extend.extend(stream.iter().copied());
        assert_eq!(
            via_extend.serialize_to_bytes(),
            via_batch.serialize_to_bytes()
        );
    }

    #[test]
    fn stream_weight_saturates_instead_of_panicking() {
        let mut s = FreqSketch::with_max_counters(8);
        s.update(1, i64::MAX as u64);
        s.update(2, i64::MAX as u64);
        assert!(!s.stream_weight_saturated());
        assert_eq!(s.stream_weight(), u64::MAX - 1);
        s.update(3, 100);
        assert!(s.stream_weight_saturated());
        assert_eq!(s.stream_weight(), u64::MAX);
        // Counter state is unaffected by N saturating.
        assert_eq!(s.lower_bound(3), 100);
        // The flag survives merging into another sketch.
        let mut dst = FreqSketch::with_max_counters(8);
        dst.merge(&s);
        assert!(dst.stream_weight_saturated());
        assert_eq!(dst.stream_weight(), u64::MAX);
    }

    #[test]
    fn batch_saturation_matches_scalar_saturation() {
        let stream = [(1u64, i64::MAX as u64), (2, i64::MAX as u64), (3, 77)];
        let mut scalar = FreqSketch::with_max_counters(8);
        for &(i, w) in &stream {
            scalar.update(i, w);
        }
        let mut batched = FreqSketch::with_max_counters(8);
        batched.update_batch(&stream);
        assert_eq!(batched.stream_weight(), scalar.stream_weight());
        assert_eq!(
            batched.stream_weight_saturated(),
            scalar.stream_weight_saturated()
        );
    }

    #[test]
    #[should_panic(expected = "exceeds supported range")]
    fn oversized_weight_panics() {
        let mut s = FreqSketch::with_max_counters(8);
        s.update(1, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "phi")]
    fn bad_phi_panics() {
        let s = FreqSketch::with_max_counters(8);
        s.heavy_hitters(1.5, ErrorType::NoFalseNegatives);
    }
}
