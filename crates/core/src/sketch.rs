//! [`FreqSketch`]: the paper's optimized frequent-items summary for `u64`
//! items and weighted updates.
//!
//! This is Algorithm 4 with the §2.3 production refinements:
//!
//! * counters live in the linear-probing table of §2.3.3
//!   ([`crate::table::LpTable`]);
//! * purges decrement by a configurable [`PurgePolicy`] — the sample median
//!   (**SMED**) by default;
//! * estimates use the offset variant of §2.3.1 (a hybrid of Misra-Gries
//!   and Space Saving estimates): the summary tracks the cumulative
//!   decrement `offset`, reports `c(i) + offset` for tracked items and `0`
//!   for untracked items, and certifies `c(i) ≤ fᵢ ≤ c(i) + offset`;
//! * merging follows Algorithm 5: the other summary's counters are replayed
//!   into this one as weighted updates, in randomized order to sidestep the
//!   probe-clustering caveat of §3.2's Note.
//!
//! The table starts small and doubles up to its configured maximum, so an
//! under-filled sketch costs memory proportional to its content, matching
//! the DataSketches deployment the paper describes.
//!
//! # Example
//!
//! ```
//! use streamfreq_core::{FreqSketch, ErrorType};
//!
//! let mut sketch = FreqSketch::with_max_counters(64);
//! for flow in 0u64..1000 {
//!     // flow 7 is hot: give it large weighted updates.
//!     sketch.update(7, 1_000);
//!     sketch.update(flow, 1);
//! }
//! let top = sketch.frequent_items(ErrorType::NoFalsePositives);
//! assert_eq!(top[0].item, 7);
//! assert!(sketch.lower_bound(7) <= 1_000_000 && 1_000_000 <= sketch.upper_bound(7));
//! ```

use crate::error::Error;
use crate::purge::PurgePolicy;
use crate::result::{sort_rows_descending, ErrorType, Row};
use crate::rng::Xoshiro256StarStar;
use crate::table::LpTable;

/// Default seed for the purge-sampling generator: behaviour is
/// deterministic unless a seed is chosen explicitly via the builder.
pub const DEFAULT_SEED: u64 = 0x5745_4948_4854_4544; // "WEIGHTED"

/// Smallest table the growing sketch starts from (8 slots).
const LG_MIN_TABLE: u32 = 3;

/// Design load factor: the table is never filled past 3/4, giving the
/// `L ≈ 4k/3` sizing of §2.3.3.
const LOAD_NUM: usize = 3;
const LOAD_DEN: usize = 4;

/// Upper bound on one batch chunk, bounding transient scratch work per
/// capacity check regardless of `k`.
const MAX_CHUNK: usize = 1 << 20;

/// A weighted frequent-items sketch over `u64` item identifiers.
///
/// See the [module docs](self) for the algorithmic background and the
/// crate docs for the full API tour.
#[derive(Clone, Debug)]
pub struct FreqSketch {
    pub(crate) table: LpTable,
    pub(crate) lg_cur: u32,
    pub(crate) lg_max: u32,
    pub(crate) max_counters: usize,
    pub(crate) policy: PurgePolicy,
    pub(crate) rng: Xoshiro256StarStar,
    pub(crate) seed: u64,
    pub(crate) offset: u64,
    pub(crate) stream_weight: u64,
    pub(crate) weight_saturated: bool,
    pub(crate) num_updates: u64,
    pub(crate) num_purges: u64,
    pub(crate) scratch: Vec<i64>,
    pub(crate) pair_scratch: Vec<(u64, i64)>,
}

/// Configures and constructs a [`FreqSketch`].
#[derive(Clone, Debug)]
pub struct FreqSketchBuilder {
    max_counters: usize,
    policy: PurgePolicy,
    seed: u64,
    grow_from_small: bool,
}

impl FreqSketchBuilder {
    /// Starts a builder for a sketch maintaining at most `max_counters`
    /// assigned counters (the paper's `k`).
    pub fn new(max_counters: usize) -> Self {
        Self {
            max_counters,
            policy: PurgePolicy::default(),
            seed: DEFAULT_SEED,
            grow_from_small: true,
        }
    }

    /// Selects the purge policy (default: SMED, the paper's recommendation).
    pub fn policy(mut self, policy: PurgePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Seeds the purge-sampling generator (default: [`DEFAULT_SEED`]).
    /// Two sketches built with equal configuration and seed process any
    /// stream identically.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// If `false`, allocates the maximum-size table up front instead of
    /// growing from 8 slots. Pre-allocation avoids rehashing churn in
    /// benchmarks; growth minimizes footprint for underfilled sketches.
    pub fn grow_from_small(mut self, grow: bool) -> Self {
        self.grow_from_small = grow;
        self
    }

    /// Builds the sketch.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if `max_counters` is zero or so
    /// large the table would exceed 2³¹ slots, or if the policy parameters
    /// are out of range.
    pub fn build(self) -> Result<FreqSketch, Error> {
        if self.max_counters == 0 {
            return Err(Error::InvalidConfig("max_counters must be positive".into()));
        }
        self.policy.validate().map_err(Error::InvalidConfig)?;
        let lg_max = lg_table_len_for(self.max_counters).ok_or_else(|| {
            Error::InvalidConfig(format!(
                "max_counters {} needs a table larger than 2^31 slots",
                self.max_counters
            ))
        })?;
        let lg_cur = if self.grow_from_small {
            LG_MIN_TABLE.min(lg_max)
        } else {
            lg_max
        };
        Ok(FreqSketch {
            table: LpTable::with_lg_len(lg_cur),
            lg_cur,
            lg_max,
            max_counters: self.max_counters,
            policy: self.policy,
            rng: Xoshiro256StarStar::from_seed(self.seed),
            seed: self.seed,
            offset: 0,
            stream_weight: 0,
            weight_saturated: false,
            num_updates: 0,
            num_purges: 0,
            scratch: Vec::new(),
            pair_scratch: Vec::new(),
        })
    }
}

/// Smallest `lg` such that a `2^lg`-slot table holds `k` counters at 3/4
/// load, i.e. `2^lg ≥ 4k/3` (§2.3.3). `None` if `lg` would exceed 31
/// (including absurd `k` from corrupted encodings).
fn lg_table_len_for(k: usize) -> Option<u32> {
    let min_len = k.checked_mul(LOAD_DEN)?.div_ceil(LOAD_NUM);
    if min_len > 1 << 31 {
        return None;
    }
    let lg = min_len
        .next_power_of_two()
        .trailing_zeros()
        .max(LG_MIN_TABLE);
    if lg <= 31 {
        Some(lg)
    } else {
        None
    }
}

impl FreqSketch {
    /// Creates a SMED sketch maintaining at most `max_counters` counters,
    /// with default seed and a growing table.
    ///
    /// # Panics
    /// Panics if `max_counters` is zero or needs a table beyond 2³¹ slots;
    /// use [`FreqSketch::builder`] to handle configuration errors.
    pub fn with_max_counters(max_counters: usize) -> Self {
        FreqSketchBuilder::new(max_counters)
            .build()
            .expect("invalid max_counters")
    }

    /// Starts a [`FreqSketchBuilder`] for custom configuration.
    pub fn builder(max_counters: usize) -> FreqSketchBuilder {
        FreqSketchBuilder::new(max_counters)
    }

    /// Number of counters currently assigned.
    #[inline]
    pub fn num_counters(&self) -> usize {
        self.table.num_active()
    }

    /// Maximum number of counters this sketch maintains (the paper's `k`).
    #[inline]
    pub fn max_counters(&self) -> usize {
        self.max_counters
    }

    /// True if the sketch has processed no updates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_updates == 0
    }

    /// Total weighted stream length `N = Σ Δⱼ` processed so far
    /// (including merged-in streams).
    ///
    /// Saturates at `u64::MAX` instead of panicking if the true total
    /// exceeds `u64` (beyond the paper's `N ≤ 10²⁰` deployment regime);
    /// [`Self::stream_weight_saturated`] reports when that happened. A
    /// saturated `N` only makes [`Self::heavy_hitters`] thresholds
    /// conservative (too low), so the no-false-negatives contract is
    /// preserved; counter bounds are unaffected.
    #[inline]
    pub fn stream_weight(&self) -> u64 {
        self.stream_weight
    }

    /// True if the total stream weight ever exceeded `u64::MAX` and
    /// [`Self::stream_weight`] is pinned at the saturation point.
    #[inline]
    pub fn stream_weight_saturated(&self) -> bool {
        self.weight_saturated
    }

    /// Folds `total` new stream weight into the running `N` under the
    /// documented saturating policy. Shared by the scalar update, the
    /// batch update, and the merge paths.
    #[inline]
    pub(crate) fn absorb_stream_weight(&mut self, total: u128) {
        let new_total = self.stream_weight as u128 + total;
        if new_total > u64::MAX as u128 {
            self.stream_weight = u64::MAX;
            self.weight_saturated = true;
        } else {
            self.stream_weight = new_total as u64;
        }
    }

    /// Number of update operations `n` processed so far.
    #[inline]
    pub fn num_updates(&self) -> u64 {
        self.num_updates
    }

    /// Number of purge (DecrementCounters) operations performed.
    #[inline]
    pub fn num_purges(&self) -> u64 {
        self.num_purges
    }

    /// The purge policy in effect.
    #[inline]
    pub fn policy(&self) -> PurgePolicy {
        self.policy
    }

    /// The seed the purge sampler was initialized with.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Bytes of heap memory held by the counter table. At the maximum table
    /// size this is `18 · 2^lg_max ≈ 24k` bytes (§2.3.3).
    #[inline]
    pub fn memory_bytes(&self) -> usize {
        self.table.memory_bytes()
    }

    /// The current purge capacity: at the maximum table size, exactly
    /// `max_counters`; while growing, 3/4 of the current table length.
    #[inline]
    fn capacity_now(&self) -> usize {
        if self.lg_cur == self.lg_max {
            self.max_counters
        } else {
            (self.table.len() * LOAD_NUM) / LOAD_DEN
        }
    }

    /// Processes the weighted update `(item, weight)` in amortized O(1).
    ///
    /// Zero weights are ignored (they carry no frequency mass). If the
    /// total stream weight exceeds `u64::MAX`, `N` saturates rather than
    /// panicking — see [`Self::stream_weight`] for the policy.
    ///
    /// # Panics
    /// Panics if `weight` exceeds `i64::MAX` (counters are signed 64-bit,
    /// matching the paper's deployment).
    pub fn update(&mut self, item: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        assert!(
            weight <= i64::MAX as u64,
            "update weight {weight} exceeds supported range"
        );
        self.absorb_stream_weight(weight as u128);
        self.num_updates += 1;
        self.feed(item, weight as i64);
    }

    /// Processes a unit update `(item, 1)`.
    #[inline]
    pub fn update_one(&mut self, item: u64) {
        self.update(item, 1);
    }

    /// Processes a slice of weighted updates, **state-identically** to
    /// calling [`Self::update`] on each pair in order, but substantially
    /// faster on large tables:
    ///
    /// * probe homes are precomputed a chunk at a time and the table
    ///   slots software-prefetched ahead of the probe cursor
    ///   ([`LpTable::adjust_or_insert_batch`]), hiding DRAM latency that
    ///   dominates once the table outgrows L2;
    /// * the `stream_weight` / `num_updates` bookkeeping is folded into
    ///   one accumulation per chunk instead of one per update.
    ///
    /// Equivalence with the scalar path (same estimates, same purge
    /// points, same table layout, same sampler state) is maintained by
    /// sizing each chunk to the purge headroom: a chunk never inserts
    /// more counters than `capacity − num_active`, so no purge or growth
    /// decision can fall *inside* a chunk, and the items at capacity
    /// boundaries take the scalar path exactly as `update` would.
    pub fn update_batch(&mut self, batch: &[(u64, u64)]) {
        let mut rest = batch;
        while !rest.is_empty() {
            let headroom = self.capacity_now().saturating_sub(self.table.num_active());
            if headroom == 0 {
                // At capacity: the next update may trigger growth or a
                // purge, whose timing must match the scalar path.
                let (item, weight) = rest[0];
                rest = &rest[1..];
                self.update(item, weight);
                continue;
            }
            let take = headroom.min(rest.len()).min(MAX_CHUNK);
            let (chunk, tail) = rest.split_at(take);
            rest = tail;
            // The chunk goes to the table untouched — no copy — with
            // validation and weight/count accounting folded into the same
            // single pass. Within-chunk inserts cannot exceed capacity
            // (chunk size is bounded by headroom), so no purge/grow check
            // is needed until the chunk completes.
            let (total, applied) = self.table.adjust_or_insert_batch_weighted(chunk);
            self.absorb_stream_weight(total);
            self.num_updates += applied;
            // A headroom-sized chunk cannot push past capacity, so no
            // purge or growth can be due here — they all route through
            // the scalar fallback above, preserving scalar timing.
            debug_assert!(self.table.num_active() <= self.capacity_now());
        }
    }

    /// Core insertion path shared by updates and merges: adjust the counter,
    /// then grow or purge if the capacity discipline is violated.
    fn feed(&mut self, item: u64, weight: i64) {
        self.table.adjust_or_insert(item, weight);
        while self.table.num_active() > self.capacity_now() {
            if self.lg_cur < self.lg_max {
                self.grow();
            } else {
                self.purge();
            }
        }
    }

    /// Doubles the table, rehashing all counters through the prefetching
    /// batch path (rehash is pure random access over the new table, the
    /// best case for prefetching).
    fn grow(&mut self) {
        let new_lg = self.lg_cur + 1;
        let mut bigger = LpTable::with_lg_len(new_lg);
        let mut pairs = core::mem::take(&mut self.pair_scratch);
        pairs.clear();
        pairs.extend(self.table.iter());
        bigger.adjust_or_insert_batch(&pairs);
        self.pair_scratch = pairs;
        self.table = bigger;
        self.lg_cur = new_lg;
    }

    /// One DecrementCounters() operation: compute `c*` per the policy,
    /// subtract it from every counter, drop the non-positive ones, and fold
    /// `c*` into the estimate offset (§2.3.1).
    fn purge(&mut self) {
        let cstar = self
            .policy
            .compute_cstar(&self.table, &mut self.rng, &mut self.scratch);
        debug_assert!(cstar > 0, "counters are positive, so c* must be");
        self.table.purge_decrement(cstar);
        self.offset += cstar as u64;
        self.num_purges += 1;
    }

    /// Estimate `f̂ᵢ` of the item's weighted frequency: `c(i) + offset` for
    /// tracked items, `0` for untracked items (§2.3.1's MG/SS hybrid).
    /// Always satisfies `estimate − maximum_error ≤ fᵢ ≤ estimate` for
    /// tracked items and `0 ≤ fᵢ ≤ maximum_error` for untracked ones.
    #[inline]
    pub fn estimate(&self, item: u64) -> u64 {
        match self.table.get(item) {
            Some(c) => c as u64 + self.offset,
            None => 0,
        }
    }

    /// Certified lower bound on the item's frequency: `c(i)`, or `0` if the
    /// item is not tracked. Never exceeds the true frequency.
    #[inline]
    pub fn lower_bound(&self, item: u64) -> u64 {
        self.table.get(item).map_or(0, |c| c as u64)
    }

    /// Certified upper bound on the item's frequency: `c(i) + offset`, or
    /// `offset` alone if the item is not tracked. Never below the true
    /// frequency.
    #[inline]
    pub fn upper_bound(&self, item: u64) -> u64 {
        self.table
            .get(item)
            .map_or(self.offset, |c| c as u64 + self.offset)
    }

    /// The a-posteriori maximum error: any estimate is within this of the
    /// true frequency. Equal to the cumulative purge decrement (`offset`).
    #[inline]
    pub fn maximum_error(&self) -> u64 {
        self.offset
    }

    /// A-priori bound on `maximum_error` after processing weight `n_total`:
    /// `n_total / (k*_eff · k)` per Lemma 4 / Theorems 2 & 4, where
    /// `k*_eff` comes from [`PurgePolicy::effective_kstar_fraction`].
    pub fn a_priori_error(&self, n_total: u64) -> u64 {
        let kstar = self.policy.effective_kstar_fraction() * self.max_counters as f64;
        (n_total as f64 / kstar).ceil() as u64
    }

    /// Iterates over the tracked `(item, lower_bound)` pairs in table order.
    pub fn counters(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.table.iter().map(|(k, v)| (k, v as u64))
    }

    /// Builds the result row for a tracked item.
    fn row_for(&self, item: u64, count: i64) -> Row {
        Row {
            item,
            estimate: count as u64 + self.offset,
            lower_bound: count as u64,
            upper_bound: count as u64 + self.offset,
        }
    }

    /// Returns every item whose frequency may exceed `threshold`, under the
    /// chosen reporting contract, sorted by descending estimate:
    ///
    /// * [`ErrorType::NoFalsePositives`]: items with
    ///   `lower_bound > threshold` — all genuinely above the threshold.
    /// * [`ErrorType::NoFalseNegatives`]: items with
    ///   `upper_bound > threshold` — misses nothing above the threshold.
    ///
    /// A threshold below [`Self::maximum_error`] is raised to it (as in
    /// the deployed DataSketches API): the summary cannot enumerate items
    /// whose entire frequency fits inside its error band, so thresholds
    /// below that level cannot honour either contract.
    pub fn frequent_items_with_threshold(&self, threshold: u64, error_type: ErrorType) -> Vec<Row> {
        let threshold = threshold.max(self.maximum_error());
        let mut rows: Vec<Row> = self
            .table
            .iter()
            .filter_map(|(item, count)| {
                let row = self.row_for(item, count);
                let include = match error_type {
                    ErrorType::NoFalsePositives => row.lower_bound > threshold,
                    ErrorType::NoFalseNegatives => row.upper_bound > threshold,
                };
                include.then_some(row)
            })
            .collect();
        sort_rows_descending(&mut rows);
        rows
    }

    /// [`Self::frequent_items_with_threshold`] with the sketch's own
    /// `maximum_error` as the threshold — the finest distinction the
    /// summary can certify.
    pub fn frequent_items(&self, error_type: ErrorType) -> Vec<Row> {
        self.frequent_items_with_threshold(self.maximum_error(), error_type)
    }

    /// The (φ, ε)-heavy-hitters query of §1.2: items whose frequency may
    /// exceed `max(phi · N, maximum_error)`, under the chosen reporting
    /// contract (see [`Self::frequent_items_with_threshold`] for why the
    /// threshold cannot usefully go below the summary's error level).
    ///
    /// # Panics
    /// Panics if `phi` is outside `[0, 1]`.
    pub fn heavy_hitters(&self, phi: f64, error_type: ErrorType) -> Vec<Row> {
        assert!((0.0..=1.0).contains(&phi), "phi {phi} outside [0, 1]");
        let threshold = (phi * self.stream_weight as f64) as u64;
        self.frequent_items_with_threshold(threshold, error_type)
    }

    /// The `k` tracked items with the largest estimates.
    pub fn top_k(&self, k: usize) -> Vec<Row> {
        let mut rows: Vec<Row> = self
            .table
            .iter()
            .map(|(item, count)| self.row_for(item, count))
            .collect();
        sort_rows_descending(&mut rows);
        rows.truncate(k);
        rows
    }

    /// Merges `other` into `self` (Algorithm 5): every counter of `other`
    /// is replayed into `self` as a weighted update, and the offsets add.
    /// After the merge, `self` summarizes the concatenation of both input
    /// streams with error bounded by Theorem 5; `other` is unchanged and
    /// can be discarded.
    ///
    /// Counters are replayed in randomized order so that merging summaries
    /// that share the hash function cannot overpopulate probe runs (§3.2,
    /// Note). The implementation collects the counters with one sequential
    /// scan and Fisher-Yates-shuffles the compact pair array — cheaper
    /// than visiting the source table in a strided random order, which
    /// costs a cache miss per slot.
    pub fn merge(&mut self, other: &FreqSketch) {
        let mut pairs: Vec<(u64, i64)> = other.table.iter().collect();
        // Fisher-Yates with the sketch's own sampler.
        for i in (1..pairs.len()).rev() {
            let j = self.rng.next_below(i as u64 + 1) as usize;
            pairs.swap(i, j);
        }
        for (item, count) in pairs {
            self.feed(item, count);
        }
        self.offset += other.offset;
        self.absorb_stream_weight(other.stream_weight as u128);
        self.weight_saturated |= other.weight_saturated;
        self.num_updates += other.num_updates;
    }

    /// Replays an arbitrary counter list into the sketch as weighted
    /// updates. This is Algorithm 5's generic form: the source can be any
    /// counter-based summary (§3.2 "applies generically to any
    /// counter-based algorithm"). `source_stream_weight` is the weighted
    /// length of the stream the source summarized (its `N`), and
    /// `source_max_error` the summary's maximum estimation error (0 for an
    /// exact counter list).
    pub fn absorb_counters<I>(
        &mut self,
        counters: I,
        source_stream_weight: u64,
        source_max_error: u64,
    ) where
        I: IntoIterator<Item = (u64, u64)>,
    {
        for (item, count) in counters {
            if count == 0 {
                continue;
            }
            assert!(count <= i64::MAX as u64, "counter {count} exceeds range");
            self.feed(item, count as i64);
        }
        self.offset += source_max_error;
        self.absorb_stream_weight(source_stream_weight as u128);
    }

    /// Test/debug aid: verifies the internal table invariants.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.table.check_invariants();
        assert!(self.table.num_active() <= self.capacity_now().max(self.max_counters));
    }
}

/// Streaming ingestion through the batch path: buffers the iterator into
/// chunks and forwards them to [`FreqSketch::update_batch`], so
/// `sketch.extend(stream)` gets the prefetching fast path without the
/// caller materializing a slice.
impl Extend<(u64, u64)> for FreqSketch {
    fn extend<I: IntoIterator<Item = (u64, u64)>>(&mut self, iter: I) {
        /// Buffered pairs per `update_batch` call; large enough to
        /// amortize the call, small enough to stay cache-resident.
        const EXTEND_BUF: usize = 4096;
        let mut buf: Vec<(u64, u64)> = Vec::with_capacity(EXTEND_BUF);
        for pair in iter {
            buf.push(pair);
            if buf.len() == EXTEND_BUF {
                self.update_batch(&buf);
                buf.clear();
            }
        }
        self.update_batch(&buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn empty_sketch_reports_zero() {
        let s = FreqSketch::with_max_counters(16);
        assert!(s.is_empty());
        assert_eq!(s.estimate(5), 0);
        assert_eq!(s.lower_bound(5), 0);
        assert_eq!(s.upper_bound(5), 0);
        assert_eq!(s.maximum_error(), 0);
        assert_eq!(s.stream_weight(), 0);
        assert!(s.frequent_items(ErrorType::NoFalseNegatives).is_empty());
    }

    #[test]
    fn exact_below_capacity() {
        // Fewer distinct items than counters: the sketch is exact.
        let mut s = FreqSketch::with_max_counters(64);
        for i in 0..50u64 {
            s.update(i, (i + 1) * 10);
        }
        assert_eq!(s.maximum_error(), 0);
        for i in 0..50u64 {
            assert_eq!(s.estimate(i), (i + 1) * 10);
            assert_eq!(s.lower_bound(i), (i + 1) * 10);
            assert_eq!(s.upper_bound(i), (i + 1) * 10);
        }
        assert_eq!(s.stream_weight(), (1..=50u64).map(|x| x * 10).sum());
    }

    #[test]
    fn zero_weight_update_is_a_noop() {
        let mut s = FreqSketch::with_max_counters(8);
        s.update(1, 0);
        assert!(s.is_empty());
        assert_eq!(s.stream_weight(), 0);
    }

    #[test]
    fn bounds_bracket_truth_beyond_capacity() {
        let mut s = FreqSketch::with_max_counters(32);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut x = 12345u64;
        for _ in 0..20_000 {
            // xorshift-ish mixing to get a skewed-but-spread key sequence
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let item = x % 300;
            let w = x % 97 + 1;
            s.update(item, w);
            *truth.entry(item).or_insert(0) += w;
        }
        s.check_invariants();
        for (&item, &f) in &truth {
            assert!(s.lower_bound(item) <= f, "lb violated for {item}");
            assert!(s.upper_bound(item) >= f, "ub violated for {item}");
            let est = s.estimate(item);
            if est > 0 {
                assert!(est.abs_diff(f) <= s.maximum_error());
            } else {
                assert!(f <= s.maximum_error());
            }
        }
    }

    #[test]
    fn maximum_error_respects_a_priori_bound() {
        for policy in [
            PurgePolicy::smed(),
            PurgePolicy::smin(),
            PurgePolicy::med(),
            PurgePolicy::GlobalMin,
        ] {
            let mut s = FreqSketch::builder(100).policy(policy).build().unwrap();
            for i in 0..200_000u64 {
                s.update(i % 1000, 3);
            }
            let bound = s.a_priori_error(s.stream_weight());
            assert!(
                s.maximum_error() <= bound,
                "{policy:?}: offset {} exceeds a-priori bound {bound}",
                s.maximum_error()
            );
        }
    }

    #[test]
    fn heavy_item_always_survives() {
        // An item holding >50% of the stream mass can never be evicted
        // (error ≤ N/(k*_eff·k) < N/2 for any sane configuration).
        let mut s = FreqSketch::with_max_counters(64);
        for i in 0..10_000u64 {
            s.update(999_999, 100);
            s.update(i, 1);
        }
        let f = 10_000u64 * 100;
        assert!(s.lower_bound(999_999) > 0, "heavy item evicted");
        assert!(s.lower_bound(999_999) <= f && f <= s.upper_bound(999_999));
        let hh = s.heavy_hitters(0.4, ErrorType::NoFalsePositives);
        assert_eq!(hh.len(), 1);
        assert_eq!(hh[0].item, 999_999);
    }

    #[test]
    fn no_false_negatives_contract() {
        let mut s = FreqSketch::with_max_counters(32);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..50_000u64 {
            let item = i % 500;
            let w = if item < 5 { 500 } else { 1 };
            s.update(item, w);
            *truth.entry(item).or_insert(0) += w;
        }
        let n = s.stream_weight();
        let phi = 0.05;
        let reported: Vec<u64> = s
            .heavy_hitters(phi, ErrorType::NoFalseNegatives)
            .iter()
            .map(|r| r.item)
            .collect();
        for (&item, &f) in &truth {
            if f as f64 > phi * n as f64 {
                assert!(reported.contains(&item), "missed heavy hitter {item}");
            }
        }
    }

    #[test]
    fn no_false_positives_contract() {
        let mut s = FreqSketch::with_max_counters(32);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..50_000u64 {
            let item = i % 500;
            let w = if item < 5 { 500 } else { 1 };
            s.update(item, w);
            *truth.entry(item).or_insert(0) += w;
        }
        let threshold = s.maximum_error();
        for row in s.frequent_items_with_threshold(threshold, ErrorType::NoFalsePositives) {
            assert!(
                truth[&row.item] > threshold,
                "false positive: item {} true {} ≤ threshold {threshold}",
                row.item,
                truth[&row.item],
            );
        }
    }

    #[test]
    fn rows_are_sorted_descending() {
        let mut s = FreqSketch::with_max_counters(64);
        for i in 0..40u64 {
            s.update(i, 40 - i);
        }
        let rows = s.top_k(10);
        assert_eq!(rows.len(), 10);
        for w in rows.windows(2) {
            assert!(w[0].estimate >= w[1].estimate);
        }
        assert_eq!(rows[0].item, 0);
    }

    #[test]
    fn table_growth_preserves_counts() {
        let mut s = FreqSketch::with_max_counters(3000); // grows 8 → 4096
        for i in 0..2000u64 {
            s.update(i, i + 1);
        }
        assert_eq!(s.maximum_error(), 0, "no purge should have happened");
        for i in (0..2000u64).step_by(97) {
            assert_eq!(s.estimate(i), i + 1);
        }
        s.check_invariants();
    }

    #[test]
    fn preallocated_matches_grown() {
        let stream: Vec<(u64, u64)> = (0..30_000u64).map(|i| (i % 700, i % 13 + 1)).collect();
        let mut grown = FreqSketch::builder(128).seed(9).build().unwrap();
        let mut fixed = FreqSketch::builder(128)
            .seed(9)
            .grow_from_small(false)
            .build()
            .unwrap();
        for &(i, w) in &stream {
            grown.update(i, w);
            fixed.update(i, w);
        }
        // Same seed, same policy: purge decisions happen at the same points
        // once both are at max size; estimates must agree.
        for item in 0..700u64 {
            assert_eq!(grown.estimate(item), fixed.estimate(item), "item {item}");
        }
        assert_eq!(grown.maximum_error(), fixed.maximum_error());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = FreqSketch::builder(50).seed(1234).build().unwrap();
        let mut b = FreqSketch::builder(50).seed(1234).build().unwrap();
        for i in 0..100_000u64 {
            let item = (i * 2_654_435_761) % 999;
            a.update(item, i % 50 + 1);
            b.update(item, i % 50 + 1);
        }
        assert_eq!(a.maximum_error(), b.maximum_error());
        assert_eq!(a.num_purges(), b.num_purges());
        for item in 0..999 {
            assert_eq!(a.estimate(item), b.estimate(item));
        }
    }

    #[test]
    fn merge_is_error_bounded() {
        let mut left = FreqSketch::builder(64).seed(1).build().unwrap();
        let mut right = FreqSketch::builder(64).seed(2).build().unwrap();
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..30_000u64 {
            let item = i % 400;
            let w = i % 7 + 1;
            if i % 2 == 0 {
                left.update(item, w);
            } else {
                right.update(item, w);
            }
            *truth.entry(item).or_insert(0) += w;
        }
        let n_total = left.stream_weight() + right.stream_weight();
        left.merge(&right);
        assert_eq!(left.stream_weight(), n_total);
        left.check_invariants();
        for (&item, &f) in &truth {
            assert!(left.lower_bound(item) <= f, "merge lb violated for {item}");
            assert!(left.upper_bound(item) >= f, "merge ub violated for {item}");
        }
        // Theorem 5: error ≤ N / (k*_eff · k) with both sketches' purges.
        let bound = left.a_priori_error(n_total);
        assert!(left.maximum_error() <= bound);
    }

    #[test]
    fn merge_into_empty_copies_counters() {
        let mut src = FreqSketch::with_max_counters(32);
        for i in 0..20u64 {
            src.update(i, (i + 1) * 5);
        }
        let mut dst = FreqSketch::with_max_counters(32);
        dst.merge(&src);
        for i in 0..20u64 {
            assert_eq!(dst.estimate(i), (i + 1) * 5);
        }
        assert_eq!(dst.stream_weight(), src.stream_weight());
    }

    #[test]
    fn absorb_exact_counters() {
        let mut s = FreqSketch::with_max_counters(64);
        s.absorb_counters(vec![(1u64, 100u64), (2, 50), (3, 0)], 150, 0);
        assert_eq!(s.estimate(1), 100);
        assert_eq!(s.estimate(2), 50);
        assert_eq!(s.estimate(3), 0);
        assert_eq!(s.stream_weight(), 150);
    }

    #[test]
    fn builder_rejects_bad_config() {
        assert!(matches!(
            FreqSketch::builder(0).build(),
            Err(Error::InvalidConfig(_))
        ));
        assert!(matches!(
            FreqSketch::builder(10)
                .policy(PurgePolicy::SampleQuantile {
                    sample_size: 0,
                    quantile: 0.5
                })
                .build(),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn lg_sizing_matches_paper() {
        // k = 24576 → 4k/3 = 32768 = 2^15 (§4.1's largest configuration).
        assert_eq!(lg_table_len_for(24_576), Some(15));
        // k = 0.75 * 2^lg boundary cases
        assert_eq!(lg_table_len_for(6), Some(3));
        assert_eq!(lg_table_len_for(7), Some(4));
        // tiny k still gets the minimum table
        assert_eq!(lg_table_len_for(1), Some(3));
    }

    #[test]
    fn memory_is_24k_bytes_at_design_point() {
        let s = FreqSketch::builder(24_576)
            .grow_from_small(false)
            .build()
            .unwrap();
        assert_eq!(s.memory_bytes(), 24 * 24_576);
    }

    #[test]
    fn purge_count_is_amortized_constant() {
        // Theorem 3: with SMED, purges happen at most ~once per (1-q)·k
        // inserts of new items; verify the rate is far below 1/update.
        let mut s = FreqSketch::builder(256).build().unwrap();
        for i in 0..100_000u64 {
            s.update(i, 1); // all-distinct: worst case for purge frequency
        }
        let purges = s.num_purges();
        // Each purge with c*=median kills ≥ half the counters ⇒ at most
        // one purge per k/2 inserts plus slack.
        assert!(purges <= 100_000 / (256 / 4), "too many purges: {purges}");
        assert!(purges > 0);
    }

    /// Reference stream with enough skew and churn to force growth and
    /// many purges at small k.
    fn churny_stream(len: u64) -> Vec<(u64, u64)> {
        (0..len)
            .map(|i| {
                let item = (i * 2_654_435_761) % 900;
                let w = if item < 3 { 1_000 } else { i % 17 + 1 };
                (item, w)
            })
            .collect()
    }

    #[test]
    fn update_batch_is_state_identical_to_scalar() {
        let stream = churny_stream(40_000);
        let mut scalar = FreqSketch::builder(128).seed(5).build().unwrap();
        for &(item, w) in &stream {
            scalar.update(item, w);
        }
        let mut batched = FreqSketch::builder(128).seed(5).build().unwrap();
        batched.update_batch(&stream);
        batched.check_invariants();
        // Bit-identical state: same counters in the same slots, same
        // offset, same sampler state — the wire encodings must match.
        assert_eq!(batched.serialize_to_bytes(), scalar.serialize_to_bytes());
    }

    #[test]
    fn update_batch_equivalence_across_arbitrary_splits() {
        let stream = churny_stream(20_000);
        let reference = {
            let mut s = FreqSketch::builder(64).seed(9).build().unwrap();
            s.update_batch(&stream);
            s
        };
        for parts in [2usize, 3, 7, 100] {
            let mut s = FreqSketch::builder(64).seed(9).build().unwrap();
            for chunk in stream.chunks(stream.len().div_ceil(parts)) {
                s.update_batch(chunk);
            }
            assert_eq!(
                s.serialize_to_bytes(),
                reference.serialize_to_bytes(),
                "split into {parts} parts diverged"
            );
        }
    }

    #[test]
    fn update_batch_skips_zero_weights_like_scalar() {
        let mut a = FreqSketch::with_max_counters(16);
        a.update_batch(&[(1, 5), (2, 0), (3, 7), (2, 0)]);
        assert_eq!(a.num_updates(), 2);
        assert_eq!(a.stream_weight(), 12);
        assert_eq!(a.estimate(2), 0);
    }

    #[test]
    fn extend_matches_update_batch() {
        let stream = churny_stream(30_000);
        let mut via_batch = FreqSketch::builder(96).seed(2).build().unwrap();
        via_batch.update_batch(&stream);
        let mut via_extend = FreqSketch::builder(96).seed(2).build().unwrap();
        via_extend.extend(stream.iter().copied());
        assert_eq!(
            via_extend.serialize_to_bytes(),
            via_batch.serialize_to_bytes()
        );
    }

    #[test]
    fn stream_weight_saturates_instead_of_panicking() {
        let mut s = FreqSketch::with_max_counters(8);
        s.update(1, i64::MAX as u64);
        s.update(2, i64::MAX as u64);
        assert!(!s.stream_weight_saturated());
        assert_eq!(s.stream_weight(), u64::MAX - 1);
        s.update(3, 100);
        assert!(s.stream_weight_saturated());
        assert_eq!(s.stream_weight(), u64::MAX);
        // Counter state is unaffected by N saturating.
        assert_eq!(s.lower_bound(3), 100);
        // The flag survives merging into another sketch.
        let mut dst = FreqSketch::with_max_counters(8);
        dst.merge(&s);
        assert!(dst.stream_weight_saturated());
        assert_eq!(dst.stream_weight(), u64::MAX);
    }

    #[test]
    fn batch_saturation_matches_scalar_saturation() {
        let stream = [(1u64, i64::MAX as u64), (2, i64::MAX as u64), (3, 77)];
        let mut scalar = FreqSketch::with_max_counters(8);
        for &(i, w) in &stream {
            scalar.update(i, w);
        }
        let mut batched = FreqSketch::with_max_counters(8);
        batched.update_batch(&stream);
        assert_eq!(batched.stream_weight(), scalar.stream_weight());
        assert_eq!(
            batched.stream_weight_saturated(),
            scalar.stream_weight_saturated()
        );
    }

    #[test]
    #[should_panic(expected = "exceeds supported range")]
    fn oversized_weight_panics() {
        let mut s = FreqSketch::with_max_counters(8);
        s.update(1, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "phi")]
    fn bad_phi_panics() {
        let s = FreqSketch::with_max_counters(8);
        s.heavy_hitters(1.5, ErrorType::NoFalseNegatives);
    }
}
