//! In-place selection (Hoare's FIND / quickselect).
//!
//! The purge step needs order statistics twice over:
//!
//! * the **exact-k\*** policy of Algorithm 3 selects the k\*-th largest
//!   counter value out of all `k` counters;
//! * the **sample-quantile** policies of Algorithm 4 (SMED, SMIN, and the
//!   Figure 3 quantile sweep) select a quantile of an `ℓ`-element sample.
//!
//! Both use [`select_nth_smallest`], an iterative quickselect (Hoare,
//! *Algorithm 65: FIND*, CACM 1961) with median-of-three pivoting and a
//! small-array insertion-sort base case. Expected O(n); no allocation.

/// Selects the `n`-th smallest element (0-indexed) of `data`, partially
/// reordering `data` in place so that `data[n]` holds the answer on return.
///
/// # Panics
/// Panics if `data` is empty or `n >= data.len()`.
pub fn select_nth_smallest<T: Ord + Copy>(data: &mut [T], n: usize) -> T {
    assert!(!data.is_empty(), "cannot select from an empty slice");
    assert!(
        n < data.len(),
        "rank {n} out of bounds for slice of length {}",
        data.len()
    );
    let mut lo = 0usize;
    let mut hi = data.len() - 1;
    loop {
        if hi - lo < 16 {
            insertion_sort(&mut data[lo..=hi]);
            return data[n];
        }
        let p = partition(data, lo, hi);
        // Hoare partition: [lo..=p] <= [p+1..=hi]; recurse on the side
        // containing rank n. p < hi always holds, so both branches shrink.
        if n <= p {
            hi = p;
        } else {
            lo = p + 1;
        }
    }
}

/// Selects the `n`-th largest element (0-indexed: `n == 0` is the maximum).
///
/// # Panics
/// Panics if `data` is empty or `n >= data.len()`.
pub fn select_nth_largest<T: Ord + Copy>(data: &mut [T], n: usize) -> T {
    let len = data.len();
    assert!(n < len, "rank {n} out of bounds for slice of length {len}");
    select_nth_smallest(data, len - 1 - n)
}

/// Maps a quantile `q ∈ [0, 1]` to the rank used by the sample-quantile
/// purge policies: `floor(q · (len − 1))` in smallest-first order, so
/// `q = 0` is the minimum (SMIN) and `q = 0.5` the lower median (SMED).
///
/// # Panics
/// Panics if `len == 0` or `q` is not within `[0, 1]`.
#[inline]
pub fn quantile_rank(len: usize, q: f64) -> usize {
    assert!(len > 0, "quantile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    // f64 rounding cannot push the product above len-1 for q <= 1.
    (q * (len - 1) as f64).floor() as usize
}

/// Selects the `q`-quantile of `data` (see [`quantile_rank`] for the rank
/// convention), reordering `data` in place.
pub fn select_quantile<T: Ord + Copy>(data: &mut [T], q: f64) -> T {
    let rank = quantile_rank(data.len(), q);
    select_nth_smallest(data, rank)
}

/// Hoare two-pointer partition with a median-of-three pivot. Returns an
/// index `p` in `[lo, hi - 1]` such that every element of `data[lo..=p]` is
/// `<=` every element of `data[p+1..=hi]`.
///
/// Unlike a Lomuto partition, this splits runs of equal elements down the
/// middle, so selection stays O(n) on all-equal inputs (which arise in
/// practice: every counter has the same value after a balanced unit-weight
/// stream).
fn partition<T: Ord + Copy>(data: &mut [T], lo: usize, hi: usize) -> usize {
    // Move the median of {lo, mid, hi} to data[lo] and use it as the pivot.
    let mid = lo + (hi - lo) / 2;
    if data[mid] < data[lo] {
        data.swap(mid, lo);
    }
    if data[hi] < data[lo] {
        data.swap(hi, lo);
    }
    if data[hi] < data[mid] {
        data.swap(hi, mid);
    }
    // Now data[lo] = min, data[mid] = median, data[hi] = max.
    data.swap(lo, mid);
    let pivot = data[lo];
    // Classic Hoare scheme (CLRS): with pivot == data[lo], the returned j
    // always lies in [lo, hi-1], guaranteeing progress in the caller.
    let mut i = lo.wrapping_sub(1);
    let mut j = hi + 1;
    loop {
        loop {
            j -= 1;
            if data[j] <= pivot {
                break;
            }
        }
        loop {
            i = i.wrapping_add(1);
            if data[i] >= pivot {
                break;
            }
        }
        if i >= j {
            return j;
        }
        data.swap(i, j);
    }
}

fn insertion_sort<T: Ord + Copy>(data: &mut [T]) {
    for i in 1..data.len() {
        let mut j = i;
        while j > 0 && data[j] < data[j - 1] {
            data.swap(j, j - 1);
            j -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn selects_from_single_element() {
        assert_eq!(select_nth_smallest(&mut [7i64], 0), 7);
    }

    #[test]
    fn selects_every_rank_of_small_array() {
        let base = [5i64, 3, 9, 1, 7, 3, 3, 8, 0, -2];
        let mut sorted = base;
        sorted.sort();
        for (rank, &expected) in sorted.iter().enumerate() {
            let mut work = base;
            assert_eq!(select_nth_smallest(&mut work, rank), expected);
        }
    }

    #[test]
    fn nth_largest_mirrors_nth_smallest() {
        let base = [10i64, 20, 30, 40, 50];
        let mut a = base;
        let mut b = base;
        assert_eq!(select_nth_largest(&mut a, 0), 50);
        assert_eq!(select_nth_smallest(&mut b, 4), 50);
        let mut c = base;
        assert_eq!(select_nth_largest(&mut c, 4), 10);
    }

    #[test]
    fn handles_all_equal_values() {
        let mut data = vec![4i64; 1000];
        for rank in [0, 499, 999] {
            assert_eq!(select_nth_smallest(&mut data, rank), 4);
        }
    }

    #[test]
    fn handles_sorted_and_reversed_inputs() {
        let n = 10_000usize;
        let mut asc: Vec<i64> = (0..n as i64).collect();
        assert_eq!(select_nth_smallest(&mut asc, n / 2), (n / 2) as i64);
        let mut desc: Vec<i64> = (0..n as i64).rev().collect();
        assert_eq!(select_nth_smallest(&mut desc, n / 2), (n / 2) as i64);
    }

    #[test]
    fn quantile_rank_convention() {
        assert_eq!(quantile_rank(1024, 0.0), 0);
        assert_eq!(quantile_rank(1024, 0.5), 511);
        assert_eq!(quantile_rank(1024, 1.0), 1023);
        assert_eq!(quantile_rank(1, 0.5), 0);
    }

    #[test]
    fn select_quantile_min_and_median() {
        let mut data = vec![9i64, 1, 5, 3, 7];
        assert_eq!(select_quantile(&mut data, 0.0), 1);
        let mut data = vec![9i64, 1, 5, 3, 7];
        assert_eq!(select_quantile(&mut data, 0.5), 5);
        let mut data = vec![9i64, 1, 5, 3, 7];
        assert_eq!(select_quantile(&mut data, 1.0), 9);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_slice_panics() {
        select_nth_smallest::<i64>(&mut [], 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_rank_panics() {
        select_nth_smallest(&mut [1i64, 2], 2);
    }

    proptest! {
        #[test]
        fn matches_sort_on_random_input(
            mut data in proptest::collection::vec(any::<i64>(), 1..400),
            rank_seed in any::<usize>(),
        ) {
            let rank = rank_seed % data.len();
            let mut sorted = data.clone();
            sorted.sort();
            prop_assert_eq!(select_nth_smallest(&mut data, rank), sorted[rank]);
        }

        #[test]
        fn partial_order_after_select(
            mut data in proptest::collection::vec(any::<i64>(), 1..400),
            rank_seed in any::<usize>(),
        ) {
            let rank = rank_seed % data.len();
            let v = select_nth_smallest(&mut data, rank);
            prop_assert!(data[..rank].iter().all(|&x| x <= v));
            prop_assert!(data[rank + 1..].iter().all(|&x| x >= v));
        }

        #[test]
        fn duplicates_heavy_input(
            mut data in proptest::collection::vec(0i64..4, 1..300),
            rank_seed in any::<usize>(),
        ) {
            let rank = rank_seed % data.len();
            let mut sorted = data.clone();
            sorted.sort();
            prop_assert_eq!(select_nth_smallest(&mut data, rank), sorted[rank]);
        }
    }
}
