//! Purge (DecrementCounters) policies: how much to decrement when the table
//! is full.
//!
//! The paper develops a family of policies:
//!
//! * **Algorithm 3 (MED)** decrements by the *exact* k\*-th largest counter
//!   value — accurate but needs an extra pass and `k` words of scratch.
//! * **Algorithm 4 (SMED / SMIN / quantile sweep)** decrements by a quantile
//!   of a random *sample* of `ℓ` counters — one selection over `ℓ = 1024`
//!   values instead of `k`, and no full snapshot.
//! * **RBMC** (Berinde et al., §1.3.4) decrements by the global minimum —
//!   maximally accurate, but purges can fire on (almost) every update.
//!
//! [`PurgePolicy`] captures all of these so a single sketch implementation
//! can reproduce every point of Figure 3's speed/error tradeoff curve.

use crate::rng::Xoshiro256StarStar;
use crate::select::{select_nth_largest, select_quantile};

/// Read access to a table's counter values, as needed by the purge
/// policies. Implemented by the generic [`crate::table::LpTable`], so one
/// policy implementation serves every key type.
pub trait CounterValues {
    /// True when no counters are assigned.
    fn is_empty(&self) -> bool;
    /// Draws `sample_size` counter values uniformly (with replacement
    /// across slots) into `out`, or all values if fewer are assigned.
    fn sample_values(&self, rng: &mut Xoshiro256StarStar, sample_size: usize, out: &mut Vec<i64>);
    /// Copies all assigned counter values into `out`.
    fn values_into(&self, out: &mut Vec<i64>);
    /// The minimum assigned counter value, or `None` when empty.
    fn min_value(&self) -> Option<i64>;
}

/// The sample size the paper's numerical analysis fixes for deployments
/// (§2.3.2): with `ℓ = 1024`, streams of weight up to 10²⁰ satisfy the
/// tail bound `f̂ᵢ ≥ fᵢ − N^res(j)/(0.33k − j)` with probability
/// ≥ 1 − 1.5·10⁻⁸.
pub const DEFAULT_SAMPLE_SIZE: usize = 1024;

/// Decrement-value selection strategy for the purge step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PurgePolicy {
    /// Algorithm 4: decrement by the `quantile`-quantile of a uniform sample
    /// of `sample_size` counters. `quantile = 0.5` is **SMED**, `0.0` is
    /// **SMIN**; intermediate values trace Figure 3's tradeoff curve.
    SampleQuantile {
        /// Number of counters sampled per purge (`ℓ`).
        sample_size: usize,
        /// Sample quantile used as the decrement value, in `[0, 1]`.
        quantile: f64,
    },
    /// Algorithm 3 (MED): decrement by the exact `⌈fraction · k⌉`-th largest
    /// counter value. Requires an extra O(k) snapshot per purge — the cost
    /// Algorithm 4 exists to avoid.
    ExactKStar {
        /// `k*/k`: which order statistic to decrement by (`0.5` = median).
        fraction: f64,
    },
    /// RBMC semantics: decrement by the global minimum counter value.
    /// Gives the tightest per-purge error but no amortized-time guarantee
    /// (§1.3.4's adversarial stream purges on every update).
    GlobalMin,
}

impl PurgePolicy {
    /// SMED — the paper's recommended default (sample median, `ℓ = 1024`).
    pub fn smed() -> Self {
        PurgePolicy::SampleQuantile {
            sample_size: DEFAULT_SAMPLE_SIZE,
            quantile: 0.5,
        }
    }

    /// SMIN — sample minimum, `ℓ = 1024` (the accuracy-leaning variant of
    /// §4.3, nearly matching RBMC's error at far better speed).
    pub fn smin() -> Self {
        PurgePolicy::SampleQuantile {
            sample_size: DEFAULT_SAMPLE_SIZE,
            quantile: 0.0,
        }
    }

    /// Sample-quantile policy with the default `ℓ = 1024` (Figure 3 sweep).
    pub fn sample_quantile(quantile: f64) -> Self {
        PurgePolicy::SampleQuantile {
            sample_size: DEFAULT_SAMPLE_SIZE,
            quantile,
        }
    }

    /// Algorithm 3 with `k* = k/2` (the expository MED variant).
    pub fn med() -> Self {
        PurgePolicy::ExactKStar { fraction: 0.5 }
    }

    /// Validates the policy parameters.
    ///
    /// # Errors
    /// Returns a description of the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            PurgePolicy::SampleQuantile {
                sample_size,
                quantile,
            } => {
                if sample_size == 0 {
                    return Err("sample_size must be positive".into());
                }
                if !(0.0..=1.0).contains(&quantile) {
                    return Err(format!("quantile {quantile} outside [0, 1]"));
                }
                Ok(())
            }
            PurgePolicy::ExactKStar { fraction } => {
                if !(fraction > 0.0 && fraction <= 1.0) {
                    return Err(format!("fraction {fraction} outside (0, 1]"));
                }
                Ok(())
            }
            PurgePolicy::GlobalMin => Ok(()),
        }
    }

    /// The fraction `k*/k` this policy effectively decrements by, used for
    /// a-priori error bounds (error ≤ N^res(j)/(k*_eff·k − j)):
    ///
    /// * `SampleQuantile{ℓ, q}`: `1 − q − 0.17`, clamped to `[0.01, 1]`.
    ///   The 0.17 term is the sampling slack of the paper's numerical
    ///   calibration at `ℓ = 1024` (§2.3.2: the sample median, `q = 0.5`,
    ///   certifies `k* = 0.33·k` for stream weights up to 10²⁰ with failure
    ///   probability ≤ 1.5·10⁻⁸). We apply the same slack across the
    ///   quantile sweep; smaller sample sizes deserve a larger slack, so
    ///   treat bounds from `ℓ < 1024` as approximate.
    /// * `ExactKStar{f}`: `f` exactly (Theorem 2 with `k* = f·k`).
    /// * `GlobalMin`: `1` (RBMC inherits the exact Misra-Gries bound,
    ///   Lemma 1).
    pub fn effective_kstar_fraction(&self) -> f64 {
        match *self {
            PurgePolicy::SampleQuantile { quantile, .. } => {
                (1.0 - quantile - 0.17).clamp(0.01, 1.0)
            }
            PurgePolicy::ExactKStar { fraction } => fraction,
            PurgePolicy::GlobalMin => 1.0,
        }
    }

    /// Computes the decrement value `c*` for the current table contents.
    ///
    /// `scratch` is a reusable buffer (the sample, or the full snapshot for
    /// [`PurgePolicy::ExactKStar`]); it is cleared and refilled.
    ///
    /// Always returns a value `>=` the global minimum counter, so a purge
    /// deletes at least one counter and the amortized-time argument of
    /// Theorem 3 applies (for quantiles above the minimum).
    ///
    /// # Panics
    /// Panics if the table has no assigned counters.
    pub fn compute_cstar<T: CounterValues>(
        &self,
        table: &T,
        rng: &mut Xoshiro256StarStar,
        scratch: &mut Vec<i64>,
    ) -> i64 {
        assert!(
            !table.is_empty(),
            "purge requested on a table with no counters"
        );
        match *self {
            PurgePolicy::SampleQuantile {
                sample_size,
                quantile,
            } => {
                table.sample_values(rng, sample_size, scratch);
                select_quantile(scratch, quantile)
            }
            PurgePolicy::ExactKStar { fraction } => {
                table.values_into(scratch);
                let n = scratch.len();
                // k*-th largest, 1-indexed in the paper; clamp to [1, n].
                let kstar = ((fraction * n as f64).ceil() as usize).clamp(1, n);
                select_nth_largest(scratch, kstar - 1)
            }
            PurgePolicy::GlobalMin => table
                .min_value()
                .expect("non-empty table must have a minimum"),
        }
    }
}

impl Default for PurgePolicy {
    /// SMED: the configuration the paper recommends and deploys.
    fn default() -> Self {
        PurgePolicy::smed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::LpTable;

    fn filled_table(values: &[i64]) -> LpTable {
        let mut t = LpTable::with_lg_len(10);
        for (i, &v) in values.iter().enumerate() {
            t.adjust_or_insert(i as u64, v);
        }
        t
    }

    #[test]
    fn global_min_matches_table_minimum() {
        let t = filled_table(&[5, 3, 9, 7]);
        let mut rng = Xoshiro256StarStar::from_seed(1);
        let mut scratch = Vec::new();
        let c = PurgePolicy::GlobalMin.compute_cstar(&t, &mut rng, &mut scratch);
        assert_eq!(c, 3);
    }

    #[test]
    fn exact_kstar_median_of_small_table() {
        let t = filled_table(&[10, 20, 30, 40]);
        let mut rng = Xoshiro256StarStar::from_seed(1);
        let mut scratch = Vec::new();
        // k* = ceil(0.5*4) = 2nd largest = 30.
        let c = PurgePolicy::med().compute_cstar(&t, &mut rng, &mut scratch);
        assert_eq!(c, 30);
    }

    #[test]
    fn exact_kstar_full_fraction_is_minimum() {
        let t = filled_table(&[10, 20, 30, 40]);
        let mut rng = Xoshiro256StarStar::from_seed(1);
        let mut scratch = Vec::new();
        let c = PurgePolicy::ExactKStar { fraction: 1.0 }.compute_cstar(&t, &mut rng, &mut scratch);
        assert_eq!(c, 10, "k* = k selects the smallest counter");
    }

    #[test]
    fn sample_quantile_small_table_is_exact() {
        // When num_active <= sample_size the sample is the whole table, so
        // the sample quantile is the exact quantile.
        let t = filled_table(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut rng = Xoshiro256StarStar::from_seed(1);
        let mut scratch = Vec::new();
        let smed = PurgePolicy::smed().compute_cstar(&t, &mut rng, &mut scratch);
        assert_eq!(smed, 5);
        let smin = PurgePolicy::smin().compute_cstar(&t, &mut rng, &mut scratch);
        assert_eq!(smin, 1);
    }

    #[test]
    fn sampled_median_is_near_true_median_on_large_table() {
        // 700 counters with values 1..=700; the sampled median (ℓ=256)
        // should land near 350 with overwhelming probability.
        let values: Vec<i64> = (1..=700).collect();
        let t = filled_table(&values);
        let mut rng = Xoshiro256StarStar::from_seed(7);
        let mut scratch = Vec::new();
        let policy = PurgePolicy::SampleQuantile {
            sample_size: 256,
            quantile: 0.5,
        };
        let c = policy.compute_cstar(&t, &mut rng, &mut scratch);
        assert!(
            (250..=450).contains(&c),
            "sample median {c} implausibly far from 350"
        );
    }

    #[test]
    fn cstar_never_below_global_min() {
        let values: Vec<i64> = (10..=500).collect();
        let t = filled_table(&values);
        let mut rng = Xoshiro256StarStar::from_seed(3);
        let mut scratch = Vec::new();
        for policy in [
            PurgePolicy::smed(),
            PurgePolicy::smin(),
            PurgePolicy::sample_quantile(0.9),
            PurgePolicy::med(),
            PurgePolicy::GlobalMin,
        ] {
            let c = policy.compute_cstar(&t, &mut rng, &mut scratch);
            assert!(c >= 10, "{policy:?} produced c* {c} below the minimum");
        }
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(PurgePolicy::SampleQuantile {
            sample_size: 0,
            quantile: 0.5
        }
        .validate()
        .is_err());
        assert!(PurgePolicy::SampleQuantile {
            sample_size: 10,
            quantile: 1.5
        }
        .validate()
        .is_err());
        assert!(PurgePolicy::ExactKStar { fraction: 0.0 }
            .validate()
            .is_err());
        assert!(PurgePolicy::ExactKStar { fraction: 1.1 }
            .validate()
            .is_err());
        assert!(PurgePolicy::smed().validate().is_ok());
        assert!(PurgePolicy::GlobalMin.validate().is_ok());
    }

    #[test]
    fn effective_kstar_fractions() {
        assert!((PurgePolicy::smed().effective_kstar_fraction() - 0.33).abs() < 1e-9);
        assert!((PurgePolicy::med().effective_kstar_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(PurgePolicy::GlobalMin.effective_kstar_fraction(), 1.0);
        assert!(
            PurgePolicy::smin().effective_kstar_fraction()
                > PurgePolicy::smed().effective_kstar_fraction()
        );
    }

    #[test]
    #[should_panic(expected = "no counters")]
    fn purge_on_empty_table_panics() {
        let t: LpTable = LpTable::with_lg_len(4);
        let mut rng = Xoshiro256StarStar::from_seed(1);
        let mut scratch = Vec::new();
        PurgePolicy::smed().compute_cstar(&t, &mut rng, &mut scratch);
    }
}
