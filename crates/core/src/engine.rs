//! The generic sketch engine: one implementation of the paper's algorithm
//! (Algorithm 4 + the §2.3 production refinements) shared by every public
//! sketch variant.
//!
//! [`SketchEngine<K>`] owns the linear-probing counter table
//! ([`crate::table::LpTable`]), the scalar and batched update paths with
//! software prefetching, the grow-then-purge capacity discipline, the
//! fused single-pass purge, the §2.3.1 offset estimator, Algorithm-5
//! merging, and the saturating stream-weight policy. The public variants
//! are thin layers over it:
//!
//! * [`crate::FreqSketch`] = `SketchEngine<u64>` with by-value `u64`
//!   queries and the versioned wire format of [`crate::codec`];
//! * [`crate::ItemsSketch<T>`] = `SketchEngine<T>` for arbitrary item
//!   types, with the [`crate::item_codec`] wire format;
//! * [`crate::SignedSketch<K>`] = two engines (one per sign, §1.3's
//!   reduction);
//! * [`crate::ShardedSketch<K>`] = a hash-partitioned bank of engines with
//!   multi-core ingestion.
//!
//! Keys are abstracted by [`SketchKey`], which is blanket-implemented for
//! every [`Hash64`] type. The `u64` instantiation compiles to exactly the
//! code the specialized sketch had before this engine existed: the hash is
//! the inlined SplitMix64 finalizer, keys are stored in a dense `Vec<u64>`
//! (vacancy lives in the state array — no `Option` tag), and the wire
//! format and update-by-update state are pinned byte-identical by the
//! codec tests and differential proptests.

use core::marker::PhantomData;

use crate::error::Error;
use crate::hashing::Hash64;
use crate::purge::PurgePolicy;
use crate::result::{sort_rows_descending, ErrorType, Row};
use crate::rng::Xoshiro256StarStar;
use crate::table::LpTable;

/// Key types storable in a [`SketchEngine`].
///
/// Requirements: equality and cloning (keys move between table slots and
/// into result rows), a [`Default`] value to fill vacant slots (vacancy is
/// tracked by the table's state array, so the default value carries no
/// meaning and may collide with real keys), and a deterministic 64-bit
/// hash.
///
/// The trait is blanket-implemented for every type implementing
/// [`Hash64`] — all primitive integers, `String`, `&str`, `Vec<u8>`, and
/// pairs of such types. To use a custom key type, implement [`Hash64`]
/// (the [`crate::hashing::hash64_of`] helper hashes any `std::hash::Hash`
/// type deterministically) plus `Default`, and the blanket impl does the
/// rest.
pub trait SketchKey: Clone + Eq + Default {
    /// The key's stable 64-bit hash; the table probes with its low bits
    /// and shard routing uses its high bits.
    fn hash_key(&self) -> u64;

    /// Views a slice of keys as raw `u64` words when the key type is
    /// `u64` (the paper's layout), `None` otherwise. Forwarded from
    /// [`Hash64::keys_as_u64`]; the ingest kernel uses it to select the
    /// wide (unrolled / SIMD) slot-scan without unsafe transmutes.
    #[inline]
    fn key_slice_as_u64(keys: &[Self]) -> Option<&[u64]>
    where
        Self: Sized,
    {
        let _ = keys;
        None
    }
}

impl<T: Hash64 + Clone + Eq + Default> SketchKey for T {
    #[inline]
    fn hash_key(&self) -> u64 {
        self.hash64()
    }

    #[inline]
    fn key_slice_as_u64(keys: &[Self]) -> Option<&[u64]> {
        T::keys_as_u64(keys)
    }
}

/// Default seed for the purge-sampling generator: behaviour is
/// deterministic unless a seed is chosen explicitly via the builder.
pub const DEFAULT_SEED: u64 = 0x5745_4948_4854_4544; // "WEIGHTED"

/// Smallest table the growing sketch starts from (8 slots).
const LG_MIN_TABLE: u32 = 3;

/// Design load factor: the table is never filled past 3/4, giving the
/// `L ≈ 4k/3` sizing of §2.3.3.
const LOAD_NUM: usize = 3;
const LOAD_DEN: usize = 4;

/// Upper bound on one batch chunk, bounding transient scratch work per
/// capacity check regardless of `k`.
const MAX_CHUNK: usize = 1 << 20;

/// Upper bound on one aggregation pass: sized so the aggregation
/// scratch (entries + hashes, ≤ 24 bytes each) stays cache-resident —
/// the kernel re-reads every surviving entry right after the pass, and
/// a DRAM round-trip for the scratch would cost more than the
/// deduplication saves.
const AGG_CHUNK: usize = 1 << 14;

/// Aggregation pays for itself only when it removes at least this
/// fraction of the pairs (one dedup-cache probe + scratch copy per pair
/// vs one table probe saved per duplicate). Below it, the engine
/// bypasses aggregation and streams pairs straight into the kernel.
const AGG_MIN_DUP_NUM: usize = 1;
const AGG_MIN_DUP_DEN: usize = 8;

/// While bypassing, re-run one aggregation pass every this many direct
/// sub-chunks to re-measure the duplicate ratio (streams change phase).
const AGG_REPROBE_EVERY: u32 = 64;

/// Updates accumulated (possibly across many small aggregation passes —
/// callers like the temporal layer feed per-tick runs of ~100 pairs)
/// before the duplicate ratio is considered measured and the dispatch
/// decision is re-taken. Single small passes are far too noisy to steer
/// on.
const AGG_DECIDE_FLOOR: u64 = 4096;

/// Why an aggregation pass stopped before consuming its whole input.
enum AggStop {
    /// Everything consumed.
    Done,
    /// Next weight exceeds `i64::MAX`: apply the prefix, then panic with
    /// the scalar path's message.
    Oversized(u64),
    /// Next weight cannot be forward-inflated by the pending decay scale
    /// without overflowing: apply the prefix, materialize, retry.
    Inflate,
}

/// Cap on the pending lazy-decay scale factor `d^p`: beyond this the
/// pending ticks are settled into the table eagerly. 2³¹ leaves every
/// counter headroom to absorb ≥ 2³¹-weight updates without per-update
/// materialization thrash.
const LAZY_POW_CAP: u64 = 1 << 31;

/// Smallest `lg` such that a `2^lg`-slot table holds `k` counters at 3/4
/// load, i.e. `2^lg ≥ 4k/3` (§2.3.3). `None` if `lg` would exceed 31
/// (including absurd `k` from corrupted encodings).
pub(crate) fn lg_table_len_for(k: usize) -> Option<u32> {
    let min_len = k.checked_mul(LOAD_DEN)?.div_ceil(LOAD_NUM);
    if min_len > 1 << 31 {
        return None;
    }
    let lg = min_len
        .next_power_of_two()
        .trailing_zeros()
        .max(LG_MIN_TABLE);
    if lg <= 31 {
        Some(lg)
    } else {
        None
    }
}

/// The generic frequent-items engine: Algorithm 4 with the §2.3
/// refinements, over any [`SketchKey`] item type.
///
/// All query methods take items by reference (`&K`), the natural calling
/// convention for possibly-heap-backed keys; the `u64`-specialized
/// [`crate::FreqSketch`] wrapper restores the by-value convention.
#[derive(Clone, Debug)]
pub struct SketchEngine<K: SketchKey> {
    pub(crate) table: LpTable<K>,
    pub(crate) lg_cur: u32,
    pub(crate) lg_max: u32,
    pub(crate) max_counters: usize,
    pub(crate) policy: PurgePolicy,
    pub(crate) rng: Xoshiro256StarStar,
    pub(crate) seed: u64,
    pub(crate) offset: u64,
    pub(crate) offset_saturated: bool,
    pub(crate) stream_weight: u64,
    pub(crate) weight_saturated: bool,
    pub(crate) num_updates: u64,
    pub(crate) num_purges: u64,
    pub(crate) scratch: Vec<i64>,
    pub(crate) pair_scratch: Vec<(K, i64)>,
    /// In-batch aggregation scratch: unique keys of the current ingest
    /// chunk with their combined (inflation-scaled) deltas, in
    /// first-occurrence order.
    agg_scratch: Vec<(K, i64)>,
    /// Hashes of `agg_scratch` entries (parallel vector): aggregation
    /// already hashes every key for its dedup cache, and the kernel
    /// derives home slots from the same hash — keys are hashed once per
    /// ingested pair, not twice.
    hash_scratch: Vec<u64>,
    /// Direct-mapped dedup cache over `agg_scratch`: maps a key-hash slot
    /// to the candidate entry index, `u32::MAX` = vacant.
    dedup_cache: Vec<u32>,
    /// True while the measured in-chunk duplicate ratio is too low for
    /// aggregation to pay (the ingest then streams pairs straight into
    /// the kernel); re-measured every [`AGG_REPROBE_EVERY`] sub-chunks.
    agg_bypass: bool,
    /// Direct sub-chunks left before the next aggregation re-measure.
    agg_reprobe_in: u32,
    /// Updates and unique entries accumulated by aggregation passes
    /// since the last dispatch decision; the ratio is only trusted (and
    /// the pair reset) once the update side reaches [`AGG_DECIDE_FLOOR`].
    agg_applied_win: u64,
    agg_entries_win: u64,
    /// Lazy-decay denominator `d` (λ = 1/d); 0 while lazy fading has
    /// never been activated on this engine.
    lazy_den: u64,
    /// `d^p` for `p` pending (unmaterialized) decay ticks; 1 = fully
    /// materialized. Counters are stored forward-inflated by this factor.
    lazy_pow: u64,
    /// Number of pending decay ticks `p`.
    lazy_ticks: u32,
    /// Exact maximum stored counter value, maintained while lazy fading
    /// is active: `max_stored >= lazy_pow` decides whether the table
    /// still holds a counter that materializes to ≥ 1 (the eager path's
    /// `had_counters`), without touching the table.
    max_stored: i64,
    /// Per-phase ingest timing, populated only when profiling is enabled
    /// (`fig1_runtime --profile`).
    profile: Option<IngestProfile>,
}

/// Per-phase wall-clock breakdown of the ingest path, collected when
/// [`SketchEngine::enable_ingest_profile`] is on: where the update
/// seconds go, without an external profiler.
#[derive(Clone, Debug, Default)]
pub struct IngestProfile {
    /// In-batch aggregation (dedup + weight combining) time.
    pub aggregate: std::time::Duration,
    /// Multi-lane probe/commit (table kernel) time.
    pub probe: std::time::Duration,
    /// Purge (DecrementCounters) time, including `c*` selection.
    pub purge: std::time::Duration,
    /// Table growth/rehash time.
    pub grow: std::time::Duration,
}

/// Configures and constructs a [`SketchEngine`]. The public sketch
/// builders ([`crate::FreqSketchBuilder`], [`crate::ItemsSketchBuilder`])
/// wrap this type, so every variant exposes the same `policy` / `seed` /
/// `grow_from_small` surface.
#[derive(Clone, Debug)]
pub struct SketchEngineBuilder<K: SketchKey> {
    max_counters: usize,
    policy: PurgePolicy,
    seed: u64,
    grow_from_small: bool,
    _key: PhantomData<K>,
}

impl<K: SketchKey> SketchEngineBuilder<K> {
    /// Starts a builder for an engine maintaining at most `max_counters`
    /// assigned counters (the paper's `k`).
    pub fn new(max_counters: usize) -> Self {
        Self {
            max_counters,
            policy: PurgePolicy::default(),
            seed: DEFAULT_SEED,
            grow_from_small: true,
            _key: PhantomData,
        }
    }

    /// Selects the purge policy (default: SMED, the paper's recommendation).
    pub fn policy(mut self, policy: PurgePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Seeds the purge-sampling generator (default: [`DEFAULT_SEED`]).
    /// Two engines built with equal configuration and seed process any
    /// stream identically.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// If `false`, allocates the maximum-size table up front instead of
    /// growing from 8 slots. Pre-allocation avoids rehashing churn in
    /// benchmarks; growth minimizes footprint for underfilled sketches.
    pub fn grow_from_small(mut self, grow: bool) -> Self {
        self.grow_from_small = grow;
        self
    }

    /// Builds the engine.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if `max_counters` is zero or so
    /// large the table would exceed 2³¹ slots, or if the policy parameters
    /// are out of range.
    pub fn build(self) -> Result<SketchEngine<K>, Error> {
        if self.max_counters == 0 {
            return Err(Error::InvalidConfig("max_counters must be positive".into()));
        }
        self.policy.validate().map_err(Error::InvalidConfig)?;
        let lg_max = lg_table_len_for(self.max_counters).ok_or_else(|| {
            Error::InvalidConfig(format!(
                "max_counters {} needs a table larger than 2^31 slots",
                self.max_counters
            ))
        })?;
        let lg_cur = if self.grow_from_small {
            LG_MIN_TABLE.min(lg_max)
        } else {
            lg_max
        };
        Ok(SketchEngine {
            table: LpTable::with_lg_len(lg_cur),
            lg_cur,
            lg_max,
            max_counters: self.max_counters,
            policy: self.policy,
            rng: Xoshiro256StarStar::from_seed(self.seed),
            seed: self.seed,
            offset: 0,
            offset_saturated: false,
            stream_weight: 0,
            weight_saturated: false,
            num_updates: 0,
            num_purges: 0,
            scratch: Vec::new(),
            pair_scratch: Vec::new(),
            agg_scratch: Vec::new(),
            hash_scratch: Vec::new(),
            dedup_cache: Vec::new(),
            agg_bypass: false,
            agg_reprobe_in: 0,
            agg_applied_win: 0,
            agg_entries_win: 0,
            lazy_den: 0,
            lazy_pow: 1,
            lazy_ticks: 0,
            max_stored: 0,
            profile: None,
        })
    }
}

impl<K: SketchKey> Default for SketchEngineBuilder<K> {
    /// A builder for a 1024-counter engine with default policy and seed.
    fn default() -> Self {
        Self::new(1024)
    }
}

impl<K: SketchKey> SketchEngine<K> {
    /// Starts a [`SketchEngineBuilder`] for at most `max_counters`
    /// counters.
    pub fn builder(max_counters: usize) -> SketchEngineBuilder<K> {
        SketchEngineBuilder::new(max_counters)
    }

    /// Number of counters currently assigned.
    #[inline]
    pub fn num_counters(&self) -> usize {
        self.table.num_active()
    }

    /// Maximum number of counters this engine maintains (the paper's `k`).
    #[inline]
    pub fn max_counters(&self) -> usize {
        self.max_counters
    }

    /// True if the engine has processed no updates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_updates == 0
    }

    /// Total weighted stream length `N = Σ Δⱼ` processed so far
    /// (including merged-in streams).
    ///
    /// Saturates at `u64::MAX` instead of panicking if the true total
    /// exceeds `u64` (beyond the paper's `N ≤ 10²⁰` deployment regime);
    /// [`Self::stream_weight_saturated`] reports when that happened. A
    /// saturated `N` only makes [`Self::heavy_hitters`] thresholds
    /// conservative (too low), so the no-false-negatives contract is
    /// preserved; counter bounds are unaffected.
    #[inline]
    pub fn stream_weight(&self) -> u64 {
        self.stream_weight
    }

    /// True if the total stream weight ever exceeded `u64::MAX` and
    /// [`Self::stream_weight`] is pinned at the saturation point.
    #[inline]
    pub fn stream_weight_saturated(&self) -> bool {
        self.weight_saturated
    }

    /// Folds `total` new stream weight into the running `N` under the
    /// documented saturating policy. Shared by the scalar update, the
    /// batch update, and the merge paths.
    #[inline]
    pub(crate) fn absorb_stream_weight(&mut self, total: u128) {
        let new_total = self.stream_weight as u128 + total;
        if new_total > u64::MAX as u128 {
            self.stream_weight = u64::MAX;
            self.weight_saturated = true;
        } else {
            self.stream_weight = new_total as u64;
        }
    }

    /// Folds `add` more cumulative decrement into the error offset under
    /// the same saturating policy as the stream weight: pin at `u64::MAX`
    /// instead of wrapping (silently *shrinking* the certified error band
    /// in release) or panicking (debug). Shared by purging, merging, and
    /// counter absorption.
    #[inline]
    pub(crate) fn absorb_offset(&mut self, add: u64) {
        let (sum, overflowed) = self.offset.overflowing_add(add);
        if overflowed {
            self.offset = u64::MAX;
            self.offset_saturated = true;
        } else {
            self.offset = sum;
        }
    }

    /// Number of update operations `n` processed so far. Saturates at
    /// `u64::MAX` when merges accumulate more operations than `u64`
    /// holds.
    #[inline]
    pub fn num_updates(&self) -> u64 {
        self.num_updates
    }

    /// Number of purge (DecrementCounters) operations performed.
    #[inline]
    pub fn num_purges(&self) -> u64 {
        self.num_purges
    }

    /// The purge policy in effect.
    #[inline]
    pub fn policy(&self) -> PurgePolicy {
        self.policy
    }

    /// The seed the purge sampler was initialized with.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Bytes of heap memory held by the counter table. For `u64` keys at
    /// the maximum table size this is `18 · 2^lg_max ≈ 24k` bytes
    /// (§2.3.3); see [`LpTable::memory_bytes`] for other key types.
    #[inline]
    pub fn memory_bytes(&self) -> usize {
        self.table.memory_bytes()
    }

    /// The current purge capacity: at the maximum table size, exactly
    /// `max_counters`; while growing, 3/4 of the current table length.
    /// Crate-visible so the persistence layer can validate that a
    /// checkpointed counter count respects the capacity discipline.
    #[inline]
    pub(crate) fn capacity_now(&self) -> usize {
        if self.lg_cur == self.lg_max {
            self.max_counters
        } else {
            (self.table.len() * LOAD_NUM) / LOAD_DEN
        }
    }

    /// Processes the weighted update `(item, weight)` in amortized O(1).
    ///
    /// Zero weights are ignored (they carry no frequency mass). If the
    /// total stream weight exceeds `u64::MAX`, `N` saturates rather than
    /// panicking — see [`Self::stream_weight`] for the policy.
    ///
    /// # Panics
    /// Panics if `weight` exceeds `i64::MAX` (counters are signed 64-bit,
    /// matching the paper's deployment).
    pub fn update(&mut self, item: K, weight: u64) {
        if weight == 0 {
            return;
        }
        assert!(
            weight <= i64::MAX as u64,
            "update weight {weight} exceeds supported range"
        );
        // Under pending lazy decay, counters are stored forward-inflated
        // by `lazy_pow`; the incoming weight joins at the same scale. If
        // the inflated weight would overflow an i64 counter, settle the
        // pending scale first (after which the plain weight fits).
        if self.lazy_pow > 1 && weight > (i64::MAX as u64) / self.lazy_pow {
            self.materialize_decay();
        }
        let delta = (weight * self.lazy_pow) as i64;
        self.absorb_stream_weight(weight as u128);
        self.num_updates += 1;
        self.feed(item, delta);
    }

    /// Processes a unit update `(item, 1)`.
    #[inline]
    pub fn update_one(&mut self, item: K) {
        self.update(item, 1);
    }

    /// Processes a slice of weighted updates, **state-identically** to
    /// calling [`Self::update`] on each pair in order, but substantially
    /// faster on large tables:
    ///
    /// * probe homes are precomputed a chunk at a time and the table
    ///   slots software-prefetched ahead of the probe cursor
    ///   ([`LpTable::adjust_or_insert_batch`]), hiding DRAM latency that
    ///   dominates once the table outgrows L2;
    /// * the `stream_weight` / `num_updates` bookkeeping is folded into
    ///   one accumulation per chunk instead of one per update.
    ///
    /// Equivalence with the scalar path (same estimates, same purge
    /// points, same table layout, same sampler state) is maintained by
    /// sizing each chunk to the purge headroom: a chunk never inserts
    /// more counters than `capacity − num_active`, so no purge or growth
    /// decision can fall *inside* a chunk, and the items at capacity
    /// boundaries take the scalar path exactly as `update` would.
    pub fn update_batch(&mut self, batch: &[(K, u64)]) {
        let mut rest = batch;
        while !rest.is_empty() {
            let headroom = self.capacity_now().saturating_sub(self.table.num_active());
            if headroom == 0 {
                // At capacity: the next update may trigger growth or a
                // purge, whose timing must match the scalar path.
                let (item, weight) = &rest[0];
                let (item, weight) = (item.clone(), *weight);
                rest = &rest[1..];
                self.update(item, weight);
                continue;
            }
            let take = headroom.min(rest.len()).min(MAX_CHUNK);
            let (chunk, tail) = rest.split_at(take);
            rest = tail;
            // Within-chunk inserts cannot exceed capacity (chunk size is
            // bounded by headroom), so no purge or growth decision can
            // fall inside the chunk — items at capacity boundaries take
            // the scalar path above, preserving scalar timing.
            self.ingest_chunk(chunk);
            debug_assert!(self.table.num_active() <= self.capacity_now());
        }
        self.debug_audit();
    }

    /// Ingests one headroom-bounded chunk through the aggregating kernel
    /// (u64 keys, or any key type under pending lazy decay) or the legacy
    /// zero-copy weighted pass (other key types — aggregation would clone
    /// every unique heap-backed key for no probe-width win).
    fn ingest_chunk(&mut self, chunk: &[(K, u64)]) {
        let wide = K::key_slice_as_u64(&[]).is_some();
        if !wide && self.lazy_den == 0 {
            let t = self.profile_start();
            let (total, applied) = self.table.adjust_or_insert_batch_weighted(chunk);
            self.profile_add(t, |p| &mut p.probe);
            self.absorb_stream_weight(total);
            self.num_updates += applied;
            return;
        }
        let mut rest = chunk;
        while !rest.is_empty() {
            let take = rest.len().min(AGG_CHUNK);
            // Low-duplication fast path: stream the pairs straight into
            // the prefetched sequential sweep, skipping the aggregation
            // copy that would not pay for itself. (The sequential sweep
            // also beats the lane kernel here — see the
            // `weighted_paths_bench` micro-benchmark — because
            // undeduplicated probes are short and match-heavy, so the
            // lane machinery is pure overhead.) Both paths produce
            // identical state; the dispatch is invisible to everything
            // but the clock.
            // (Reaching this loop with `lazy_den == 0` implies a wide
            // key — the generic non-lazy case returned above — so the
            // plain arm below never clones heap-backed keys twice.)
            if self.agg_bypass && self.agg_reprobe_in > 0 {
                self.agg_reprobe_in -= 1;
                let t = self.profile_start();
                let (consumed, total, applied, max_value) = if self.lazy_den == 0 {
                    let (total, applied) =
                        self.table.adjust_or_insert_batch_weighted(&rest[..take]);
                    (take, total, applied, i64::MIN)
                } else {
                    // Pending decay: deltas join inflated by `lazy_pow`
                    // and the running max feeds the overflow guard —
                    // same contract as the aggregated passes.
                    self.table
                        .adjust_or_insert_batch_weighted_scaled(&rest[..take], self.lazy_pow as i64)
                };
                self.profile_add(t, |p| &mut p.probe);
                if max_value > self.max_stored {
                    self.max_stored = max_value;
                }
                self.absorb_stream_weight(total);
                self.num_updates += applied;
                rest = &rest[consumed..];
                if consumed < take {
                    // Next weight is representable but not at the current
                    // inflation scale; settle the pending decay and let
                    // the loop retry the remainder at scale 1.
                    self.materialize_decay();
                }
                continue;
            }
            let t = self.profile_start();
            let (consumed, total, applied, stop) = self.aggregate_chunk(&rest[..take]);
            self.profile_add(t, |p| &mut p.aggregate);
            // Re-decide the bypass from the measured duplicate ratio.
            // The measurement accumulates across passes until it covers
            // AGG_DECIDE_FLOOR updates — callers like the temporal layer
            // feed runs of ~100 pairs per tick, and no single pass that
            // small is trustworthy.
            self.agg_applied_win += applied;
            self.agg_entries_win += self.agg_scratch.len() as u64;
            if self.agg_applied_win >= AGG_DECIDE_FLOOR {
                self.agg_bypass = self.agg_entries_win * AGG_MIN_DUP_DEN as u64
                    > self.agg_applied_win * (AGG_MIN_DUP_DEN - AGG_MIN_DUP_NUM) as u64;
                self.agg_reprobe_in = AGG_REPROBE_EVERY;
                self.agg_applied_win = 0;
                self.agg_entries_win = 0;
            }
            let t = self.profile_start();
            let agg = core::mem::take(&mut self.agg_scratch);
            let hashes = core::mem::take(&mut self.hash_scratch);
            let track_max = self.lazy_den != 0;
            let max_value = self
                .table
                .upsert_batch_kernel_hashed(&agg, &hashes, track_max);
            self.agg_scratch = agg;
            self.hash_scratch = hashes;
            self.profile_add(t, |p| &mut p.probe);
            if track_max && max_value > self.max_stored {
                self.max_stored = max_value;
            }
            self.absorb_stream_weight(total);
            self.num_updates += applied;
            rest = &rest[consumed..];
            match stop {
                AggStop::Done => {}
                AggStop::Oversized(w) => {
                    // The valid prefix has been applied, exactly as the
                    // scalar loop would before hitting the bad pair.
                    panic!("update weight {w} exceeds supported range");
                }
                AggStop::Inflate => {
                    // The next weight cannot be represented at the current
                    // inflation scale; settle the pending decay (scale
                    // becomes 1) and continue with the remainder.
                    self.materialize_decay();
                }
            }
        }
    }

    /// One aggregation pass over `pairs`: combines duplicate keys into
    /// single entries of `agg_scratch` (first-occurrence order, deltas
    /// pre-scaled by `lazy_pow`), stopping early at a pair that cannot be
    /// applied. Returns `(pairs consumed, true weight applied, update
    /// count applied, stop reason)`; the consumed count excludes the
    /// offending pair on early stops.
    ///
    /// Duplicate runs whose combined scaled delta would overflow `i64`
    /// are split into multiple entries at the overflow point (the kernel
    /// applies them in order, so intermediate counter values saturate the
    /// table's own overflow assertion exactly as sequential updates
    /// would).
    fn aggregate_chunk(&mut self, pairs: &[(K, u64)]) -> (usize, u128, u64, AggStop) {
        /// Dedup cache entries are capped at 2^12 (16 KiB of u32) so the
        /// cache itself stays L1-resident: every ingested pair probes it,
        /// and hot keys recur often enough that a few thousand slots
        /// catch nearly the same duplicate mass as a much larger cache —
        /// without paying an L2 round-trip per pair.
        const DEDUP_CACHE_MAX: usize = 1 << 12;
        let scale = self.lazy_pow;
        let cache_len = pairs.len().next_power_of_two().clamp(64, DEDUP_CACHE_MAX);
        if self.dedup_cache.len() < cache_len {
            self.dedup_cache.resize(cache_len, u32::MAX);
        }
        self.dedup_cache[..cache_len].fill(u32::MAX);
        let cmask = (cache_len - 1) as u64;
        self.agg_scratch.clear();
        self.hash_scratch.clear();
        let mut total: u128 = 0;
        let mut applied: u64 = 0;
        for (i, (key, weight)) in pairs.iter().enumerate() {
            let w = *weight;
            if w == 0 {
                continue;
            }
            if w > i64::MAX as u64 {
                return (i, total, applied, AggStop::Oversized(w));
            }
            if scale > 1 && w > (i64::MAX as u64) / scale {
                return (i, total, applied, AggStop::Inflate);
            }
            let delta = (w * scale) as i64;
            total += w as u128;
            applied += 1;
            let hash = key.hash_key();
            let slot = (hash & cmask) as usize;
            let idx = self.dedup_cache[slot];
            if idx != u32::MAX {
                let entry = &mut self.agg_scratch[idx as usize];
                if entry.0 == *key {
                    if let Some(sum) = entry.1.checked_add(delta) {
                        entry.1 = sum;
                        continue;
                    }
                    // Combined delta overflows: fall through and start a
                    // fresh entry for the same key.
                }
            }
            self.dedup_cache[slot] = self.agg_scratch.len() as u32;
            self.agg_scratch.push((key.clone(), delta));
            self.hash_scratch.push(hash);
        }
        (pairs.len(), total, applied, AggStop::Done)
    }

    /// Core insertion path shared by updates and merges: adjust the counter,
    /// then grow or purge if the capacity discipline is violated. Under
    /// pending lazy decay the capacity check first settles the pending
    /// scale — materialization drops counters that fade below one, which
    /// often restores headroom without a purge, and purge `c*` selection
    /// must see true counter values anyway.
    pub(crate) fn feed(&mut self, item: K, weight: i64) {
        let value = self.table.adjust_or_insert_value(item, weight);
        if self.lazy_den != 0 && value > self.max_stored {
            self.max_stored = value;
        }
        while self.table.num_active() > self.capacity_now() {
            if self.lazy_pow > 1 {
                self.materialize_decay();
                continue;
            }
            if self.lg_cur < self.lg_max {
                let t = self.profile_start();
                self.grow();
                self.profile_add(t, |p| &mut p.grow);
            } else {
                let t = self.profile_start();
                self.purge();
                self.profile_add(t, |p| &mut p.purge);
            }
        }
    }

    /// Decode-path insertion for the wire codecs: inserts a counter,
    /// growing but never purging, and rejects duplicate items (each may
    /// appear once in an encoding). The caller guarantees the total
    /// counter count stays within `max_counters`, so the capacity loop
    /// can only grow.
    pub(crate) fn feed_for_decode(&mut self, item: K, count: i64) -> Result<(), Error> {
        use crate::table::Upsert;
        if self.table.get(&item).is_some() {
            return Err(Error::Corrupt("duplicate item in encoding".into()));
        }
        let outcome = self.table.adjust_or_insert(item, count);
        debug_assert_eq!(outcome, Upsert::Inserted);
        while self.table.num_active() > self.capacity_now() {
            debug_assert!(self.lg_cur < self.lg_max, "decode path cannot purge");
            self.grow();
        }
        Ok(())
    }

    /// Doubles the table, rehashing all counters through the prefetching
    /// batch path (rehash is pure random access over the new table, the
    /// best case for prefetching).
    fn grow(&mut self) {
        let new_lg = self.lg_cur + 1;
        let mut bigger = LpTable::with_lg_len(new_lg);
        let mut pairs = core::mem::take(&mut self.pair_scratch);
        pairs.clear();
        pairs.extend(self.table.iter().map(|(k, v)| (k.clone(), v)));
        bigger.adjust_or_insert_batch(&pairs);
        pairs.clear();
        self.pair_scratch = pairs;
        self.table = bigger;
        self.lg_cur = new_lg;
        self.debug_audit_mid();
    }

    /// One DecrementCounters() operation: compute `c*` per the policy,
    /// subtract it from every counter, drop the non-positive ones, and fold
    /// `c*` into the estimate offset (§2.3.1).
    fn purge(&mut self) {
        let cstar = self
            .policy
            .compute_cstar(&self.table, &mut self.rng, &mut self.scratch);
        debug_assert!(cstar > 0, "counters are positive, so c* must be");
        let (_, max_kept) = self.table.purge_decrement(cstar);
        self.absorb_offset(cstar as u64);
        self.num_purges += 1;
        if self.lazy_den != 0 {
            // Counter values dropped; the purge sweep reports the new
            // exact maximum for the lazy-decay `had_counters` test.
            self.max_stored = max_kept.max(0);
        }
        self.debug_audit_mid();
    }

    /// Scales every counter in place to `⌊c · num / den⌋`, dropping the
    /// counters that scale to zero through the fused-purge compaction
    /// path ([`LpTable::scale_values`]) — the table keeps its canonical
    /// layout and all probing invariants. This is the one hook the
    /// time-fading model needs (`crates/apps`' `DecayedSketch` calls it
    /// once per epoch tick with the decay factor λ = `num/den`).
    ///
    /// Bounds accounting: the stream weight `N` scales to `⌊λN⌋` (the
    /// decayed stream mass), and the error offset scales to
    /// `⌈λ·offset⌉ + 1` whenever counters were present — the `+1` covers
    /// the sub-integer mass each counter loses to flooring, so the
    /// certified contract survives scaling against the *real-valued*
    /// decayed frequencies `λ·fᵢ`:
    ///
    /// * tracked items: `c'(i) = ⌊λ·c(i)⌋ ≤ λ·fᵢ ≤ c'(i) + offset'`;
    /// * dropped and untracked items: `λ·fᵢ ≤ offset'`.
    ///
    /// `num_updates` / `num_purges` are operation counts and do not
    /// scale; a saturated stream weight stays flagged (`N` was already a
    /// lower bound and remains one after scaling).
    ///
    /// # Panics
    /// Panics if `den` is zero or `num > den`: the engine only decays.
    /// `num == den` is the identity and `num == 0` empties the engine
    /// (counters, offset, and stream weight all go to zero).
    pub fn scale_counters(&mut self, num: u64, den: u64) {
        assert!(den > 0, "scale denominator must be positive");
        assert!(num <= den, "scale_counters only scales down ({num}/{den})");
        self.materialize_decay();
        if num == den {
            self.debug_audit();
            return;
        }
        if num == 0 {
            self.table.clear();
            self.offset = 0;
            self.stream_weight = 0;
            self.max_stored = 0;
            self.debug_audit();
            return;
        }
        let had_counters = !self.table.is_empty();
        let (_, max_kept) = self.table.scale_values(num, den);
        let scaled_offset = (self.offset as u128 * num as u128).div_ceil(den as u128) as u64;
        self.offset = scaled_offset.saturating_add(u64::from(had_counters));
        self.stream_weight = (self.stream_weight as u128 * num as u128 / den as u128) as u64;
        if self.lazy_den != 0 {
            self.max_stored = max_kept.max(0);
        }
        self.debug_audit();
    }

    /// One **lazy** decay tick with factor `1/den`: equivalent to
    /// [`Self::scale_counters`]`(1, den)` but O(1) — the table sweep is
    /// deferred by folding `den` into a pending global scale factor, while
    /// the scalar bookkeeping (`offset`, `N`) ticks eagerly in true
    /// units. Incoming updates join forward-inflated by the pending
    /// factor, so deferred materialization divides every counter by the
    /// same power and lands on exactly the state eager per-tick scaling
    /// would produce (counter for counter; see `materialize_decay` for
    /// the slot-layout caveat).
    ///
    /// Returns `true` when the tick was a fixed point — the engine holds
    /// no mass that further ticks could change (drained). The caller can
    /// stop fast-forwarding.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    pub fn lazy_scale_counters(&mut self, den: u64) -> bool {
        assert!(den > 0, "scale denominator must be positive");
        if den == 1 {
            return true;
        }
        if den > LAZY_POW_CAP {
            // A single tick this harsh cannot usefully defer (any pending
            // power would immediately overflow the inflation guard).
            let before = (self.num_counters(), self.offset, self.stream_weight);
            self.scale_counters(1, den);
            return before == (self.num_counters(), self.offset, self.stream_weight)
                && self.num_counters() == 0;
        }
        if self.lazy_den == 0 {
            // First activation: establish the exact stored maximum.
            self.max_stored = self.table.max_value().unwrap_or(0);
        } else if self.lazy_den != den {
            // Factor changed mid-stream: settle the old scale first.
            self.materialize_decay();
        }
        self.lazy_den = den;
        // `had_counters` of the eager path: does any stored counter
        // materialize to ≥ 1 at the *current* pending scale? Stored
        // values are true·pow (plus truncation the eager path would have
        // applied too), so stored ≥ pow ⟺ true value ≥ 1.
        let had = self.max_stored >= self.lazy_pow as i64;
        let new_offset = self.offset.div_ceil(den).saturating_add(u64::from(had));
        let new_weight = self.stream_weight / den;
        let fixed_point = !had && new_offset == self.offset && new_weight == self.stream_weight;
        self.offset = new_offset;
        self.stream_weight = new_weight;
        if fixed_point {
            // Drained: no counter reaches 1 any more and the scalars are
            // stable. Settle so the zombie counters (all < pow) compact
            // away and the table empties; every further tick is a no-op.
            self.materialize_decay();
            debug_assert!(self.table.is_empty());
            self.debug_audit();
            return true;
        }
        if self.lazy_pow > LAZY_POW_CAP / den {
            self.materialize_decay();
        }
        self.lazy_pow *= den;
        self.lazy_ticks += 1;
        self.debug_audit();
        false
    }

    /// Settles any pending lazy-decay scale into the table: every counter
    /// is divided (flooring) by the pending factor through the fused
    /// compaction path, dropping counters that fade below one. No-op when
    /// nothing is pending.
    ///
    /// Counter values after settling equal what eager per-tick
    /// [`Self::scale_counters`] would have produced (`⌊⌊c/d⌋…/d⌋ =
    /// ⌊c/dᵖ⌋` for λ = 1/d). The *slot layout* may differ from the eager
    /// history's: a counter that eagerly faded to zero mid-interval and
    /// was later re-inserted sits elsewhere in probe order. Layout
    /// differences never affect query answers; they only matter to
    /// byte-level fingerprint comparisons (see DESIGN.md).
    pub fn materialize_decay(&mut self) {
        if self.lazy_pow <= 1 {
            return;
        }
        let pow = self.lazy_pow;
        self.lazy_pow = 1;
        self.lazy_ticks = 0;
        let (_, max_kept) = self.table.scale_values(1, pow);
        self.max_stored = max_kept.max(0);
        // Mid-variant: the lazy tick that triggers an overflow-guard
        // materialization has already advanced `offset`/`N` one tick,
        // so the mass check belongs to the caller's end-of-tick audit.
        self.debug_audit_mid();
    }

    /// The pending lazy-decay scale factor `d^p` (1 = fully
    /// materialized). While this exceeds 1, raw table counters (and
    /// therefore [`Self::lower_bound`]-style raw queries) are inflated by
    /// this factor; the decayed-sketch layer divides it back out.
    #[inline]
    pub fn pending_decay_pow(&self) -> u64 {
        self.lazy_pow
    }

    /// Number of unmaterialized lazy decay ticks.
    #[inline]
    pub fn pending_decay_ticks(&self) -> u32 {
        self.lazy_ticks
    }

    /// Turns on per-phase ingest timing (see [`IngestProfile`]).
    pub fn enable_ingest_profile(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(IngestProfile::default());
        }
    }

    /// Takes the accumulated ingest profile, resetting the counters to
    /// zero (profiling stays enabled). `None` if profiling was never
    /// enabled.
    pub fn take_ingest_profile(&mut self) -> Option<IngestProfile> {
        self.profile.as_mut().map(core::mem::take)
    }

    #[inline]
    fn profile_start(&self) -> Option<std::time::Instant> {
        self.profile.as_ref().map(|_| std::time::Instant::now())
    }

    #[inline]
    fn profile_add(
        &mut self,
        start: Option<std::time::Instant>,
        field: fn(&mut IngestProfile) -> &mut std::time::Duration,
    ) {
        if let (Some(start), Some(profile)) = (start, self.profile.as_mut()) {
            *field(profile) += start.elapsed();
        }
    }

    /// Test/bench aid: capacities of every reusable ingest scratch buffer
    /// (purge sampler, rehash pairs, aggregation entries + hashes, dedup
    /// cache, table compaction gaps). Steady-state ingest must not grow
    /// any of them — the fig1 harness asserts these stay flat across reps.
    #[doc(hidden)]
    pub fn ingest_scratch_capacities(&self) -> [usize; 6] {
        [
            self.scratch.capacity(),
            self.pair_scratch.capacity(),
            self.agg_scratch.capacity(),
            self.hash_scratch.capacity(),
            self.dedup_cache.capacity(),
            self.table.compaction_scratch_capacity(),
        ]
    }

    /// Estimate `f̂ᵢ` of the item's weighted frequency: `c(i) + offset` for
    /// tracked items, `0` for untracked items (§2.3.1's MG/SS hybrid).
    /// Always satisfies `estimate − maximum_error ≤ fᵢ ≤ estimate` for
    /// tracked items and `0 ≤ fᵢ ≤ maximum_error` for untracked ones.
    /// Saturates at `u64::MAX` if the sum overflows (possible only after
    /// the offset itself saturated — see [`Self::maximum_error`]).
    #[inline]
    pub fn estimate(&self, item: &K) -> u64 {
        match self.table.get(item) {
            Some(c) => (c as u64).saturating_add(self.offset),
            None => 0,
        }
    }

    /// Certified lower bound on the item's frequency: `c(i)`, or `0` if the
    /// item is not tracked. Never exceeds the true frequency.
    #[inline]
    pub fn lower_bound(&self, item: &K) -> u64 {
        self.table.get(item).map_or(0, |c| c as u64)
    }

    /// Certified upper bound on the item's frequency: `c(i) + offset`, or
    /// `offset` alone if the item is not tracked. Never below the true
    /// frequency (a saturated sum clamps to `u64::MAX`, which is still an
    /// upper bound for any in-range frequency).
    #[inline]
    pub fn upper_bound(&self, item: &K) -> u64 {
        self.table
            .get(item)
            .map_or(self.offset, |c| (c as u64).saturating_add(self.offset))
    }

    /// The a-posteriori maximum error: any estimate is within this of the
    /// true frequency. Equal to the cumulative purge decrement (`offset`).
    ///
    /// Saturates at `u64::MAX` instead of panicking (debug) or wrapping
    /// (release) if repeated merging pushes the cumulative decrement past
    /// `u64` — a wrapped offset would silently *understate* the certified
    /// error band, the one direction the contract cannot tolerate.
    /// [`Self::maximum_error_saturated`] reports when that happened;
    /// upper bounds then pin at `u64::MAX` (vacuously correct) while
    /// lower bounds stay exact.
    #[inline]
    pub fn maximum_error(&self) -> u64 {
        self.offset
    }

    /// True if the cumulative error offset ever exceeded `u64::MAX` and
    /// [`Self::maximum_error`] is pinned at the saturation point.
    #[inline]
    pub fn maximum_error_saturated(&self) -> bool {
        self.offset_saturated
    }

    /// A-priori bound on `maximum_error` after processing weight `n_total`:
    /// `n_total / (k*_eff · k)` per Lemma 4 / Theorems 2 & 4, where
    /// `k*_eff` comes from [`PurgePolicy::effective_kstar_fraction`].
    pub fn a_priori_error(&self, n_total: u64) -> u64 {
        let kstar = self.policy.effective_kstar_fraction() * self.max_counters as f64;
        (n_total as f64 / kstar).ceil() as u64
    }

    /// Iterates over the tracked `(&item, lower_bound)` pairs in table
    /// order.
    pub fn counters(&self) -> impl Iterator<Item = (&K, u64)> + '_ {
        self.table.iter().map(|(k, v)| (k, v as u64))
    }

    /// Builds the result row for a tracked item.
    fn row_for(&self, item: &K, count: i64) -> Row<K> {
        let upper = (count as u64).saturating_add(self.offset);
        Row {
            item: item.clone(),
            estimate: upper,
            lower_bound: count as u64,
            upper_bound: upper,
        }
    }

    /// Returns every item whose frequency may exceed `threshold`, under the
    /// chosen reporting contract, sorted by descending estimate:
    ///
    /// * [`ErrorType::NoFalsePositives`]: items with
    ///   `lower_bound > threshold` — all genuinely above the threshold.
    /// * [`ErrorType::NoFalseNegatives`]: items with
    ///   `upper_bound > threshold` — misses nothing above the threshold.
    ///
    /// A threshold below [`Self::maximum_error`] is raised to it (as in
    /// the deployed DataSketches API): the summary cannot enumerate items
    /// whose entire frequency fits inside its error band, so thresholds
    /// below that level cannot honour either contract.
    pub fn frequent_items_with_threshold(
        &self,
        threshold: u64,
        error_type: ErrorType,
    ) -> Vec<Row<K>>
    where
        K: Ord,
    {
        let threshold = threshold.max(self.maximum_error());
        let mut rows: Vec<Row<K>> = self
            .table
            .iter()
            .filter_map(|(item, count)| {
                let row = self.row_for(item, count);
                let include = match error_type {
                    ErrorType::NoFalsePositives => row.lower_bound > threshold,
                    ErrorType::NoFalseNegatives => row.upper_bound > threshold,
                };
                include.then_some(row)
            })
            .collect();
        sort_rows_descending(&mut rows);
        rows
    }

    /// [`Self::frequent_items_with_threshold`] with the engine's own
    /// `maximum_error` as the threshold — the finest distinction the
    /// summary can certify.
    pub fn frequent_items(&self, error_type: ErrorType) -> Vec<Row<K>>
    where
        K: Ord,
    {
        self.frequent_items_with_threshold(self.maximum_error(), error_type)
    }

    /// The (φ, ε)-heavy-hitters query of §1.2: items whose frequency may
    /// exceed `max(phi · N, maximum_error)`, under the chosen reporting
    /// contract (see [`Self::frequent_items_with_threshold`] for why the
    /// threshold cannot usefully go below the summary's error level).
    ///
    /// The threshold is the exact `⌊phi · N⌋` of
    /// [`crate::bounds::phi_threshold`] — correct even when `N ≥ 2⁵³`,
    /// where a floating-point product would silently round.
    ///
    /// # Panics
    /// Panics if `phi` is outside `[0, 1]`.
    pub fn heavy_hitters(&self, phi: f64, error_type: ErrorType) -> Vec<Row<K>>
    where
        K: Ord,
    {
        let threshold = crate::bounds::phi_threshold(phi, self.stream_weight);
        self.frequent_items_with_threshold(threshold, error_type)
    }

    /// The `k` tracked items with the largest estimates.
    pub fn top_k(&self, k: usize) -> Vec<Row<K>>
    where
        K: Ord,
    {
        let mut rows: Vec<Row<K>> = self
            .table
            .iter()
            .map(|(item, count)| self.row_for(item, count))
            .collect();
        sort_rows_descending(&mut rows);
        rows.truncate(k);
        rows
    }

    /// Merges `other` into `self` (Algorithm 5): every counter of `other`
    /// is replayed into `self` as a weighted update, and the offsets add.
    /// After the merge, `self` summarizes the concatenation of both input
    /// streams with error bounded by Theorem 5; `other` is unchanged and
    /// can be discarded.
    ///
    /// Counters are replayed in randomized order so that merging summaries
    /// that share the hash function cannot overpopulate probe runs (§3.2,
    /// Note). The implementation collects the counters with one sequential
    /// scan and Fisher-Yates-shuffles the compact pair array — cheaper
    /// than visiting the source table in a strided random order, which
    /// costs a cache miss per slot.
    pub fn merge(&mut self, other: &SketchEngine<K>) {
        // Merging replays true counter values: settle our pending decay
        // scale, and deflate `other`'s raw counters by its own pending
        // factor on the fly (flooring division — exactly what
        // materializing `other` would store; faded-to-zero counters are
        // skipped like the compaction pass would drop them).
        self.materialize_decay();
        let opow = other.lazy_pow.max(1) as i64;
        let mut pairs: Vec<(K, i64)> = other
            .table
            .iter()
            .filter_map(|(k, v)| {
                let v = v / opow;
                (v > 0).then(|| (k.clone(), v))
            })
            .collect();
        // Fisher-Yates with the engine's own sampler.
        for i in (1..pairs.len()).rev() {
            let j = self.rng.next_below(i as u64 + 1) as usize;
            pairs.swap(i, j);
        }
        for (item, count) in pairs {
            self.feed(item, count);
        }
        // The offsets and operation counts add saturating, mirroring the
        // stream-weight policy: beyond-u64 totals pin at the maximum
        // rather than panicking (debug) or wrapping the certified error
        // band (release).
        self.absorb_offset(other.offset);
        self.offset_saturated |= other.offset_saturated;
        self.absorb_stream_weight(other.stream_weight as u128);
        self.weight_saturated |= other.weight_saturated;
        self.num_updates = self.num_updates.saturating_add(other.num_updates);
        self.debug_audit();
    }

    /// Replays an arbitrary counter list into the engine as weighted
    /// updates. This is Algorithm 5's generic form: the source can be any
    /// counter-based summary (§3.2 "applies generically to any
    /// counter-based algorithm"). `source_stream_weight` is the weighted
    /// length of the stream the source summarized (its `N`), and
    /// `source_max_error` the summary's maximum estimation error (0 for an
    /// exact counter list).
    pub fn absorb_counters<I>(
        &mut self,
        counters: I,
        source_stream_weight: u64,
        source_max_error: u64,
    ) where
        I: IntoIterator<Item = (K, u64)>,
    {
        // Absorbed counts are true values; settle any pending decay scale
        // so `feed` applies them at scale 1.
        self.materialize_decay();
        for (item, count) in counters {
            if count == 0 {
                continue;
            }
            assert!(count <= i64::MAX as u64, "counter {count} exceeds range");
            self.feed(item, count as i64);
        }
        self.absorb_offset(source_max_error);
        self.absorb_stream_weight(source_stream_weight as u128);
        self.debug_audit();
    }

    /// Test/debug aid: verifies the internal table invariants.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.table.check_invariants();
        assert!(self.table.num_active() <= self.capacity_now().max(self.max_counters));
    }

    /// Non-panicking structural audit of the whole engine — the
    /// `debug-invariants` sanitizer's entry point, and the final gate of
    /// the decode paths (a corrupt-but-CRC-valid payload that violates an
    /// engine invariant must surface as `Err`, never as a later panic).
    ///
    /// Checks, in order: the table audit ([`LpTable::audit`]), the
    /// capacity discipline, lazy-decay bookkeeping consistency
    /// (`lazy_pow`/`lazy_ticks`/`max_stored`), and mass conservation —
    /// the deflated counter total never exceeds the stream weight `N`
    /// (each update adds at most its weight to one counter, purges and
    /// decay only subtract, and sum-of-floors ≤ floor-of-sum keeps the
    /// bound through pending decay scales).
    ///
    /// # Errors
    /// Describes the first violated invariant.
    pub fn audit(&self) -> Result<(), String> {
        self.audit_inner(true)
    }

    /// [`Self::audit`] minus the mass-conservation check, for hooks that
    /// fire mid-operation (`grow`/`purge` run inside `merge` and the
    /// decode replay loops, where counters are ahead of the not-yet
    /// absorbed stream weight).
    fn audit_inner(&self, check_mass: bool) -> Result<(), String> {
        self.table.audit()?;
        let active = self.table.num_active();
        let cap = self.capacity_now().max(self.max_counters);
        if active > cap {
            return Err(format!("{active} active counters exceed capacity {cap}"));
        }
        if self.lazy_pow == 0 {
            return Err("lazy_pow must be at least 1".into());
        }
        if self.lazy_pow > LAZY_POW_CAP {
            return Err(format!(
                "lazy_pow {} exceeds the inflation cap {LAZY_POW_CAP}",
                self.lazy_pow
            ));
        }
        if self.lazy_den == 0 && (self.lazy_pow != 1 || self.lazy_ticks != 0) {
            return Err(format!(
                "pending decay ({} ticks, pow {}) without an active factor",
                self.lazy_ticks, self.lazy_pow
            ));
        }
        if self.lazy_ticks == 0 && self.lazy_pow != 1 {
            return Err(format!(
                "lazy_pow {} with zero pending ticks",
                self.lazy_pow
            ));
        }
        if self.lazy_den != 0 {
            let table_max = self.table.max_value().unwrap_or(0);
            if self.max_stored != table_max {
                return Err(format!(
                    "max_stored {} drifted from the table maximum {table_max}",
                    self.max_stored
                ));
            }
        }
        if check_mass && !self.weight_saturated {
            let pow = u128::from(self.lazy_pow);
            let deflated: u128 = self
                .table
                .iter()
                .map(|(_, v)| (v.max(0) as u128) / pow)
                .sum();
            if deflated > u128::from(self.stream_weight) {
                return Err(format!(
                    "stored mass {deflated} exceeds stream weight {}",
                    self.stream_weight
                ));
            }
        }
        Ok(())
    }

    /// Full-audit hook: compiles to nothing without `debug-invariants`.
    #[cfg(feature = "debug-invariants")]
    #[inline]
    fn debug_audit(&self) {
        if let Err(msg) = self.audit() {
            panic!("debug-invariants: {msg}");
        }
    }

    #[cfg(not(feature = "debug-invariants"))]
    #[inline(always)]
    fn debug_audit(&self) {}

    /// Mid-operation hook (no mass check): compiles to nothing without
    /// `debug-invariants`.
    #[cfg(feature = "debug-invariants")]
    #[inline]
    fn debug_audit_mid(&self) {
        if let Err(msg) = self.audit_inner(false) {
            panic!("debug-invariants: {msg}");
        }
    }

    #[cfg(not(feature = "debug-invariants"))]
    #[inline(always)]
    fn debug_audit_mid(&self) {}

    /// Test/debug aid: a byte string capturing the engine's complete
    /// observable state — scalar bookkeeping, sampler state, and the
    /// table layout slot by slot (keys are folded in by hash). Two
    /// engines with equal fingerprints will process any future stream
    /// identically. Used by the differential proptests to pin
    /// `ItemsSketch<u64>` to `FreqSketch` state-for-state.
    #[doc(hidden)]
    pub fn state_fingerprint(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.lg_cur.to_le_bytes());
        out.extend_from_slice(&(self.max_counters as u64).to_le_bytes());
        // The policy participates in future purge decisions, so it is
        // part of "will behave identically from here on".
        out.push(crate::codec::policy_tag(&self.policy));
        let (policy_a, policy_b) = crate::codec::policy_params(&self.policy);
        out.extend_from_slice(&policy_a.to_le_bytes());
        out.extend_from_slice(&policy_b.to_le_bytes());
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.push(u8::from(self.offset_saturated));
        out.extend_from_slice(&self.stream_weight.to_le_bytes());
        out.push(u8::from(self.weight_saturated));
        out.extend_from_slice(&self.num_updates.to_le_bytes());
        out.extend_from_slice(&self.num_purges.to_le_bytes());
        for word in self.rng.state() {
            out.extend_from_slice(&word.to_le_bytes());
        }
        for (slot, (key, value)) in self.slots().enumerate() {
            out.extend_from_slice(&(slot as u64).to_le_bytes());
            out.extend_from_slice(&key.hash_key().to_le_bytes());
            out.extend_from_slice(&value.to_le_bytes());
        }
        // Pending lazy-decay state changes how future updates are scaled,
        // so it is part of "will behave identically from here on".
        // Appended only once lazy fading has been activated: engines that
        // never go lazy keep the fingerprint byte layout pinned by the
        // PR-5 compat fixtures (length disambiguates the two forms).
        if self.lazy_den != 0 {
            out.extend_from_slice(&self.lazy_den.to_le_bytes());
            out.extend_from_slice(&self.lazy_pow.to_le_bytes());
            out.extend_from_slice(&self.lazy_ticks.to_le_bytes());
            out.extend_from_slice(&self.max_stored.to_le_bytes());
        }
        out
    }

    /// Occupied `(key, value)` slots in slot order (decoupled from
    /// `counters` so fingerprinting sees raw counter values).
    fn slots(&self) -> impl Iterator<Item = (&K, i64)> + '_ {
        self.table.iter()
    }

    /// Test/debug aid: the counter table's exact slot layout — see
    /// [`LpTable::layout_fingerprint`]. Used by the scale/purge
    /// layout-canonicality proptests.
    #[doc(hidden)]
    pub fn table_layout_fingerprint(&self) -> Vec<u8> {
        self.table.layout_fingerprint()
    }
}

/// Streaming ingestion through the batch path: buffers the iterator into
/// chunks and forwards them to [`SketchEngine::update_batch`], so
/// `engine.extend(stream)` gets the prefetching fast path without the
/// caller materializing a slice.
impl<K: SketchKey> Extend<(K, u64)> for SketchEngine<K> {
    fn extend<I: IntoIterator<Item = (K, u64)>>(&mut self, iter: I) {
        /// Buffered pairs per `update_batch` call; large enough to
        /// amortize the call, small enough to stay cache-resident.
        const EXTEND_BUF: usize = 4096;
        let mut buf: Vec<(K, u64)> = Vec::with_capacity(EXTEND_BUF);
        for pair in iter {
            buf.push(pair);
            if buf.len() == EXTEND_BUF {
                self.update_batch(&buf);
                buf.clear();
            }
        }
        self.update_batch(&buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lg_sizing_matches_paper() {
        // k = 24576 → 4k/3 = 32768 = 2^15 (§4.1's largest configuration).
        assert_eq!(lg_table_len_for(24_576), Some(15));
        // k = 0.75 * 2^lg boundary cases
        assert_eq!(lg_table_len_for(6), Some(3));
        assert_eq!(lg_table_len_for(7), Some(4));
        // tiny k still gets the minimum table
        assert_eq!(lg_table_len_for(1), Some(3));
    }

    #[test]
    fn u64_hash_is_the_splitmix_finalizer() {
        // The zero-overhead contract: SketchKey for u64 must be exactly
        // the inline SplitMix64 finalizer the specialized sketch used, so
        // table layouts (and hence wire bytes) cannot move.
        for x in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(SketchKey::hash_key(&x), crate::rng::split_mix64_mix(x));
        }
    }

    #[test]
    fn engine_is_usable_directly() {
        let mut e: SketchEngine<String> = SketchEngine::builder(16).build().unwrap();
        e.update("hot".into(), 100);
        e.update("cold".into(), 1);
        assert_eq!(e.estimate(&"hot".to_string()), 100);
        assert_eq!(e.num_counters(), 2);
        let rows = e.top_k(1);
        assert_eq!(rows[0].item, "hot");
    }

    #[test]
    fn scale_counters_halves_and_drops() {
        let mut e: SketchEngine<u64> = SketchEngine::builder(16).build().unwrap();
        e.update(1, 100);
        e.update(2, 1);
        e.update(3, 7);
        e.scale_counters(1, 2);
        assert_eq!(e.lower_bound(&1), 50);
        assert_eq!(e.lower_bound(&2), 0, "1/2 floors to zero and is dropped");
        assert_eq!(e.lower_bound(&3), 3);
        assert_eq!(e.num_counters(), 2);
        assert_eq!(e.stream_weight(), 54, "N decays with the counters");
        // offset was 0; the +1 covers flooring loss, so the upper bound
        // still brackets the real-valued decayed frequencies.
        assert_eq!(e.maximum_error(), 1);
        assert!(e.upper_bound(&3) as f64 >= 3.5);
        e.check_invariants();
    }

    #[test]
    fn scale_counters_identity_and_zero() {
        let mut e: SketchEngine<u64> = SketchEngine::builder(16).build().unwrap();
        e.update(1, 10);
        let before = e.state_fingerprint();
        e.scale_counters(5, 5);
        assert_eq!(e.state_fingerprint(), before, "identity is a no-op");
        e.scale_counters(0, 3);
        assert_eq!(e.num_counters(), 0);
        assert_eq!(e.stream_weight(), 0);
        assert_eq!(e.maximum_error(), 0);
    }

    #[test]
    fn scale_counters_bounds_survive_purging_and_scaling() {
        // Interleave heavy traffic (forcing purges, offset > 0) with decay
        // ticks; the certified bounds must bracket the real-valued decayed
        // truth throughout.
        let mut e: SketchEngine<u64> = SketchEngine::builder(16).build().unwrap();
        let mut truth = vec![0.0f64; 100];
        let mut x = 5u64;
        for round in 0..10 {
            for _ in 0..2_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let item = (x >> 33) % 100;
                let w = x % 30 + 1;
                e.update(item, w);
                truth[item as usize] += w as f64;
            }
            e.scale_counters(3, 4);
            for t in &mut truth {
                *t *= 0.75;
            }
            for item in 0..100u64 {
                let f = truth[item as usize];
                assert!(
                    e.lower_bound(&item) as f64 <= f + 1e-6,
                    "round {round} item {item}: lb {} above decayed truth {f}",
                    e.lower_bound(&item)
                );
                assert!(
                    e.upper_bound(&item) as f64 >= f - 1e-6,
                    "round {round} item {item}: ub {} below decayed truth {f}",
                    e.upper_bound(&item)
                );
            }
        }
        assert!(e.num_purges() > 0, "test must exercise purging");
        e.check_invariants();
    }

    #[test]
    fn merge_saturates_offset_and_num_updates() {
        // Offsets near u64::MAX arise from chains of merges; before the
        // saturating policy, `merge` panicked in debug builds and wrapped
        // (shrinking the certified error band) in release.
        let mut a: SketchEngine<u64> = SketchEngine::builder(16).build().unwrap();
        a.update(1, 5);
        a.offset = u64::MAX - 10;
        a.num_updates = u64::MAX - 3;
        let mut b: SketchEngine<u64> = SketchEngine::builder(16).build().unwrap();
        b.update(2, 7);
        b.offset = 100;
        b.num_updates = 50;
        a.merge(&b);
        assert_eq!(a.maximum_error(), u64::MAX, "offset pinned, not wrapped");
        assert!(a.maximum_error_saturated());
        assert_eq!(a.num_updates(), u64::MAX, "update count pinned");
        // Query paths stay total: sums involving the pinned offset clamp.
        assert_eq!(a.estimate(&1), u64::MAX);
        assert_eq!(a.upper_bound(&2), u64::MAX);
        assert_eq!(a.upper_bound(&999), u64::MAX, "untracked ub = offset");
        assert_eq!(a.lower_bound(&1), 5, "lower bounds unaffected");
        let rows = a.top_k(2);
        assert!(rows.iter().all(|r| r.upper_bound == u64::MAX));
        // Saturation is sticky across further merges.
        let mut c: SketchEngine<u64> = SketchEngine::builder(16).build().unwrap();
        c.merge(&a);
        assert!(c.maximum_error_saturated());
        assert_eq!(c.maximum_error(), u64::MAX);
    }

    #[test]
    fn absorb_counters_saturates_source_error() {
        // The generic Algorithm-5 absorption path shares the policy: a
        // source summary's error budget folds in saturating.
        let mut e: SketchEngine<u64> = SketchEngine::builder(8).build().unwrap();
        e.absorb_counters([(1u64, 10u64)], 10, u64::MAX - 1);
        assert!(!e.maximum_error_saturated());
        e.absorb_counters(core::iter::empty(), 0, 5);
        assert_eq!(e.maximum_error(), u64::MAX);
        assert!(e.maximum_error_saturated());
    }

    #[test]
    fn fingerprints_diverge_on_different_state() {
        let mut a: SketchEngine<u64> = SketchEngine::builder(8).build().unwrap();
        let mut b: SketchEngine<u64> = SketchEngine::builder(8).build().unwrap();
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
        a.update(1, 5);
        assert_ne!(a.state_fingerprint(), b.state_fingerprint());
        b.update(1, 5);
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
        // Same counters, different policy: future purges diverge, so
        // fingerprints must too.
        let c: SketchEngine<u64> = SketchEngine::builder(8)
            .policy(PurgePolicy::GlobalMin)
            .build()
            .unwrap();
        assert_ne!(
            c.state_fingerprint(),
            SketchEngine::<u64>::builder(8)
                .build()
                .unwrap()
                .state_fingerprint()
        );
    }
}
