//! [`ItemsSketch`]: the frequent-items sketch for arbitrary item types.
//!
//! The `u64`-keyed [`crate::FreqSketch`] is the fast path for numeric
//! identifiers (IP addresses, user ids, …). Real deployments also sketch
//! strings, tuples, and composite keys; the DataSketches library the paper
//! ships in provides an `ItemsSketch<T>` for exactly this reason, and so do
//! we.
//!
//! Items are stored **by value** in the counter table (not by 64-bit hash),
//! so the certified bounds hold unconditionally — no birthday-bound
//! caveats. The cost is `Option<T>` slots instead of the paper's packed
//! 8-byte keys; use [`crate::FreqSketch`] when items fit in a `u64` and the
//! §2.3.3 memory formula matters.
//!
//! The update, purge, estimate, and merge logic is identical to
//! [`crate::FreqSketch`] — same policies, same offset bookkeeping, same
//! guarantees (Theorems 3–5).
//!
//! # Example
//!
//! ```
//! use streamfreq_core::{ItemsSketch, ErrorType};
//!
//! let mut sketch: ItemsSketch<String> = ItemsSketch::with_max_counters(32);
//! for word in ["the", "quick", "the", "fox", "the"] {
//!     sketch.update(word.to_string(), 1);
//! }
//! assert_eq!(sketch.estimate(&"the".to_string()), 3);
//! let top = sketch.frequent_items(ErrorType::NoFalsePositives);
//! assert_eq!(top[0].item, "the");
//! ```

use core::hash::Hash;

use crate::error::Error;
use crate::hashing::hash64_of;
use crate::item_codec::ItemCodec;
use crate::purge::{CounterValues, PurgePolicy};
use crate::result::{sort_rows_descending, ErrorType, Row};
use crate::rng::Xoshiro256StarStar;
use crate::sketch::DEFAULT_SEED;

/// Item types storable in an [`ItemsSketch`]: hashable, comparable, and
/// clonable (cloned only when reporting rows and when tables grow).
pub trait SketchItem: Hash + Eq + Clone {}
impl<T: Hash + Eq + Clone> SketchItem for T {}

const LG_MIN_TABLE: u32 = 3;

/// Linear-probing counter table storing items by value. Same layout and
/// deletion discipline as [`crate::table::LpTable`]; see that module for
/// the algorithmic commentary.
#[derive(Clone, Debug)]
struct ItemTable<T> {
    keys: Vec<Option<T>>,
    values: Vec<i64>,
    states: Vec<u16>,
    mask: usize,
    num_active: usize,
}

impl<T: SketchItem> ItemTable<T> {
    fn with_lg_len(lg_len: u32) -> Self {
        assert!((1..=31).contains(&lg_len));
        let len = 1usize << lg_len;
        Self {
            keys: (0..len).map(|_| None).collect(),
            values: vec![0; len],
            states: vec![0; len],
            mask: len - 1,
            num_active: 0,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.values.len()
    }

    #[inline]
    fn home(&self, item: &T) -> usize {
        (hash64_of(item) as usize) & self.mask
    }

    fn get(&self, item: &T) -> Option<i64> {
        let mut i = self.home(item);
        loop {
            if self.states[i] == 0 {
                return None;
            }
            if self.keys[i].as_ref() == Some(item) {
                return Some(self.values[i]);
            }
            i = (i + 1) & self.mask;
        }
    }

    fn adjust_or_insert(&mut self, item: T, delta: i64) {
        assert!(self.num_active < self.len(), "ItemTable overflow");
        let home = self.home(&item);
        self.upsert_at(home, item, delta);
    }

    /// Probe loop shared by the scalar and batch paths; `home` is the
    /// item's precomputed preferred slot.
    #[inline]
    fn upsert_at(&mut self, home: usize, item: T, delta: i64) {
        debug_assert_eq!(home, self.home(&item));
        let mut i = home;
        let mut dist: usize = 0;
        loop {
            if self.states[i] == 0 {
                assert!(
                    dist < u16::MAX as usize,
                    "probe distance exceeds state range"
                );
                self.keys[i] = Some(item);
                self.values[i] = delta;
                self.states[i] = (dist + 1) as u16;
                self.num_active += 1;
                return;
            }
            if self.keys[i].as_ref() == Some(&item) {
                self.values[i] += delta;
                return;
            }
            i = (i + 1) & self.mask;
            dist += 1;
        }
    }

    /// Batched [`Self::adjust_or_insert`], cloning items out of `batch` in
    /// order. Same chunked home-precompute + prefetch scheme as
    /// [`crate::table::LpTable::adjust_or_insert_batch`]; see there for the
    /// memory-latency rationale. The caller must leave `batch.len()` free
    /// slots per chunk (the sketch's capacity discipline guarantees this).
    fn adjust_or_insert_batch(&mut self, batch: &[(T, i64)]) {
        use crate::table::{prefetch_read, BATCH_CHUNK};
        const PREFETCH_AHEAD: usize = 8;
        for chunk in batch.chunks(BATCH_CHUNK) {
            assert!(
                self.num_active + chunk.len() < self.len(),
                "ItemTable overflow: batch of {} cannot keep load below 100%",
                chunk.len()
            );
            let mut homes = [0usize; BATCH_CHUNK];
            for (j, (item, _)) in chunk.iter().enumerate() {
                homes[j] = self.home(item);
            }
            let n = chunk.len();
            for &home in homes.iter().take(PREFETCH_AHEAD.min(n)) {
                prefetch_read(&self.states, home);
                prefetch_read(&self.keys, home);
                prefetch_read(&self.values, home);
            }
            for j in 0..n {
                if j + PREFETCH_AHEAD < n {
                    let ahead = homes[j + PREFETCH_AHEAD];
                    prefetch_read(&self.states, ahead);
                    prefetch_read(&self.keys, ahead);
                    prefetch_read(&self.values, ahead);
                }
                let (item, delta) = &chunk[j];
                self.upsert_at(homes[j], item.clone(), *delta);
            }
        }
    }

    /// Fused purge: decrement by `cstar`, delete the non-positive, and
    /// compact runs, in one sequential pass. Mirror of
    /// [`crate::table::LpTable::purge_decrement`]; see there for the
    /// algorithm and why it replaces per-deletion backward shifting.
    fn purge_decrement(&mut self, cstar: i64) -> usize {
        debug_assert!(cstar > 0);
        if self.num_active == 0 {
            return 0;
        }
        let len = self.len();
        let mask = self.mask;
        let first_empty = (0..len)
            .find(|&i| self.states[i] == 0)
            .expect("table is never 100% full");
        let rank = |p: usize| p.wrapping_sub(first_empty) & mask;
        let mut removed = 0usize;
        let mut gaps: Vec<usize> = Vec::new();
        let mut i = (first_empty + 1) & mask;
        for _ in 0..len - 1 {
            let state = self.states[i];
            if state == 0 {
                gaps.clear();
            } else if self.values[i] <= cstar {
                self.states[i] = 0;
                self.keys[i] = None;
                gaps.push(i);
                removed += 1;
            } else {
                let home = i.wrapping_sub(state as usize - 1) & mask;
                let pos = gaps.partition_point(|&g| rank(g) < rank(home));
                if pos < gaps.len() {
                    let dest = gaps.remove(pos);
                    self.keys[dest] = self.keys[i].take();
                    self.values[dest] = self.values[i] - cstar;
                    self.states[dest] = ((dest.wrapping_sub(home) & mask) + 1) as u16;
                    self.states[i] = 0;
                    gaps.push(i);
                } else {
                    self.values[i] -= cstar;
                }
            }
            i = (i + 1) & mask;
        }
        self.num_active -= removed;
        removed
    }

    fn iter(&self) -> impl Iterator<Item = (&T, i64)> + '_ {
        (0..self.len()).filter_map(move |i| {
            if self.states[i] != 0 {
                Some((
                    self.keys[i].as_ref().expect("occupied slot has key"),
                    self.values[i],
                ))
            } else {
                None
            }
        })
    }
}

impl<T: SketchItem> CounterValues for ItemTable<T> {
    fn is_empty(&self) -> bool {
        self.num_active == 0
    }

    fn sample_values(&self, rng: &mut Xoshiro256StarStar, sample_size: usize, out: &mut Vec<i64>) {
        if self.num_active <= sample_size {
            self.values_into(out);
            return;
        }
        out.clear();
        out.reserve(sample_size);
        let len = self.len() as u64;
        while out.len() < sample_size {
            let i = rng.next_below(len) as usize;
            if self.states[i] != 0 {
                out.push(self.values[i]);
            }
        }
    }

    fn values_into(&self, out: &mut Vec<i64>) {
        out.clear();
        out.reserve(self.num_active);
        for i in 0..self.len() {
            if self.states[i] != 0 {
                out.push(self.values[i]);
            }
        }
    }

    fn min_value(&self) -> Option<i64> {
        let mut min = None;
        for i in 0..self.len() {
            if self.states[i] != 0 {
                min = Some(match min {
                    None => self.values[i],
                    Some(m) if self.values[i] < m => self.values[i],
                    Some(m) => m,
                });
            }
        }
        min
    }
}

/// A weighted frequent-items sketch over arbitrary item types.
///
/// See the [module docs](self) and [`crate::FreqSketch`] (whose API this
/// mirrors, with `&T` queries and `Row<T>` results).
#[derive(Clone, Debug)]
pub struct ItemsSketch<T: SketchItem> {
    table: ItemTable<T>,
    lg_cur: u32,
    lg_max: u32,
    max_counters: usize,
    policy: PurgePolicy,
    rng: Xoshiro256StarStar,
    offset: u64,
    stream_weight: u64,
    weight_saturated: bool,
    num_updates: u64,
    num_purges: u64,
    scratch: Vec<i64>,
    pair_scratch: Vec<(T, i64)>,
}

impl<T: SketchItem> ItemsSketch<T> {
    /// Creates a SMED sketch maintaining at most `max_counters` counters.
    ///
    /// # Panics
    /// Panics if `max_counters` is zero or needs a table beyond 2³¹ slots.
    pub fn with_max_counters(max_counters: usize) -> Self {
        Self::try_new(max_counters, PurgePolicy::default(), DEFAULT_SEED)
            .expect("invalid max_counters")
    }

    /// Creates a sketch with an explicit policy and seed.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] for a zero capacity, an oversized
    /// capacity, or invalid policy parameters.
    pub fn try_new(max_counters: usize, policy: PurgePolicy, seed: u64) -> Result<Self, Error> {
        if max_counters == 0 {
            return Err(Error::InvalidConfig("max_counters must be positive".into()));
        }
        policy.validate().map_err(Error::InvalidConfig)?;
        let min_len = (max_counters * 4).div_ceil(3);
        let lg_max = min_len
            .next_power_of_two()
            .trailing_zeros()
            .max(LG_MIN_TABLE);
        if lg_max > 31 {
            return Err(Error::InvalidConfig(format!(
                "max_counters {max_counters} needs a table larger than 2^31 slots"
            )));
        }
        let lg_cur = LG_MIN_TABLE.min(lg_max);
        Ok(Self {
            table: ItemTable::with_lg_len(lg_cur),
            lg_cur,
            lg_max,
            max_counters,
            policy,
            rng: Xoshiro256StarStar::from_seed(seed),
            offset: 0,
            stream_weight: 0,
            weight_saturated: false,
            num_updates: 0,
            num_purges: 0,
            scratch: Vec::new(),
            pair_scratch: Vec::new(),
        })
    }

    /// Number of counters currently assigned.
    pub fn num_counters(&self) -> usize {
        self.table.num_active
    }

    /// Maximum number of counters maintained (the paper's `k`).
    pub fn max_counters(&self) -> usize {
        self.max_counters
    }

    /// True if no updates have been processed.
    pub fn is_empty(&self) -> bool {
        self.num_updates == 0
    }

    /// Total weighted stream length processed (including merges).
    /// Saturates at `u64::MAX` instead of panicking — see
    /// [`crate::FreqSketch::stream_weight`] for the shared policy.
    pub fn stream_weight(&self) -> u64 {
        self.stream_weight
    }

    /// True if the total stream weight exceeded `u64::MAX` and
    /// [`Self::stream_weight`] is pinned at the saturation point.
    pub fn stream_weight_saturated(&self) -> bool {
        self.weight_saturated
    }

    /// Saturating stream-weight accounting shared by the scalar, batch,
    /// and merge paths (the policy of [`crate::FreqSketch`]).
    #[inline]
    fn absorb_stream_weight(&mut self, total: u128) {
        let new_total = self.stream_weight as u128 + total;
        if new_total > u64::MAX as u128 {
            self.stream_weight = u64::MAX;
            self.weight_saturated = true;
        } else {
            self.stream_weight = new_total as u64;
        }
    }

    /// Number of update operations processed.
    pub fn num_updates(&self) -> u64 {
        self.num_updates
    }

    /// Number of purge operations performed.
    pub fn num_purges(&self) -> u64 {
        self.num_purges
    }

    /// The purge policy in effect.
    pub fn policy(&self) -> PurgePolicy {
        self.policy
    }

    /// A-posteriori maximum estimation error (the cumulative decrement).
    pub fn maximum_error(&self) -> u64 {
        self.offset
    }

    fn capacity_now(&self) -> usize {
        if self.lg_cur == self.lg_max {
            self.max_counters
        } else {
            (self.table.len() * 3) / 4
        }
    }

    /// Processes the weighted update `(item, weight)` in amortized O(1).
    /// Zero weights are ignored. Total stream weight saturates at
    /// `u64::MAX` rather than panicking (see [`Self::stream_weight`]).
    ///
    /// # Panics
    /// Panics if `weight` exceeds `i64::MAX`.
    pub fn update(&mut self, item: T, weight: u64) {
        if weight == 0 {
            return;
        }
        assert!(
            weight <= i64::MAX as u64,
            "update weight {weight} exceeds supported range"
        );
        self.absorb_stream_weight(weight as u128);
        self.num_updates += 1;
        self.feed(item, weight as i64);
    }

    /// Processes a unit update.
    pub fn update_one(&mut self, item: T) {
        self.update(item, 1);
    }

    /// Processes a slice of weighted updates (items cloned out of the
    /// slice), state-identically to scalar [`Self::update`] calls in
    /// order, via the chunked, prefetching table path. Chunks are sized
    /// to the purge headroom so growth/purge timing matches the scalar
    /// path exactly — see [`crate::FreqSketch::update_batch`] for the
    /// scheme.
    pub fn update_batch(&mut self, batch: &[(T, u64)]) {
        let mut rest = batch;
        while !rest.is_empty() {
            let headroom = self.capacity_now().saturating_sub(self.table.num_active);
            if headroom == 0 {
                let (item, weight) = &rest[0];
                rest = &rest[1..];
                self.update(item.clone(), *weight);
                continue;
            }
            let take = headroom.min(rest.len());
            let (chunk, tail) = rest.split_at(take);
            rest = tail;
            let mut total: u128 = 0;
            let mut count = 0u64;
            self.pair_scratch.clear();
            for (item, weight) in chunk {
                if *weight == 0 {
                    continue;
                }
                assert!(
                    *weight <= i64::MAX as u64,
                    "update weight {weight} exceeds supported range"
                );
                total += *weight as u128;
                count += 1;
                self.pair_scratch.push((item.clone(), *weight as i64));
            }
            self.absorb_stream_weight(total);
            self.num_updates += count;
            let pairs = core::mem::take(&mut self.pair_scratch);
            self.table.adjust_or_insert_batch(&pairs);
            self.pair_scratch = pairs;
            // A headroom-sized chunk cannot push past capacity; growth
            // and purges all route through the scalar fallback above.
            debug_assert!(self.table.num_active <= self.capacity_now());
        }
    }

    fn feed(&mut self, item: T, weight: i64) {
        self.table.adjust_or_insert(item, weight);
        while self.table.num_active > self.capacity_now() {
            if self.lg_cur < self.lg_max {
                self.grow();
            } else {
                self.purge();
            }
        }
    }

    fn grow(&mut self) {
        let new_lg = self.lg_cur + 1;
        let mut bigger = ItemTable::with_lg_len(new_lg);
        let old = core::mem::replace(&mut self.table, ItemTable::with_lg_len(1));
        for (i, slot) in old.keys.into_iter().enumerate() {
            if let Some(item) = slot {
                if old.states[i] != 0 {
                    bigger.adjust_or_insert(item, old.values[i]);
                }
            }
        }
        self.table = bigger;
        self.lg_cur = new_lg;
    }

    fn purge(&mut self) {
        let cstar = self
            .policy
            .compute_cstar(&self.table, &mut self.rng, &mut self.scratch);
        debug_assert!(cstar > 0);
        self.table.purge_decrement(cstar);
        self.offset += cstar as u64;
        self.num_purges += 1;
    }

    /// Estimate of the item's weighted frequency (§2.3.1 offset variant).
    pub fn estimate(&self, item: &T) -> u64 {
        match self.table.get(item) {
            Some(c) => c as u64 + self.offset,
            None => 0,
        }
    }

    /// Certified lower bound on the item's frequency.
    pub fn lower_bound(&self, item: &T) -> u64 {
        self.table.get(item).map_or(0, |c| c as u64)
    }

    /// Certified upper bound on the item's frequency.
    pub fn upper_bound(&self, item: &T) -> u64 {
        self.table
            .get(item)
            .map_or(self.offset, |c| c as u64 + self.offset)
    }

    /// Iterates over tracked `(item, lower_bound)` pairs.
    pub fn counters(&self) -> impl Iterator<Item = (&T, u64)> + '_ {
        self.table.iter().map(|(item, c)| (item, c as u64))
    }

    fn row_for(&self, item: &T, count: i64) -> Row<T> {
        Row {
            item: item.clone(),
            estimate: count as u64 + self.offset,
            lower_bound: count as u64,
            upper_bound: count as u64 + self.offset,
        }
    }

    /// Items whose frequency may exceed `threshold` under the chosen
    /// contract, sorted by descending estimate. A threshold below
    /// [`Self::maximum_error`] is raised to it — see
    /// [`crate::FreqSketch::frequent_items_with_threshold`].
    pub fn frequent_items_with_threshold(
        &self,
        threshold: u64,
        error_type: ErrorType,
    ) -> Vec<Row<T>>
    where
        T: Ord,
    {
        let threshold = threshold.max(self.maximum_error());
        let mut rows: Vec<Row<T>> = self
            .table
            .iter()
            .filter_map(|(item, count)| {
                let row = self.row_for(item, count);
                let include = match error_type {
                    ErrorType::NoFalsePositives => row.lower_bound > threshold,
                    ErrorType::NoFalseNegatives => row.upper_bound > threshold,
                };
                include.then_some(row)
            })
            .collect();
        sort_rows_descending(&mut rows);
        rows
    }

    /// [`Self::frequent_items_with_threshold`] at the sketch's own
    /// `maximum_error`.
    pub fn frequent_items(&self, error_type: ErrorType) -> Vec<Row<T>>
    where
        T: Ord,
    {
        self.frequent_items_with_threshold(self.maximum_error(), error_type)
    }

    /// (φ, ε)-heavy hitters: items whose frequency may exceed `phi · N`.
    ///
    /// # Panics
    /// Panics if `phi` is outside `[0, 1]`.
    pub fn heavy_hitters(&self, phi: f64, error_type: ErrorType) -> Vec<Row<T>>
    where
        T: Ord,
    {
        assert!((0.0..=1.0).contains(&phi), "phi {phi} outside [0, 1]");
        let threshold = (phi * self.stream_weight as f64) as u64;
        self.frequent_items_with_threshold(threshold, error_type)
    }

    /// Merges `other` into `self` (Algorithm 5, randomized replay order —
    /// see [`crate::FreqSketch::merge`] for the §3.2 rationale).
    pub fn merge(&mut self, other: &ItemsSketch<T>) {
        let mut pairs: Vec<(&T, i64)> = other.table.iter().collect();
        for i in (1..pairs.len()).rev() {
            let j = self.rng.next_below(i as u64 + 1) as usize;
            pairs.swap(i, j);
        }
        for (item, count) in pairs {
            self.feed(item.clone(), count);
        }
        self.offset += other.offset;
        self.absorb_stream_weight(other.stream_weight as u128);
        self.weight_saturated |= other.weight_saturated;
        self.num_updates += other.num_updates;
    }
}

/// Streaming ingestion through the batch path — the generic-item
/// counterpart of `FreqSketch`'s `Extend` impl.
impl<T: SketchItem> Extend<(T, u64)> for ItemsSketch<T> {
    fn extend<I: IntoIterator<Item = (T, u64)>>(&mut self, iter: I) {
        const EXTEND_BUF: usize = 4096;
        let mut buf: Vec<(T, u64)> = Vec::with_capacity(EXTEND_BUF);
        for pair in iter {
            buf.push(pair);
            if buf.len() == EXTEND_BUF {
                self.update_batch(&buf);
                buf.clear();
            }
        }
        self.update_batch(&buf);
    }
}

/// Wire format for item sketches (versioned, little-endian): the header
/// mirrors [`crate::codec`]'s `u64` format with magic `"SFQI"`, followed
/// by `(item, count)` entries where items use their [`ItemCodec`]
/// encoding. Round-tripped sketches behave bit-identically, including
/// future purges (the sampler state travels along).
impl<T: SketchItem + ItemCodec> ItemsSketch<T> {
    /// Serializes the sketch into a fresh byte vector.
    pub fn serialize_to_bytes(&self) -> Vec<u8> {
        use crate::codec::{policy_params, policy_tag};
        let mut out = Vec::new();
        out.extend_from_slice(b"SFQI");
        out.push(1u8); // version
        out.push(policy_tag(&self.policy));
        // flags (bit 0: stream weight saturated; rest reserved, zero)
        out.extend_from_slice(&[u8::from(self.weight_saturated), 0]);
        (self.max_counters as u64).encode(&mut out);
        self.offset.encode(&mut out);
        self.stream_weight.encode(&mut out);
        self.num_updates.encode(&mut out);
        self.num_purges.encode(&mut out);
        let (a, b) = policy_params(&self.policy);
        a.encode(&mut out);
        b.encode(&mut out);
        for word in self.rng.state() {
            word.encode(&mut out);
        }
        (self.table.num_active as u32).encode(&mut out);
        for (item, count) in self.table.iter() {
            item.encode(&mut out);
            (count as u64).encode(&mut out);
        }
        out
    }

    /// Reconstructs a sketch from [`Self::serialize_to_bytes`] output.
    ///
    /// # Errors
    /// Returns [`Error::Corrupt`], [`Error::UnsupportedVersion`] or
    /// [`Error::Truncated`] on malformed input; trailing bytes are
    /// rejected.
    pub fn deserialize_from_bytes(bytes: &[u8]) -> Result<Self, Error> {
        use crate::codec::policy_from_wire;
        let mut buf = bytes;
        let magic: [u8; 4] = {
            let mut m = [0u8; 4];
            for slot in &mut m {
                *slot = u8::decode(&mut buf)?;
            }
            m
        };
        if &magic != b"SFQI" {
            return Err(Error::Corrupt(format!("bad magic {magic:02x?}")));
        }
        let version = u8::decode(&mut buf)?;
        if version != 1 {
            return Err(Error::UnsupportedVersion(version));
        }
        let tag = u8::decode(&mut buf)?;
        let flags = u16::decode(&mut buf)?;
        if flags > 1 {
            return Err(Error::Corrupt("nonzero reserved flag bits".into()));
        }
        let max_counters = usize::try_from(u64::decode(&mut buf)?)
            .map_err(|_| Error::Corrupt("max_counters exceeds usize".into()))?;
        let offset = u64::decode(&mut buf)?;
        let stream_weight = u64::decode(&mut buf)?;
        let num_updates = u64::decode(&mut buf)?;
        let num_purges = u64::decode(&mut buf)?;
        let a = u64::decode(&mut buf)?;
        let b = u64::decode(&mut buf)?;
        let policy = policy_from_wire(tag, a, b)?;
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = u64::decode(&mut buf)?;
        }
        if state == [0; 4] {
            return Err(Error::Corrupt("invalid all-zero sampler state".into()));
        }
        let num_active = u32::decode(&mut buf)? as usize;
        if num_active > max_counters {
            return Err(Error::Corrupt(format!(
                "{num_active} counters exceed capacity {max_counters}"
            )));
        }
        let mut sketch = ItemsSketch::try_new(max_counters, policy, 0)?;
        for _ in 0..num_active {
            let item = T::decode(&mut buf)?;
            let count = u64::decode(&mut buf)?;
            if count == 0 || count > i64::MAX as u64 {
                return Err(Error::Corrupt(format!(
                    "counter value {count} out of range"
                )));
            }
            if sketch.table.get(&item).is_some() {
                return Err(Error::Corrupt("duplicate item in encoding".into()));
            }
            // Growth-only insertion: num_active ≤ max_counters guarantees
            // no purge can trigger.
            sketch.feed(item, count as i64);
        }
        if !buf.is_empty() {
            return Err(Error::Corrupt("trailing bytes after counters".into()));
        }
        sketch.offset = offset;
        sketch.stream_weight = stream_weight;
        sketch.weight_saturated = flags & 1 != 0;
        sketch.num_updates = num_updates;
        sketch.num_purges = num_purges;
        sketch.rng = Xoshiro256StarStar::from_state(state);
        Ok(sketch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn exact_below_capacity() {
        let mut s: ItemsSketch<&'static str> = ItemsSketch::with_max_counters(16);
        s.update("alpha", 10);
        s.update("beta", 5);
        s.update("alpha", 7);
        assert_eq!(s.estimate(&"alpha"), 17);
        assert_eq!(s.estimate(&"beta"), 5);
        assert_eq!(s.estimate(&"gamma"), 0);
        assert_eq!(s.maximum_error(), 0);
        assert_eq!(s.stream_weight(), 22);
    }

    #[test]
    fn string_items_bounds_bracket_truth() {
        let mut s: ItemsSketch<String> = ItemsSketch::with_max_counters(24);
        let mut truth: HashMap<String, u64> = HashMap::new();
        for i in 0..30_000u64 {
            let item = format!("key-{}", i % 200);
            let w = i % 11 + 1;
            s.update(item.clone(), w);
            *truth.entry(item).or_insert(0) += w;
        }
        assert!(s.num_purges() > 0, "test must exercise purging");
        for (item, &f) in &truth {
            assert!(s.lower_bound(item) <= f, "lb violated for {item}");
            assert!(s.upper_bound(item) >= f, "ub violated for {item}");
        }
    }

    #[test]
    fn heavy_hitters_on_words() {
        let mut s: ItemsSketch<&'static str> = ItemsSketch::with_max_counters(8);
        for _ in 0..1000 {
            s.update("hot", 10);
            s.update("warm", 3);
        }
        for i in 0..500u64 {
            // unique cold words, boxed into leaked strs via a small set
            s.update(["c0", "c1", "c2", "c3", "c4"][(i % 5) as usize], 1);
        }
        let hh = s.heavy_hitters(0.5, ErrorType::NoFalsePositives);
        assert_eq!(hh.len(), 1);
        assert_eq!(hh[0].item, "hot");
        let all = s.heavy_hitters(0.1, ErrorType::NoFalseNegatives);
        assert!(all.iter().any(|r| r.item == "warm"));
    }

    #[test]
    fn update_batch_matches_scalar_updates() {
        let stream: Vec<(String, u64)> = (0..20_000u64)
            .map(|i| (format!("key-{}", (i * 2_654_435_761) % 300), i % 13 + 1))
            .collect();
        let mut scalar: ItemsSketch<String> = ItemsSketch::with_max_counters(48);
        for (item, w) in &stream {
            scalar.update(item.clone(), *w);
        }
        let mut batched: ItemsSketch<String> = ItemsSketch::with_max_counters(48);
        batched.update_batch(&stream);
        assert!(scalar.num_purges() > 0, "test must exercise purging");
        assert_eq!(batched.serialize_to_bytes(), scalar.serialize_to_bytes());
    }

    #[test]
    fn extend_matches_update_batch() {
        let stream: Vec<(String, u64)> = (0..8_000u64)
            .map(|i| (format!("w{}", i % 120), i % 7 + 1))
            .collect();
        let mut a: ItemsSketch<String> = ItemsSketch::with_max_counters(32);
        a.update_batch(&stream);
        let mut b: ItemsSketch<String> = ItemsSketch::with_max_counters(32);
        b.extend(stream.iter().cloned());
        assert_eq!(a.serialize_to_bytes(), b.serialize_to_bytes());
    }

    #[test]
    fn stream_weight_saturates_and_roundtrips() {
        let mut s: ItemsSketch<u32> = ItemsSketch::with_max_counters(8);
        s.update(1, i64::MAX as u64);
        s.update(2, i64::MAX as u64);
        s.update(3, 9);
        assert!(s.stream_weight_saturated());
        assert_eq!(s.stream_weight(), u64::MAX);
        let restored = ItemsSketch::<u32>::deserialize_from_bytes(&s.serialize_to_bytes()).unwrap();
        assert!(restored.stream_weight_saturated());
        assert_eq!(restored.stream_weight(), u64::MAX);
    }

    #[test]
    fn tuple_items() {
        let mut s: ItemsSketch<(u32, u32)> = ItemsSketch::with_max_counters(16);
        s.update((1, 2), 100);
        s.update((2, 1), 1);
        assert_eq!(s.estimate(&(1, 2)), 100);
        assert_eq!(s.estimate(&(2, 1)), 1);
    }

    #[test]
    fn merge_string_sketches() {
        let mut a: ItemsSketch<String> = ItemsSketch::with_max_counters(32);
        let mut b: ItemsSketch<String> = ItemsSketch::with_max_counters(32);
        let mut truth: HashMap<String, u64> = HashMap::new();
        for i in 0..10_000u64 {
            let item = format!("w{}", i % 150);
            let w = i % 5 + 1;
            if i % 2 == 0 {
                a.update(item.clone(), w);
            } else {
                b.update(item.clone(), w);
            }
            *truth.entry(item).or_insert(0) += w;
        }
        let n = a.stream_weight() + b.stream_weight();
        a.merge(&b);
        assert_eq!(a.stream_weight(), n);
        for (item, &f) in &truth {
            assert!(a.lower_bound(item) <= f);
            assert!(a.upper_bound(item) >= f);
        }
    }

    #[test]
    fn growth_preserves_items() {
        let mut s: ItemsSketch<String> = ItemsSketch::with_max_counters(500);
        for i in 0..400u64 {
            s.update(format!("item{i}"), i + 1);
        }
        assert_eq!(s.maximum_error(), 0);
        for i in (0..400u64).step_by(37) {
            assert_eq!(s.estimate(&format!("item{i}")), i + 1);
        }
    }

    #[test]
    fn purge_policies_work_for_items() {
        for policy in [
            PurgePolicy::smed(),
            PurgePolicy::smin(),
            PurgePolicy::med(),
            PurgePolicy::GlobalMin,
        ] {
            let mut s: ItemsSketch<u32> = ItemsSketch::try_new(16, policy, 7).unwrap();
            for i in 0..5_000u32 {
                s.update(i % 100, 2);
            }
            assert!(s.num_purges() > 0, "{policy:?} never purged");
            // a-priori bound (Lemma 4 form)
            let kstar = policy.effective_kstar_fraction() * 16.0;
            let bound = (s.stream_weight() as f64 / kstar).ceil() as u64;
            assert!(s.maximum_error() <= bound, "{policy:?} exceeded bound");
        }
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(ItemsSketch::<String>::try_new(0, PurgePolicy::smed(), 1).is_err());
    }

    #[test]
    fn codec_roundtrip_string_items() {
        let mut s: ItemsSketch<String> = ItemsSketch::with_max_counters(24);
        for i in 0..10_000u64 {
            s.update(format!("key-{}", i % 200), i % 7 + 1);
        }
        assert!(s.num_purges() > 0);
        let bytes = s.serialize_to_bytes();
        let d = ItemsSketch::<String>::deserialize_from_bytes(&bytes).unwrap();
        assert_eq!(d.maximum_error(), s.maximum_error());
        assert_eq!(d.stream_weight(), s.stream_weight());
        assert_eq!(d.num_counters(), s.num_counters());
        for i in 0..200u64 {
            let key = format!("key-{i}");
            assert_eq!(d.estimate(&key), s.estimate(&key), "{key}");
        }
    }

    #[test]
    fn codec_roundtrip_then_update_is_identical() {
        let mut original: ItemsSketch<u32> = ItemsSketch::with_max_counters(16);
        for i in 0..5_000u32 {
            original.update(i % 100, 3);
        }
        let mut restored =
            ItemsSketch::<u32>::deserialize_from_bytes(&original.serialize_to_bytes()).unwrap();
        for i in 0..5_000u32 {
            original.update(i % 77, 2);
            restored.update(i % 77, 2);
        }
        assert_eq!(original.maximum_error(), restored.maximum_error());
        for i in 0..100u32 {
            assert_eq!(original.estimate(&i), restored.estimate(&i));
        }
    }

    #[test]
    fn codec_rejects_malformed() {
        let mut s: ItemsSketch<String> = ItemsSketch::with_max_counters(8);
        s.update("x".to_string(), 5);
        let bytes = s.serialize_to_bytes();
        // bad magic
        let mut bad = bytes.clone();
        bad[0] = b'Z';
        assert!(ItemsSketch::<String>::deserialize_from_bytes(&bad).is_err());
        // truncations
        for cut in [0, 4, 10, bytes.len() - 1] {
            assert!(
                ItemsSketch::<String>::deserialize_from_bytes(&bytes[..cut]).is_err(),
                "prefix {cut} accepted"
            );
        }
        // trailing garbage
        let mut long = bytes.clone();
        long.push(7);
        assert!(ItemsSketch::<String>::deserialize_from_bytes(&long).is_err());
    }
}
