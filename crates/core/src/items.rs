//! [`ItemsSketch`]: the frequent-items sketch for arbitrary item types.
//!
//! The `u64`-keyed [`crate::FreqSketch`] is the fast path for numeric
//! identifiers (IP addresses, user ids, …). Real deployments also sketch
//! strings, tuples, and composite keys; the DataSketches library the paper
//! ships in provides an `ItemsSketch<T>` for exactly this reason, and so do
//! we.
//!
//! Items are stored **by value** in the counter table (not by 64-bit hash),
//! so the certified bounds hold unconditionally — no birthday-bound
//! caveats. The cost is `size_of::<T>()`-wide slots instead of the paper's
//! packed 8-byte keys; use [`crate::FreqSketch`] when items fit in a `u64`
//! and the §2.3.3 memory formula matters.
//!
//! `ItemsSketch<T>` is a thin layer over the shared
//! [`SketchEngine`]: the update, batch,
//! purge, estimate, and merge logic is *the same code* that runs under
//! [`crate::FreqSketch`] — same policies, same offset bookkeeping, same
//! guarantees (Theorems 3–5), same prefetching batch pipeline. In
//! particular `ItemsSketch<u64>` is state-for-state identical to
//! `FreqSketch` on any stream (pinned by differential proptests): same
//! estimates, same purge decisions, same table layout.
//!
//! Item types implement [`SketchKey`], which is
//! blanket-provided for every [`crate::hashing::Hash64`] type (integers,
//! `String`, `&str`, `Vec<u8>`, pairs). For custom types, implement
//! `Hash64` (e.g. via [`crate::hashing::hash64_of`]) plus `Default`.
//!
//! # Example
//!
//! ```
//! use streamfreq_core::{ItemsSketch, ErrorType};
//!
//! let mut sketch: ItemsSketch<String> = ItemsSketch::with_max_counters(32);
//! for word in ["the", "quick", "the", "fox", "the"] {
//!     sketch.update(word.to_string(), 1);
//! }
//! assert_eq!(sketch.estimate(&"the".to_string()), 3);
//! let top = sketch.frequent_items(ErrorType::NoFalsePositives);
//! assert_eq!(top[0].item, "the");
//! ```

use crate::engine::{SketchEngine, SketchEngineBuilder, SketchKey};
use crate::error::Error;
use crate::item_codec::ItemCodec;
use crate::purge::PurgePolicy;
use crate::result::{ErrorType, Row};
use crate::rng::Xoshiro256StarStar;

/// A weighted frequent-items sketch over arbitrary item types.
///
/// See the [module docs](self) and [`crate::FreqSketch`] (whose API this
/// mirrors, with `&T` queries and `Row<T>` results).
#[derive(Clone, Debug)]
pub struct ItemsSketch<T: SketchKey> {
    engine: SketchEngine<T>,
}

/// Configures and constructs an [`ItemsSketch`] — the same builder
/// surface as [`crate::FreqSketchBuilder`] (`policy` / `seed` /
/// `grow_from_small`), falling out of the shared engine.
#[derive(Clone, Debug)]
pub struct ItemsSketchBuilder<T: SketchKey> {
    inner: SketchEngineBuilder<T>,
}

impl<T: SketchKey> ItemsSketchBuilder<T> {
    /// Starts a builder for a sketch maintaining at most `max_counters`
    /// assigned counters (the paper's `k`).
    pub fn new(max_counters: usize) -> Self {
        Self {
            inner: SketchEngineBuilder::new(max_counters),
        }
    }

    /// Selects the purge policy (default: SMED, the paper's recommendation).
    pub fn policy(mut self, policy: PurgePolicy) -> Self {
        self.inner = self.inner.policy(policy);
        self
    }

    /// Seeds the purge-sampling generator (default:
    /// [`crate::sketch::DEFAULT_SEED`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner = self.inner.seed(seed);
        self
    }

    /// If `false`, allocates the maximum-size table up front instead of
    /// growing from 8 slots.
    pub fn grow_from_small(mut self, grow: bool) -> Self {
        self.inner = self.inner.grow_from_small(grow);
        self
    }

    /// Builds the sketch.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] for a zero capacity, an oversized
    /// capacity, or invalid policy parameters.
    pub fn build(self) -> Result<ItemsSketch<T>, Error> {
        Ok(ItemsSketch {
            engine: self.inner.build()?,
        })
    }
}

impl<T: SketchKey> ItemsSketch<T> {
    /// Creates a SMED sketch maintaining at most `max_counters` counters.
    ///
    /// # Panics
    /// Panics if `max_counters` is zero or needs a table beyond 2³¹ slots.
    pub fn with_max_counters(max_counters: usize) -> Self {
        Self::builder(max_counters)
            .build()
            .expect("invalid max_counters")
    }

    /// Starts an [`ItemsSketchBuilder`] for custom configuration.
    ///
    /// # Example
    ///
    /// ```
    /// use streamfreq_core::{ItemsSketch, PurgePolicy};
    ///
    /// let sketch: ItemsSketch<&str> = ItemsSketch::builder(64)
    ///     .policy(PurgePolicy::smin())
    ///     .seed(7)
    ///     .grow_from_small(false)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(sketch.max_counters(), 64);
    /// assert_eq!(sketch.policy(), PurgePolicy::smin());
    /// ```
    pub fn builder(max_counters: usize) -> ItemsSketchBuilder<T> {
        ItemsSketchBuilder::new(max_counters)
    }

    /// Creates a sketch with an explicit policy and seed.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] for a zero capacity, an oversized
    /// capacity, or invalid policy parameters.
    pub fn try_new(max_counters: usize, policy: PurgePolicy, seed: u64) -> Result<Self, Error> {
        Self::builder(max_counters)
            .policy(policy)
            .seed(seed)
            .build()
    }

    /// Read access to the underlying generic engine.
    #[inline]
    pub fn engine(&self) -> &SketchEngine<T> {
        &self.engine
    }

    /// Number of counters currently assigned.
    pub fn num_counters(&self) -> usize {
        self.engine.num_counters()
    }

    /// Maximum number of counters maintained (the paper's `k`).
    pub fn max_counters(&self) -> usize {
        self.engine.max_counters()
    }

    /// True if no updates have been processed.
    pub fn is_empty(&self) -> bool {
        self.engine.is_empty()
    }

    /// Total weighted stream length processed (including merges).
    /// Saturates at `u64::MAX` instead of panicking — see
    /// [`SketchEngine::stream_weight`] for the shared policy.
    pub fn stream_weight(&self) -> u64 {
        self.engine.stream_weight()
    }

    /// True if the total stream weight exceeded `u64::MAX` and
    /// [`Self::stream_weight`] is pinned at the saturation point.
    pub fn stream_weight_saturated(&self) -> bool {
        self.engine.stream_weight_saturated()
    }

    /// Number of update operations processed.
    pub fn num_updates(&self) -> u64 {
        self.engine.num_updates()
    }

    /// Number of purge operations performed.
    pub fn num_purges(&self) -> u64 {
        self.engine.num_purges()
    }

    /// The purge policy in effect.
    pub fn policy(&self) -> PurgePolicy {
        self.engine.policy()
    }

    /// The seed the purge sampler was initialized with.
    pub fn seed(&self) -> u64 {
        self.engine.seed()
    }

    /// Bytes of heap memory held by the counter table's parallel arrays
    /// (heap storage inside items is not counted).
    pub fn memory_bytes(&self) -> usize {
        self.engine.memory_bytes()
    }

    /// A-posteriori maximum estimation error (the cumulative decrement).
    pub fn maximum_error(&self) -> u64 {
        self.engine.maximum_error()
    }

    /// Processes the weighted update `(item, weight)` in amortized O(1).
    /// Zero weights are ignored. Total stream weight saturates at
    /// `u64::MAX` rather than panicking (see [`Self::stream_weight`]).
    ///
    /// # Panics
    /// Panics if `weight` exceeds `i64::MAX`.
    pub fn update(&mut self, item: T, weight: u64) {
        self.engine.update(item, weight);
    }

    /// Processes a unit update.
    pub fn update_one(&mut self, item: T) {
        self.engine.update_one(item);
    }

    /// Processes a slice of weighted updates (items cloned out of the
    /// slice), state-identically to scalar [`Self::update`] calls in
    /// order, via the chunked, prefetching table path — see
    /// [`SketchEngine::update_batch`] for the scheme.
    ///
    /// # Example
    ///
    /// ```
    /// use streamfreq_core::ItemsSketch;
    ///
    /// let mut sketch: ItemsSketch<&str> = ItemsSketch::with_max_counters(32);
    /// sketch.update_batch(&[("get", 120), ("put", 40), ("get", 80)]);
    /// assert_eq!(sketch.estimate(&"get"), 200);
    /// assert_eq!(sketch.stream_weight(), 240);
    /// ```
    pub fn update_batch(&mut self, batch: &[(T, u64)]) {
        self.engine.update_batch(batch);
    }

    /// Estimate of the item's weighted frequency (§2.3.1 offset variant).
    pub fn estimate(&self, item: &T) -> u64 {
        self.engine.estimate(item)
    }

    /// Certified lower bound on the item's frequency.
    pub fn lower_bound(&self, item: &T) -> u64 {
        self.engine.lower_bound(item)
    }

    /// Certified upper bound on the item's frequency.
    pub fn upper_bound(&self, item: &T) -> u64 {
        self.engine.upper_bound(item)
    }

    /// Iterates over tracked `(item, lower_bound)` pairs.
    pub fn counters(&self) -> impl Iterator<Item = (&T, u64)> + '_ {
        self.engine.counters()
    }

    /// Items whose frequency may exceed `threshold` under the chosen
    /// contract, sorted by descending estimate. A threshold below
    /// [`Self::maximum_error`] is raised to it — see
    /// [`SketchEngine::frequent_items_with_threshold`].
    pub fn frequent_items_with_threshold(
        &self,
        threshold: u64,
        error_type: ErrorType,
    ) -> Vec<Row<T>>
    where
        T: Ord,
    {
        self.engine
            .frequent_items_with_threshold(threshold, error_type)
    }

    /// [`Self::frequent_items_with_threshold`] at the sketch's own
    /// `maximum_error`.
    pub fn frequent_items(&self, error_type: ErrorType) -> Vec<Row<T>>
    where
        T: Ord,
    {
        self.engine.frequent_items(error_type)
    }

    /// (φ, ε)-heavy hitters: items whose frequency may exceed `phi · N`.
    ///
    /// # Example
    ///
    /// ```
    /// use streamfreq_core::{ErrorType, ItemsSketch};
    ///
    /// let mut sketch: ItemsSketch<&str> = ItemsSketch::with_max_counters(32);
    /// sketch.update_batch(&[("hot", 900), ("warm", 80), ("cold", 20)]);
    ///
    /// // Items that may hold over half the total weight N = 1000:
    /// let heavy = sketch.heavy_hitters(0.5, ErrorType::NoFalsePositives);
    /// assert_eq!(heavy.len(), 1);
    /// assert_eq!(heavy[0].item, "hot");
    /// assert_eq!(heavy[0].estimate, 900);
    /// ```
    ///
    /// # Panics
    /// Panics if `phi` is outside `[0, 1]`.
    pub fn heavy_hitters(&self, phi: f64, error_type: ErrorType) -> Vec<Row<T>>
    where
        T: Ord,
    {
        self.engine.heavy_hitters(phi, error_type)
    }

    /// The `k` tracked items with the largest estimates.
    pub fn top_k(&self, k: usize) -> Vec<Row<T>>
    where
        T: Ord,
    {
        self.engine.top_k(k)
    }

    /// Merges `other` into `self` (Algorithm 5, randomized replay order —
    /// see [`SketchEngine::merge`] for the §3.2 rationale).
    pub fn merge(&mut self, other: &ItemsSketch<T>) {
        self.engine.merge(&other.engine);
    }

    /// Scales every counter to `⌊c · num / den⌋` in place, dropping the
    /// counters that reach zero — the time-fading hook; see
    /// [`SketchEngine::scale_counters`] for the bounds accounting.
    ///
    /// # Panics
    /// Panics if `den` is zero or `num > den`.
    pub fn scale_counters(&mut self, num: u64, den: u64) {
        self.engine.scale_counters(num, den);
    }

    /// Test/debug aid: verifies the internal table invariants.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.engine.check_invariants();
    }
}

/// Streaming ingestion through the batch path — the generic-item
/// counterpart of `FreqSketch`'s `Extend` impl.
impl<T: SketchKey> Extend<(T, u64)> for ItemsSketch<T> {
    fn extend<I: IntoIterator<Item = (T, u64)>>(&mut self, iter: I) {
        self.engine.extend(iter);
    }
}

/// Wire format for item sketches (versioned, little-endian): the header
/// mirrors [`crate::codec`]'s `u64` format with magic `"SFQI"`, followed
/// by `(item, count)` entries where items use their [`ItemCodec`]
/// encoding. Round-tripped sketches behave bit-identically, including
/// future purges (the sampler state travels along).
impl<T: SketchKey + ItemCodec> ItemsSketch<T> {
    /// Serializes the sketch into a fresh byte vector.
    pub fn serialize_to_bytes(&self) -> Vec<u8> {
        use crate::codec::{policy_params, policy_tag};
        let engine = &self.engine;
        let mut out = Vec::new();
        out.extend_from_slice(b"SFQI");
        out.push(1u8); // version
        out.push(policy_tag(&engine.policy));
        // flags (bit 0: stream weight saturated; rest reserved, zero)
        out.extend_from_slice(&[u8::from(engine.weight_saturated), 0]);
        (engine.max_counters as u64).encode(&mut out);
        engine.offset.encode(&mut out);
        engine.stream_weight.encode(&mut out);
        engine.num_updates.encode(&mut out);
        engine.num_purges.encode(&mut out);
        let (a, b) = policy_params(&engine.policy);
        a.encode(&mut out);
        b.encode(&mut out);
        for word in engine.rng.state() {
            word.encode(&mut out);
        }
        (engine.table.num_active() as u32).encode(&mut out);
        for (item, count) in engine.table.iter() {
            item.encode(&mut out);
            (count as u64).encode(&mut out);
        }
        out
    }

    /// Reconstructs a sketch from [`Self::serialize_to_bytes`] output.
    ///
    /// # Errors
    /// Returns [`Error::Corrupt`], [`Error::UnsupportedVersion`] or
    /// [`Error::Truncated`] on malformed input; trailing bytes are
    /// rejected.
    pub fn deserialize_from_bytes(bytes: &[u8]) -> Result<Self, Error> {
        use crate::codec::policy_from_wire;
        let mut buf = bytes;
        let magic: [u8; 4] = {
            let mut m = [0u8; 4];
            for slot in &mut m {
                *slot = u8::decode(&mut buf)?;
            }
            m
        };
        if &magic != b"SFQI" {
            return Err(Error::Corrupt(format!("bad magic {magic:02x?}")));
        }
        let version = u8::decode(&mut buf)?;
        if version != 1 {
            return Err(Error::UnsupportedVersion(version));
        }
        let tag = u8::decode(&mut buf)?;
        let flags = u16::decode(&mut buf)?;
        if flags > 1 {
            return Err(Error::Corrupt("nonzero reserved flag bits".into()));
        }
        let max_counters = usize::try_from(u64::decode(&mut buf)?)
            .map_err(|_| Error::Corrupt("max_counters exceeds usize".into()))?;
        let offset = u64::decode(&mut buf)?;
        let stream_weight = u64::decode(&mut buf)?;
        let num_updates = u64::decode(&mut buf)?;
        let num_purges = u64::decode(&mut buf)?;
        let a = u64::decode(&mut buf)?;
        let b = u64::decode(&mut buf)?;
        let policy = policy_from_wire(tag, a, b)?;
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = u64::decode(&mut buf)?;
        }
        if state == [0; 4] {
            return Err(Error::Corrupt("invalid all-zero sampler state".into()));
        }
        let num_active = u32::decode(&mut buf)? as usize;
        if num_active > max_counters {
            return Err(Error::Corrupt(format!(
                "{num_active} counters exceed capacity {max_counters}"
            )));
        }
        let mut sketch = ItemsSketch::try_new(max_counters, policy, 0)?;
        for _ in 0..num_active {
            let item = T::decode(&mut buf)?;
            let count = u64::decode(&mut buf)?;
            if count == 0 || count > i64::MAX as u64 {
                return Err(Error::Corrupt(format!(
                    "counter value {count} out of range"
                )));
            }
            // Growth-only insertion: num_active ≤ max_counters guarantees
            // no purge can trigger; duplicates are rejected.
            sketch.engine.feed_for_decode(item, count as i64)?;
        }
        if !buf.is_empty() {
            return Err(Error::Corrupt("trailing bytes after counters".into()));
        }
        sketch.engine.offset = offset;
        sketch.engine.stream_weight = stream_weight;
        sketch.engine.weight_saturated = flags & 1 != 0;
        sketch.engine.num_updates = num_updates;
        sketch.engine.num_purges = num_purges;
        sketch.engine.rng = Xoshiro256StarStar::from_state(state);
        // Final gate: whole-engine invariants (capacity, mass
        // conservation) must hold for the decoded state.
        sketch.engine.audit().map_err(Error::Corrupt)?;
        Ok(sketch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn exact_below_capacity() {
        let mut s: ItemsSketch<&'static str> = ItemsSketch::with_max_counters(16);
        s.update("alpha", 10);
        s.update("beta", 5);
        s.update("alpha", 7);
        assert_eq!(s.estimate(&"alpha"), 17);
        assert_eq!(s.estimate(&"beta"), 5);
        assert_eq!(s.estimate(&"gamma"), 0);
        assert_eq!(s.maximum_error(), 0);
        assert_eq!(s.stream_weight(), 22);
    }

    #[test]
    fn string_items_bounds_bracket_truth() {
        let mut s: ItemsSketch<String> = ItemsSketch::with_max_counters(24);
        let mut truth: HashMap<String, u64> = HashMap::new();
        for i in 0..30_000u64 {
            let item = format!("key-{}", i % 200);
            let w = i % 11 + 1;
            s.update(item.clone(), w);
            *truth.entry(item).or_insert(0) += w;
        }
        assert!(s.num_purges() > 0, "test must exercise purging");
        for (item, &f) in &truth {
            assert!(s.lower_bound(item) <= f, "lb violated for {item}");
            assert!(s.upper_bound(item) >= f, "ub violated for {item}");
        }
    }

    #[test]
    fn heavy_hitters_on_words() {
        let mut s: ItemsSketch<&'static str> = ItemsSketch::with_max_counters(8);
        for _ in 0..1000 {
            s.update("hot", 10);
            s.update("warm", 3);
        }
        for i in 0..500u64 {
            // unique cold words, boxed into leaked strs via a small set
            s.update(["c0", "c1", "c2", "c3", "c4"][(i % 5) as usize], 1);
        }
        let hh = s.heavy_hitters(0.5, ErrorType::NoFalsePositives);
        assert_eq!(hh.len(), 1);
        assert_eq!(hh[0].item, "hot");
        let all = s.heavy_hitters(0.1, ErrorType::NoFalseNegatives);
        assert!(all.iter().any(|r| r.item == "warm"));
    }

    #[test]
    fn update_batch_matches_scalar_updates() {
        let stream: Vec<(String, u64)> = (0..20_000u64)
            .map(|i| (format!("key-{}", (i * 2_654_435_761) % 300), i % 13 + 1))
            .collect();
        let mut scalar: ItemsSketch<String> = ItemsSketch::with_max_counters(48);
        for (item, w) in &stream {
            scalar.update(item.clone(), *w);
        }
        let mut batched: ItemsSketch<String> = ItemsSketch::with_max_counters(48);
        batched.update_batch(&stream);
        assert!(scalar.num_purges() > 0, "test must exercise purging");
        assert_eq!(batched.serialize_to_bytes(), scalar.serialize_to_bytes());
    }

    #[test]
    fn extend_matches_update_batch() {
        let stream: Vec<(String, u64)> = (0..8_000u64)
            .map(|i| (format!("w{}", i % 120), i % 7 + 1))
            .collect();
        let mut a: ItemsSketch<String> = ItemsSketch::with_max_counters(32);
        a.update_batch(&stream);
        let mut b: ItemsSketch<String> = ItemsSketch::with_max_counters(32);
        b.extend(stream.iter().cloned());
        assert_eq!(a.serialize_to_bytes(), b.serialize_to_bytes());
    }

    #[test]
    fn builder_surface_matches_freq_sketch() {
        // API parity: policy / seed / grow_from_small all configurable,
        // and the configuration is observable.
        let s: ItemsSketch<String> = ItemsSketch::builder(64)
            .policy(PurgePolicy::smin())
            .seed(42)
            .grow_from_small(false)
            .build()
            .unwrap();
        assert_eq!(s.policy(), PurgePolicy::smin());
        assert_eq!(s.seed(), 42);
        // Preallocated: the table is already at its maximum size, so the
        // memory footprint matches the design formula for the slot width.
        let per_slot = core::mem::size_of::<String>() + 8 + 2;
        assert_eq!(s.memory_bytes(), 128 * per_slot, "4k/3 of 64 → 128 slots");
    }

    #[test]
    fn grow_from_small_matches_preallocated_estimates() {
        let stream: Vec<(u32, u64)> = (0..20_000u64)
            .map(|i| ((i % 500) as u32, i % 13 + 1))
            .collect();
        let mut grown: ItemsSketch<u32> = ItemsSketch::builder(64).seed(7).build().unwrap();
        let mut fixed: ItemsSketch<u32> = ItemsSketch::builder(64)
            .seed(7)
            .grow_from_small(false)
            .build()
            .unwrap();
        for &(item, w) in &stream {
            grown.update(item, w);
            fixed.update(item, w);
        }
        for item in 0..500u32 {
            assert_eq!(grown.estimate(&item), fixed.estimate(&item), "item {item}");
        }
        assert_eq!(grown.maximum_error(), fixed.maximum_error());
    }

    #[test]
    fn stream_weight_saturates_and_roundtrips() {
        let mut s: ItemsSketch<u32> = ItemsSketch::with_max_counters(8);
        s.update(1, i64::MAX as u64);
        s.update(2, i64::MAX as u64);
        s.update(3, 9);
        assert!(s.stream_weight_saturated());
        assert_eq!(s.stream_weight(), u64::MAX);
        let restored = ItemsSketch::<u32>::deserialize_from_bytes(&s.serialize_to_bytes()).unwrap();
        assert!(restored.stream_weight_saturated());
        assert_eq!(restored.stream_weight(), u64::MAX);
    }

    #[test]
    fn tuple_items() {
        let mut s: ItemsSketch<(u32, u32)> = ItemsSketch::with_max_counters(16);
        s.update((1, 2), 100);
        s.update((2, 1), 1);
        assert_eq!(s.estimate(&(1, 2)), 100);
        assert_eq!(s.estimate(&(2, 1)), 1);
    }

    #[test]
    fn merge_string_sketches() {
        let mut a: ItemsSketch<String> = ItemsSketch::with_max_counters(32);
        let mut b: ItemsSketch<String> = ItemsSketch::with_max_counters(32);
        let mut truth: HashMap<String, u64> = HashMap::new();
        for i in 0..10_000u64 {
            let item = format!("w{}", i % 150);
            let w = i % 5 + 1;
            if i % 2 == 0 {
                a.update(item.clone(), w);
            } else {
                b.update(item.clone(), w);
            }
            *truth.entry(item).or_insert(0) += w;
        }
        let n = a.stream_weight() + b.stream_weight();
        a.merge(&b);
        assert_eq!(a.stream_weight(), n);
        for (item, &f) in &truth {
            assert!(a.lower_bound(item) <= f);
            assert!(a.upper_bound(item) >= f);
        }
    }

    #[test]
    fn growth_preserves_items() {
        let mut s: ItemsSketch<String> = ItemsSketch::with_max_counters(500);
        for i in 0..400u64 {
            s.update(format!("item{i}"), i + 1);
        }
        assert_eq!(s.maximum_error(), 0);
        for i in (0..400u64).step_by(37) {
            assert_eq!(s.estimate(&format!("item{i}")), i + 1);
        }
    }

    #[test]
    fn purge_policies_work_for_items() {
        for policy in [
            PurgePolicy::smed(),
            PurgePolicy::smin(),
            PurgePolicy::med(),
            PurgePolicy::GlobalMin,
        ] {
            let mut s: ItemsSketch<u32> = ItemsSketch::try_new(16, policy, 7).unwrap();
            for i in 0..5_000u32 {
                s.update(i % 100, 2);
            }
            assert!(s.num_purges() > 0, "{policy:?} never purged");
            // a-priori bound (Lemma 4 form)
            let kstar = policy.effective_kstar_fraction() * 16.0;
            let bound = (s.stream_weight() as f64 / kstar).ceil() as u64;
            assert!(s.maximum_error() <= bound, "{policy:?} exceeded bound");
        }
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(ItemsSketch::<String>::try_new(0, PurgePolicy::smed(), 1).is_err());
    }

    #[test]
    fn codec_roundtrip_string_items() {
        let mut s: ItemsSketch<String> = ItemsSketch::with_max_counters(24);
        for i in 0..10_000u64 {
            s.update(format!("key-{}", i % 200), i % 7 + 1);
        }
        assert!(s.num_purges() > 0);
        let bytes = s.serialize_to_bytes();
        let d = ItemsSketch::<String>::deserialize_from_bytes(&bytes).unwrap();
        assert_eq!(d.maximum_error(), s.maximum_error());
        assert_eq!(d.stream_weight(), s.stream_weight());
        assert_eq!(d.num_counters(), s.num_counters());
        for i in 0..200u64 {
            let key = format!("key-{i}");
            assert_eq!(d.estimate(&key), s.estimate(&key), "{key}");
        }
    }

    #[test]
    fn codec_roundtrip_then_update_is_identical() {
        let mut original: ItemsSketch<u32> = ItemsSketch::with_max_counters(16);
        for i in 0..5_000u32 {
            original.update(i % 100, 3);
        }
        let mut restored =
            ItemsSketch::<u32>::deserialize_from_bytes(&original.serialize_to_bytes()).unwrap();
        for i in 0..5_000u32 {
            original.update(i % 77, 2);
            restored.update(i % 77, 2);
        }
        assert_eq!(original.maximum_error(), restored.maximum_error());
        for i in 0..100u32 {
            assert_eq!(original.estimate(&i), restored.estimate(&i));
        }
    }

    #[test]
    fn codec_rejects_malformed() {
        let mut s: ItemsSketch<String> = ItemsSketch::with_max_counters(8);
        s.update("x".to_string(), 5);
        let bytes = s.serialize_to_bytes();
        // bad magic
        let mut bad = bytes.clone();
        bad[0] = b'Z';
        assert!(ItemsSketch::<String>::deserialize_from_bytes(&bad).is_err());
        // truncations
        for cut in [0, 4, 10, bytes.len() - 1] {
            assert!(
                ItemsSketch::<String>::deserialize_from_bytes(&bytes[..cut]).is_err(),
                "prefix {cut} accepted"
            );
        }
        // trailing garbage
        let mut long = bytes.clone();
        long.push(7);
        assert!(ItemsSketch::<String>::deserialize_from_bytes(&long).is_err());
    }
}
