//! [`ItemsSketch`]: the frequent-items sketch for arbitrary item types.
//!
//! The `u64`-keyed [`crate::FreqSketch`] is the fast path for numeric
//! identifiers (IP addresses, user ids, …). Real deployments also sketch
//! strings, tuples, and composite keys; the DataSketches library the paper
//! ships in provides an `ItemsSketch<T>` for exactly this reason, and so do
//! we.
//!
//! Items are stored **by value** in the counter table (not by 64-bit hash),
//! so the certified bounds hold unconditionally — no birthday-bound
//! caveats. The cost is `Option<T>` slots instead of the paper's packed
//! 8-byte keys; use [`crate::FreqSketch`] when items fit in a `u64` and the
//! §2.3.3 memory formula matters.
//!
//! The update, purge, estimate, and merge logic is identical to
//! [`crate::FreqSketch`] — same policies, same offset bookkeeping, same
//! guarantees (Theorems 3–5).
//!
//! # Example
//!
//! ```
//! use streamfreq_core::{ItemsSketch, ErrorType};
//!
//! let mut sketch: ItemsSketch<String> = ItemsSketch::with_max_counters(32);
//! for word in ["the", "quick", "the", "fox", "the"] {
//!     sketch.update(word.to_string(), 1);
//! }
//! assert_eq!(sketch.estimate(&"the".to_string()), 3);
//! let top = sketch.frequent_items(ErrorType::NoFalsePositives);
//! assert_eq!(top[0].item, "the");
//! ```

use core::hash::Hash;

use crate::error::Error;
use crate::hashing::hash64_of;
use crate::item_codec::ItemCodec;
use crate::purge::{CounterValues, PurgePolicy};
use crate::result::{sort_rows_descending, ErrorType, Row};
use crate::rng::Xoshiro256StarStar;
use crate::sketch::DEFAULT_SEED;

/// Item types storable in an [`ItemsSketch`]: hashable, comparable, and
/// clonable (cloned only when reporting rows and when tables grow).
pub trait SketchItem: Hash + Eq + Clone {}
impl<T: Hash + Eq + Clone> SketchItem for T {}

const LG_MIN_TABLE: u32 = 3;

/// Linear-probing counter table storing items by value. Same layout and
/// deletion discipline as [`crate::table::LpTable`]; see that module for
/// the algorithmic commentary.
#[derive(Clone, Debug)]
struct ItemTable<T> {
    keys: Vec<Option<T>>,
    values: Vec<i64>,
    states: Vec<u16>,
    mask: usize,
    num_active: usize,
}

impl<T: SketchItem> ItemTable<T> {
    fn with_lg_len(lg_len: u32) -> Self {
        assert!((1..=31).contains(&lg_len));
        let len = 1usize << lg_len;
        Self {
            keys: (0..len).map(|_| None).collect(),
            values: vec![0; len],
            states: vec![0; len],
            mask: len - 1,
            num_active: 0,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.values.len()
    }

    #[inline]
    fn home(&self, item: &T) -> usize {
        (hash64_of(item) as usize) & self.mask
    }

    fn get(&self, item: &T) -> Option<i64> {
        let mut i = self.home(item);
        loop {
            if self.states[i] == 0 {
                return None;
            }
            if self.keys[i].as_ref() == Some(item) {
                return Some(self.values[i]);
            }
            i = (i + 1) & self.mask;
        }
    }

    fn adjust_or_insert(&mut self, item: T, delta: i64) {
        assert!(self.num_active < self.len(), "ItemTable overflow");
        let mut i = self.home(&item);
        let mut dist: usize = 0;
        loop {
            if self.states[i] == 0 {
                assert!(dist < u16::MAX as usize, "probe distance exceeds state range");
                self.keys[i] = Some(item);
                self.values[i] = delta;
                self.states[i] = (dist + 1) as u16;
                self.num_active += 1;
                return;
            }
            if self.keys[i].as_ref() == Some(&item) {
                self.values[i] += delta;
                return;
            }
            i = (i + 1) & self.mask;
            dist += 1;
        }
    }

    fn adjust_all(&mut self, delta: i64) {
        for i in 0..self.len() {
            if self.states[i] != 0 {
                self.values[i] += delta;
            }
        }
    }

    fn retain_positive(&mut self) -> usize {
        let len = self.len();
        let mut removed = 0usize;
        let mut i = 0usize;
        while i < len {
            if self.states[i] != 0 && self.values[i] <= 0 {
                self.delete_slot(i);
                removed += 1;
            } else {
                i += 1;
            }
        }
        removed
    }

    fn delete_slot(&mut self, mut hole: usize) {
        debug_assert!(self.states[hole] != 0);
        self.num_active -= 1;
        let mask = self.mask;
        let mut j = hole;
        loop {
            self.states[hole] = 0;
            self.keys[hole] = None;
            loop {
                j = (j + 1) & mask;
                if self.states[j] == 0 {
                    return;
                }
                let dist = (self.states[j] - 1) as usize;
                let home = j.wrapping_sub(dist) & mask;
                let new_dist = hole.wrapping_sub(home) & mask;
                if new_dist < dist {
                    self.keys[hole] = self.keys[j].take();
                    self.values[hole] = self.values[j];
                    self.states[hole] = (new_dist + 1) as u16;
                    hole = j;
                    break;
                }
            }
        }
    }

    fn iter(&self) -> impl Iterator<Item = (&T, i64)> + '_ {
        (0..self.len()).filter_map(move |i| {
            if self.states[i] != 0 {
                Some((self.keys[i].as_ref().expect("occupied slot has key"), self.values[i]))
            } else {
                None
            }
        })
    }

}

impl<T: SketchItem> CounterValues for ItemTable<T> {
    fn is_empty(&self) -> bool {
        self.num_active == 0
    }

    fn sample_values(
        &self,
        rng: &mut Xoshiro256StarStar,
        sample_size: usize,
        out: &mut Vec<i64>,
    ) {
        if self.num_active <= sample_size {
            self.values_into(out);
            return;
        }
        out.clear();
        out.reserve(sample_size);
        let len = self.len() as u64;
        while out.len() < sample_size {
            let i = rng.next_below(len) as usize;
            if self.states[i] != 0 {
                out.push(self.values[i]);
            }
        }
    }

    fn values_into(&self, out: &mut Vec<i64>) {
        out.clear();
        out.reserve(self.num_active);
        for i in 0..self.len() {
            if self.states[i] != 0 {
                out.push(self.values[i]);
            }
        }
    }

    fn min_value(&self) -> Option<i64> {
        let mut min = None;
        for i in 0..self.len() {
            if self.states[i] != 0 {
                min = Some(match min {
                    None => self.values[i],
                    Some(m) if self.values[i] < m => self.values[i],
                    Some(m) => m,
                });
            }
        }
        min
    }
}

/// A weighted frequent-items sketch over arbitrary item types.
///
/// See the [module docs](self) and [`crate::FreqSketch`] (whose API this
/// mirrors, with `&T` queries and `Row<T>` results).
#[derive(Clone, Debug)]
pub struct ItemsSketch<T: SketchItem> {
    table: ItemTable<T>,
    lg_cur: u32,
    lg_max: u32,
    max_counters: usize,
    policy: PurgePolicy,
    rng: Xoshiro256StarStar,
    offset: u64,
    stream_weight: u64,
    num_updates: u64,
    num_purges: u64,
    scratch: Vec<i64>,
}

impl<T: SketchItem> ItemsSketch<T> {
    /// Creates a SMED sketch maintaining at most `max_counters` counters.
    ///
    /// # Panics
    /// Panics if `max_counters` is zero or needs a table beyond 2³¹ slots.
    pub fn with_max_counters(max_counters: usize) -> Self {
        Self::try_new(max_counters, PurgePolicy::default(), DEFAULT_SEED)
            .expect("invalid max_counters")
    }

    /// Creates a sketch with an explicit policy and seed.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] for a zero capacity, an oversized
    /// capacity, or invalid policy parameters.
    pub fn try_new(max_counters: usize, policy: PurgePolicy, seed: u64) -> Result<Self, Error> {
        if max_counters == 0 {
            return Err(Error::InvalidConfig("max_counters must be positive".into()));
        }
        policy.validate().map_err(Error::InvalidConfig)?;
        let min_len = (max_counters * 4).div_ceil(3);
        let lg_max = min_len
            .next_power_of_two()
            .trailing_zeros()
            .max(LG_MIN_TABLE);
        if lg_max > 31 {
            return Err(Error::InvalidConfig(format!(
                "max_counters {max_counters} needs a table larger than 2^31 slots"
            )));
        }
        let lg_cur = LG_MIN_TABLE.min(lg_max);
        Ok(Self {
            table: ItemTable::with_lg_len(lg_cur),
            lg_cur,
            lg_max,
            max_counters,
            policy,
            rng: Xoshiro256StarStar::from_seed(seed),
            offset: 0,
            stream_weight: 0,
            num_updates: 0,
            num_purges: 0,
            scratch: Vec::new(),
        })
    }

    /// Number of counters currently assigned.
    pub fn num_counters(&self) -> usize {
        self.table.num_active
    }

    /// Maximum number of counters maintained (the paper's `k`).
    pub fn max_counters(&self) -> usize {
        self.max_counters
    }

    /// True if no updates have been processed.
    pub fn is_empty(&self) -> bool {
        self.num_updates == 0
    }

    /// Total weighted stream length processed (including merges).
    pub fn stream_weight(&self) -> u64 {
        self.stream_weight
    }

    /// Number of update operations processed.
    pub fn num_updates(&self) -> u64 {
        self.num_updates
    }

    /// Number of purge operations performed.
    pub fn num_purges(&self) -> u64 {
        self.num_purges
    }

    /// The purge policy in effect.
    pub fn policy(&self) -> PurgePolicy {
        self.policy
    }

    /// A-posteriori maximum estimation error (the cumulative decrement).
    pub fn maximum_error(&self) -> u64 {
        self.offset
    }

    fn capacity_now(&self) -> usize {
        if self.lg_cur == self.lg_max {
            self.max_counters
        } else {
            (self.table.len() * 3) / 4
        }
    }

    /// Processes the weighted update `(item, weight)` in amortized O(1).
    /// Zero weights are ignored.
    ///
    /// # Panics
    /// Panics if `weight` exceeds `i64::MAX` or total weight overflows.
    pub fn update(&mut self, item: T, weight: u64) {
        if weight == 0 {
            return;
        }
        assert!(
            weight <= i64::MAX as u64,
            "update weight {weight} exceeds supported range"
        );
        self.stream_weight = self
            .stream_weight
            .checked_add(weight)
            .expect("total stream weight overflowed u64");
        self.num_updates += 1;
        self.feed(item, weight as i64);
    }

    /// Processes a unit update.
    pub fn update_one(&mut self, item: T) {
        self.update(item, 1);
    }

    fn feed(&mut self, item: T, weight: i64) {
        self.table.adjust_or_insert(item, weight);
        while self.table.num_active > self.capacity_now() {
            if self.lg_cur < self.lg_max {
                self.grow();
            } else {
                self.purge();
            }
        }
    }

    fn grow(&mut self) {
        let new_lg = self.lg_cur + 1;
        let mut bigger = ItemTable::with_lg_len(new_lg);
        let old = core::mem::replace(&mut self.table, ItemTable::with_lg_len(1));
        for (i, slot) in old.keys.into_iter().enumerate() {
            if let Some(item) = slot {
                if old.states[i] != 0 {
                    bigger.adjust_or_insert(item, old.values[i]);
                }
            }
        }
        self.table = bigger;
        self.lg_cur = new_lg;
    }

    fn purge(&mut self) {
        let cstar = self
            .policy
            .compute_cstar(&self.table, &mut self.rng, &mut self.scratch);
        debug_assert!(cstar > 0);
        self.table.adjust_all(-cstar);
        self.table.retain_positive();
        self.offset += cstar as u64;
        self.num_purges += 1;
    }

    /// Estimate of the item's weighted frequency (§2.3.1 offset variant).
    pub fn estimate(&self, item: &T) -> u64 {
        match self.table.get(item) {
            Some(c) => c as u64 + self.offset,
            None => 0,
        }
    }

    /// Certified lower bound on the item's frequency.
    pub fn lower_bound(&self, item: &T) -> u64 {
        self.table.get(item).map_or(0, |c| c as u64)
    }

    /// Certified upper bound on the item's frequency.
    pub fn upper_bound(&self, item: &T) -> u64 {
        self.table
            .get(item)
            .map_or(self.offset, |c| c as u64 + self.offset)
    }

    /// Iterates over tracked `(item, lower_bound)` pairs.
    pub fn counters(&self) -> impl Iterator<Item = (&T, u64)> + '_ {
        self.table.iter().map(|(item, c)| (item, c as u64))
    }

    fn row_for(&self, item: &T, count: i64) -> Row<T> {
        Row {
            item: item.clone(),
            estimate: count as u64 + self.offset,
            lower_bound: count as u64,
            upper_bound: count as u64 + self.offset,
        }
    }

    /// Items whose frequency may exceed `threshold` under the chosen
    /// contract, sorted by descending estimate. A threshold below
    /// [`Self::maximum_error`] is raised to it — see
    /// [`crate::FreqSketch::frequent_items_with_threshold`].
    pub fn frequent_items_with_threshold(
        &self,
        threshold: u64,
        error_type: ErrorType,
    ) -> Vec<Row<T>>
    where
        T: Ord,
    {
        let threshold = threshold.max(self.maximum_error());
        let mut rows: Vec<Row<T>> = self
            .table
            .iter()
            .filter_map(|(item, count)| {
                let row = self.row_for(item, count);
                let include = match error_type {
                    ErrorType::NoFalsePositives => row.lower_bound > threshold,
                    ErrorType::NoFalseNegatives => row.upper_bound > threshold,
                };
                include.then_some(row)
            })
            .collect();
        sort_rows_descending(&mut rows);
        rows
    }

    /// [`Self::frequent_items_with_threshold`] at the sketch's own
    /// `maximum_error`.
    pub fn frequent_items(&self, error_type: ErrorType) -> Vec<Row<T>>
    where
        T: Ord,
    {
        self.frequent_items_with_threshold(self.maximum_error(), error_type)
    }

    /// (φ, ε)-heavy hitters: items whose frequency may exceed `phi · N`.
    ///
    /// # Panics
    /// Panics if `phi` is outside `[0, 1]`.
    pub fn heavy_hitters(&self, phi: f64, error_type: ErrorType) -> Vec<Row<T>>
    where
        T: Ord,
    {
        assert!((0.0..=1.0).contains(&phi), "phi {phi} outside [0, 1]");
        let threshold = (phi * self.stream_weight as f64) as u64;
        self.frequent_items_with_threshold(threshold, error_type)
    }

    /// Merges `other` into `self` (Algorithm 5, randomized replay order —
    /// see [`crate::FreqSketch::merge`] for the §3.2 rationale).
    pub fn merge(&mut self, other: &ItemsSketch<T>) {
        let mut pairs: Vec<(&T, i64)> = other.table.iter().collect();
        for i in (1..pairs.len()).rev() {
            let j = self.rng.next_below(i as u64 + 1) as usize;
            pairs.swap(i, j);
        }
        for (item, count) in pairs {
            self.feed(item.clone(), count);
        }
        self.offset += other.offset;
        self.stream_weight = self
            .stream_weight
            .checked_add(other.stream_weight)
            .expect("merged stream weight overflowed u64");
        self.num_updates += other.num_updates;
    }
}

/// Wire format for item sketches (versioned, little-endian): the header
/// mirrors [`crate::codec`]'s `u64` format with magic `"SFQI"`, followed
/// by `(item, count)` entries where items use their [`ItemCodec`]
/// encoding. Round-tripped sketches behave bit-identically, including
/// future purges (the sampler state travels along).
impl<T: SketchItem + ItemCodec> ItemsSketch<T> {
    /// Serializes the sketch into a fresh byte vector.
    pub fn serialize_to_bytes(&self) -> Vec<u8> {
        use crate::codec::{policy_params, policy_tag};
        let mut out = Vec::new();
        out.extend_from_slice(b"SFQI");
        out.push(1u8); // version
        out.push(policy_tag(&self.policy));
        out.extend_from_slice(&[0u8, 0]); // reserved
        (self.max_counters as u64).encode(&mut out);
        self.offset.encode(&mut out);
        self.stream_weight.encode(&mut out);
        self.num_updates.encode(&mut out);
        self.num_purges.encode(&mut out);
        let (a, b) = policy_params(&self.policy);
        a.encode(&mut out);
        b.encode(&mut out);
        for word in self.rng.state() {
            word.encode(&mut out);
        }
        (self.table.num_active as u32).encode(&mut out);
        for (item, count) in self.table.iter() {
            item.encode(&mut out);
            (count as u64).encode(&mut out);
        }
        out
    }

    /// Reconstructs a sketch from [`Self::serialize_to_bytes`] output.
    ///
    /// # Errors
    /// Returns [`Error::Corrupt`], [`Error::UnsupportedVersion`] or
    /// [`Error::Truncated`] on malformed input; trailing bytes are
    /// rejected.
    pub fn deserialize_from_bytes(bytes: &[u8]) -> Result<Self, Error> {
        use crate::codec::policy_from_wire;
        let mut buf = bytes;
        let magic: [u8; 4] = {
            let mut m = [0u8; 4];
            for slot in &mut m {
                *slot = u8::decode(&mut buf)?;
            }
            m
        };
        if &magic != b"SFQI" {
            return Err(Error::Corrupt(format!("bad magic {magic:02x?}")));
        }
        let version = u8::decode(&mut buf)?;
        if version != 1 {
            return Err(Error::UnsupportedVersion(version));
        }
        let tag = u8::decode(&mut buf)?;
        let reserved = u16::decode(&mut buf)?;
        if reserved != 0 {
            return Err(Error::Corrupt("nonzero reserved field".into()));
        }
        let max_counters = usize::try_from(u64::decode(&mut buf)?)
            .map_err(|_| Error::Corrupt("max_counters exceeds usize".into()))?;
        let offset = u64::decode(&mut buf)?;
        let stream_weight = u64::decode(&mut buf)?;
        let num_updates = u64::decode(&mut buf)?;
        let num_purges = u64::decode(&mut buf)?;
        let a = u64::decode(&mut buf)?;
        let b = u64::decode(&mut buf)?;
        let policy = policy_from_wire(tag, a, b)?;
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = u64::decode(&mut buf)?;
        }
        if state == [0; 4] {
            return Err(Error::Corrupt("invalid all-zero sampler state".into()));
        }
        let num_active = u32::decode(&mut buf)? as usize;
        if num_active > max_counters {
            return Err(Error::Corrupt(format!(
                "{num_active} counters exceed capacity {max_counters}"
            )));
        }
        let mut sketch = ItemsSketch::try_new(max_counters, policy, 0)?;
        for _ in 0..num_active {
            let item = T::decode(&mut buf)?;
            let count = u64::decode(&mut buf)?;
            if count == 0 || count > i64::MAX as u64 {
                return Err(Error::Corrupt(format!("counter value {count} out of range")));
            }
            if sketch.table.get(&item).is_some() {
                return Err(Error::Corrupt("duplicate item in encoding".into()));
            }
            // Growth-only insertion: num_active ≤ max_counters guarantees
            // no purge can trigger.
            sketch.feed(item, count as i64);
        }
        if !buf.is_empty() {
            return Err(Error::Corrupt("trailing bytes after counters".into()));
        }
        sketch.offset = offset;
        sketch.stream_weight = stream_weight;
        sketch.num_updates = num_updates;
        sketch.num_purges = num_purges;
        sketch.rng = Xoshiro256StarStar::from_state(state);
        Ok(sketch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn exact_below_capacity() {
        let mut s: ItemsSketch<&'static str> = ItemsSketch::with_max_counters(16);
        s.update("alpha", 10);
        s.update("beta", 5);
        s.update("alpha", 7);
        assert_eq!(s.estimate(&"alpha"), 17);
        assert_eq!(s.estimate(&"beta"), 5);
        assert_eq!(s.estimate(&"gamma"), 0);
        assert_eq!(s.maximum_error(), 0);
        assert_eq!(s.stream_weight(), 22);
    }

    #[test]
    fn string_items_bounds_bracket_truth() {
        let mut s: ItemsSketch<String> = ItemsSketch::with_max_counters(24);
        let mut truth: HashMap<String, u64> = HashMap::new();
        for i in 0..30_000u64 {
            let item = format!("key-{}", i % 200);
            let w = i % 11 + 1;
            s.update(item.clone(), w);
            *truth.entry(item).or_insert(0) += w;
        }
        assert!(s.num_purges() > 0, "test must exercise purging");
        for (item, &f) in &truth {
            assert!(s.lower_bound(item) <= f, "lb violated for {item}");
            assert!(s.upper_bound(item) >= f, "ub violated for {item}");
        }
    }

    #[test]
    fn heavy_hitters_on_words() {
        let mut s: ItemsSketch<&'static str> = ItemsSketch::with_max_counters(8);
        for _ in 0..1000 {
            s.update("hot", 10);
            s.update("warm", 3);
        }
        for i in 0..500u64 {
            // unique cold words, boxed into leaked strs via a small set
            s.update(["c0", "c1", "c2", "c3", "c4"][(i % 5) as usize], 1);
        }
        let hh = s.heavy_hitters(0.5, ErrorType::NoFalsePositives);
        assert_eq!(hh.len(), 1);
        assert_eq!(hh[0].item, "hot");
        let all = s.heavy_hitters(0.1, ErrorType::NoFalseNegatives);
        assert!(all.iter().any(|r| r.item == "warm"));
    }

    #[test]
    fn tuple_items() {
        let mut s: ItemsSketch<(u32, u32)> = ItemsSketch::with_max_counters(16);
        s.update((1, 2), 100);
        s.update((2, 1), 1);
        assert_eq!(s.estimate(&(1, 2)), 100);
        assert_eq!(s.estimate(&(2, 1)), 1);
    }

    #[test]
    fn merge_string_sketches() {
        let mut a: ItemsSketch<String> = ItemsSketch::with_max_counters(32);
        let mut b: ItemsSketch<String> = ItemsSketch::with_max_counters(32);
        let mut truth: HashMap<String, u64> = HashMap::new();
        for i in 0..10_000u64 {
            let item = format!("w{}", i % 150);
            let w = i % 5 + 1;
            if i % 2 == 0 {
                a.update(item.clone(), w);
            } else {
                b.update(item.clone(), w);
            }
            *truth.entry(item).or_insert(0) += w;
        }
        let n = a.stream_weight() + b.stream_weight();
        a.merge(&b);
        assert_eq!(a.stream_weight(), n);
        for (item, &f) in &truth {
            assert!(a.lower_bound(item) <= f);
            assert!(a.upper_bound(item) >= f);
        }
    }

    #[test]
    fn growth_preserves_items() {
        let mut s: ItemsSketch<String> = ItemsSketch::with_max_counters(500);
        for i in 0..400u64 {
            s.update(format!("item{i}"), i + 1);
        }
        assert_eq!(s.maximum_error(), 0);
        for i in (0..400u64).step_by(37) {
            assert_eq!(s.estimate(&format!("item{i}")), i + 1);
        }
    }

    #[test]
    fn purge_policies_work_for_items() {
        for policy in [PurgePolicy::smed(), PurgePolicy::smin(), PurgePolicy::med(), PurgePolicy::GlobalMin] {
            let mut s: ItemsSketch<u32> = ItemsSketch::try_new(16, policy, 7).unwrap();
            for i in 0..5_000u32 {
                s.update(i % 100, 2);
            }
            assert!(s.num_purges() > 0, "{policy:?} never purged");
            // a-priori bound (Lemma 4 form)
            let kstar = policy.effective_kstar_fraction() * 16.0;
            let bound = (s.stream_weight() as f64 / kstar).ceil() as u64;
            assert!(s.maximum_error() <= bound, "{policy:?} exceeded bound");
        }
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(ItemsSketch::<String>::try_new(0, PurgePolicy::smed(), 1).is_err());
    }

    #[test]
    fn codec_roundtrip_string_items() {
        let mut s: ItemsSketch<String> = ItemsSketch::with_max_counters(24);
        for i in 0..10_000u64 {
            s.update(format!("key-{}", i % 200), i % 7 + 1);
        }
        assert!(s.num_purges() > 0);
        let bytes = s.serialize_to_bytes();
        let d = ItemsSketch::<String>::deserialize_from_bytes(&bytes).unwrap();
        assert_eq!(d.maximum_error(), s.maximum_error());
        assert_eq!(d.stream_weight(), s.stream_weight());
        assert_eq!(d.num_counters(), s.num_counters());
        for i in 0..200u64 {
            let key = format!("key-{i}");
            assert_eq!(d.estimate(&key), s.estimate(&key), "{key}");
        }
    }

    #[test]
    fn codec_roundtrip_then_update_is_identical() {
        let mut original: ItemsSketch<u32> = ItemsSketch::with_max_counters(16);
        for i in 0..5_000u32 {
            original.update(i % 100, 3);
        }
        let mut restored =
            ItemsSketch::<u32>::deserialize_from_bytes(&original.serialize_to_bytes()).unwrap();
        for i in 0..5_000u32 {
            original.update(i % 77, 2);
            restored.update(i % 77, 2);
        }
        assert_eq!(original.maximum_error(), restored.maximum_error());
        for i in 0..100u32 {
            assert_eq!(original.estimate(&i), restored.estimate(&i));
        }
    }

    #[test]
    fn codec_rejects_malformed() {
        let mut s: ItemsSketch<String> = ItemsSketch::with_max_counters(8);
        s.update("x".to_string(), 5);
        let bytes = s.serialize_to_bytes();
        // bad magic
        let mut bad = bytes.clone();
        bad[0] = b'Z';
        assert!(ItemsSketch::<String>::deserialize_from_bytes(&bad).is_err());
        // truncations
        for cut in [0, 4, 10, bytes.len() - 1] {
            assert!(
                ItemsSketch::<String>::deserialize_from_bytes(&bytes[..cut]).is_err(),
                "prefix {cut} accepted"
            );
        }
        // trailing garbage
        let mut long = bytes.clone();
        long.push(7);
        assert!(ItemsSketch::<String>::deserialize_from_bytes(&long).is_err());
    }
}
