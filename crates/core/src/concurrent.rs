//! [`ConcurrentSketch`]: a long-lived serving layer that ingests from
//! many writer threads while answering queries from immutable merged
//! snapshots — the deployment shape §3 of the paper motivates (summaries
//! that are aggregated *and served* while data keeps arriving).
//!
//! ## Architecture
//!
//! ```text
//!  writer threads            shard workers               queries
//!  ┌─────────┐  bounded mpsc ┌──────────────┐
//!  │ writer 0 │──────────────▶ SketchEngine 0│─┐ probe
//!  │ writer 1 │──────────────▶ SketchEngine 1│─┼──▶ Algorithm-5 merge
//!  │   ...    │──────────────▶     ...       │─┘      │ publish
//!  └─────────┘               └──────────────┘         ▼
//!                                        RwLock<Arc<Snapshot>> ◀─ readers
//! ```
//!
//! * **Shard workers.** One thread per shard owns a [`SketchEngine<K>`]
//!   outright and drains a bounded [`std::sync::mpsc`] channel of item
//!   batches — no locks on the ingest hot path, and the bounded channel
//!   is the backpressure: writers block when a shard's backlog is full.
//! * **Snapshots.** Periodically (or on demand) a probe message visits
//!   every shard channel; each worker replies with a clone of its
//!   engine, and the clones are merged per Algorithm 5 into one
//!   immutable [`Snapshot`] installed by swapping an
//!   `Arc` under an [`std::sync::RwLock`]. Queries clone the `Arc` out
//!   and never touch the shards, so **queries never block ingestion**
//!   and ingestion never blocks queries. The merged engine carries the
//!   same certified Theorem-5 error bounds as
//!   [`crate::ShardedSketch::merged`].
//! * **Bounded staleness.** Channels are FIFO, so a snapshot reflects
//!   *every* batch whose enqueue completed before the probe was sent;
//!   what it can miss is bounded by the channel capacity plus one
//!   writer-side buffer per shard. With a periodic publisher the served
//!   view lags live ingestion by at most the publish interval plus the
//!   time to drain that bounded backlog.
//! * **Graceful shutdown.** [`ConcurrentSketch::drain`] stops the
//!   publisher, closes the channels, joins every worker (each returns
//!   its engine after draining its queue), publishes a final sealed
//!   snapshot, and exposes the per-shard engines for inspection.
//!
//! ## Determinism
//!
//! The deterministic entry point is
//! [`ConcurrentSketch::ingest_slice_parallel`]: writer `w` owns a
//! disjoint contiguous group of shards and scans the whole input slice,
//! claiming the items that route to its group — exactly
//! [`crate::ShardedSketch::ingest_parallel`]'s partitioning, decoupled
//! from the shard workers by the channels. Every shard therefore
//! receives its items in stream order through exactly one channel, so
//! the **drained final state is byte-identical for every writer count**,
//! and equal to a sequential [`crate::ShardedSketch::update_batch`] run
//! of the same bank configuration (pinned by the differential tests in
//! `tests/concurrent.rs`). Free-form [`ConcurrentWriter`] handles make
//! no cross-writer ordering promise — two writers racing the same shard
//! interleave arbitrarily — but the certified per-item bounds hold
//! regardless, because they hold for any arrival order.
//!
//! # Example
//!
//! ```
//! use streamfreq_core::ConcurrentSketch;
//!
//! let sketch: ConcurrentSketch<u64> = ConcurrentSketch::builder(4, 256).build().unwrap();
//! let stream: Vec<(u64, u64)> = (0..50_000).map(|i| (i % 1000, 1)).collect();
//! sketch.ingest_slice_parallel(&stream, 2);
//! sketch.publish_now();
//! let snap = sketch.snapshot();
//! assert!(snap.stream_weight() <= 50_000);
//! let mut sketch = sketch;
//! sketch.drain();
//! assert_eq!(sketch.snapshot().stream_weight(), 50_000);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::engine::{SketchEngine, SketchEngineBuilder, SketchKey, DEFAULT_SEED};
use crate::error::Error;
use crate::purge::PurgePolicy;
use crate::result::{ErrorType, Row};
use crate::sharded::shard_of;

/// Items buffered per shard on the writer side before a batch message is
/// sent: the same amortization constant as the sharded ingest path.
const WRITER_BUF: usize = 4096;

/// How often the periodic publisher re-checks the stop flag while
/// waiting out the publish interval.
const PUBLISHER_TICK: Duration = Duration::from_millis(2);

/// A message on a shard worker's channel.
enum Msg<K: SketchKey> {
    /// A batch of weighted updates, all routed to this shard.
    Batch(Vec<(K, u64)>),
    /// Snapshot probe: reply with a clone of the shard engine. FIFO
    /// ordering makes the reply reflect every batch enqueued earlier.
    Probe(SyncSender<SketchEngine<K>>),
}

/// An immutable point-in-time merged view of a [`ConcurrentSketch`],
/// produced by an Algorithm-5 merge of every shard and served lock-free
/// behind an `Arc`. All the usual queries are available and answer with
/// the same certified bounds as [`crate::ShardedSketch::merged`]
/// (Theorem 5: shard offsets add).
#[derive(Clone, Debug)]
pub struct Snapshot<K: SketchKey> {
    engine: SketchEngine<K>,
    epoch: u64,
    sealed: bool,
}

impl<K: SketchKey> Snapshot<K> {
    /// The snapshot's publish epoch: 0 for the initial empty snapshot,
    /// then strictly increasing with each publish.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True for the final snapshot published by
    /// [`ConcurrentSketch::drain`]: ingestion has stopped and this view
    /// is complete, not merely bounded-stale.
    #[inline]
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// The merged engine backing this snapshot.
    #[inline]
    pub fn engine(&self) -> &SketchEngine<K> {
        &self.engine
    }

    /// Estimate of the item's weighted frequency as of this snapshot.
    #[inline]
    pub fn estimate(&self, item: &K) -> u64 {
        self.engine.estimate(item)
    }

    /// Certified lower bound on the item's frequency in the snapshotted
    /// prefix of the stream.
    #[inline]
    pub fn lower_bound(&self, item: &K) -> u64 {
        self.engine.lower_bound(item)
    }

    /// Certified upper bound on the item's frequency in the snapshotted
    /// prefix of the stream.
    #[inline]
    pub fn upper_bound(&self, item: &K) -> u64 {
        self.engine.upper_bound(item)
    }

    /// Total weighted stream length the snapshot covers.
    #[inline]
    pub fn stream_weight(&self) -> u64 {
        self.engine.stream_weight()
    }

    /// Maximum estimation error of the merged view (Theorem 5).
    #[inline]
    pub fn maximum_error(&self) -> u64 {
        self.engine.maximum_error()
    }

    /// Counters assigned in the merged view.
    #[inline]
    pub fn num_counters(&self) -> usize {
        self.engine.num_counters()
    }

    /// The `k` largest-estimate rows of the snapshot.
    pub fn top_k(&self, k: usize) -> Vec<Row<K>>
    where
        K: Ord,
    {
        self.engine.top_k(k)
    }

    /// (φ, ε)-heavy hitters of the snapshotted stream prefix, at the
    /// exact `⌊phi · N⌋` threshold.
    ///
    /// # Panics
    /// Panics if `phi` is outside `[0, 1]`.
    pub fn heavy_hitters(&self, phi: f64, error_type: ErrorType) -> Vec<Row<K>>
    where
        K: Ord,
    {
        self.engine.heavy_hitters(phi, error_type)
    }
}

/// State shared between the sketch, its writers, its readers, and the
/// publisher thread.
struct Shared<K: SketchKey> {
    snapshot: RwLock<Arc<Snapshot<K>>>,
    /// Published snapshot count; the installed snapshot's epoch.
    epoch: AtomicU64,
    /// Total weight successfully enqueued to shard channels — the live
    /// high-water mark queries can compare a snapshot against.
    enqueued_weight: AtomicU64,
    /// Set once the final drained snapshot is installed.
    sealed: AtomicBool,
    /// Serializes publishes so epochs and snapshots advance together.
    publish_lock: Mutex<()>,
}

/// Everything a merge needs to rebuild an export engine: the bank's
/// policy/seed (inherited exactly like [`crate::ShardedSketch::merged`])
/// and the export capacity.
#[derive(Clone, Copy)]
struct MergeConfig {
    capacity: usize,
    policy: PurgePolicy,
    seed: u64,
}

impl MergeConfig {
    fn fresh_engine<K: SketchKey>(&self) -> SketchEngine<K> {
        SketchEngineBuilder::new(self.capacity)
            .policy(self.policy)
            .seed(self.seed)
            .build()
            .expect("merge configuration validated at build time")
    }
}

/// Installs `engine` as the new current snapshot. Caller holds the
/// publish lock (or has exclusive access during drain), which
/// serializes epoch assignment.
fn install_snapshot<K: SketchKey>(shared: &Shared<K>, engine: SketchEngine<K>, sealed: bool) {
    let mut slot = shared.snapshot.write().expect("snapshot lock poisoned");
    let epoch = slot.epoch + 1;
    *slot = Arc::new(Snapshot {
        engine,
        epoch,
        sealed,
    });
    drop(slot);
    // The counter trails the install: once `epoch()` reports N, the
    // epoch-N snapshot is already visible to `snapshot()`.
    shared.epoch.store(epoch, Ordering::SeqCst);
    if sealed {
        shared.sealed.store(true, Ordering::SeqCst);
    }
}

/// Probes every shard for a clone of its engine, merges the clones per
/// Algorithm 5, and installs the result. Returns `false` if the workers
/// are gone (post-drain).
fn publish_from_probes<K: SketchKey>(
    shared: &Shared<K>,
    senders: &[SyncSender<Msg<K>>],
    config: MergeConfig,
) -> bool {
    let _guard = shared.publish_lock.lock().expect("publish lock poisoned");
    if shared.sealed.load(Ordering::SeqCst) {
        // A sealed (drained) view is already complete and final.
        return false;
    }
    // Send every probe before collecting any reply so the shards
    // snapshot concurrently; replies are collected in shard order so the
    // merge order (and hence the merged engine) is deterministic in the
    // shard states.
    let mut replies: Vec<Receiver<SketchEngine<K>>> = Vec::with_capacity(senders.len());
    for sender in senders {
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        if sender.send(Msg::Probe(reply_tx)).is_err() {
            return false;
        }
        replies.push(reply_rx);
    }
    let mut merged = config.fresh_engine();
    for reply in replies {
        let Ok(shard) = reply.recv() else {
            return false;
        };
        merged.merge(&shard);
    }
    install_snapshot(shared, merged, false);
    true
}

/// A handle for pushing weighted updates into a [`ConcurrentSketch`]
/// from any thread. Routes items to their shard, buffers up to a few
/// thousand per shard, and sends batches over the bounded channels —
/// blocking (backpressure) when a shard's backlog is full.
///
/// Dropping the writer flushes its buffers. All writers must be dropped
/// before [`ConcurrentSketch::drain`] can complete.
pub struct ConcurrentWriter<K: SketchKey> {
    senders: Vec<SyncSender<Msg<K>>>,
    shared: Arc<Shared<K>>,
    bufs: Vec<Vec<(K, u64)>>,
}

impl<K: SketchKey> ConcurrentWriter<K> {
    fn new(senders: Vec<SyncSender<Msg<K>>>, shared: Arc<Shared<K>>) -> Self {
        let bufs = senders.iter().map(|_| Vec::new()).collect();
        Self {
            senders,
            shared,
            bufs,
        }
    }

    /// Queues one weighted update. Zero weights are ignored, mirroring
    /// [`SketchEngine::update`].
    pub fn write(&mut self, item: K, weight: u64) {
        if weight == 0 {
            return;
        }
        let s = shard_of(&item, self.senders.len());
        self.bufs[s].push((item, weight));
        if self.bufs[s].len() >= WRITER_BUF {
            self.flush_shard(s);
        }
    }

    /// Queues a slice of weighted updates.
    pub fn write_batch(&mut self, batch: &[(K, u64)]) {
        for (item, weight) in batch {
            self.write(item.clone(), *weight);
        }
    }

    /// Sends every buffered item to its shard worker. On return, all of
    /// this writer's previous updates are enqueued and will be visible
    /// to the next snapshot probe (channel FIFO).
    pub fn flush(&mut self) {
        for s in 0..self.bufs.len() {
            if !self.bufs[s].is_empty() {
                self.flush_shard(s);
            }
        }
    }

    fn flush_shard(&mut self, s: usize) {
        let batch = std::mem::take(&mut self.bufs[s]);
        let weight: u64 = batch.iter().map(|&(_, w)| w).sum();
        // A send error means the sketch was drained under us; the items
        // have nowhere to go and accounting them would overstate the
        // enqueued mass.
        if self.senders[s].send(Msg::Batch(batch)).is_ok() {
            self.shared
                .enqueued_weight
                .fetch_add(weight, Ordering::SeqCst);
        }
    }
}

impl<K: SketchKey> Drop for ConcurrentWriter<K> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A cheap cloneable read-side handle: lets query threads (and, in the
/// CLI, TCP connection handlers) fetch the current snapshot after the
/// owning [`ConcurrentSketch`] has moved elsewhere.
pub struct SnapshotReader<K: SketchKey> {
    shared: Arc<Shared<K>>,
}

impl<K: SketchKey> Clone for SnapshotReader<K> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<K: SketchKey> SnapshotReader<K> {
    /// The current snapshot. Lock-free apart from a momentary read lock
    /// around the `Arc` clone; never blocks ingestion.
    pub fn snapshot(&self) -> Arc<Snapshot<K>> {
        Arc::clone(&self.shared.snapshot.read().expect("snapshot lock poisoned"))
    }

    /// The epoch of the most recently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::SeqCst)
    }

    /// Total weight enqueued to the shard channels so far — an upper
    /// bound on what the *next* snapshot will cover, and the live mark
    /// to measure a snapshot's staleness against.
    pub fn enqueued_weight(&self) -> u64 {
        self.shared.enqueued_weight.load(Ordering::SeqCst)
    }

    /// True once the final drained snapshot has been published.
    pub fn is_sealed(&self) -> bool {
        self.shared.sealed.load(Ordering::SeqCst)
    }
}

/// Configures and constructs a [`ConcurrentSketch`].
#[derive(Clone, Debug)]
pub struct ConcurrentSketchBuilder<K: SketchKey> {
    num_shards: usize,
    counters_per_shard: usize,
    policy: PurgePolicy,
    seed: u64,
    grow_from_small: bool,
    channel_capacity: usize,
    merged_capacity: usize,
    publish_interval: Option<Duration>,
    _key: std::marker::PhantomData<K>,
}

impl<K: SketchKey + Send + Sync + 'static> ConcurrentSketchBuilder<K> {
    /// Starts a builder for `num_shards` shard workers of
    /// `counters_per_shard` counters each.
    pub fn new(num_shards: usize, counters_per_shard: usize) -> Self {
        Self {
            num_shards,
            counters_per_shard,
            policy: PurgePolicy::default(),
            seed: DEFAULT_SEED,
            grow_from_small: true,
            channel_capacity: 4,
            merged_capacity: counters_per_shard,
            publish_interval: None,
            _key: std::marker::PhantomData,
        }
    }

    /// Selects the purge policy for every shard (default: SMED).
    pub fn policy(mut self, policy: PurgePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Seeds the shards' purge samplers; shard `s` uses `seed + s`,
    /// matching [`crate::ShardedSketchBuilder::seed`] so the drained
    /// state is comparable bank-for-bank.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// If `false`, every shard preallocates its maximum table up front.
    pub fn grow_from_small(mut self, grow: bool) -> Self {
        self.grow_from_small = grow;
        self
    }

    /// Bounds each shard's channel to `capacity` in-flight batch
    /// messages (default 4). Smaller values tighten the snapshot
    /// staleness bound; larger values absorb burstier writers before
    /// backpressure engages.
    pub fn channel_capacity(mut self, capacity: usize) -> Self {
        self.channel_capacity = capacity.max(1);
        self
    }

    /// Counter budget of the merged snapshot engine (default: the
    /// per-shard budget, matching [`crate::ShardedSketch::merged`]).
    pub fn merged_capacity(mut self, capacity: usize) -> Self {
        self.merged_capacity = capacity;
        self
    }

    /// Publishes a fresh merged snapshot every `interval` from a
    /// background thread. Without this, snapshots are published only by
    /// explicit [`ConcurrentSketch::publish_now`] calls and at drain.
    pub fn publish_every(mut self, interval: Duration) -> Self {
        self.publish_interval = Some(interval);
        self
    }

    /// Builds the sketch and spawns its shard workers (and the periodic
    /// publisher, if configured).
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if `num_shards` is zero or any
    /// engine configuration is invalid.
    pub fn build(self) -> Result<ConcurrentSketch<K>, Error> {
        if self.num_shards == 0 {
            return Err(Error::InvalidConfig("num_shards must be positive".into()));
        }
        let merge_config = MergeConfig {
            capacity: self.merged_capacity,
            policy: self.policy,
            seed: self.seed,
        };
        // Validate the merged-export configuration before spawning
        // anything: `fresh_engine`'s expect is only sound after this.
        let initial_snapshot_engine = SketchEngineBuilder::<K>::new(self.merged_capacity)
            .policy(self.policy)
            .seed(self.seed)
            .build()?;
        let engines: Vec<SketchEngine<K>> = (0..self.num_shards)
            .map(|s| {
                SketchEngineBuilder::new(self.counters_per_shard)
                    .policy(self.policy)
                    .seed(self.seed.wrapping_add(s as u64))
                    .grow_from_small(self.grow_from_small)
                    .build()
            })
            .collect::<Result<Vec<_>, _>>()?;
        let shared = Arc::new(Shared {
            snapshot: RwLock::new(Arc::new(Snapshot {
                engine: initial_snapshot_engine,
                epoch: 0,
                sealed: false,
            })),
            epoch: AtomicU64::new(0),
            enqueued_weight: AtomicU64::new(0),
            sealed: AtomicBool::new(false),
            publish_lock: Mutex::new(()),
        });
        let mut senders = Vec::with_capacity(self.num_shards);
        let mut workers = Vec::with_capacity(self.num_shards);
        for (s, engine) in engines.into_iter().enumerate() {
            let (tx, rx) = mpsc::sync_channel::<Msg<K>>(self.channel_capacity);
            senders.push(tx);
            let handle = std::thread::Builder::new()
                .name(format!("streamfreq-shard-{s}"))
                .spawn(move || shard_worker(engine, rx))
                .expect("failed to spawn shard worker");
            workers.push(handle);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let publisher = self.publish_interval.map(|interval| {
            let shared = Arc::clone(&shared);
            let senders = senders.clone();
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("streamfreq-publisher".into())
                .spawn(move || {
                    let mut last = Instant::now();
                    while !stop.load(Ordering::SeqCst) {
                        if last.elapsed() >= interval {
                            publish_from_probes(&shared, &senders, merge_config);
                            last = Instant::now();
                        }
                        std::thread::sleep(PUBLISHER_TICK.min(interval));
                    }
                })
                .expect("failed to spawn publisher")
        });
        Ok(ConcurrentSketch {
            senders,
            workers,
            publisher,
            stop,
            shared,
            merge_config,
            drained_shards: None,
        })
    }
}

/// The shard worker loop: drain the channel into the owned engine;
/// answer snapshot probes with a clone. Returns the engine when every
/// sender is gone (drain).
fn shard_worker<K: SketchKey>(
    mut engine: SketchEngine<K>,
    rx: Receiver<Msg<K>>,
) -> SketchEngine<K> {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Batch(batch) => engine.update_batch(&batch),
            Msg::Probe(reply) => {
                // A dropped reply receiver (publisher raced shutdown)
                // must not kill the worker.
                let _ = reply.send(engine.clone());
            }
        }
    }
    engine
}

/// A bank of sketch shards ingesting concurrently behind bounded
/// channels, serving queries from periodically merged immutable
/// snapshots. See the [module docs](self) for the architecture,
/// staleness, and determinism contracts.
pub struct ConcurrentSketch<K: SketchKey + Send + Sync + 'static> {
    senders: Vec<SyncSender<Msg<K>>>,
    workers: Vec<JoinHandle<SketchEngine<K>>>,
    publisher: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    shared: Arc<Shared<K>>,
    merge_config: MergeConfig,
    drained_shards: Option<Vec<SketchEngine<K>>>,
}

impl<K: SketchKey + Send + Sync + 'static> ConcurrentSketch<K> {
    /// Starts a [`ConcurrentSketchBuilder`] for `num_shards` shards of
    /// `counters_per_shard` counters each.
    pub fn builder(num_shards: usize, counters_per_shard: usize) -> ConcurrentSketchBuilder<K> {
        ConcurrentSketchBuilder::new(num_shards, counters_per_shard)
    }

    /// Number of shard workers.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.workers.len().max(
            self.drained_shards
                .as_ref()
                .map_or(self.senders.len(), Vec::len),
        )
    }

    /// A new writer handle. Any number may exist across threads; their
    /// updates interleave arbitrarily (see the module docs for the
    /// determinism story).
    ///
    /// # Panics
    /// Panics if the sketch has been drained.
    pub fn writer(&self) -> ConcurrentWriter<K> {
        assert!(
            self.drained_shards.is_none(),
            "cannot create a writer after drain()"
        );
        ConcurrentWriter::new(self.senders.clone(), Arc::clone(&self.shared))
    }

    /// A cloneable read-side handle that outlives moves of `self`.
    pub fn reader(&self) -> SnapshotReader<K> {
        SnapshotReader {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The current published snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot<K>> {
        self.reader().snapshot()
    }

    /// Ingests one logical stream deterministically from up to
    /// `num_writers` scoped writer threads (clamped to the shard
    /// count): writer `w` owns a contiguous group of shards, scans the
    /// whole slice, and enqueues the items routing to its group, so each
    /// shard sees its items in stream order through a single producer.
    /// The drained final state is **identical for every `num_writers`**
    /// and equal to a sequential [`crate::ShardedSketch::update_batch`]
    /// ingest of the same bank configuration.
    ///
    /// Runs concurrently with snapshot publishing and queries; returns
    /// when every item is enqueued and the scoped writers have exited
    /// (items may still be in flight in the channels — publish or drain
    /// to observe them all).
    pub fn ingest_slice_parallel(&self, stream: &[(K, u64)], num_writers: usize)
    where
        K: Sync,
    {
        let num_shards = self.senders.len();
        assert!(num_shards > 0, "cannot ingest after drain()");
        let num_writers = num_writers.clamp(1, num_shards);
        let shards_per_writer = num_shards.div_ceil(num_writers);
        std::thread::scope(|scope| {
            for (group, senders) in self.senders.chunks(shards_per_writer).enumerate() {
                let first_shard = group * shards_per_writer;
                let shared = &self.shared;
                scope.spawn(move || {
                    let group_len = senders.len();
                    let mut bufs: Vec<Vec<(K, u64)>> = (0..group_len)
                        .map(|_| Vec::with_capacity(WRITER_BUF))
                        .collect();
                    let flush = |buf: &mut Vec<(K, u64)>, local: usize| {
                        let batch = std::mem::replace(buf, Vec::with_capacity(WRITER_BUF));
                        let weight: u64 = batch.iter().map(|&(_, w)| w).sum();
                        senders[local]
                            .send(Msg::Batch(batch))
                            .expect("shard worker alive while senders exist");
                        shared.enqueued_weight.fetch_add(weight, Ordering::SeqCst);
                    };
                    for (item, weight) in stream {
                        let s = shard_of(item, num_shards);
                        if s < first_shard || s >= first_shard + group_len {
                            continue;
                        }
                        let local = s - first_shard;
                        bufs[local].push((item.clone(), *weight));
                        if bufs[local].len() == WRITER_BUF {
                            flush(&mut bufs[local], local);
                        }
                    }
                    for (local, buf) in bufs.iter_mut().enumerate() {
                        if !buf.is_empty() {
                            flush(buf, local);
                        }
                    }
                });
            }
        });
    }

    /// Synchronously publishes a fresh merged snapshot covering every
    /// update whose enqueue completed before this call. Returns the
    /// published snapshot (or the sealed final snapshot post-drain).
    pub fn publish_now(&self) -> Arc<Snapshot<K>> {
        publish_from_probes(&self.shared, &self.senders, self.merge_config);
        self.snapshot()
    }

    /// Graceful shutdown of ingestion: stops the periodic publisher,
    /// closes the shard channels, joins every worker after it drains its
    /// backlog, publishes the final **sealed** merged snapshot, and
    /// returns the per-shard engines. Queries through
    /// [`Self::snapshot`] / [`SnapshotReader`] keep working against the
    /// final view.
    ///
    /// Outstanding [`ConcurrentWriter`] handles keep their channels
    /// open, so they must all be dropped before `drain` can join the
    /// workers; `drain` blocks until then. Idempotent.
    pub fn drain(&mut self) -> &[SketchEngine<K>] {
        if self.drained_shards.is_none() {
            self.stop.store(true, Ordering::SeqCst);
            if let Some(publisher) = self.publisher.take() {
                publisher.join().expect("publisher thread panicked");
            }
            self.senders.clear();
            let shards: Vec<SketchEngine<K>> = self
                .workers
                .drain(..)
                .map(|w| w.join().expect("shard worker panicked"))
                .collect();
            let _guard = self
                .shared
                .publish_lock
                .lock()
                .expect("publish lock poisoned");
            let mut merged = self.merge_config.fresh_engine();
            for shard in &shards {
                merged.merge(shard);
            }
            install_snapshot(&self.shared, merged, true);
            self.drained_shards = Some(shards);
        }
        self.drained_shards
            .as_deref()
            .expect("drained state just installed")
    }

    /// The per-shard engines of a drained sketch, if [`Self::drain`]
    /// has run.
    pub fn drained_shards(&self) -> Option<&[SketchEngine<K>]> {
        self.drained_shards.as_deref()
    }
}

impl<K: SketchKey + Send + Sync + 'static> Drop for ConcurrentSketch<K> {
    /// Best-effort shutdown so dropping a live sketch does not leak
    /// threads: equivalent to [`Self::drain`] minus the final publish
    /// if one already happened. Blocks until outstanding writers drop,
    /// like `drain`.
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(publisher) = self.publisher.take() {
            let _ = publisher.join();
        }
        self.senders.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_stream(len: u64) -> Vec<(u64, u64)> {
        (0..len)
            .map(|i| {
                let item = (i * 2_654_435_761) % 3_000;
                let w = if item < 4 { 500 } else { i % 11 + 1 };
                (item, w)
            })
            .collect()
    }

    #[test]
    fn initial_snapshot_is_empty_epoch_zero() {
        let sketch: ConcurrentSketch<u64> = ConcurrentSketch::builder(2, 32).build().unwrap();
        let snap = sketch.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.stream_weight(), 0);
        assert!(!snap.is_sealed());
    }

    #[test]
    fn publish_now_observes_flushed_writer() {
        let sketch: ConcurrentSketch<u64> = ConcurrentSketch::builder(4, 64).build().unwrap();
        let mut writer = sketch.writer();
        for (item, w) in test_stream(10_000) {
            writer.write(item, w);
        }
        writer.flush();
        let enqueued = sketch.reader().enqueued_weight();
        let snap = sketch.publish_now();
        assert_eq!(snap.epoch(), 1);
        assert!(
            snap.stream_weight() >= enqueued,
            "snapshot {} misses enqueued weight {}",
            snap.stream_weight(),
            enqueued
        );
        drop(writer);
    }

    #[test]
    fn drain_publishes_sealed_complete_snapshot() {
        let stream = test_stream(30_000);
        let total: u64 = stream.iter().map(|&(_, w)| w).sum();
        let mut sketch: ConcurrentSketch<u64> = ConcurrentSketch::builder(4, 64).build().unwrap();
        sketch.ingest_slice_parallel(&stream, 2);
        let reader = sketch.reader();
        let shards = sketch.drain();
        assert_eq!(shards.len(), 4);
        let snap = reader.snapshot();
        assert!(snap.is_sealed());
        assert!(reader.is_sealed());
        assert_eq!(snap.stream_weight(), total);
        // Drain is idempotent and queries keep working.
        sketch.drain();
        assert_eq!(sketch.snapshot().stream_weight(), total);
    }

    #[test]
    fn epochs_strictly_increase() {
        let sketch: ConcurrentSketch<u64> = ConcurrentSketch::builder(2, 32).build().unwrap();
        let mut writer = sketch.writer();
        writer.write(7, 100);
        writer.flush();
        let a = sketch.publish_now().epoch();
        let b = sketch.publish_now().epoch();
        assert!(b > a);
        drop(writer);
    }

    #[test]
    fn periodic_publisher_advances_epochs() {
        let sketch: ConcurrentSketch<u64> = ConcurrentSketch::builder(2, 32)
            .publish_every(Duration::from_millis(5))
            .build()
            .unwrap();
        let mut writer = sketch.writer();
        let deadline = Instant::now() + Duration::from_secs(10);
        while sketch.reader().epoch() < 3 {
            writer.write(1, 1);
            writer.flush();
            assert!(Instant::now() < deadline, "publisher made no progress");
            std::thread::sleep(Duration::from_millis(2));
        }
        drop(writer);
    }

    #[test]
    fn builder_rejects_zero_shards() {
        assert!(matches!(
            ConcurrentSketch::<u64>::builder(0, 16).build(),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn builder_rejects_invalid_merged_capacity() {
        // An invalid merged-export configuration must surface as Err,
        // not a panic deep inside the first publish.
        assert!(matches!(
            ConcurrentSketch::<u64>::builder(2, 16)
                .merged_capacity(0)
                .build(),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn string_keys_serve_concurrently() {
        let mut sketch: ConcurrentSketch<String> =
            ConcurrentSketch::builder(2, 64).seed(9).build().unwrap();
        let mut writer = sketch.writer();
        // 30 distinct flows fit the 64-counter merged view outright, so
        // every flow stays tracked with an exact estimate.
        for i in 0..5_000u64 {
            writer.write(format!("flow-{}", i % 30), i % 7 + 1);
        }
        drop(writer); // flush via Drop
        let snap = sketch.publish_now();
        assert!(snap.stream_weight() > 0);
        sketch.drain();
        let sealed = sketch.snapshot();
        assert!(sealed.is_sealed());
        assert!(sealed.estimate(&"flow-1".to_string()) > 0);
    }
}
