//! [`ConcurrentSketch`]: a long-lived serving layer that ingests from
//! many writer threads while answering queries from immutable merged
//! snapshots — the deployment shape §3 of the paper motivates (summaries
//! that are aggregated *and served* while data keeps arriving).
//!
//! ## Architecture
//!
//! ```text
//!  writer threads            shard workers               queries
//!  ┌─────────┐  bounded mpsc ┌──────────────┐
//!  │ writer 0 │──────────────▶ SketchEngine 0│─┐ probe
//!  │ writer 1 │──────────────▶ SketchEngine 1│─┼──▶ Algorithm-5 merge
//!  │   ...    │──────────────▶     ...       │─┘      │ publish
//!  └─────────┘               └──────────────┘         ▼
//!                                        RwLock<Arc<Snapshot>> ◀─ readers
//! ```
//!
//! * **Shard workers.** One thread per shard owns a [`SketchEngine<K>`]
//!   outright and drains a bounded [`std::sync::mpsc`] channel of item
//!   batches — no locks on the ingest hot path, and the bounded channel
//!   is the backpressure: writers block when a shard's backlog is full.
//! * **Snapshots.** Periodically (or on demand) a probe message visits
//!   every shard channel; each worker replies with a clone of its
//!   engine, and the clones are merged per Algorithm 5 into one
//!   immutable [`Snapshot`] installed by swapping an
//!   `Arc` under an [`std::sync::RwLock`]. Queries clone the `Arc` out
//!   and never touch the shards, so **queries never block ingestion**
//!   and ingestion never blocks queries. The merged engine carries the
//!   same certified Theorem-5 error bounds as
//!   [`crate::ShardedSketch::merged`].
//! * **Bounded staleness.** Channels are FIFO, so a snapshot reflects
//!   *every* batch whose enqueue completed before the probe was sent;
//!   what it can miss is bounded by the channel capacity plus one
//!   writer-side buffer per shard. With a periodic publisher the served
//!   view lags live ingestion by at most the publish interval plus the
//!   time to drain that bounded backlog.
//! * **Graceful shutdown.** [`ConcurrentSketch::drain`] stops the
//!   publisher, closes the channels, joins every worker (each returns
//!   its engine after draining its queue), publishes a final sealed
//!   snapshot, and exposes the per-shard engines for inspection.
//! * **Durability (optional).**
//!   [`ConcurrentSketchBuilder::build_durable`] gives every shard worker
//!   a write-ahead-logged [`DurableSketch`] in its own subdirectory of a
//!   store directory: batches are logged before they are applied, a
//!   checkpointer thread takes coordinated checkpoint rounds (on demand
//!   via [`SnapshotReader::request_checkpoint`] and/or periodically),
//!   and reopening the same directory recovers each shard as
//!   `checkpoint ⊕ replayed WAL tail` — then merges the recovered
//!   shards per Algorithm 5 into the initial served snapshot. See
//!   [`crate::persist`] for the on-disk formats and guarantees.
//!
//! ## Determinism
//!
//! The deterministic entry point is
//! [`ConcurrentSketch::ingest_slice_parallel`]: writer `w` owns a
//! disjoint contiguous group of shards and scans the whole input slice,
//! claiming the items that route to its group — exactly
//! [`crate::ShardedSketch::ingest_parallel`]'s partitioning, decoupled
//! from the shard workers by the channels. Every shard therefore
//! receives its items in stream order through exactly one channel, so
//! the **drained final state is byte-identical for every writer count**,
//! and equal to a sequential [`crate::ShardedSketch::update_batch`] run
//! of the same bank configuration (pinned by the differential tests in
//! `tests/concurrent.rs`). Free-form [`ConcurrentWriter`] handles make
//! no cross-writer ordering promise — two writers racing the same shard
//! interleave arbitrarily — but the certified per-item bounds hold
//! regardless, because they hold for any arrival order.
//!
//! # Example
//!
//! ```
//! use streamfreq_core::ConcurrentSketch;
//!
//! let sketch: ConcurrentSketch<u64> = ConcurrentSketch::builder(4, 256).build().unwrap();
//! let stream: Vec<(u64, u64)> = (0..50_000).map(|i| (i % 1000, 1)).collect();
//! sketch.ingest_slice_parallel(&stream, 2);
//! sketch.publish_now();
//! let snap = sketch.snapshot();
//! assert!(snap.stream_weight() <= 50_000);
//! let mut sketch = sketch;
//! sketch.drain();
//! assert_eq!(sketch.snapshot().stream_weight(), 50_000);
//! ```

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::engine::{SketchEngine, SketchEngineBuilder, SketchKey, DEFAULT_SEED};
use crate::error::Error;
use crate::item_codec::ItemCodec;
use crate::persist::recover::open_bank;
use crate::persist::store::{read_store_meta, write_store_meta, StoreMeta};
use crate::persist::{
    DurabilityOptions, DurableSketch, EngineConfig, GroupCommitWal, GroupWalStats, PersistError,
    RecoveryReport,
};
use crate::purge::PurgePolicy;
use crate::result::{ErrorType, Row};
use crate::sanitize;
use crate::sharded::shard_of;

/// Items buffered per shard on the writer side before a batch message is
/// sent: the same amortization constant as the sharded ingest path.
const WRITER_BUF: usize = 4096;

/// How often the periodic publisher re-checks the stop flag while
/// waiting out the publish interval.
const PUBLISHER_TICK: Duration = Duration::from_millis(2);

/// A message on a shard worker's channel.
enum Msg<K: SketchKey> {
    /// A batch of weighted updates, all routed to this shard.
    Batch(Vec<(K, u64)>),
    /// Snapshot probe: reply with a clone of the shard engine. FIFO
    /// ordering makes the reply reflect every batch enqueued earlier.
    Probe(SyncSender<SketchEngine<K>>),
    /// Checkpoint probe (durable banks only): persist a checkpoint of
    /// everything received so far and reply with the new epoch. FIFO
    /// ordering makes the checkpoint cover every batch enqueued earlier.
    Checkpoint(SyncSender<u64>),
}

/// An immutable point-in-time merged view of a [`ConcurrentSketch`],
/// produced by an Algorithm-5 merge of every shard and served lock-free
/// behind an `Arc`. All the usual queries are available and answer with
/// the same certified bounds as [`crate::ShardedSketch::merged`]
/// (Theorem 5: shard offsets add).
#[derive(Clone, Debug)]
pub struct Snapshot<K: SketchKey> {
    engine: SketchEngine<K>,
    epoch: u64,
    sealed: bool,
}

impl<K: SketchKey> Snapshot<K> {
    /// The snapshot's publish epoch: 0 for the initial empty snapshot,
    /// then strictly increasing with each publish.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True for the final snapshot published by
    /// [`ConcurrentSketch::drain`]: ingestion has stopped and this view
    /// is complete, not merely bounded-stale.
    #[inline]
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// The merged engine backing this snapshot.
    #[inline]
    pub fn engine(&self) -> &SketchEngine<K> {
        &self.engine
    }

    /// Estimate of the item's weighted frequency as of this snapshot.
    #[inline]
    pub fn estimate(&self, item: &K) -> u64 {
        self.engine.estimate(item)
    }

    /// Certified lower bound on the item's frequency in the snapshotted
    /// prefix of the stream.
    #[inline]
    pub fn lower_bound(&self, item: &K) -> u64 {
        self.engine.lower_bound(item)
    }

    /// Certified upper bound on the item's frequency in the snapshotted
    /// prefix of the stream.
    #[inline]
    pub fn upper_bound(&self, item: &K) -> u64 {
        self.engine.upper_bound(item)
    }

    /// Total weighted stream length the snapshot covers.
    #[inline]
    pub fn stream_weight(&self) -> u64 {
        self.engine.stream_weight()
    }

    /// Maximum estimation error of the merged view (Theorem 5).
    #[inline]
    pub fn maximum_error(&self) -> u64 {
        self.engine.maximum_error()
    }

    /// Counters assigned in the merged view.
    #[inline]
    pub fn num_counters(&self) -> usize {
        self.engine.num_counters()
    }

    /// The `k` largest-estimate rows of the snapshot.
    pub fn top_k(&self, k: usize) -> Vec<Row<K>>
    where
        K: Ord,
    {
        self.engine.top_k(k)
    }

    /// (φ, ε)-heavy hitters of the snapshotted stream prefix, at the
    /// exact `⌊phi · N⌋` threshold.
    ///
    /// # Panics
    /// Panics if `phi` is outside `[0, 1]`.
    pub fn heavy_hitters(&self, phi: f64, error_type: ErrorType) -> Vec<Row<K>>
    where
        K: Ord,
    {
        self.engine.heavy_hitters(phi, error_type)
    }
}

/// State shared between the sketch, its writers, its readers, and the
/// publisher thread.
struct Shared<K: SketchKey> {
    snapshot: RwLock<Arc<Snapshot<K>>>,
    /// Published snapshot count; the installed snapshot's epoch.
    epoch: AtomicU64,
    /// Total weight successfully enqueued to shard channels — the live
    /// high-water mark queries can compare a snapshot against.
    enqueued_weight: AtomicU64,
    /// Set once the final drained snapshot is installed.
    sealed: AtomicBool,
    /// Serializes publishes so epochs and snapshots advance together.
    publish_lock: Mutex<()>,
    /// The bank-level shared group-commit log (durable banks only) —
    /// every shard appends stream-tagged frames to this one file.
    wal: Option<Arc<GroupCommitWal>>,
    /// Newest coordinated checkpoint round every shard has completed
    /// (written only by the checkpointer's round minimum).
    last_checkpoint_epoch: AtomicU64,
    /// Reply channels of pending on-demand checkpoint requests,
    /// serviced by the checkpointer thread.
    ckpt_requests: Mutex<Vec<SyncSender<u64>>>,
}

impl<K: SketchKey> Shared<K> {
    fn new(
        initial: Snapshot<K>,
        wal: Option<Arc<GroupCommitWal>>,
        enqueued: u64,
        last_ckpt: u64,
    ) -> Arc<Self> {
        let epoch = initial.epoch;
        Arc::new(Shared {
            snapshot: RwLock::new(Arc::new(initial)),
            epoch: AtomicU64::new(epoch),
            enqueued_weight: AtomicU64::new(enqueued),
            sealed: AtomicBool::new(false),
            publish_lock: Mutex::new(()),
            wal,
            last_checkpoint_epoch: AtomicU64::new(last_ckpt),
            ckpt_requests: Mutex::new(Vec::new()),
        })
    }
}

/// Everything a merge needs to rebuild an export engine: the bank's
/// policy/seed (inherited exactly like [`crate::ShardedSketch::merged`])
/// and the export capacity.
#[derive(Clone, Copy)]
struct MergeConfig {
    capacity: usize,
    policy: PurgePolicy,
    seed: u64,
}

impl MergeConfig {
    fn fresh_engine<K: SketchKey>(&self) -> SketchEngine<K> {
        SketchEngineBuilder::new(self.capacity)
            .policy(self.policy)
            .seed(self.seed)
            .build()
            .expect("merge configuration validated at build time")
    }
}

/// Installs `engine` as the new current snapshot. Caller holds the
/// publish lock (or has exclusive access during drain), which
/// serializes epoch assignment.
fn install_snapshot<K: SketchKey>(shared: &Shared<K>, engine: SketchEngine<K>, sealed: bool) {
    let rank = sanitize::rank_acquire(sanitize::rank::SNAPSHOT, "snapshot rwlock");
    let mut slot = shared.snapshot.write().expect("snapshot lock poisoned");
    let epoch = slot.epoch + 1;
    // Sanitizer: epochs advance strictly — the about-to-install epoch
    // must be ahead of everything `epoch()` has ever reported, or a
    // reader could observe the published counter go backwards.
    #[cfg(feature = "debug-invariants")]
    {
        let published = shared.epoch.load(Ordering::SeqCst);
        assert!(
            epoch > published,
            "debug-invariants: snapshot epoch not monotone — installing \
             {epoch} over published {published}"
        );
    }
    *slot = Arc::new(Snapshot {
        engine,
        epoch,
        sealed,
    });
    drop(slot);
    drop(rank);
    // The counter trails the install: once `epoch()` reports N, the
    // epoch-N snapshot is already visible to `snapshot()`.
    shared.epoch.store(epoch, Ordering::SeqCst);
    if sealed {
        shared.sealed.store(true, Ordering::SeqCst);
    }
}

/// Probes every shard for a clone of its engine, merges the clones per
/// Algorithm 5, and installs the result. Returns `false` if the workers
/// are gone (post-drain).
fn publish_from_probes<K: SketchKey>(
    shared: &Shared<K>,
    senders: &[SyncSender<Msg<K>>],
    config: MergeConfig,
) -> bool {
    let _rank = sanitize::rank_acquire(sanitize::rank::PUBLISH, "publish lock");
    let _guard = shared.publish_lock.lock().expect("publish lock poisoned");
    if shared.sealed.load(Ordering::SeqCst) {
        // A sealed (drained) view is already complete and final.
        return false;
    }
    // Send every probe before collecting any reply so the shards
    // snapshot concurrently; replies are collected in shard order so the
    // merge order (and hence the merged engine) is deterministic in the
    // shard states.
    let mut replies: Vec<Receiver<SketchEngine<K>>> = Vec::with_capacity(senders.len());
    for sender in senders {
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        sanitize::check_send(sanitize::rank::SHARD_CHANNEL, "shard channel");
        if sender.send(Msg::Probe(reply_tx)).is_err() {
            return false;
        }
        replies.push(reply_rx);
    }
    let mut merged = config.fresh_engine();
    for reply in replies {
        let Ok(shard) = reply.recv() else {
            return false;
        };
        merged.merge(&shard);
    }
    install_snapshot(shared, merged, false);
    true
}

/// A handle for pushing weighted updates into a [`ConcurrentSketch`]
/// from any thread. Routes items to their shard, buffers up to a few
/// thousand per shard, and sends batches over the bounded channels —
/// blocking (backpressure) when a shard's backlog is full.
///
/// Dropping the writer flushes its buffers. All writers must be dropped
/// before [`ConcurrentSketch::drain`] can complete.
pub struct ConcurrentWriter<K: SketchKey> {
    senders: Vec<SyncSender<Msg<K>>>,
    shared: Arc<Shared<K>>,
    bufs: Vec<Vec<(K, u64)>>,
}

impl<K: SketchKey> ConcurrentWriter<K> {
    fn new(senders: Vec<SyncSender<Msg<K>>>, shared: Arc<Shared<K>>) -> Self {
        let bufs = senders.iter().map(|_| Vec::new()).collect();
        Self {
            senders,
            shared,
            bufs,
        }
    }

    /// Queues one weighted update. Zero weights are ignored, mirroring
    /// [`SketchEngine::update`].
    pub fn write(&mut self, item: K, weight: u64) {
        if weight == 0 {
            return;
        }
        let s = shard_of(&item, self.senders.len());
        self.bufs[s].push((item, weight));
        if self.bufs[s].len() >= WRITER_BUF {
            self.flush_shard(s);
        }
    }

    /// Queues a slice of weighted updates.
    pub fn write_batch(&mut self, batch: &[(K, u64)]) {
        for (item, weight) in batch {
            self.write(item.clone(), *weight);
        }
    }

    /// Sends every buffered item to its shard worker. On return, all of
    /// this writer's previous updates are enqueued and will be visible
    /// to the next snapshot probe (channel FIFO).
    pub fn flush(&mut self) {
        for s in 0..self.bufs.len() {
            if !self.bufs[s].is_empty() {
                self.flush_shard(s);
            }
        }
    }

    fn flush_shard(&mut self, s: usize) {
        let batch = std::mem::take(&mut self.bufs[s]);
        let weight: u64 = batch.iter().map(|&(_, w)| w).sum();
        // A send error means the sketch was drained under us; the items
        // have nowhere to go and accounting them would overstate the
        // enqueued mass.
        sanitize::check_send(sanitize::rank::SHARD_CHANNEL, "shard channel");
        if self.senders[s].send(Msg::Batch(batch)).is_ok() {
            self.shared
                .enqueued_weight
                .fetch_add(weight, Ordering::SeqCst);
        }
    }
}

impl<K: SketchKey> Drop for ConcurrentWriter<K> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A cheap cloneable read-side handle: lets query threads (and, in the
/// CLI, TCP connection handlers) fetch the current snapshot after the
/// owning [`ConcurrentSketch`] has moved elsewhere.
pub struct SnapshotReader<K: SketchKey> {
    shared: Arc<Shared<K>>,
}

impl<K: SketchKey> Clone for SnapshotReader<K> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<K: SketchKey> SnapshotReader<K> {
    /// The current snapshot. Lock-free apart from a momentary read lock
    /// around the `Arc` clone; never blocks ingestion.
    pub fn snapshot(&self) -> Arc<Snapshot<K>> {
        let _rank = sanitize::rank_acquire(sanitize::rank::SNAPSHOT, "snapshot rwlock");
        Arc::clone(&self.shared.snapshot.read().expect("snapshot lock poisoned"))
    }

    /// The epoch of the most recently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::SeqCst)
    }

    /// Total weight enqueued to the shard channels so far — an upper
    /// bound on what the *next* snapshot will cover, and the live mark
    /// to measure a snapshot's staleness against.
    pub fn enqueued_weight(&self) -> u64 {
        self.shared.enqueued_weight.load(Ordering::SeqCst)
    }

    /// True once the final drained snapshot has been published.
    pub fn is_sealed(&self) -> bool {
        self.shared.sealed.load(Ordering::SeqCst)
    }

    /// True if the bank persists a write-ahead log and checkpoints
    /// ([`ConcurrentSketchBuilder::build_durable`]).
    pub fn is_durable(&self) -> bool {
        self.shared.wal.is_some()
    }

    /// Live bytes held by the bank's shared write-ahead log (0 for
    /// volatile banks). Shrinks when checkpoints truncate the log.
    pub fn wal_bytes(&self) -> u64 {
        self.shared.wal.as_ref().map_or(0, |wal| wal.total_bytes())
    }

    /// Group-commit counters of the shared log (`None` for volatile
    /// banks): flush windows, coalesced batches, frames, fsyncs.
    pub fn wal_stats(&self) -> Option<GroupWalStats> {
        self.shared.wal.as_ref().map(|wal| wal.stats())
    }

    /// Flushes every staged shared-log frame to disk and fsyncs — a
    /// durability barrier for batches already applied (no-op for
    /// volatile banks). Pair with [`ConcurrentSketch::publish_now`] to
    /// make "applied" imply "on disk" under lazy fsync policies.
    pub fn sync(&self) -> Result<(), PersistError> {
        match &self.shared.wal {
            Some(wal) => wal.sync_all(),
            None => Ok(()),
        }
    }

    /// The newest *coordinated* checkpoint round every shard has
    /// completed (0 before the first round, or for volatile banks).
    /// Written only when a round finishes, so it never reports an epoch
    /// some shard has not reached; the per-shard drain checkpoints may
    /// be one round newer than this gauge.
    pub fn last_checkpoint_epoch(&self) -> u64 {
        self.shared.last_checkpoint_epoch.load(Ordering::SeqCst)
    }

    /// Requests a coordinated checkpoint round across every shard and
    /// waits up to `timeout` for it to complete, returning the epoch all
    /// shards reached. Returns `None` for volatile banks, after a drain,
    /// or on timeout. Any number of threads may request concurrently;
    /// the checkpointer coalesces pending requests into one round.
    pub fn request_checkpoint(&self, timeout: Duration) -> Option<u64> {
        if self.shared.wal.is_none() || self.shared.sealed.load(Ordering::SeqCst) {
            return None;
        }
        let (tx, rx) = mpsc::sync_channel(1);
        {
            let _rank = sanitize::rank_acquire(sanitize::rank::CKPT_REQUESTS, "ckpt requests");
            self.shared
                .ckpt_requests
                .lock()
                .expect("ckpt queue poisoned")
                .push(tx);
        }
        rx.recv_timeout(timeout).ok()
    }
}

/// Configures and constructs a [`ConcurrentSketch`].
#[derive(Clone, Debug)]
pub struct ConcurrentSketchBuilder<K: SketchKey> {
    num_shards: usize,
    counters_per_shard: usize,
    policy: PurgePolicy,
    seed: u64,
    grow_from_small: bool,
    channel_capacity: usize,
    merged_capacity: usize,
    publish_interval: Option<Duration>,
    _key: std::marker::PhantomData<K>,
}

impl<K: SketchKey + Send + Sync + 'static> ConcurrentSketchBuilder<K> {
    /// Starts a builder for `num_shards` shard workers of
    /// `counters_per_shard` counters each.
    pub fn new(num_shards: usize, counters_per_shard: usize) -> Self {
        Self {
            num_shards,
            counters_per_shard,
            policy: PurgePolicy::default(),
            seed: DEFAULT_SEED,
            grow_from_small: true,
            channel_capacity: 4,
            merged_capacity: counters_per_shard,
            publish_interval: None,
            _key: std::marker::PhantomData,
        }
    }

    /// Selects the purge policy for every shard (default: SMED).
    pub fn policy(mut self, policy: PurgePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Seeds the shards' purge samplers; shard `s` uses `seed + s`,
    /// matching [`crate::ShardedSketchBuilder::seed`] so the drained
    /// state is comparable bank-for-bank.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// If `false`, every shard preallocates its maximum table up front.
    pub fn grow_from_small(mut self, grow: bool) -> Self {
        self.grow_from_small = grow;
        self
    }

    /// Bounds each shard's channel to `capacity` in-flight batch
    /// messages (default 4). Smaller values tighten the snapshot
    /// staleness bound; larger values absorb burstier writers before
    /// backpressure engages.
    pub fn channel_capacity(mut self, capacity: usize) -> Self {
        self.channel_capacity = capacity.max(1);
        self
    }

    /// Counter budget of the merged snapshot engine (default: the
    /// per-shard budget, matching [`crate::ShardedSketch::merged`]).
    pub fn merged_capacity(mut self, capacity: usize) -> Self {
        self.merged_capacity = capacity;
        self
    }

    /// Publishes a fresh merged snapshot every `interval` from a
    /// background thread. Without this, snapshots are published only by
    /// explicit [`ConcurrentSketch::publish_now`] calls and at drain.
    pub fn publish_every(mut self, interval: Duration) -> Self {
        self.publish_interval = Some(interval);
        self
    }

    /// Validates the configuration and builds the merge config plus the
    /// engine the initial (pre-publish) snapshot serves from.
    fn validated_parts(&self) -> Result<(MergeConfig, SketchEngine<K>), Error> {
        if self.num_shards == 0 {
            return Err(Error::InvalidConfig("num_shards must be positive".into()));
        }
        let merge_config = MergeConfig {
            capacity: self.merged_capacity,
            policy: self.policy,
            seed: self.seed,
        };
        // Validate the merged-export configuration before spawning
        // anything: `fresh_engine`'s expect is only sound after this.
        let initial_snapshot_engine = SketchEngineBuilder::<K>::new(self.merged_capacity)
            .policy(self.policy)
            .seed(self.seed)
            .build()?;
        Ok((merge_config, initial_snapshot_engine))
    }

    /// The per-shard engine configuration (shard `s` seeds at `seed + s`).
    fn shard_config(&self, s: usize) -> EngineConfig {
        EngineConfig {
            max_counters: self.counters_per_shard,
            policy: self.policy,
            seed: self.seed.wrapping_add(s as u64),
            grow_from_small: self.grow_from_small,
        }
    }

    /// Spawns the shard workers over arbitrary backends and assembles
    /// the sketch (plus its publisher and, for durable banks, its
    /// checkpointer).
    fn assemble<B: ShardBackend<K>>(
        &self,
        backends: Vec<B>,
        shared: Arc<Shared<K>>,
        merge_config: MergeConfig,
        checkpoint_interval: Option<Duration>,
    ) -> ConcurrentSketch<K> {
        let mut senders = Vec::with_capacity(backends.len());
        let mut workers = Vec::with_capacity(backends.len());
        for (s, backend) in backends.into_iter().enumerate() {
            let (tx, rx) = mpsc::sync_channel::<Msg<K>>(self.channel_capacity);
            senders.push(tx);
            let handle = std::thread::Builder::new()
                .name(format!("streamfreq-shard-{s}"))
                .spawn(move || shard_worker(backend, rx))
                .expect("failed to spawn shard worker");
            workers.push(handle);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let publisher = self.publish_interval.map(|interval| {
            let shared = Arc::clone(&shared);
            let senders = senders.clone();
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("streamfreq-publisher".into())
                .spawn(move || {
                    let mut last = Instant::now();
                    while !stop.load(Ordering::SeqCst) {
                        if last.elapsed() >= interval {
                            publish_from_probes(&shared, &senders, merge_config);
                            last = Instant::now();
                        }
                        std::thread::sleep(PUBLISHER_TICK.min(interval));
                    }
                })
                .expect("failed to spawn publisher")
        });
        let checkpointer = shared.wal.is_some().then(|| {
            let shared = Arc::clone(&shared);
            let senders = senders.clone();
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("streamfreq-checkpointer".into())
                .spawn(move || checkpointer_loop(&shared, &senders, checkpoint_interval, &stop))
                .expect("failed to spawn checkpointer")
        });
        ConcurrentSketch {
            senders,
            workers,
            publisher,
            checkpointer,
            stop,
            shared,
            merge_config,
            drained_shards: None,
        }
    }

    /// Builds the sketch and spawns its shard workers (and the periodic
    /// publisher, if configured).
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if `num_shards` is zero or any
    /// engine configuration is invalid.
    pub fn build(self) -> Result<ConcurrentSketch<K>, Error> {
        let (merge_config, initial_snapshot_engine) = self.validated_parts()?;
        let backends: Vec<VolatileShard<K>> = (0..self.num_shards)
            .map(|s| self.shard_config(s).build_engine().map(VolatileShard))
            .collect::<Result<Vec<_>, _>>()?;
        let shared = Shared::new(
            Snapshot {
                engine: initial_snapshot_engine,
                epoch: 0,
                sealed: false,
            },
            None,
            0,
            0,
        );
        Ok(self.assemble(backends, shared, merge_config, None))
    }

    /// Builds a **durable** bank over the store directory `dir`: all
    /// shards share one bank-level group-commit write-ahead log (each
    /// shard's frames carry its stream tag), each shard keeps its
    /// checkpoints and manifest in `dir/shard-<s>/`, any existing state
    /// is recovered first (per-shard `checkpoint ⊕ replay` off the
    /// shared log — stores from the previous per-shard-log layout are
    /// migrated in place — then an Algorithm-5 merge of the recovered
    /// shards is installed as the initial snapshot), and a
    /// checkpointer thread services on-demand checkpoint requests
    /// ([`SnapshotReader::request_checkpoint`]) plus the optional
    /// periodic `checkpoint_interval`.
    ///
    /// Returns the sketch and the per-shard recovery reports.
    ///
    /// Persistence I/O failures on the hot path are fatal for the
    /// affected shard worker (it panics; [`ConcurrentSketch::drain`]
    /// surfaces the panic) — silently continuing without a log would
    /// break the recovery contract.
    ///
    /// # Errors
    /// [`PersistError::ConfigMismatch`] if `dir` holds a store built
    /// with a different bank configuration; [`PersistError::Corrupt`]
    /// for damaged on-disk state; I/O and configuration errors
    /// otherwise.
    pub fn build_durable(
        self,
        dir: &Path,
        durability: DurabilityOptions,
        checkpoint_interval: Option<Duration>,
    ) -> Result<(ConcurrentSketch<K>, Vec<RecoveryReport>), PersistError>
    where
        K: ItemCodec,
    {
        let (merge_config, _) = self.validated_parts()?;
        std::fs::create_dir_all(dir).map_err(|e| PersistError::io(dir, e))?;
        let meta = StoreMeta {
            num_shards: self.num_shards,
            counters_per_shard: self.counters_per_shard,
            merged_capacity: self.merged_capacity,
            policy: self.policy,
            seed: self.seed,
        };
        match read_store_meta(dir)? {
            Some(existing) if existing != meta => {
                return Err(PersistError::ConfigMismatch(format!(
                    "store in {} was created as {existing:?}, requested {meta:?}",
                    dir.display()
                )));
            }
            Some(_) => {}
            None => write_store_meta(dir, &meta)?,
        }
        let configs: Vec<EngineConfig> =
            (0..self.num_shards).map(|s| self.shard_config(s)).collect();
        let (stores, reports): (Vec<DurableSketch<K>>, Vec<RecoveryReport>) =
            open_bank::<K>(dir, &configs, durability)?
                .into_iter()
                .unzip();
        // Recovery merges the shards exactly as live snapshot publishes
        // do (Algorithm 5, shard order), so queries see the recovered
        // state before the first post-restart publish.
        let recovered = reports
            .iter()
            .any(|r| !matches!(r.source, crate::persist::RecoverySource::Fresh));
        let mut initial = merge_config.fresh_engine::<K>();
        let mut enqueued = 0u64;
        let mut last_ckpt = u64::MAX;
        for store in &stores {
            initial.merge(store.engine());
            enqueued += store.engine().stream_weight();
            last_ckpt = last_ckpt.min(store.last_checkpoint_epoch());
        }
        let bank_wal = Arc::clone(&stores[0].wal);
        let shared = Shared::new(
            Snapshot {
                engine: initial,
                epoch: u64::from(recovered),
                sealed: false,
            },
            Some(bank_wal),
            enqueued,
            if last_ckpt == u64::MAX { 0 } else { last_ckpt },
        );
        let backends: Vec<DurableShard<K>> = stores
            .into_iter()
            .map(|store| DurableShard { store })
            .collect();
        let sketch = self.assemble(backends, shared, merge_config, checkpoint_interval);
        Ok((sketch, reports))
    }
}

/// The checkpointer thread: services on-demand checkpoint requests and
/// the optional periodic interval with coordinated rounds — one
/// [`Msg::Checkpoint`] probe per shard, replies collected in shard
/// order. Reports the *minimum* epoch across shards (the round every
/// shard has completed).
fn checkpointer_loop<K: SketchKey>(
    shared: &Shared<K>,
    senders: &[SyncSender<Msg<K>>],
    interval: Option<Duration>,
    stop: &AtomicBool,
) {
    let mut last = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        let pending: Vec<SyncSender<u64>> = {
            let _rank = sanitize::rank_acquire(sanitize::rank::CKPT_REQUESTS, "ckpt requests");
            let mut queue = shared.ckpt_requests.lock().expect("ckpt queue poisoned");
            queue.drain(..).collect()
        };
        let due = interval.is_some_and(|iv| last.elapsed() >= iv);
        if pending.is_empty() && !due {
            std::thread::sleep(PUBLISHER_TICK);
            continue;
        }
        let mut replies = Vec::with_capacity(senders.len());
        let mut alive = true;
        for sender in senders {
            let (tx, rx) = mpsc::sync_channel(1);
            sanitize::check_send(sanitize::rank::SHARD_CHANNEL, "shard channel");
            if sender.send(Msg::Checkpoint(tx)).is_err() {
                alive = false;
                break;
            }
            replies.push(rx);
        }
        let mut round = u64::MAX;
        if alive {
            for reply in replies {
                match reply.recv() {
                    Ok(epoch) => round = round.min(epoch),
                    Err(_) => {
                        alive = false;
                        break;
                    }
                }
            }
        }
        if !alive {
            break;
        }
        shared.last_checkpoint_epoch.store(round, Ordering::SeqCst);
        for requester in pending {
            let _ = requester.send(round);
        }
        last = Instant::now();
    }
    // Unanswered requesters observe the disconnect and report failure.
    let _rank = sanitize::rank_acquire(sanitize::rank::CKPT_REQUESTS, "ckpt requests");
    shared
        .ckpt_requests
        .lock()
        .expect("ckpt queue poisoned")
        .clear();
}

/// What a shard worker drives: either a bare engine (volatile, the
/// original behaviour) or a [`DurableSketch`] that logs every batch
/// before applying it. Abstracting the storage keeps one worker loop —
/// and one set of ordering/determinism guarantees — for both modes.
trait ShardBackend<K: SketchKey>: Send + 'static {
    /// Applies one batch (logging it first, if durable).
    fn apply_batch(&mut self, batch: &[(K, u64)]);
    /// The live engine, for snapshot probes.
    fn engine(&self) -> &SketchEngine<K>;
    /// Persists a checkpoint and returns its epoch (0 if volatile).
    fn checkpoint(&mut self) -> u64;
    /// Final teardown at drain: persists a last checkpoint (if durable)
    /// and releases the engine.
    fn finish(self) -> SketchEngine<K>;
}

/// The volatile backend: exactly the pre-durability worker state.
struct VolatileShard<K: SketchKey>(SketchEngine<K>);

impl<K: SketchKey + Send + 'static> ShardBackend<K> for VolatileShard<K> {
    fn apply_batch(&mut self, batch: &[(K, u64)]) {
        self.0.update_batch(batch);
    }
    fn engine(&self) -> &SketchEngine<K> {
        &self.0
    }
    fn checkpoint(&mut self) -> u64 {
        0
    }
    fn finish(self) -> SketchEngine<K> {
        self.0
    }
}

/// The durable backend: every batch is encoded with the shard's stream
/// tag and staged on the bank's shared group-commit log before it is
/// applied; checkpoint probes run the bank-wide round. Persistence
/// failures are treated as fatal for the shard (the worker panics with
/// context and [`ConcurrentSketch::drain`] surfaces it): continuing to
/// ingest while silently not logging would break the recovery contract.
struct DurableShard<K: SketchKey + ItemCodec> {
    store: DurableSketch<K>,
}

impl<K: SketchKey + ItemCodec + Send + Sync + 'static> ShardBackend<K> for DurableShard<K> {
    fn apply_batch(&mut self, batch: &[(K, u64)]) {
        self.store
            .update_batch(batch)
            .expect("shard WAL append failed");
    }
    fn engine(&self) -> &SketchEngine<K> {
        self.store.engine()
    }
    fn checkpoint(&mut self) -> u64 {
        // Blocks until every sibling shard reaches its own checkpoint
        // probe of this round (the checkpointer broadcasts to all shards
        // before collecting replies, and drain finishes all workers).
        // The epoch gauge is written only by the checkpointer's
        // round-minimum: a per-shard update here would transiently
        // report an epoch other shards have not completed yet.
        self.store.checkpoint().expect("shard checkpoint failed")
    }
    fn finish(mut self) -> SketchEngine<K> {
        // Drain seals the bank; one last checkpoint makes the sealed
        // state instantly recoverable without any WAL replay.
        self.checkpoint();
        self.store.into_engine()
    }
}

/// The shard worker loop: drain the channel into the owned backend;
/// answer snapshot and checkpoint probes. Returns the engine when every
/// sender is gone (drain).
fn shard_worker<K: SketchKey, B: ShardBackend<K>>(
    mut backend: B,
    rx: Receiver<Msg<K>>,
) -> SketchEngine<K> {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Batch(batch) => backend.apply_batch(&batch),
            Msg::Probe(reply) => {
                // A dropped reply receiver (publisher raced shutdown)
                // must not kill the worker.
                let _ = reply.send(backend.engine().clone());
            }
            Msg::Checkpoint(reply) => {
                let _ = reply.send(backend.checkpoint());
            }
        }
    }
    backend.finish()
}

/// A bank of sketch shards ingesting concurrently behind bounded
/// channels, serving queries from periodically merged immutable
/// snapshots. See the [module docs](self) for the architecture,
/// staleness, and determinism contracts.
pub struct ConcurrentSketch<K: SketchKey + Send + Sync + 'static> {
    senders: Vec<SyncSender<Msg<K>>>,
    workers: Vec<JoinHandle<SketchEngine<K>>>,
    publisher: Option<JoinHandle<()>>,
    checkpointer: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    shared: Arc<Shared<K>>,
    merge_config: MergeConfig,
    drained_shards: Option<Vec<SketchEngine<K>>>,
}

impl<K: SketchKey + Send + Sync + 'static> ConcurrentSketch<K> {
    /// Starts a [`ConcurrentSketchBuilder`] for `num_shards` shards of
    /// `counters_per_shard` counters each.
    pub fn builder(num_shards: usize, counters_per_shard: usize) -> ConcurrentSketchBuilder<K> {
        ConcurrentSketchBuilder::new(num_shards, counters_per_shard)
    }

    /// Number of shard workers.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.workers.len().max(
            self.drained_shards
                .as_ref()
                .map_or(self.senders.len(), Vec::len),
        )
    }

    /// A new writer handle. Any number may exist across threads; their
    /// updates interleave arbitrarily (see the module docs for the
    /// determinism story).
    ///
    /// # Panics
    /// Panics if the sketch has been drained.
    pub fn writer(&self) -> ConcurrentWriter<K> {
        assert!(
            self.drained_shards.is_none(),
            "cannot create a writer after drain()"
        );
        ConcurrentWriter::new(self.senders.clone(), Arc::clone(&self.shared))
    }

    /// A cloneable read-side handle that outlives moves of `self`.
    pub fn reader(&self) -> SnapshotReader<K> {
        SnapshotReader {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The current published snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot<K>> {
        self.reader().snapshot()
    }

    /// Ingests one logical stream deterministically from up to
    /// `num_writers` scoped writer threads (clamped to the shard
    /// count): writer `w` owns a contiguous group of shards, scans the
    /// whole slice, and enqueues the items routing to its group, so each
    /// shard sees its items in stream order through a single producer.
    /// The drained final state is **identical for every `num_writers`**
    /// and equal to a sequential [`crate::ShardedSketch::update_batch`]
    /// ingest of the same bank configuration.
    ///
    /// Runs concurrently with snapshot publishing and queries; returns
    /// when every item is enqueued and the scoped writers have exited
    /// (items may still be in flight in the channels — publish or drain
    /// to observe them all).
    pub fn ingest_slice_parallel(&self, stream: &[(K, u64)], num_writers: usize)
    where
        K: Sync,
    {
        let num_shards = self.senders.len();
        assert!(num_shards > 0, "cannot ingest after drain()");
        let num_writers = num_writers.clamp(1, num_shards);
        let shards_per_writer = num_shards.div_ceil(num_writers);
        std::thread::scope(|scope| {
            for (group, senders) in self.senders.chunks(shards_per_writer).enumerate() {
                let first_shard = group * shards_per_writer;
                let shared = &self.shared;
                scope.spawn(move || {
                    let group_len = senders.len();
                    let mut bufs: Vec<Vec<(K, u64)>> = (0..group_len)
                        .map(|_| Vec::with_capacity(WRITER_BUF))
                        .collect();
                    let flush = |buf: &mut Vec<(K, u64)>, local: usize| {
                        let batch = std::mem::replace(buf, Vec::with_capacity(WRITER_BUF));
                        let weight: u64 = batch.iter().map(|&(_, w)| w).sum();
                        sanitize::check_send(sanitize::rank::SHARD_CHANNEL, "shard channel");
                        senders[local]
                            .send(Msg::Batch(batch))
                            .expect("shard worker alive while senders exist");
                        shared.enqueued_weight.fetch_add(weight, Ordering::SeqCst);
                    };
                    for (item, weight) in stream {
                        let s = shard_of(item, num_shards);
                        if s < first_shard || s >= first_shard + group_len {
                            continue;
                        }
                        let local = s - first_shard;
                        bufs[local].push((item.clone(), *weight));
                        if bufs[local].len() == WRITER_BUF {
                            flush(&mut bufs[local], local);
                        }
                    }
                    for (local, buf) in bufs.iter_mut().enumerate() {
                        if !buf.is_empty() {
                            flush(buf, local);
                        }
                    }
                });
            }
        });
    }

    /// Synchronously publishes a fresh merged snapshot covering every
    /// update whose enqueue completed before this call. Returns the
    /// published snapshot (or the sealed final snapshot post-drain).
    pub fn publish_now(&self) -> Arc<Snapshot<K>> {
        publish_from_probes(&self.shared, &self.senders, self.merge_config);
        self.snapshot()
    }

    /// Synchronously checkpoints every shard (durable banks only): a
    /// coordinated round covering every update whose enqueue completed
    /// before this call. Returns the epoch all shards reached, or `None`
    /// for volatile banks / after drain / on timeout (30 s).
    pub fn checkpoint_now(&self) -> Option<u64> {
        self.reader().request_checkpoint(Duration::from_secs(30))
    }

    /// Graceful shutdown of ingestion: stops the periodic publisher,
    /// closes the shard channels, joins every worker after it drains its
    /// backlog, publishes the final **sealed** merged snapshot, and
    /// returns the per-shard engines. Queries through
    /// [`Self::snapshot`] / [`SnapshotReader`] keep working against the
    /// final view.
    ///
    /// Outstanding [`ConcurrentWriter`] handles keep their channels
    /// open, so they must all be dropped before `drain` can join the
    /// workers; `drain` blocks until then. Idempotent.
    pub fn drain(&mut self) -> &[SketchEngine<K>] {
        if self.drained_shards.is_none() {
            self.stop.store(true, Ordering::SeqCst);
            if let Some(publisher) = self.publisher.take() {
                publisher.join().expect("publisher thread panicked");
            }
            if let Some(checkpointer) = self.checkpointer.take() {
                checkpointer.join().expect("checkpointer thread panicked");
            }
            self.senders.clear();
            let shards: Vec<SketchEngine<K>> = self
                .workers
                .drain(..)
                .map(|w| w.join().expect("shard worker panicked"))
                .collect();
            let _guard = self
                .shared
                .publish_lock
                .lock()
                .expect("publish lock poisoned");
            let mut merged = self.merge_config.fresh_engine();
            for shard in &shards {
                merged.merge(shard);
            }
            install_snapshot(&self.shared, merged, true);
            self.drained_shards = Some(shards);
        }
        self.drained_shards
            .as_deref()
            .expect("drained state just installed")
    }

    /// The per-shard engines of a drained sketch, if [`Self::drain`]
    /// has run.
    pub fn drained_shards(&self) -> Option<&[SketchEngine<K>]> {
        self.drained_shards.as_deref()
    }
}

impl<K: SketchKey + Send + Sync + 'static> Drop for ConcurrentSketch<K> {
    /// Best-effort shutdown so dropping a live sketch does not leak
    /// threads: equivalent to [`Self::drain`] minus the final publish
    /// if one already happened. Blocks until outstanding writers drop,
    /// like `drain`.
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(publisher) = self.publisher.take() {
            let _ = publisher.join();
        }
        if let Some(checkpointer) = self.checkpointer.take() {
            let _ = checkpointer.join();
        }
        self.senders.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_stream(len: u64) -> Vec<(u64, u64)> {
        (0..len)
            .map(|i| {
                let item = (i * 2_654_435_761) % 3_000;
                let w = if item < 4 { 500 } else { i % 11 + 1 };
                (item, w)
            })
            .collect()
    }

    #[test]
    fn initial_snapshot_is_empty_epoch_zero() {
        let sketch: ConcurrentSketch<u64> = ConcurrentSketch::builder(2, 32).build().unwrap();
        let snap = sketch.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.stream_weight(), 0);
        assert!(!snap.is_sealed());
    }

    #[test]
    fn publish_now_observes_flushed_writer() {
        let sketch: ConcurrentSketch<u64> = ConcurrentSketch::builder(4, 64).build().unwrap();
        let mut writer = sketch.writer();
        for (item, w) in test_stream(10_000) {
            writer.write(item, w);
        }
        writer.flush();
        let enqueued = sketch.reader().enqueued_weight();
        let snap = sketch.publish_now();
        assert_eq!(snap.epoch(), 1);
        assert!(
            snap.stream_weight() >= enqueued,
            "snapshot {} misses enqueued weight {}",
            snap.stream_weight(),
            enqueued
        );
        drop(writer);
    }

    #[test]
    fn drain_publishes_sealed_complete_snapshot() {
        let stream = test_stream(30_000);
        let total: u64 = stream.iter().map(|&(_, w)| w).sum();
        let mut sketch: ConcurrentSketch<u64> = ConcurrentSketch::builder(4, 64).build().unwrap();
        sketch.ingest_slice_parallel(&stream, 2);
        let reader = sketch.reader();
        let shards = sketch.drain();
        assert_eq!(shards.len(), 4);
        let snap = reader.snapshot();
        assert!(snap.is_sealed());
        assert!(reader.is_sealed());
        assert_eq!(snap.stream_weight(), total);
        // Drain is idempotent and queries keep working.
        sketch.drain();
        assert_eq!(sketch.snapshot().stream_weight(), total);
    }

    #[test]
    fn epochs_strictly_increase() {
        let sketch: ConcurrentSketch<u64> = ConcurrentSketch::builder(2, 32).build().unwrap();
        let mut writer = sketch.writer();
        writer.write(7, 100);
        writer.flush();
        let a = sketch.publish_now().epoch();
        let b = sketch.publish_now().epoch();
        assert!(b > a);
        drop(writer);
    }

    #[test]
    fn periodic_publisher_advances_epochs() {
        let sketch: ConcurrentSketch<u64> = ConcurrentSketch::builder(2, 32)
            .publish_every(Duration::from_millis(5))
            .build()
            .unwrap();
        let mut writer = sketch.writer();
        let deadline = Instant::now() + Duration::from_secs(10);
        while sketch.reader().epoch() < 3 {
            writer.write(1, 1);
            writer.flush();
            assert!(Instant::now() < deadline, "publisher made no progress");
            std::thread::sleep(Duration::from_millis(2));
        }
        drop(writer);
    }

    #[test]
    fn builder_rejects_zero_shards() {
        assert!(matches!(
            ConcurrentSketch::<u64>::builder(0, 16).build(),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn builder_rejects_invalid_merged_capacity() {
        // An invalid merged-export configuration must surface as Err,
        // not a panic deep inside the first publish.
        assert!(matches!(
            ConcurrentSketch::<u64>::builder(2, 16)
                .merged_capacity(0)
                .build(),
            Err(Error::InvalidConfig(_))
        ));
    }

    fn tmp_store(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("streamfreq-concurrent-durable")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durability() -> DurabilityOptions {
        DurabilityOptions {
            fsync: crate::persist::FsyncPolicy::Off,
            segment_bytes: 1 << 20,
        }
    }

    #[test]
    fn durable_bank_survives_reopen_with_exact_state() {
        let dir = tmp_store("reopen");
        let stream = test_stream(25_000);
        let total: u64 = stream.iter().map(|&(_, w)| w).sum();

        let (mut sketch, reports) = ConcurrentSketch::<u64>::builder(4, 64)
            .seed(3)
            .build_durable(&dir, durability(), None)
            .unwrap();
        assert!(reports
            .iter()
            .all(|r| matches!(r.source, crate::persist::RecoverySource::Fresh)));
        assert!(sketch.reader().is_durable());
        sketch.ingest_slice_parallel(&stream, 2);
        let epoch = sketch.checkpoint_now().expect("checkpoint round");
        assert!(epoch >= 1);
        assert_eq!(sketch.reader().last_checkpoint_epoch(), epoch);
        sketch.drain();
        let sealed_fp = sketch.snapshot().engine().state_fingerprint();
        assert_eq!(sketch.snapshot().stream_weight(), total);
        drop(sketch);

        // Reopen: the recovered initial snapshot equals the sealed one,
        // before any new ingestion or publish.
        let (mut sketch, reports) = ConcurrentSketch::<u64>::builder(4, 64)
            .seed(3)
            .build_durable(&dir, durability(), None)
            .unwrap();
        assert!(reports
            .iter()
            .all(|r| matches!(r.source, crate::persist::RecoverySource::CheckpointOnly)));
        let snap = sketch.snapshot();
        assert_eq!(snap.epoch(), 1, "recovered state published at epoch 1");
        assert_eq!(snap.stream_weight(), total);
        assert_eq!(snap.engine().state_fingerprint(), sealed_fp);
        assert_eq!(sketch.reader().enqueued_weight(), total);

        // And the bank keeps ingesting where it left off.
        sketch.ingest_slice_parallel(&stream, 1);
        sketch.drain();
        assert_eq!(sketch.snapshot().stream_weight(), 2 * total);
    }

    #[test]
    fn checkpoint_truncates_wal() {
        let dir = tmp_store("truncate");
        let (mut sketch, _) = ConcurrentSketch::<u64>::builder(2, 64)
            .build_durable(&dir, durability(), None)
            .unwrap();
        sketch.ingest_slice_parallel(&test_stream(20_000), 1);
        sketch.publish_now(); // barrier: all batches applied (FIFO)
        let before = sketch.reader().wal_bytes();
        assert!(before > 0);
        sketch.checkpoint_now().unwrap();
        let after = sketch.reader().wal_bytes();
        assert!(after < before, "WAL not truncated: {before} -> {after}");
        sketch.drain();
    }

    #[test]
    fn periodic_checkpointer_advances_epochs() {
        let dir = tmp_store("periodic");
        let (sketch, _) = ConcurrentSketch::<u64>::builder(2, 32)
            .build_durable(&dir, durability(), Some(Duration::from_millis(5)))
            .unwrap();
        let mut writer = sketch.writer();
        let deadline = Instant::now() + Duration::from_secs(10);
        while sketch.reader().last_checkpoint_epoch() < 2 {
            writer.write(1, 1);
            writer.flush();
            assert!(Instant::now() < deadline, "checkpointer made no progress");
            std::thread::sleep(Duration::from_millis(2));
        }
        drop(writer);
    }

    #[test]
    fn volatile_bank_reports_no_durability() {
        let sketch: ConcurrentSketch<u64> = ConcurrentSketch::builder(2, 32).build().unwrap();
        assert!(!sketch.reader().is_durable());
        assert_eq!(sketch.reader().wal_bytes(), 0);
        assert_eq!(sketch.checkpoint_now(), None);
        assert_eq!(
            sketch
                .reader()
                .request_checkpoint(Duration::from_millis(10)),
            None
        );
    }

    #[test]
    fn durable_rejects_reconfigured_store() {
        let dir = tmp_store("reconfigure");
        let (sketch, _) = ConcurrentSketch::<u64>::builder(2, 32)
            .build_durable(&dir, durability(), None)
            .unwrap();
        drop(sketch);
        match ConcurrentSketch::<u64>::builder(4, 32).build_durable(&dir, durability(), None) {
            Err(PersistError::ConfigMismatch(_)) => {}
            Err(other) => panic!("wrong error: {other:?}"),
            Ok(_) => panic!("reconfigured store accepted"),
        }
    }

    #[test]
    fn string_keys_serve_concurrently() {
        let mut sketch: ConcurrentSketch<String> =
            ConcurrentSketch::builder(2, 64).seed(9).build().unwrap();
        let mut writer = sketch.writer();
        // 30 distinct flows fit the 64-counter merged view outright, so
        // every flow stays tracked with an exact estimate.
        for i in 0..5_000u64 {
            writer.write(format!("flow-{}", i % 30), i % 7 + 1);
        }
        drop(writer); // flush via Drop
        let snap = sketch.publish_now();
        assert!(snap.stream_weight() > 0);
        sketch.drain();
        let sealed = sketch.snapshot();
        assert!(sealed.is_sealed());
        assert!(sealed.estimate(&"flow-1".to_string()) > 0);
    }
}
