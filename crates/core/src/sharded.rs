//! [`ShardedSketch`]: hash-partitioned, multi-core ingestion over a bank
//! of independent sketch engines, generic over the item type.
//!
//! The paper's summary is single-threaded by construction; what makes it
//! *deployable* at line rate is that it merges (Algorithm 5, Theorem 5),
//! so a stream can be split across cores and the per-core summaries
//! combined without the unbounded error compounding of heap-based Space
//! Saving merges. This module exploits a stronger property than generic
//! merging: items are routed to shards **by hash**, so every occurrence
//! of an item lands in the same shard and that shard's counter bounds for
//! the item are *global* bounds — no cross-shard error at query time at
//! all. Algorithm-5 merging is still available ([`ShardedSketch::merged`])
//! when a single exportable summary is needed; its error adds across
//! shards exactly as Theorem 5 prescribes.
//!
//! Since the engine is generic, so is the bank: `ShardedSketch<String>`
//! gives multi-core ingestion for arbitrary item types — the FDCMSS-style
//! deployments over flow tuples and string keys get the same pipeline as
//! `u64` telemetry.
//!
//! Shard routing uses the upper 32 bits of the same 64-bit hash the
//! counter tables probe with ([`crate::engine::SketchKey::hash_key`]);
//! the tables use the low `lg ≤ 31` bits, so routing and probing stay
//! independent.
//!
//! Ingestion from multiple threads uses scoped threads and needs no
//! locks: each thread owns a disjoint set of shards outright and scans
//! the shared input slice, claiming the items that route to it. Every
//! shard therefore sees its items in stream order, which makes the final
//! state **independent of the thread count** — byte-identical to a
//! sequential run — because the batch path is state-identical to scalar
//! updates under any chunking (see [`SketchEngine::update_batch`]).
//!
//! # Example
//!
//! ```
//! use streamfreq_core::{ErrorType, ShardedSketch};
//!
//! let stream: Vec<(u64, u64)> = (0..100_000)
//!     .map(|i| (if i % 10 == 0 { 7 } else { i }, 1))
//!     .collect();
//! let mut sharded = ShardedSketch::new(4, 256);
//! sharded.ingest_parallel(&stream, 4);
//! assert_eq!(sharded.stream_weight(), 100_000);
//! let top = sharded.frequent_items(ErrorType::NoFalsePositives);
//! assert_eq!(top[0].item, 7);
//! ```

use core::marker::PhantomData;

use crate::engine::{SketchEngine, SketchEngineBuilder, SketchKey, DEFAULT_SEED};
use crate::error::Error;
use crate::purge::PurgePolicy;
use crate::result::{sort_rows_descending, ErrorType, Row};

/// Items buffered per shard before flushing into its batch path during
/// parallel ingestion: big enough to amortize routing, small enough that
/// per-shard buffers stay cache-friendly.
const INGEST_BUF: usize = 4096;

/// A bank of hash-partitioned [`SketchEngine`] shards that can ingest one
/// logical stream from many threads and answer the same queries.
///
/// See the [module docs](self) for the partitioning and threading model.
#[derive(Clone, Debug)]
pub struct ShardedSketch<K: SketchKey = u64> {
    shards: Vec<SketchEngine<K>>,
    /// Per-shard buffers reused by [`Self::update_batch`].
    route_bufs: Vec<Vec<(K, u64)>>,
}

/// Configures and constructs a [`ShardedSketch`].
#[derive(Clone, Debug)]
pub struct ShardedSketchBuilder<K: SketchKey = u64> {
    num_shards: usize,
    counters_per_shard: usize,
    policy: PurgePolicy,
    seed: u64,
    grow_from_small: bool,
    _key: PhantomData<K>,
}

impl<K: SketchKey> ShardedSketchBuilder<K> {
    /// Starts a builder for `num_shards` shards of `counters_per_shard`
    /// counters each.
    pub fn new(num_shards: usize, counters_per_shard: usize) -> Self {
        Self {
            num_shards,
            counters_per_shard,
            policy: PurgePolicy::default(),
            seed: DEFAULT_SEED,
            grow_from_small: true,
            _key: PhantomData,
        }
    }

    /// Selects the purge policy for every shard (default: SMED).
    pub fn policy(mut self, policy: PurgePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Seeds the shards' purge samplers; shard `s` uses `seed + s` so
    /// sampling streams are distinct but the whole bank is deterministic.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// If `false`, every shard preallocates its maximum table up front.
    pub fn grow_from_small(mut self, grow: bool) -> Self {
        self.grow_from_small = grow;
        self
    }

    /// Builds the sharded sketch.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if `num_shards` is zero or any
    /// per-shard configuration is invalid (see [`SketchEngineBuilder`]).
    pub fn build(self) -> Result<ShardedSketch<K>, Error> {
        if self.num_shards == 0 {
            return Err(Error::InvalidConfig("num_shards must be positive".into()));
        }
        let shards = (0..self.num_shards)
            .map(|s| {
                SketchEngineBuilder::new(self.counters_per_shard)
                    .policy(self.policy)
                    .seed(self.seed.wrapping_add(s as u64))
                    .grow_from_small(self.grow_from_small)
                    .build()
            })
            .collect::<Result<Vec<_>, _>>()?;
        let route_bufs = vec![Vec::new(); self.num_shards];
        Ok(ShardedSketch { shards, route_bufs })
    }
}

impl<K: SketchKey> ShardedSketch<K> {
    /// Creates a SMED bank of `num_shards` shards with
    /// `counters_per_shard` counters each and default seeding.
    ///
    /// # Panics
    /// Panics on invalid configuration; use [`Self::builder`] to handle
    /// errors.
    pub fn new(num_shards: usize, counters_per_shard: usize) -> Self {
        ShardedSketchBuilder::new(num_shards, counters_per_shard)
            .build()
            .expect("invalid sharded configuration")
    }

    /// Starts a [`ShardedSketchBuilder`].
    pub fn builder(num_shards: usize, counters_per_shard: usize) -> ShardedSketchBuilder<K> {
        ShardedSketchBuilder::new(num_shards, counters_per_shard)
    }

    /// Number of shards in the bank.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `item` routes to: a Lemire reduction of the upper
    /// 32 hash bits, leaving the low bits for table probing.
    #[inline]
    pub fn shard_of(&self, item: &K) -> usize {
        shard_of(item, self.shards.len())
    }

    /// Read access to the underlying shards (for inspection/metrics).
    pub fn shards(&self) -> &[SketchEngine<K>] {
        &self.shards
    }

    /// Total weighted stream length across all shards, saturating like
    /// [`SketchEngine::stream_weight`].
    pub fn stream_weight(&self) -> u64 {
        let total: u128 = self.shards.iter().map(|s| s.stream_weight() as u128).sum();
        total.min(u64::MAX as u128) as u64
    }

    /// True if the total stream weight exceeded `u64::MAX` — either
    /// inside a shard or when summing across shards — and
    /// [`Self::stream_weight`] is pinned at the saturation point.
    pub fn stream_weight_saturated(&self) -> bool {
        let total: u128 = self.shards.iter().map(|s| s.stream_weight() as u128).sum();
        total > u64::MAX as u128 || self.shards.iter().any(|s| s.stream_weight_saturated())
    }

    /// Number of update operations processed across all shards.
    pub fn num_updates(&self) -> u64 {
        self.shards.iter().map(|s| s.num_updates()).sum()
    }

    /// Number of purge operations across all shards.
    pub fn num_purges(&self) -> u64 {
        self.shards.iter().map(|s| s.num_purges()).sum()
    }

    /// Counters currently assigned across all shards.
    pub fn num_counters(&self) -> usize {
        self.shards.iter().map(|s| s.num_counters()).sum()
    }

    /// Bytes of heap memory held by all shard tables.
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.memory_bytes()).sum()
    }

    /// The worst per-item estimation error over the bank: because items
    /// are hash-partitioned, an item's error is its *own shard's* offset,
    /// so this is `max`, not `Σ`, of the shard offsets — tighter than the
    /// Theorem 5 error of a merged summary.
    pub fn maximum_error(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.maximum_error())
            .max()
            .unwrap_or(0)
    }

    /// Routes one weighted update to its shard.
    #[inline]
    pub fn update(&mut self, item: K, weight: u64) {
        let s = self.shard_of(&item);
        self.shards[s].update(item, weight);
    }

    /// Routes a unit update to its shard.
    #[inline]
    pub fn update_one(&mut self, item: K) {
        self.update(item, 1);
    }

    /// Batched single-threaded ingestion: partitions the slice into
    /// per-shard runs (preserving stream order within each shard), then
    /// drives every shard's prefetching batch path.
    pub fn update_batch(&mut self, batch: &[(K, u64)]) {
        let n = self.shards.len();
        if n == 1 {
            self.shards[0].update_batch(batch);
            return;
        }
        for buf in &mut self.route_bufs {
            buf.clear();
        }
        for (item, weight) in batch {
            self.route_bufs[shard_of(item, n)].push((item.clone(), *weight));
        }
        for (s, shard) in self.shards.iter_mut().enumerate() {
            shard.update_batch(&self.route_bufs[s]);
        }
    }

    /// Multi-threaded ingestion of one logical stream.
    ///
    /// Spawns up to `num_threads` scoped threads (clamped to the shard
    /// count); each thread takes ownership of a contiguous group of
    /// shards, scans the whole input, and batch-feeds the items that
    /// route to its group. No locks, no channels — the only shared state
    /// is the read-only input slice.
    ///
    /// The resulting state is **identical for every `num_threads`**,
    /// including `1`: each shard always consumes exactly its items in
    /// stream order through the batch path.
    pub fn ingest_parallel(&mut self, stream: &[(K, u64)], num_threads: usize)
    where
        K: Send + Sync,
    {
        let num_shards = self.shards.len();
        let num_threads = num_threads.clamp(1, num_shards);
        let shards_per_thread = num_shards.div_ceil(num_threads);
        std::thread::scope(|scope| {
            for (group_index, shard_group) in self.shards.chunks_mut(shards_per_thread).enumerate()
            {
                let first_shard = group_index * shards_per_thread;
                scope.spawn(move || {
                    let group_len = shard_group.len();
                    // Not `vec![Vec::with_capacity(..); n]`: cloning an
                    // empty Vec drops its capacity, which would make
                    // every buffer but the last reallocate on the hot
                    // ingestion path.
                    let mut bufs: Vec<Vec<(K, u64)>> = (0..group_len)
                        .map(|_| Vec::with_capacity(INGEST_BUF))
                        .collect();
                    for (item, weight) in stream {
                        let s = shard_of(item, num_shards);
                        if s < first_shard || s >= first_shard + group_len {
                            continue;
                        }
                        let local = s - first_shard;
                        bufs[local].push((item.clone(), *weight));
                        if bufs[local].len() == INGEST_BUF {
                            shard_group[local].update_batch(&bufs[local]);
                            bufs[local].clear();
                        }
                    }
                    for (local, buf) in bufs.iter().enumerate() {
                        shard_group[local].update_batch(buf);
                    }
                });
            }
        });
    }

    /// Point estimate for `item` from its owning shard. Because sharding
    /// is by item hash, this is exactly the estimate a per-shard stream
    /// would produce — the error band is the owning shard's offset.
    #[inline]
    pub fn estimate(&self, item: &K) -> u64 {
        self.shards[self.shard_of(item)].estimate(item)
    }

    /// Certified lower bound on `item`'s global frequency.
    #[inline]
    pub fn lower_bound(&self, item: &K) -> u64 {
        self.shards[self.shard_of(item)].lower_bound(item)
    }

    /// Certified upper bound on `item`'s global frequency.
    #[inline]
    pub fn upper_bound(&self, item: &K) -> u64 {
        self.shards[self.shard_of(item)].upper_bound(item)
    }

    /// Union of every shard's reported rows above `threshold`, sorted by
    /// descending estimate. Each shard applies its own error clamp, which
    /// is at most (and usually far below) a merged summary's.
    pub fn frequent_items_with_threshold(
        &self,
        threshold: u64,
        error_type: ErrorType,
    ) -> Vec<Row<K>>
    where
        K: Ord,
    {
        let mut rows: Vec<Row<K>> = self
            .shards
            .iter()
            .flat_map(|s| s.frequent_items_with_threshold(threshold, error_type))
            .collect();
        sort_rows_descending(&mut rows);
        rows
    }

    /// [`Self::frequent_items_with_threshold`] at the bank's
    /// [`Self::maximum_error`].
    pub fn frequent_items(&self, error_type: ErrorType) -> Vec<Row<K>>
    where
        K: Ord,
    {
        self.frequent_items_with_threshold(self.maximum_error(), error_type)
    }

    /// (φ, ε)-heavy hitters over the combined stream, at the exact
    /// `⌊phi · N⌋` threshold of [`crate::bounds::phi_threshold`].
    ///
    /// # Panics
    /// Panics if `phi` is outside `[0, 1]`.
    pub fn heavy_hitters(&self, phi: f64, error_type: ErrorType) -> Vec<Row<K>>
    where
        K: Ord,
    {
        let threshold = crate::bounds::phi_threshold(phi, self.stream_weight());
        self.frequent_items_with_threshold(threshold, error_type)
    }

    /// Collapses the bank into one engine of `max_counters` counters via
    /// Algorithm 5: every shard is merged in, offsets (and hence the
    /// error budget) adding exactly as Theorem 5 prescribes. The export
    /// inherits the bank's policy and base seed. Use this when a single
    /// summary must leave the process — for queries against the live
    /// bank, the direct methods are tighter.
    ///
    /// For `u64` banks the result serializes with [`crate::codec`]'s
    /// wire format (or wrap it: `FreqSketch::from(bank.merged())`).
    pub fn merged_with_capacity(&self, max_counters: usize) -> SketchEngine<K> {
        let mut out = SketchEngineBuilder::new(max_counters)
            .policy(self.shards[0].policy())
            .seed(self.shards[0].seed())
            .build()
            .expect("shard configuration already validated");
        for shard in &self.shards {
            out.merge(shard);
        }
        out
    }

    /// [`Self::merged_with_capacity`] at the per-shard counter budget.
    pub fn merged(&self) -> SketchEngine<K> {
        let k = self.shards[0].max_counters();
        self.merged_with_capacity(k)
    }

    /// Test/debug aid: verifies every shard's invariants and that each
    /// tracked item actually routes to the shard tracking it.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        for (s, shard) in self.shards.iter().enumerate() {
            shard.check_invariants();
            for (item, _) in shard.counters() {
                assert_eq!(
                    self.shard_of(item),
                    s,
                    "an item tracked by shard {s} routes elsewhere"
                );
            }
        }
    }
}

/// Routes `item` to a shard: Lemire-reduces the upper 32 bits of the
/// table hash onto `[0, num_shards)`. Free function so ingestion threads
/// can route without borrowing the bank; shared with
/// [`crate::concurrent`] so the serving layer partitions identically.
#[inline]
pub(crate) fn shard_of<K: SketchKey>(item: &K, num_shards: usize) -> usize {
    let high = item.hash_key() >> 32;
    ((high * num_shards as u64) >> 32) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn skewed_stream(len: u64) -> Vec<(u64, u64)> {
        (0..len)
            .map(|i| {
                let item = (i * 2_654_435_761) % 5_000;
                let w = if item < 5 { 1_000 } else { i % 13 + 1 };
                (item, w)
            })
            .collect()
    }

    #[test]
    fn routing_is_total_and_stable() {
        let bank: ShardedSketch = ShardedSketch::new(8, 64);
        for item in 0..10_000u64 {
            let s = bank.shard_of(&item);
            assert!(s < 8);
            assert_eq!(s, bank.shard_of(&item), "routing must be pure");
        }
    }

    #[test]
    fn single_threaded_matches_scalar_routing() {
        let stream = skewed_stream(30_000);
        let mut scalar: ShardedSketch = ShardedSketch::new(4, 128);
        for &(item, w) in &stream {
            scalar.update(item, w);
        }
        let mut batched: ShardedSketch = ShardedSketch::new(4, 128);
        batched.update_batch(&stream);
        batched.check_invariants();
        for s in 0..4 {
            assert_eq!(
                batched.shards()[s].serialize_to_bytes(),
                scalar.shards()[s].serialize_to_bytes(),
                "shard {s} diverged"
            );
        }
    }

    #[test]
    fn thread_count_does_not_change_state() {
        let stream = skewed_stream(40_000);
        let reference = {
            let mut bank: ShardedSketch = ShardedSketch::new(8, 96);
            bank.ingest_parallel(&stream, 1);
            bank
        };
        for threads in [2usize, 3, 4, 8, 64] {
            let mut bank: ShardedSketch = ShardedSketch::new(8, 96);
            bank.ingest_parallel(&stream, threads);
            for s in 0..8 {
                assert_eq!(
                    bank.shards()[s].serialize_to_bytes(),
                    reference.shards()[s].serialize_to_bytes(),
                    "shard {s} diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn bounds_bracket_truth_across_shards() {
        let stream = skewed_stream(60_000);
        let mut bank: ShardedSketch = ShardedSketch::new(4, 64);
        bank.ingest_parallel(&stream, 4);
        bank.check_invariants();
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(item, w) in &stream {
            *truth.entry(item).or_insert(0) += w;
        }
        assert_eq!(bank.stream_weight(), truth.values().sum::<u64>());
        for (&item, &f) in &truth {
            assert!(bank.lower_bound(&item) <= f, "lb violated for {item}");
            assert!(bank.upper_bound(&item) >= f, "ub violated for {item}");
        }
    }

    #[test]
    fn heavy_hitters_across_shards() {
        let mut bank: ShardedSketch = ShardedSketch::new(4, 64);
        let mut stream: Vec<(u64, u64)> = Vec::new();
        for i in 0..20_000u64 {
            stream.push((42, 100));
            stream.push((i % 3_000 + 100, 1));
        }
        bank.ingest_parallel(&stream, 2);
        let hh = bank.heavy_hitters(0.4, ErrorType::NoFalsePositives);
        assert_eq!(hh.len(), 1);
        assert_eq!(hh[0].item, 42);
    }

    #[test]
    fn generic_string_bank_ingests_in_parallel() {
        // The sharded pipeline is no longer u64-only: string keys route,
        // ingest from threads, and answer bounded queries.
        let stream: Vec<(String, u64)> = (0..30_000u64)
            .map(|i| {
                let item = format!("flow-{}", (i * 2_654_435_761) % 700);
                (item, i % 9 + 1)
            })
            .collect();
        let mut bank: ShardedSketch<String> = ShardedSketch::new(4, 96);
        bank.ingest_parallel(&stream, 4);
        bank.check_invariants();
        let mut reference: ShardedSketch<String> = ShardedSketch::new(4, 96);
        for (item, w) in &stream {
            reference.update(item.clone(), *w);
        }
        let mut truth: HashMap<&String, u64> = HashMap::new();
        for (item, w) in &stream {
            *truth.entry(item).or_insert(0) += w;
        }
        for (item, &f) in &truth {
            assert!(bank.lower_bound(item) <= f);
            assert!(bank.upper_bound(item) >= f);
            assert_eq!(bank.estimate(item), reference.estimate(item));
        }
        // State equality shard by shard, via the engine fingerprint.
        for (a, b) in bank.shards().iter().zip(reference.shards()) {
            assert_eq!(a.state_fingerprint(), b.state_fingerprint());
        }
    }

    #[test]
    fn merged_obeys_theorem5_bound() {
        let stream = skewed_stream(80_000);
        let mut bank: ShardedSketch = ShardedSketch::builder(4, 64).seed(11).build().unwrap();
        bank.ingest_parallel(&stream, 4);
        let merged = bank.merged();
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(item, w) in &stream {
            *truth.entry(item).or_insert(0) += w;
        }
        for (&item, &f) in &truth {
            assert!(merged.lower_bound(&item) <= f, "merged lb violated");
            assert!(merged.upper_bound(&item) >= f, "merged ub violated");
        }
        // Theorem 5: merged error within the a-priori budget for the
        // combined stream.
        let bound = merged.a_priori_error(merged.stream_weight());
        assert!(merged.maximum_error() <= bound);
        // The live bank's per-item error is never worse than merged.
        assert!(bank.maximum_error() <= merged.maximum_error());
        // The export inherits the bank's configuration.
        assert_eq!(merged.policy(), bank.shards()[0].policy());
        assert_eq!(merged.seed(), 11);
    }

    #[test]
    fn builder_rejects_zero_shards() {
        assert!(matches!(
            ShardedSketch::<u64>::builder(0, 16).build(),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn thread_clamp_handles_extremes() {
        let stream = skewed_stream(5_000);
        let mut bank: ShardedSketch = ShardedSketch::new(2, 32);
        bank.ingest_parallel(&stream, 0); // clamps to 1
        let mut more_threads_than_shards: ShardedSketch = ShardedSketch::new(2, 32);
        more_threads_than_shards.ingest_parallel(&stream, 16); // clamps to 2
        assert_eq!(
            bank.stream_weight(),
            more_threads_than_shards.stream_weight()
        );
    }
}
