//! Compact binary serialization of [`FreqSketch`].
//!
//! Mergeable summaries matter because they move between machines (§3's
//! motivating scenarios: per-hour summaries at query time, partitioned
//! processing, geo-distributed aggregation). That requires a stable wire
//! format. The encoding below is little-endian, versioned, and stores only
//! the assigned counters — an underfilled sketch of capacity 24 576 costs a
//! few hundred bytes on the wire, not 576 KiB.
//!
//! The codec is implemented on the `u64` instantiation of the generic
//! engine ([`SketchEngine<u64>`]), so every `u64`-keyed summary — a
//! [`FreqSketch`], a [`crate::ShardedSketch`] shard, or a merged export —
//! serializes identically. The byte layout is unchanged from the
//! pre-engine implementation (pinned by the round-trip tests below).
//!
//! ## Layout (version 1)
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `"SFQ1"` |
//! | 4      | 1    | format version (`1`) |
//! | 5      | 1    | policy tag (0 = SampleQuantile, 1 = ExactKStar, 2 = GlobalMin) |
//! | 6      | 2    | flags (bit 0: stream weight saturated; bit 1: error offset saturated; rest reserved, zero) |
//! | 8      | 8    | `max_counters` |
//! | 16     | 8    | `seed` |
//! | 24     | 8    | `offset` (cumulative decrement) |
//! | 32     | 8    | `stream_weight` |
//! | 40     | 8    | `num_updates` |
//! | 48     | 8    | `num_purges` |
//! | 56     | 8    | policy parameter A (`sample_size`, or `fraction` bits) |
//! | 64     | 8    | policy parameter B (`quantile` bits, else zero) |
//! | 72     | 32   | purge-sampler state (xoshiro256\*\* state words) |
//! | 104    | 4    | `num_active` |
//! | 108    | 16·n | `num_active` × (item `u64`, count `u64`) |
//!
//! Deserialization reconstructs the counter table by re-inserting the
//! pairs; because the item hash is deterministic ([`crate::hashing`]), the
//! rebuilt table is operationally identical, and because the sampler state
//! is carried along, *continuing to update a round-tripped sketch produces
//! bit-identical results to the original*.

use bytes::{Buf, BufMut};

use crate::engine::{SketchEngine, SketchEngineBuilder};
use crate::error::Error;
use crate::purge::PurgePolicy;
use crate::rng::Xoshiro256StarStar;
use crate::sketch::FreqSketch;

const MAGIC: &[u8; 4] = b"SFQ1";
const VERSION: u8 = 1;
const HEADER_LEN: usize = 108;

/// Wire tag of a [`PurgePolicy`] (shared by every streamfreq encoding:
/// the `u64` sketch format, the items format, and downstream container
/// formats such as the apps crate's windowed bucket store).
pub fn policy_tag(policy: &PurgePolicy) -> u8 {
    match policy {
        PurgePolicy::SampleQuantile { .. } => 0,
        PurgePolicy::ExactKStar { .. } => 1,
        PurgePolicy::GlobalMin => 2,
    }
}

/// The two wire parameter words accompanying a policy tag — see
/// [`policy_tag`]; the meaning of each word depends on the variant.
pub fn policy_params(policy: &PurgePolicy) -> (u64, u64) {
    match *policy {
        PurgePolicy::SampleQuantile {
            sample_size,
            quantile,
        } => (sample_size as u64, quantile.to_bits()),
        PurgePolicy::ExactKStar { fraction } => (fraction.to_bits(), 0),
        PurgePolicy::GlobalMin => (0, 0),
    }
}

/// Reconstructs a validated [`PurgePolicy`] from its wire tag and
/// parameter words (inverse of [`policy_tag`] / [`policy_params`]).
///
/// # Errors
/// Returns [`Error::Corrupt`] for unknown tags or invalid parameters.
pub fn policy_from_wire(tag: u8, a: u64, b: u64) -> Result<PurgePolicy, Error> {
    let policy = match tag {
        0 => PurgePolicy::SampleQuantile {
            sample_size: usize::try_from(a)
                .map_err(|_| Error::Corrupt("sample_size exceeds usize".into()))?,
            quantile: f64::from_bits(b),
        },
        1 => PurgePolicy::ExactKStar {
            fraction: f64::from_bits(a),
        },
        2 => PurgePolicy::GlobalMin,
        other => return Err(Error::Corrupt(format!("unknown policy tag {other}"))),
    };
    policy.validate().map_err(Error::Corrupt)?;
    Ok(policy)
}

impl SketchEngine<u64> {
    /// Serializes the engine into a fresh byte vector (format version 1).
    pub fn serialize_to_bytes(&self) -> Vec<u8> {
        let num_active = self.table.num_active();
        let mut out = Vec::with_capacity(HEADER_LEN + 16 * num_active);
        out.put_slice(MAGIC);
        out.put_u8(VERSION);
        out.put_u8(policy_tag(&self.policy));
        out.put_u16_le(u16::from(self.weight_saturated) | u16::from(self.offset_saturated) << 1);
        out.put_u64_le(self.max_counters as u64);
        out.put_u64_le(self.seed);
        out.put_u64_le(self.offset);
        out.put_u64_le(self.stream_weight);
        out.put_u64_le(self.num_updates);
        out.put_u64_le(self.num_purges);
        let (a, b) = policy_params(&self.policy);
        out.put_u64_le(a);
        out.put_u64_le(b);
        for word in self.rng.state() {
            out.put_u64_le(word);
        }
        out.put_u32_le(num_active as u32);
        for (&item, count) in self.table.iter() {
            out.put_u64_le(item);
            out.put_u64_le(count as u64);
        }
        out
    }

    /// Reconstructs an engine serialized by [`Self::serialize_to_bytes`].
    ///
    /// # Errors
    /// Returns [`Error::Corrupt`], [`Error::UnsupportedVersion`] or
    /// [`Error::Truncated`] for malformed input. Trailing bytes after the
    /// encoded sketch are rejected as corruption.
    pub fn deserialize_from_bytes(bytes: &[u8]) -> Result<SketchEngine<u64>, Error> {
        let mut buf = bytes;
        if buf.remaining() < HEADER_LEN {
            return Err(Error::Truncated {
                needed: HEADER_LEN - buf.remaining(),
                remaining: buf.remaining(),
            });
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(Error::Corrupt(format!("bad magic {magic:02x?}")));
        }
        let version = buf.get_u8();
        if version != VERSION {
            return Err(Error::UnsupportedVersion(version));
        }
        let tag = buf.get_u8();
        let flags = buf.get_u16_le();
        if flags > 3 {
            return Err(Error::Corrupt("nonzero reserved flag bits".into()));
        }
        let weight_saturated = flags & 1 != 0;
        let offset_saturated = flags & 2 != 0;
        let max_counters = usize::try_from(buf.get_u64_le())
            .map_err(|_| Error::Corrupt("max_counters exceeds usize".into()))?;
        let seed = buf.get_u64_le();
        let offset = buf.get_u64_le();
        let stream_weight = buf.get_u64_le();
        let num_updates = buf.get_u64_le();
        let num_purges = buf.get_u64_le();
        let param_a = buf.get_u64_le();
        let param_b = buf.get_u64_le();
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = buf.get_u64_le();
        }
        if state == [0; 4] {
            // `Xoshiro256StarStar::from_state` asserts on this; hostile
            // bytes must surface as an error, not a panic.
            return Err(Error::Corrupt("invalid all-zero sampler state".into()));
        }
        let num_active = usize::try_from(buf.get_u32_le())
            .map_err(|_| Error::Corrupt("num_active exceeds usize".into()))?;
        let counter_bytes = num_active
            .checked_mul(16)
            .ok_or_else(|| Error::Corrupt("counter section size overflows".into()))?;
        if buf.remaining() != counter_bytes {
            return if buf.remaining() < counter_bytes {
                Err(Error::Truncated {
                    needed: counter_bytes - buf.remaining(),
                    remaining: buf.remaining(),
                })
            } else {
                Err(Error::Corrupt("trailing bytes after counters".into()))
            };
        }
        if num_active > max_counters {
            return Err(Error::Corrupt(format!(
                "{num_active} counters exceed capacity {max_counters}"
            )));
        }
        let policy = policy_from_wire(tag, param_a, param_b)?;
        let mut engine = SketchEngineBuilder::<u64>::new(max_counters)
            .policy(policy)
            .seed(seed)
            .build()
            .map_err(|e| Error::Corrupt(e.to_string()))?;
        for _ in 0..num_active {
            let item = buf.get_u64_le();
            let count = buf.get_u64_le();
            if count == 0 {
                return Err(Error::Corrupt("counter value 0 out of range".into()));
            }
            let count = i64::try_from(count)
                .map_err(|_| Error::Corrupt(format!("counter value {count} out of range")))?;
            // Direct feed: counts are within capacity, so no purge can fire,
            // only table growth.
            engine.feed_for_decode(item, count)?;
        }
        engine.offset = offset;
        engine.offset_saturated = offset_saturated;
        engine.stream_weight = stream_weight;
        engine.weight_saturated = weight_saturated;
        engine.num_updates = num_updates;
        engine.num_purges = num_purges;
        engine.rng = Xoshiro256StarStar::from_state(state);
        // Final gate: a payload that passes every field check but breaks
        // a whole-engine invariant (capacity, mass conservation) is still
        // corrupt — surface it here, never as a later panic.
        engine.audit().map_err(Error::Corrupt)?;
        Ok(engine)
    }
}

impl FreqSketch {
    /// Serializes the sketch into a fresh byte vector (format version 1).
    pub fn serialize_to_bytes(&self) -> Vec<u8> {
        self.engine.serialize_to_bytes()
    }

    /// Reconstructs a sketch serialized by [`Self::serialize_to_bytes`].
    ///
    /// # Errors
    /// Returns [`Error::Corrupt`], [`Error::UnsupportedVersion`] or
    /// [`Error::Truncated`] for malformed input. Trailing bytes after the
    /// encoded sketch are rejected as corruption.
    pub fn deserialize_from_bytes(bytes: &[u8]) -> Result<FreqSketch, Error> {
        Ok(FreqSketch {
            engine: SketchEngine::<u64>::deserialize_from_bytes(bytes)?,
        })
    }
}

/// Serde integration (enable the `serde` cargo feature): sketches
/// serialize as a structured record mirroring the binary wire format, so
/// they can ride along in JSON/CBOR/etc. configuration or RPC payloads.
/// For high-volume transport prefer [`FreqSketch::serialize_to_bytes`].
#[cfg(feature = "serde")]
mod serde_impl {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    use super::{policy_from_wire, policy_params, policy_tag};
    use crate::engine::SketchEngineBuilder;
    use crate::rng::Xoshiro256StarStar;
    use crate::sketch::FreqSketch;

    #[derive(Serialize, Deserialize)]
    struct WireSketch {
        max_counters: u64,
        policy_tag: u8,
        policy_a: u64,
        policy_b: u64,
        seed: u64,
        offset: u64,
        stream_weight: u64,
        num_updates: u64,
        num_purges: u64,
        rng_state: [u64; 4],
        counters: Vec<(u64, u64)>,
    }

    impl Serialize for FreqSketch {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let engine = &self.engine;
            let (a, b) = policy_params(&engine.policy);
            WireSketch {
                max_counters: engine.max_counters as u64,
                policy_tag: policy_tag(&engine.policy),
                policy_a: a,
                policy_b: b,
                seed: engine.seed,
                offset: engine.offset,
                stream_weight: engine.stream_weight,
                num_updates: engine.num_updates,
                num_purges: engine.num_purges,
                rng_state: engine.rng.state(),
                counters: engine.table.iter().map(|(&k, v)| (k, v as u64)).collect(),
            }
            .serialize(serializer)
        }
    }

    impl<'de> Deserialize<'de> for FreqSketch {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            use serde::de::Error as _;
            let wire = WireSketch::deserialize(deserializer)?;
            let policy = policy_from_wire(wire.policy_tag, wire.policy_a, wire.policy_b)
                .map_err(D::Error::custom)?;
            let max_counters = usize::try_from(wire.max_counters).map_err(D::Error::custom)?;
            let mut engine = SketchEngineBuilder::<u64>::new(max_counters)
                .policy(policy)
                .seed(wire.seed)
                .build()
                .map_err(D::Error::custom)?;
            if wire.counters.len() > max_counters {
                return Err(D::Error::custom("more counters than capacity"));
            }
            for (item, count) in wire.counters {
                if count == 0 {
                    return Err(D::Error::custom("counter value out of range"));
                }
                let count = i64::try_from(count)
                    .map_err(|_| D::Error::custom("counter value out of range"))?;
                engine
                    .feed_for_decode(item, count)
                    .map_err(D::Error::custom)?;
            }
            engine.offset = wire.offset;
            engine.stream_weight = wire.stream_weight;
            engine.num_updates = wire.num_updates;
            engine.num_purges = wire.num_purges;
            if wire.rng_state == [0; 4] {
                return Err(D::Error::custom("invalid all-zero sampler state"));
            }
            engine.rng = Xoshiro256StarStar::from_state(wire.rng_state);
            Ok(FreqSketch { engine })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::ErrorType;

    fn loaded_sketch() -> FreqSketch {
        let mut s = FreqSketch::builder(128)
            .policy(PurgePolicy::smed())
            .seed(777)
            .build()
            .unwrap();
        for i in 0..50_000u64 {
            s.update(i % 999, i % 17 + 1);
        }
        s
    }

    #[test]
    fn roundtrip_preserves_all_queries() {
        let s = loaded_sketch();
        let bytes = s.serialize_to_bytes();
        let d = FreqSketch::deserialize_from_bytes(&bytes).unwrap();
        assert_eq!(d.stream_weight(), s.stream_weight());
        assert_eq!(d.num_updates(), s.num_updates());
        assert_eq!(d.num_purges(), s.num_purges());
        assert_eq!(d.maximum_error(), s.maximum_error());
        assert_eq!(d.num_counters(), s.num_counters());
        assert_eq!(d.max_counters(), s.max_counters());
        for item in 0..999u64 {
            assert_eq!(d.estimate(item), s.estimate(item), "item {item}");
            assert_eq!(d.lower_bound(item), s.lower_bound(item));
            assert_eq!(d.upper_bound(item), s.upper_bound(item));
        }
        assert_eq!(
            d.frequent_items(ErrorType::NoFalseNegatives),
            s.frequent_items(ErrorType::NoFalseNegatives)
        );
    }

    #[test]
    fn roundtrip_then_update_is_bit_identical() {
        // The sampler state travels with the sketch, so future purges make
        // identical decisions.
        let mut original = loaded_sketch();
        let bytes = original.serialize_to_bytes();
        let mut restored = FreqSketch::deserialize_from_bytes(&bytes).unwrap();
        for i in 0..50_000u64 {
            original.update(i % 1733, 5);
            restored.update(i % 1733, 5);
        }
        assert_eq!(original.maximum_error(), restored.maximum_error());
        assert_eq!(original.num_purges(), restored.num_purges());
        for item in 0..1733u64 {
            assert_eq!(original.estimate(item), restored.estimate(item));
        }
    }

    #[test]
    fn empty_sketch_roundtrip() {
        let s = FreqSketch::with_max_counters(64);
        let bytes = s.serialize_to_bytes();
        assert_eq!(bytes.len(), 108, "empty sketch is header-only");
        let d = FreqSketch::deserialize_from_bytes(&bytes).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.max_counters(), 64);
    }

    #[test]
    fn policies_roundtrip() {
        for policy in [
            PurgePolicy::smed(),
            PurgePolicy::smin(),
            PurgePolicy::sample_quantile(0.73),
            PurgePolicy::med(),
            PurgePolicy::ExactKStar { fraction: 0.25 },
            PurgePolicy::GlobalMin,
        ] {
            let s = FreqSketch::builder(32).policy(policy).build().unwrap();
            let d = FreqSketch::deserialize_from_bytes(&s.serialize_to_bytes()).unwrap();
            assert_eq!(d.policy(), policy);
        }
    }

    #[test]
    fn engine_and_sketch_wire_bytes_are_identical() {
        // A ShardedSketch shard (a bare engine) and a FreqSketch with the
        // same state must produce the same bytes: the codec lives on the
        // engine, the wrapper adds nothing.
        let s = loaded_sketch();
        assert_eq!(s.serialize_to_bytes(), s.engine().serialize_to_bytes());
    }

    #[test]
    fn saturated_offset_flag_roundtrips() {
        let mut a = FreqSketch::with_max_counters(16);
        a.update(1, 5);
        let mut b = FreqSketch::with_max_counters(16);
        b.engine.offset = u64::MAX - 1;
        a.merge(&b);
        a.merge(&b);
        assert!(a.engine().maximum_error_saturated());
        let d = FreqSketch::deserialize_from_bytes(&a.serialize_to_bytes()).unwrap();
        assert!(d.engine().maximum_error_saturated());
        assert_eq!(d.maximum_error(), u64::MAX);
        assert_eq!(
            d.engine().state_fingerprint(),
            a.engine().state_fingerprint()
        );
    }

    #[test]
    fn rejects_reserved_flag_bits() {
        let mut bytes = loaded_sketch().serialize_to_bytes();
        bytes[6] = 4; // bit 2 is reserved
        assert!(matches!(
            FreqSketch::deserialize_from_bytes(&bytes),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = loaded_sketch().serialize_to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            FreqSketch::deserialize_from_bytes(&bytes),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_unknown_version() {
        let mut bytes = loaded_sketch().serialize_to_bytes();
        bytes[4] = 9;
        assert!(matches!(
            FreqSketch::deserialize_from_bytes(&bytes),
            Err(Error::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn rejects_truncation_at_every_prefix_length() {
        let bytes = loaded_sketch().serialize_to_bytes();
        for cut in [0, 1, 50, HEADER_LEN - 1, HEADER_LEN + 1, bytes.len() - 1] {
            let err = FreqSketch::deserialize_from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = loaded_sketch().serialize_to_bytes();
        bytes.push(0);
        assert!(matches!(
            FreqSketch::deserialize_from_bytes(&bytes),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_zero_counter_value() {
        let s = {
            let mut s = FreqSketch::with_max_counters(8);
            s.update(1, 5);
            s
        };
        let mut bytes = s.serialize_to_bytes();
        // zero out the count of the single counter (last 8 bytes)
        let n = bytes.len();
        bytes[n - 8..].fill(0);
        assert!(matches!(
            FreqSketch::deserialize_from_bytes(&bytes),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_counter_value_beyond_i64() {
        // Regression for the formerly unchecked `count as i64`: a wire
        // count past i64::MAX must surface as a decode error, not a
        // negative counter smuggled into the table.
        let s = {
            let mut s = FreqSketch::with_max_counters(8);
            s.update(1, 5);
            s
        };
        let mut bytes = s.serialize_to_bytes();
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            FreqSketch::deserialize_from_bytes(&bytes),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_counter_mass_exceeding_stream_weight() {
        // SFQ1 carries no checksum, so a flipped count byte decodes
        // cleanly field by field — the whole-engine audit at the end of
        // decode is what catches the mass-conservation violation
        // (counter total above the recorded stream weight).
        let s = {
            let mut s = FreqSketch::with_max_counters(8);
            s.update(1, 5);
            s
        };
        let mut bytes = s.serialize_to_bytes();
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&1_000_000u64.to_le_bytes());
        assert!(matches!(
            FreqSketch::deserialize_from_bytes(&bytes),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_all_zero_sampler_state() {
        // Regression: this used to reach `Xoshiro256StarStar::from_state`
        // and panic instead of returning a decode error.
        let mut bytes = loaded_sketch().serialize_to_bytes();
        bytes[72..104].fill(0); // the four sampler state words
        assert!(matches!(
            FreqSketch::deserialize_from_bytes(&bytes),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_bad_policy_tag() {
        let mut bytes = loaded_sketch().serialize_to_bytes();
        bytes[5] = 42;
        assert!(matches!(
            FreqSketch::deserialize_from_bytes(&bytes),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn wire_size_tracks_content_not_capacity() {
        let mut s = FreqSketch::with_max_counters(24_576);
        for i in 0..10u64 {
            s.update(i, 1);
        }
        let bytes = s.serialize_to_bytes();
        assert_eq!(bytes.len(), 108 + 10 * 16);
    }
}
