//! Byte-level encoding of sketch item types, used by
//! [`crate::ItemsSketch`]'s wire format.
//!
//! The `u64` sketch has a fixed-width key encoding; arbitrary item types
//! need a serializer. [`ItemCodec`] is deliberately tiny — two methods, no
//! external dependencies — mirroring the `ArrayOfItemsSerDe` interface the
//! DataSketches library uses for the same purpose.

use crate::error::Error;

/// Items that can travel in an [`crate::ItemsSketch`] wire encoding.
pub trait ItemCodec: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one item from the front of `buf`, advancing it past the
    /// consumed bytes.
    ///
    /// # Errors
    /// Returns [`Error::Truncated`] or [`Error::Corrupt`] on malformed
    /// input.
    fn decode(buf: &mut &[u8]) -> Result<Self, Error>;
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], Error> {
    if buf.len() < n {
        return Err(Error::Truncated {
            needed: n - buf.len(),
            remaining: buf.len(),
        });
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

macro_rules! impl_item_codec_int {
    ($($t:ty),*) => {
        $(impl ItemCodec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn decode(buf: &mut &[u8]) -> Result<Self, Error> {
                let bytes = take(buf, std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        })*
    };
}

impl_item_codec_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl ItemCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        let bytes = self.as_bytes();
        (bytes.len() as u32).encode(out);
        out.extend_from_slice(bytes);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, Error> {
        let len = u32::decode(buf)? as usize;
        let bytes = take(buf, len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| Error::Corrupt(format!("invalid UTF-8 item: {e}")))
    }
}

impl ItemCodec for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, Error> {
        let len = u32::decode(buf)? as usize;
        Ok(take(buf, len)?.to_vec())
    }
}

impl<A: ItemCodec, B: ItemCodec> ItemCodec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, Error> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: ItemCodec + PartialEq + std::fmt::Debug>(value: T) {
        let mut bytes = Vec::new();
        value.encode(&mut bytes);
        let mut view = bytes.as_slice();
        let decoded = T::decode(&mut view).expect("decode");
        assert_eq!(decoded, value);
        assert!(view.is_empty(), "decoder must consume exactly its bytes");
    }

    #[test]
    fn integers_roundtrip() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(-42i32);
        roundtrip(u128::MAX - 7);
        roundtrip(255u8);
    }

    #[test]
    fn strings_roundtrip() {
        roundtrip(String::new());
        roundtrip("hello world".to_string());
        roundtrip("unicode: čau světe 🌍".to_string());
    }

    #[test]
    fn byte_vectors_roundtrip() {
        roundtrip(Vec::<u8>::new());
        roundtrip(vec![0u8, 255, 1, 2, 3]);
    }

    #[test]
    fn tuples_roundtrip() {
        roundtrip((7u64, "label".to_string()));
        roundtrip((1u32, (2u32, 3u32)));
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut bytes = Vec::new();
        "something long".to_string().encode(&mut bytes);
        for cut in 0..bytes.len() {
            let mut view = &bytes[..cut];
            assert!(
                String::decode(&mut view).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn invalid_utf8_is_corrupt() {
        let mut bytes = Vec::new();
        vec![0xFFu8, 0xFE, 0xFD].encode(&mut bytes);
        let mut view = bytes.as_slice();
        assert!(matches!(String::decode(&mut view), Err(Error::Corrupt(_))));
    }
}
