//! Byte-level encoding of sketch item types, used by
//! [`crate::ItemsSketch`]'s wire format.
//!
//! The `u64` sketch has a fixed-width key encoding; arbitrary item types
//! need a serializer. [`ItemCodec`] is deliberately tiny — two methods, no
//! external dependencies — mirroring the `ArrayOfItemsSerDe` interface the
//! DataSketches library uses for the same purpose.

use crate::error::Error;

/// Appends `value` to `out` as an LEB128 varint (7 bits per byte,
/// continuation high bit). Small values — epochs, weights, stream tags —
/// take 1–2 bytes instead of 8.
///
/// This sits on the durable ingest fast path (two calls per logged
/// update), so the common single-byte case takes one branch and the
/// multi-byte case builds on the stack and appends once.
#[inline]
pub fn write_uvarint(out: &mut Vec<u8>, mut value: u64) {
    if value < 0x80 {
        out.push(value as u8);
        return;
    }
    let mut buf = [0u8; 10];
    let mut n = 0;
    while value >= 0x80 {
        buf[n] = (value as u8) | 0x80;
        n += 1;
        value >>= 7;
    }
    buf[n] = value as u8;
    out.extend_from_slice(&buf[..=n]);
}

/// Decodes one LEB128 varint from the front of `buf`, advancing it.
///
/// # Errors
/// Returns [`Error::Truncated`] when `buf` ends mid-varint and
/// [`Error::Corrupt`] when the encoding overflows 64 bits or is not
/// minimal (a non-canonical trailing `0x00` continuation byte).
pub fn read_uvarint(buf: &mut &[u8]) -> Result<u64, Error> {
    let mut value = 0u64;
    for (i, &byte) in buf.iter().enumerate() {
        if i == 10 || (i == 9 && byte > 0x01) {
            return Err(Error::Corrupt("varint overflows u64".into()));
        }
        value |= u64::from(byte & 0x7F) << (7 * i);
        if byte & 0x80 == 0 {
            if byte == 0 && i > 0 {
                return Err(Error::Corrupt("non-minimal varint encoding".into()));
            }
            *buf = buf.get(i + 1..).unwrap_or_default();
            return Ok(value);
        }
    }
    Err(Error::Truncated {
        needed: 1,
        remaining: 0,
    })
}

/// Zigzag-maps a signed value so small magnitudes stay small varints.
fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Items that can travel in an [`crate::ItemsSketch`] wire encoding.
pub trait ItemCodec: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one item from the front of `buf`, advancing it past the
    /// consumed bytes.
    ///
    /// # Errors
    /// Returns [`Error::Truncated`] or [`Error::Corrupt`] on malformed
    /// input.
    fn decode(buf: &mut &[u8]) -> Result<Self, Error>;

    /// Appends a size-optimized encoding of `self` — varints for
    /// integers, varint length prefixes for strings and byte vectors.
    /// Used by the v2 WAL frame format, where item bytes dominate;
    /// checkpoint and sketch wire formats keep the fixed-width
    /// [`ItemCodec::encode`]. Defaults to the fixed encoding.
    fn encode_compact(&self, out: &mut Vec<u8>) {
        self.encode(out);
    }

    /// Decodes one [`ItemCodec::encode_compact`] item from the front of
    /// `buf`, advancing it.
    ///
    /// # Errors
    /// Returns [`Error::Truncated`] or [`Error::Corrupt`] on malformed
    /// input.
    fn decode_compact(buf: &mut &[u8]) -> Result<Self, Error> {
        Self::decode(buf)
    }

    /// Appends `self`'s compact encoding followed by `weight` as a
    /// varint — one `(item, weight)` pair of a WAL frame. This is the
    /// durable ingest path's innermost loop; integer keys override it to
    /// build both fields in one stack buffer and append once. The bytes
    /// produced MUST equal [`ItemCodec::encode_compact`] followed by
    /// [`write_uvarint`] of the weight.
    fn encode_compact_pair(&self, weight: u64, out: &mut Vec<u8>) {
        self.encode_compact(out);
        write_uvarint(out, weight);
    }
}

/// Writes `value` as a LEB128 varint into `buf` starting at `at`;
/// returns the offset one past the last byte written. `buf` must have at
/// least 10 bytes of room after `at`.
#[inline]
fn uvarint_into(buf: &mut [u8; 20], mut at: usize, mut value: u64) -> usize {
    while value >= 0x80 {
        buf[at] = (value as u8) | 0x80;
        at += 1;
        value >>= 7;
    }
    buf[at] = value as u8;
    at + 1
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], Error> {
    if buf.len() < n {
        return Err(Error::Truncated {
            needed: n - buf.len(),
            remaining: buf.len(),
        });
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

/// [`take`], but returning a fixed-size array for `from_le_bytes`.
/// Infallible once `take` succeeds, but surfaced as `Corrupt` rather
/// than a panic: decode paths must never panic on untrusted input.
fn take_array<const N: usize>(buf: &mut &[u8]) -> Result<[u8; N], Error> {
    let head = take(buf, N)?;
    head.try_into()
        .map_err(|_| Error::Corrupt("sized take mismatch".into()))
}

macro_rules! impl_item_codec_int {
    ($($t:ty),*) => {
        $(impl ItemCodec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn decode(buf: &mut &[u8]) -> Result<Self, Error> {
                Ok(<$t>::from_le_bytes(take_array(buf)?))
            }
        })*
    };
}

impl_item_codec_int!(u128, i128);

macro_rules! impl_item_codec_varint {
    (unsigned: $($u:ty),* ; signed: $($s:ty),*) => {
        $(impl ItemCodec for $u {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn decode(buf: &mut &[u8]) -> Result<Self, Error> {
                Ok(<$u>::from_le_bytes(take_array(buf)?))
            }

            fn encode_compact(&self, out: &mut Vec<u8>) {
                write_uvarint(out, u64::from(*self));
            }

            fn decode_compact(buf: &mut &[u8]) -> Result<Self, Error> {
                <$u>::try_from(read_uvarint(buf)?)
                    .map_err(|_| Error::Corrupt("varint out of range for item type".into()))
            }

            fn encode_compact_pair(&self, weight: u64, out: &mut Vec<u8>) {
                let mut buf = [0u8; 20];
                let n = uvarint_into(&mut buf, 0, u64::from(*self));
                let n = uvarint_into(&mut buf, n, weight);
                out.extend_from_slice(&buf[..n]);
            }
        })*
        $(impl ItemCodec for $s {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn decode(buf: &mut &[u8]) -> Result<Self, Error> {
                Ok(<$s>::from_le_bytes(take_array(buf)?))
            }

            fn encode_compact(&self, out: &mut Vec<u8>) {
                write_uvarint(out, zigzag(i64::from(*self)));
            }

            fn decode_compact(buf: &mut &[u8]) -> Result<Self, Error> {
                <$s>::try_from(unzigzag(read_uvarint(buf)?))
                    .map_err(|_| Error::Corrupt("varint out of range for item type".into()))
            }

            fn encode_compact_pair(&self, weight: u64, out: &mut Vec<u8>) {
                let mut buf = [0u8; 20];
                let n = uvarint_into(&mut buf, 0, zigzag(i64::from(*self)));
                let n = uvarint_into(&mut buf, n, weight);
                out.extend_from_slice(&buf[..n]);
            }
        })*
    };
}

impl_item_codec_varint!(unsigned: u8, u16, u32, u64 ; signed: i8, i16, i32, i64);

impl ItemCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        let bytes = self.as_bytes();
        (bytes.len() as u32).encode(out);
        out.extend_from_slice(bytes);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, Error> {
        let len = usize::try_from(u32::decode(buf)?)
            .map_err(|_| Error::Corrupt("string length overflows usize".into()))?;
        let bytes = take(buf, len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| Error::Corrupt(format!("invalid UTF-8 item: {e}")))
    }

    fn encode_compact(&self, out: &mut Vec<u8>) {
        write_uvarint(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode_compact(buf: &mut &[u8]) -> Result<Self, Error> {
        let len = usize::try_from(read_uvarint(buf)?)
            .map_err(|_| Error::Corrupt("string length overflows usize".into()))?;
        let bytes = take(buf, len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| Error::Corrupt(format!("invalid UTF-8 item: {e}")))
    }
}

impl ItemCodec for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, Error> {
        let len = usize::try_from(u32::decode(buf)?)
            .map_err(|_| Error::Corrupt("vector length overflows usize".into()))?;
        Ok(take(buf, len)?.to_vec())
    }

    fn encode_compact(&self, out: &mut Vec<u8>) {
        write_uvarint(out, self.len() as u64);
        out.extend_from_slice(self);
    }

    fn decode_compact(buf: &mut &[u8]) -> Result<Self, Error> {
        let len = usize::try_from(read_uvarint(buf)?)
            .map_err(|_| Error::Corrupt("vector length overflows usize".into()))?;
        Ok(take(buf, len)?.to_vec())
    }
}

impl<A: ItemCodec, B: ItemCodec> ItemCodec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, Error> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }

    fn encode_compact(&self, out: &mut Vec<u8>) {
        self.0.encode_compact(out);
        self.1.encode_compact(out);
    }

    fn decode_compact(buf: &mut &[u8]) -> Result<Self, Error> {
        Ok((A::decode_compact(buf)?, B::decode_compact(buf)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: ItemCodec + PartialEq + std::fmt::Debug>(value: T) {
        let mut bytes = Vec::new();
        value.encode(&mut bytes);
        let mut view = bytes.as_slice();
        let decoded = T::decode(&mut view).expect("decode");
        assert_eq!(decoded, value);
        assert!(view.is_empty(), "decoder must consume exactly its bytes");
    }

    #[test]
    fn integers_roundtrip() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(-42i32);
        roundtrip(u128::MAX - 7);
        roundtrip(255u8);
    }

    #[test]
    fn strings_roundtrip() {
        roundtrip(String::new());
        roundtrip("hello world".to_string());
        roundtrip("unicode: čau světe 🌍".to_string());
    }

    #[test]
    fn byte_vectors_roundtrip() {
        roundtrip(Vec::<u8>::new());
        roundtrip(vec![0u8, 255, 1, 2, 3]);
    }

    #[test]
    fn tuples_roundtrip() {
        roundtrip((7u64, "label".to_string()));
        roundtrip((1u32, (2u32, 3u32)));
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut bytes = Vec::new();
        "something long".to_string().encode(&mut bytes);
        for cut in 0..bytes.len() {
            let mut view = &bytes[..cut];
            assert!(
                String::decode(&mut view).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn invalid_utf8_is_corrupt() {
        let mut bytes = Vec::new();
        vec![0xFFu8, 0xFE, 0xFD].encode(&mut bytes);
        let mut view = bytes.as_slice();
        assert!(matches!(String::decode(&mut view), Err(Error::Corrupt(_))));
    }

    #[test]
    fn truncated_fixed_width_decode_is_an_error() {
        // take_array surfaces short reads as Err, never a slice panic.
        let mut view = &[1u8, 2, 3][..];
        assert!(matches!(
            u64::decode(&mut view),
            Err(Error::Truncated { .. })
        ));
        let mut view = &[0u8; 15][..];
        assert!(matches!(
            u128::decode(&mut view),
            Err(Error::Truncated { .. })
        ));
        let mut view = &[][..];
        assert!(matches!(
            i64::decode(&mut view),
            Err(Error::Truncated { .. })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_an_error() {
        // A length prefix far beyond the remaining bytes must come back as
        // Err — never an allocation attempt or an out-of-bounds slice.
        let mut bytes = Vec::new();
        write_uvarint(&mut bytes, u64::MAX);
        bytes.extend_from_slice(b"abc");
        let mut view = bytes.as_slice();
        assert!(String::decode_compact(&mut view).is_err());
        let mut view = bytes.as_slice();
        assert!(<Vec<u8>>::decode_compact(&mut view).is_err());

        let mut bytes = Vec::new();
        u32::MAX.encode(&mut bytes);
        bytes.extend_from_slice(b"abc");
        let mut view = bytes.as_slice();
        assert!(matches!(
            String::decode(&mut view),
            Err(Error::Truncated { .. })
        ));
        let mut view = bytes.as_slice();
        assert!(matches!(
            <Vec<u8>>::decode(&mut view),
            Err(Error::Truncated { .. })
        ));
    }

    fn roundtrip_compact<T: ItemCodec + PartialEq + std::fmt::Debug>(value: T) {
        let mut bytes = Vec::new();
        value.encode_compact(&mut bytes);
        let mut view = bytes.as_slice();
        let decoded = T::decode_compact(&mut view).expect("decode_compact");
        assert_eq!(decoded, value);
        assert!(view.is_empty(), "compact decoder must consume its bytes");
    }

    #[test]
    fn uvarint_roundtrips_edge_values() {
        for value in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut bytes = Vec::new();
            write_uvarint(&mut bytes, value);
            let mut view = bytes.as_slice();
            assert_eq!(read_uvarint(&mut view).unwrap(), value);
            assert!(view.is_empty());
        }
        let mut bytes = Vec::new();
        write_uvarint(&mut bytes, u64::MAX);
        assert_eq!(bytes.len(), 10);
        write_uvarint(&mut bytes, 300);
        let mut view = bytes.as_slice();
        assert_eq!(read_uvarint(&mut view).unwrap(), u64::MAX);
        assert_eq!(read_uvarint(&mut view).unwrap(), 300);
    }

    #[test]
    fn uvarint_rejects_truncation_overflow_and_padding() {
        let mut bytes = Vec::new();
        write_uvarint(&mut bytes, 1 << 40);
        for cut in 0..bytes.len() {
            let mut view = &bytes[..cut];
            assert!(matches!(
                read_uvarint(&mut view),
                Err(Error::Truncated { .. })
            ));
        }
        // 11 continuation bytes: overflows 64 bits.
        let mut view: &[u8] = &[0x80u8; 11][..];
        assert!(matches!(read_uvarint(&mut view), Err(Error::Corrupt(_))));
        // 2^63 shifted into the 10th byte with bit 1 set: overflow.
        let mut view: &[u8] = &[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02];
        assert!(matches!(read_uvarint(&mut view), Err(Error::Corrupt(_))));
        // Non-minimal zero padding must not alias a shorter encoding.
        let mut view: &[u8] = &[0x80, 0x00];
        assert!(matches!(read_uvarint(&mut view), Err(Error::Corrupt(_))));
    }

    #[test]
    fn compact_encodings_roundtrip() {
        roundtrip_compact(0u64);
        roundtrip_compact(u64::MAX);
        roundtrip_compact(300u16);
        roundtrip_compact(u32::MAX);
        roundtrip_compact(-1i64);
        roundtrip_compact(i64::MIN);
        roundtrip_compact(-42i8);
        roundtrip_compact(String::from("compact čau 🌍"));
        roundtrip_compact(vec![9u8, 8, 7]);
        roundtrip_compact((17u64, String::from("pair")));
        roundtrip_compact(u128::MAX - 3); // falls back to fixed width
    }

    #[test]
    fn compact_int_is_smaller_for_small_values() {
        let mut fixed = Vec::new();
        let mut compact = Vec::new();
        1_000u64.encode(&mut fixed);
        1_000u64.encode_compact(&mut compact);
        assert_eq!(fixed.len(), 8);
        assert_eq!(compact.len(), 2);
    }

    #[test]
    fn compact_int_rejects_out_of_range() {
        let mut bytes = Vec::new();
        write_uvarint(&mut bytes, 300);
        let mut view = bytes.as_slice();
        assert!(matches!(
            u8::decode_compact(&mut view),
            Err(Error::Corrupt(_))
        ));
        let mut bytes = Vec::new();
        write_uvarint(&mut bytes, zigzag(300));
        let mut view = bytes.as_slice();
        assert!(matches!(
            i8::decode_compact(&mut view),
            Err(Error::Corrupt(_))
        ));
    }
}
