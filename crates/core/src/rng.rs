//! Deterministic pseudo-random number generation for counter sampling.
//!
//! The sketch samples `ℓ` counters during every purge (§2.2 of the paper).
//! To keep sketch behaviour bit-reproducible across platforms, seeds, and
//! library versions — and to keep `streamfreq-core` dependency-free — we
//! implement the generators in-crate rather than pulling in `rand`:
//!
//! * [`SplitMix64`] — the seed expander from Steele, Lea & Flood,
//!   *Fast Splittable Pseudorandom Number Generators* (OOPSLA 2014). Used to
//!   derive the xoshiro state from a single `u64` seed and as a standalone
//!   mixing finalizer.
//! * [`Xoshiro256StarStar`] — Blackman & Vigna's xoshiro256\*\*, a fast
//!   all-purpose generator with 256 bits of state and period 2²⁵⁶ − 1.
//!
//! Neither generator is cryptographic; they only drive counter sampling and
//! randomized merge iteration, where an adversary with knowledge of the seed
//! is outside the paper's model.

/// SplitMix64 generator: a tiny, fast generator mainly used here to expand
/// one `u64` seed into the 256-bit xoshiro state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        split_mix64_mix(self.state)
    }
}

/// The SplitMix64 finalizer: a strong 64-bit mixing function (bijective),
/// also usable as an integer hash finalizer.
#[inline]
pub fn split_mix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256\*\* 1.0 by David Blackman and Sebastiano Vigna (public domain).
///
/// State must not be all zero; [`Xoshiro256StarStar::from_seed`] guarantees
/// this by seeding through [`SplitMix64`] as the authors recommend.
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator from a single `u64` seed, expanding it with
    /// SplitMix64 per the xoshiro authors' recommendation.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // SplitMix64 output of four consecutive draws is never all-zero for
        // any seed, but keep a defensive fix-up: an all-zero state would make
        // xoshiro emit zeros forever.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Restores a generator from a previously captured state.
    ///
    /// # Panics
    /// Panics if `state` is all zeros (an invalid xoshiro state).
    pub fn from_state(state: [u64; 4]) -> Self {
        assert!(
            state != [0; 4],
            "all-zero state is invalid for xoshiro256**"
        );
        Self { s: state }
    }

    /// Captures the generator state for serialization.
    #[inline]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)` using Lemire's
    /// multiply-shift rejection method (unbiased).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a positive bound");
        // Lemire 2019: "Fast Random Integer Generation in an Interval".
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; 2^-53 scaling yields [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c test harness.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism: same seed, same sequence.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn splitmix_mix_is_bijective_on_samples() {
        // Spot-check injectivity on a structured sample set.
        let mut outputs = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(outputs.insert(split_mix64_mix(i)));
        }
    }

    #[test]
    fn xoshiro_deterministic() {
        let mut a = Xoshiro256StarStar::from_seed(42);
        let mut b = Xoshiro256StarStar::from_seed(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_different_seeds_diverge() {
        let mut a = Xoshiro256StarStar::from_seed(1);
        let mut b = Xoshiro256StarStar::from_seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_is_in_range() {
        let mut rng = Xoshiro256StarStar::from_seed(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut rng = Xoshiro256StarStar::from_seed(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut rng = Xoshiro256StarStar::from_seed(11);
        let bound = 10u64;
        let n = 100_000;
        let mut counts = vec![0u64; bound as usize];
        for _ in 0..n {
            counts[rng.next_below(bound) as usize] += 1;
        }
        let expected = n as f64 / bound as f64;
        for &c in &counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::from_seed(3);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn next_below_zero_panics() {
        Xoshiro256StarStar::from_seed(0).next_below(0);
    }
}
